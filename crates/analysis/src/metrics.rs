//! Native-impact metrics.
//!
//! Tables 5–8 report, for native jobs: average and median wait, average and
//! median expansion factor (`EF = 1 + wait/runtime`), each for *all* jobs
//! and for the *5% largest* jobs (by CPU·seconds, per Figure 6's caption) —
//! plus utilization and throughput aggregates.

use simkit::stats::{median, sorted};
use workload::CompletedJob;

/// Wait/EF statistics over a set of completed jobs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WaitStats {
    /// Number of jobs aggregated.
    pub count: u64,
    /// Mean wait, seconds.
    pub avg_wait: f64,
    /// Median wait, seconds.
    pub median_wait: f64,
    /// Mean expansion factor.
    pub avg_ef: f64,
    /// Median expansion factor.
    pub median_ef: f64,
}

/// Compute [`WaitStats`] over an iterator of jobs.
pub fn wait_stats<'a>(jobs: impl Iterator<Item = &'a CompletedJob>) -> WaitStats {
    let mut waits = Vec::new();
    let mut efs = Vec::new();
    for c in jobs {
        waits.push(c.wait().as_secs_f64());
        efs.push(c.expansion_factor());
    }
    if waits.is_empty() {
        return WaitStats::default();
    }
    let count = waits.len() as u64;
    let avg_wait = waits.iter().sum::<f64>() / count as f64;
    let avg_ef = efs.iter().sum::<f64>() / count as f64;
    let waits = sorted(waits);
    let efs = sorted(efs);
    WaitStats {
        count,
        avg_wait,
        median_wait: median(&waits).unwrap_or(0.0),
        avg_ef,
        median_ef: median(&efs).unwrap_or(0.0),
    }
}

/// Select the largest `fraction` (e.g. 0.05) of jobs by CPU·seconds — the
/// paper's "5% largest jobs … in terms of CPU-sec" population.
pub fn largest_fraction(jobs: &[&CompletedJob], fraction: f64) -> Vec<CompletedJob> {
    assert!((0.0..=1.0).contains(&fraction));
    if jobs.is_empty() {
        return Vec::new();
    }
    let mut by_size: Vec<&CompletedJob> = jobs.to_vec();
    by_size.sort_by(|a, b| {
        b.job
            .cpu_seconds()
            .total_cmp(&a.job.cpu_seconds())
            .then(a.job.id.cmp(&b.job.id))
    });
    let n = ((jobs.len() as f64 * fraction).ceil() as usize).max(1);
    by_size.into_iter().take(n).copied().collect()
}

/// The Table 5 panel: wait statistics for all native jobs and for the 5%
/// largest.
#[derive(Clone, Copy, Debug)]
pub struct NativeImpact {
    /// All native jobs.
    pub all: WaitStats,
    /// The largest 5% by CPU·seconds.
    pub largest: WaitStats,
}

impl NativeImpact {
    /// Compute both panels from a job log (interstitial entries ignored).
    pub fn of(completed: &[CompletedJob]) -> Self {
        let natives: Vec<&CompletedJob> = completed
            .iter()
            .filter(|c| !c.job.class.is_interstitial())
            .collect();
        let all = wait_stats(natives.iter().copied());
        let top = largest_fraction(&natives, 0.05);
        let largest = wait_stats(top.iter());
        NativeImpact { all, largest }
    }

    /// Export both panels into an obs metrics registry as integer gauges
    /// (waits in milliseconds, expansion factors in milli-units), so
    /// RunReport artifacts stay float-free and byte-stable.
    pub fn export(&self, registry: &mut obs::MetricsRegistry) {
        let milli = |v: f64| (v * 1000.0).round() as i64;
        let count = |c: u64| i64::try_from(c).unwrap_or(i64::MAX);
        registry.gauge_set("impact.all.count", count(self.all.count));
        registry.gauge_set("impact.all.avg_wait_ms", milli(self.all.avg_wait));
        registry.gauge_set("impact.all.median_wait_ms", milli(self.all.median_wait));
        registry.gauge_set("impact.all.avg_ef_milli", milli(self.all.avg_ef));
        registry.gauge_set("impact.all.median_ef_milli", milli(self.all.median_ef));
        registry.gauge_set("impact.largest.count", count(self.largest.count));
        registry.gauge_set("impact.largest.avg_wait_ms", milli(self.largest.avg_wait));
        registry.gauge_set(
            "impact.largest.median_wait_ms",
            milli(self.largest.median_wait),
        );
        registry.gauge_set("impact.largest.avg_ef_milli", milli(self.largest.avg_ef));
        registry.gauge_set(
            "impact.largest.median_ef_milli",
            milli(self.largest.median_ef),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::time::{SimDuration, SimTime};
    use workload::{Job, JobClass};

    fn completed(id: u64, class: JobClass, cpus: u32, wait: u64, run: u64) -> CompletedJob {
        CompletedJob::new(
            Job {
                id,
                class,
                user: 0,
                group: 0,
                submit: SimTime::from_secs(1_000),
                cpus,
                runtime: SimDuration::from_secs(run),
                estimate: SimDuration::from_secs(run),
            },
            SimTime::from_secs(1_000 + wait),
        )
    }

    #[test]
    fn wait_stats_basics() {
        let jobs = [
            completed(1, JobClass::Native, 1, 0, 100),
            completed(2, JobClass::Native, 1, 100, 100),
            completed(3, JobClass::Native, 1, 200, 100),
        ];
        let s = wait_stats(jobs.iter());
        assert_eq!(s.count, 3);
        assert!((s.avg_wait - 100.0).abs() < 1e-12);
        assert!((s.median_wait - 100.0).abs() < 1e-12);
        // EFs: 1, 2, 3.
        assert!((s.avg_ef - 2.0).abs() < 1e-12);
        assert!((s.median_ef - 2.0).abs() < 1e-12);
    }

    #[test]
    fn wait_stats_empty() {
        let s = wait_stats(std::iter::empty());
        assert_eq!(s, WaitStats::default());
    }

    #[test]
    fn largest_fraction_selects_by_cpu_seconds() {
        // Sizes: 1×100=100, 2×100=200, …, 100×100=10000.
        let jobs: Vec<CompletedJob> = (1..=100)
            .map(|i| completed(i, JobClass::Native, i as u32, 0, 100))
            .collect();
        let refs: Vec<&CompletedJob> = jobs.iter().collect();
        let top = largest_fraction(&refs, 0.05);
        assert_eq!(top.len(), 5);
        let ids: Vec<u64> = top.iter().map(|c| c.job.id).collect();
        assert_eq!(ids, vec![100, 99, 98, 97, 96]);
    }

    #[test]
    fn largest_fraction_minimum_one() {
        let jobs = [completed(1, JobClass::Native, 4, 0, 100)];
        let refs: Vec<&CompletedJob> = jobs.iter().collect();
        assert_eq!(largest_fraction(&refs, 0.05).len(), 1);
        assert!(largest_fraction(&[], 0.05).is_empty());
    }

    #[test]
    fn native_impact_ignores_interstitial() {
        let jobs = vec![
            completed(1, JobClass::Native, 1, 50, 100),
            completed(2, JobClass::Interstitial, 32, 1_000_000, 100),
        ];
        let impact = NativeImpact::of(&jobs);
        assert_eq!(impact.all.count, 1);
        assert!((impact.all.avg_wait - 50.0).abs() < 1e-12);
        // The single native job is also the "largest 5%".
        assert_eq!(impact.largest.count, 1);
    }

    #[test]
    fn export_writes_integer_gauges() {
        let jobs = vec![
            completed(1, JobClass::Native, 1, 50, 100),
            completed(2, JobClass::Native, 1, 150, 100),
        ];
        let impact = NativeImpact::of(&jobs);
        let mut reg = obs::MetricsRegistry::enabled();
        impact.export(&mut reg);
        let snap = reg.snapshot();
        assert_eq!(snap.gauges["impact.all.count"], 2);
        assert_eq!(snap.gauges["impact.all.avg_wait_ms"], 100_000);
        // EF = 1 + wait/runtime → (1.5 + 2.5)/2 = 2.0 → 2000 milli.
        assert_eq!(snap.gauges["impact.all.avg_ef_milli"], 2_000);
        // Disabled registry ignores the export.
        let mut off = obs::MetricsRegistry::disabled();
        impact.export(&mut off);
        assert!(off.snapshot().gauges.is_empty());
    }

    #[test]
    fn tail_waits_show_up_in_mean_not_median() {
        // 99 jobs with zero wait + 1 with a huge wait: the cascade pattern
        // of §4.3.2.1 — "only about 1% of the jobs are actually accounting
        // for this large difference".
        let mut jobs: Vec<CompletedJob> = (1..100)
            .map(|i| completed(i, JobClass::Native, 1, 0, 100))
            .collect();
        jobs.push(completed(100, JobClass::Native, 1, 1_000_000, 100));
        let s = wait_stats(jobs.iter());
        assert_eq!(s.median_wait, 0.0);
        assert!(s.avg_wait > 9_000.0);
    }
}
