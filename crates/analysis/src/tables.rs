//! Table rendering.
//!
//! Every regenerated table is assembled as a [`Table`] and printed as
//! aligned text (for the terminal), GitHub Markdown (for EXPERIMENTS.md) or
//! CSV (for downstream plotting).

/// A simple rectangular table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of string-likes (convenience).
    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }

    /// Render as aligned plain text.
    pub fn to_text(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(c);
                for _ in c.chars().count()..w[i] {
                    out.push(' ');
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        line(&self.headers, &mut out);
        let total: usize = w.iter().sum::<usize>() + 2 * (w.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Render as GitHub-flavored Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("### ");
        out.push_str(&self.title);
        out.push_str("\n\n| ");
        out.push_str(&self.headers.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    /// Render as CSV (RFC-4180-ish: quotes only where needed).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format seconds the way the paper's tables do: `2k` for 2000, plain
/// integers below 1000.
pub fn fmt_k(seconds: f64) -> String {
    if seconds >= 1_000.0 {
        format!("{:.1}k", seconds / 1_000.0)
    } else {
        format!("{:.0}", seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row_strs(&["alpha", "1"]);
        t.row(&["beta,gamma".to_string(), "2".to_string()]);
        t
    }

    #[test]
    fn text_rendering_aligns_columns() {
        let text = sample().to_text();
        assert!(text.starts_with("Demo\n"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[1], "name        value");
        assert!(lines[2].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("alpha"));
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| name | value |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| beta,gamma | 2 |"));
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "alpha,1");
        assert_eq!(lines[2], "\"beta,gamma\",2");
    }

    #[test]
    fn csv_escapes_quotes() {
        let mut t = Table::new("q", &["a"]);
        t.row_strs(&["say \"hi\""]);
        assert!(t.to_csv().contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row_strs(&["only one"]);
    }

    #[test]
    fn fmt_k_matches_paper_style() {
        assert_eq!(fmt_k(2_000.0), "2.0k");
        assert_eq!(fmt_k(86_400.0), "86.4k");
        assert_eq!(fmt_k(624.0), "624");
        assert_eq!(fmt_k(0.0), "0");
    }

    #[test]
    fn len_and_title() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "Demo");
    }
}
