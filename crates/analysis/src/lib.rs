//! # analysis — metrics, tables and figures
//!
//! Turns simulation job logs into the paper's reported quantities:
//!
//! * [`metrics`] — wait-time statistics (all jobs and the 5% largest by
//!   CPU·seconds), expansion factors, utilization splits.
//! * [`tables`] — fixed-width text/Markdown/CSV table rendering for the
//!   regenerated Tables 1–8.
//! * [`figures`] — series emitters and ASCII plots for Figures 2–6
//!   (scatter, CDF, utilization time series, log₁₀ wait histograms).
//! * [`interstices`] — gap-structure analysis: how much of a free-capacity
//!   profile a given job shape can actually harvest (exact space × time
//!   breakage).
//! * [`fairness`] — per-user service shares, Gini and Jain indices: does
//!   the interstitial delay cascade land evenly across users?
//! * [`resilience`] — fault-run accounting: goodput vs CPU·seconds wasted
//!   by node crashes, retry/requeue traffic, per-execution survival vs
//!   runtime, and degraded-capacity windows.
//!
//! The crate is deliberately independent of the `interstitial` core: every
//! function works on plain `&[CompletedJob]` slices, so it can analyze logs
//! from any source (including SWF replays of real machines).

//!
//! ```
//! use analysis::fairness::gini;
//! use analysis::tables::fmt_k;
//!
//! assert!(gini(&[1.0, 1.0, 1.0]) < 1e-12);
//! assert_eq!(fmt_k(4_400.0), "4.4k");
//! ```

#![warn(missing_docs)]

pub mod fairness;
pub mod figures;
pub mod interstices;
pub mod metrics;
pub mod resilience;
pub mod tables;

pub use metrics::{largest_fraction, NativeImpact, WaitStats};
pub use resilience::ResilienceReport;
pub use tables::Table;
