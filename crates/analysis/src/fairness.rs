//! Inter-user fairness metrics.
//!
//! The three machines differ precisely in their *fair-share* flavor (§3),
//! and a worry any facility has before enabling interstitial computing is
//! whether the delay cascade lands evenly or on particular users. This
//! module quantifies both: per-user service shares, the Gini coefficient of
//! delivered CPU·time, and Jain's fairness index of per-user slowdowns.

use std::collections::BTreeMap;
use workload::CompletedJob;

/// Per-user aggregate over a job log.
#[derive(Clone, Copy, Debug, Default)]
pub struct UserService {
    /// Jobs completed.
    pub jobs: u64,
    /// CPU·seconds delivered.
    pub cpu_seconds: f64,
    /// Total wait, seconds.
    pub total_wait: f64,
}

/// Aggregate native jobs per user, keyed in ascending user order so the
/// derived metric vectors are reproducible across runs.
pub fn per_user(completed: &[CompletedJob]) -> BTreeMap<u32, UserService> {
    let mut out: BTreeMap<u32, UserService> = BTreeMap::new();
    for c in completed {
        if c.job.class.is_interstitial() {
            continue;
        }
        let e = out.entry(c.job.user).or_default();
        e.jobs += 1;
        e.cpu_seconds += c.job.cpu_seconds();
        e.total_wait += c.wait().as_secs_f64();
    }
    out
}

/// Gini coefficient of a set of non-negative values: 0 = perfectly equal,
/// → 1 = concentrated on one holder. Returns 0 for empty or all-zero input.
pub fn gini(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    debug_assert!(values.iter().all(|&v| v >= 0.0));
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let total: f64 = sorted.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    // G = (2·Σ i·x_i)/(n·Σx) − (n+1)/n with 1-based ranks over ascending x.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

/// Jain's fairness index of non-negative values: 1 = perfectly equal,
/// 1/n = maximally concentrated. Returns 1 for empty input.
pub fn jain(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * sum_sq)
}

/// Gini coefficient of per-user delivered CPU·time in a log.
pub fn service_gini(completed: &[CompletedJob]) -> f64 {
    let per = per_user(completed);
    let values: Vec<f64> = per.values().map(|s| s.cpu_seconds).collect();
    gini(&values)
}

/// Jain index of per-user *mean waits* — how evenly the queueing pain is
/// spread. Users with no jobs are excluded.
pub fn wait_jain(completed: &[CompletedJob]) -> f64 {
    let per = per_user(completed);
    let values: Vec<f64> = per
        .values()
        .filter(|s| s.jobs > 0)
        .map(|s| s.total_wait / s.jobs as f64)
        .collect();
    jain(&values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::time::{SimDuration, SimTime};
    use workload::{Job, JobClass};

    fn completed(user: u32, cpus: u32, wait: u64, run: u64) -> CompletedJob {
        CompletedJob::new(
            Job {
                id: (user as u64) << 32 | wait,
                class: JobClass::Native,
                user,
                group: 0,
                submit: SimTime::from_secs(0),
                cpus,
                runtime: SimDuration::from_secs(run),
                estimate: SimDuration::from_secs(run),
            },
            SimTime::from_secs(wait),
        )
    }

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
        assert!(gini(&[5.0, 5.0, 5.0, 5.0]).abs() < 1e-12, "equal → 0");
        // One holder of everything among n → (n−1)/n.
        let g = gini(&[0.0, 0.0, 0.0, 100.0]);
        assert!((g - 0.75).abs() < 1e-12, "{g}");
    }

    #[test]
    fn gini_is_scale_invariant_and_monotone() {
        let a = gini(&[1.0, 2.0, 3.0]);
        let b = gini(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
        assert!(gini(&[1.0, 1.0, 10.0]) > gini(&[1.0, 2.0, 3.0]));
    }

    #[test]
    fn jain_extremes() {
        assert_eq!(jain(&[]), 1.0);
        assert!((jain(&[3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
        let j = jain(&[0.0, 0.0, 0.0, 9.0]);
        assert!((j - 0.25).abs() < 1e-12, "{j}");
    }

    #[test]
    fn per_user_aggregation() {
        let jobs = vec![
            completed(1, 10, 100, 50),
            completed(1, 2, 0, 100),
            completed(2, 4, 10, 10),
        ];
        let per = per_user(&jobs);
        assert_eq!(per.len(), 2);
        let u1 = per[&1];
        assert_eq!(u1.jobs, 2);
        assert!((u1.cpu_seconds - (10.0 * 50.0 + 2.0 * 100.0)).abs() < 1e-9);
        assert!((u1.total_wait - 100.0).abs() < 1e-9);
    }

    #[test]
    fn interstitial_jobs_excluded() {
        let mut ij = completed(7, 32, 0, 100);
        ij.job.class = JobClass::Interstitial;
        let per = per_user(&[ij]);
        assert!(per.is_empty());
    }

    #[test]
    fn service_gini_detects_concentration() {
        let even = vec![
            completed(1, 10, 0, 100),
            completed(2, 10, 0, 100),
            completed(3, 10, 0, 100),
        ];
        let skewed = vec![
            completed(1, 100, 0, 1_000),
            completed(2, 1, 0, 10),
            completed(3, 1, 0, 10),
        ];
        assert!(service_gini(&even) < 0.01);
        assert!(service_gini(&skewed) > 0.5);
    }

    #[test]
    fn wait_jain_flags_uneven_pain() {
        let even = vec![completed(1, 1, 100, 10), completed(2, 1, 100, 10)];
        assert!((wait_jain(&even) - 1.0).abs() < 1e-12);
        let uneven = vec![completed(1, 1, 0, 10), completed(2, 1, 10_000, 10)];
        assert!(wait_jain(&uneven) < 0.6);
    }
}
