//! Resilience accounting for faulted runs.
//!
//! A fault-injected simulation produces three things the fault-free
//! analysis has no vocabulary for: CPU·seconds *wasted* on executions a
//! node crash threw away, jobs that had to be requeued or retried, and
//! stretches of the run where the machine was operating below nameplate
//! capacity. [`ResilienceReport`] folds a completed-job log, the run's
//! [`FaultStats`] and the [`FaultModel`] itself into one structure:
//!
//! * **Goodput vs waste** — delivered CPU·seconds against CPU·seconds the
//!   faults destroyed (work lost between a victim's start and its kill;
//!   retried executions lose everything, there is no mid-job checkpoint
//!   surviving a node crash).
//! * **Recovery traffic** — requeue/retry/give-up counts straight from the
//!   driver's ledger.
//! * **Survival vs runtime** — per-execution completion probability in
//!   log₂ runtime buckets. Long jobs expose more surface to the failure
//!   process; this is the curve that shows it.
//! * **Degraded-capacity windows** — how long the machine ran below
//!   nameplate and how many CPU·seconds of capacity the failed nodes took
//!   with them, from the fault model's own step profile.

use machine::{FaultModel, FaultStats};
use simkit::time::SimTime;
use workload::CompletedJob;

use crate::tables::Table;

/// Per-execution survival in one log₂ runtime bucket.
///
/// An *execution* is one attempt to run a job to completion: every
/// completed job contributes a success to its runtime's bucket, and every
/// fault kill contributes a failure. A retried job that eventually
/// finishes therefore shows up on both sides — the estimate is "given an
/// execution of this length started, what fraction ran to completion",
/// which is what the trace actually witnesses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SurvivalBucket {
    /// Inclusive lower runtime bound, seconds (`2^k`, or 0 for the first).
    pub lo_s: u64,
    /// Exclusive upper runtime bound, seconds (`2^(k+1)`).
    pub hi_s: u64,
    /// Executions in this bucket that ran to completion.
    pub completed: u64,
    /// Executions in this bucket a node failure destroyed.
    pub killed: u64,
}

impl SurvivalBucket {
    /// Completion probability of an execution in this bucket.
    pub fn survival(&self) -> f64 {
        let n = self.completed + self.killed;
        if n == 0 {
            return 1.0;
        }
        self.completed as f64 / n as f64
    }
}

/// Time the machine spent below nameplate capacity, from the fault
/// model's step profile over `[0, horizon)`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DegradedCapacity {
    /// Seconds with at least one node down.
    pub degraded_s: u64,
    /// Fraction of the horizon spent degraded.
    pub degraded_fraction: f64,
    /// CPU·seconds of capacity lost to failed nodes over the horizon.
    pub lost_cpu_s: f64,
    /// Time-weighted mean CPUs in service.
    pub mean_available_cpus: f64,
}

/// The resilience panel for one faulted run.
#[derive(Clone, Debug)]
pub struct ResilienceReport {
    /// Nameplate machine size.
    pub total_cpus: u32,
    /// Horizon the profile and fractions are measured over, seconds.
    pub horizon_s: u64,
    /// CPU·seconds delivered to jobs that completed.
    pub goodput_cpu_s: f64,
    /// CPU·seconds destroyed by fault kills.
    pub wasted_cpu_s: f64,
    /// The interstitial-class subset of `wasted_cpu_s` — the figure the
    /// recovery policies actually move (native requeue waste is identical
    /// across policies and dominates the combined number).
    pub interstitial_wasted_cpu_s: f64,
    /// CPU·seconds of evicted progress the recovery policy carried across
    /// a resume instead of discarding (zero under kill-restart).
    pub salvaged_cpu_s: f64,
    /// CPU·seconds past the last checkpoint that evicted-but-retried jobs
    /// will execute twice (zero under kill-restart and suspend-resume).
    pub reexecuted_cpu_s: f64,
    /// CPU·seconds spent writing checkpoints (zero unless `ckpt=I`).
    pub checkpoint_overhead_cpu_s: f64,
    /// Checkpoints interstitial jobs completed.
    pub checkpoints_taken: u64,
    /// Evicted interstitial jobs that restarted with credited progress.
    pub interstitial_resumes: u64,
    /// Node failure events.
    pub node_failures: u64,
    /// Node repair events.
    pub node_repairs: u64,
    /// Native victims requeued at the head of the queue.
    pub native_requeues: u64,
    /// Interstitial retries scheduled under the backoff policy.
    pub interstitial_retries: u64,
    /// Interstitial victims abandoned (retry budget or horizon exhausted).
    pub interstitial_given_up: u64,
    /// Survival-vs-runtime curve; empty buckets are omitted.
    pub survival: Vec<SurvivalBucket>,
    /// Below-nameplate operation summary.
    pub degraded: DegradedCapacity,
}

/// Index of the log₂ bucket holding `runtime_s` (`0` and `1` share
/// bucket 0).
fn bucket_index(runtime_s: u64) -> u32 {
    if runtime_s <= 1 {
        return 0;
    }
    63 - runtime_s.leading_zeros()
}

fn bucket_bounds(idx: u32) -> (u64, u64) {
    if idx == 0 {
        return (0, 2);
    }
    (1 << idx, 1 << (idx + 1))
}

impl ResilienceReport {
    /// Fold a run's artifacts into the report. `completed` is the full job
    /// log (native and interstitial); `horizon` bounds the degraded-window
    /// integrals and should be the simulation horizon the model was
    /// synthesized for.
    pub fn from_run(
        completed: &[CompletedJob],
        stats: &FaultStats,
        model: &FaultModel,
        total_cpus: u32,
        horizon: SimTime,
    ) -> Self {
        let goodput_cpu_s: f64 = completed
            .iter()
            .map(|c| f64::from(c.job.cpus) * c.job.runtime.as_secs_f64())
            .sum();

        // Survival curve: completions and kills bucketed by the runtime of
        // the execution (for kills, the runtime the attempt *would* have
        // had — recorded on the KilledJob).
        let max_bucket = bucket_index(horizon.as_secs().max(2)) as usize;
        let mut completed_by = vec![0u64; max_bucket + 1];
        let mut killed_by = vec![0u64; max_bucket + 1];
        for c in completed {
            let idx = (bucket_index(c.job.runtime.as_secs()) as usize).min(max_bucket);
            completed_by[idx] += 1;
        }
        for k in &stats.kills {
            let idx = (bucket_index(k.runtime_s) as usize).min(max_bucket);
            killed_by[idx] += 1;
        }
        let survival = (0..=max_bucket)
            .filter(|&i| completed_by[i] + killed_by[i] > 0)
            .map(|i| {
                let (lo_s, hi_s) = bucket_bounds(i as u32);
                SurvivalBucket {
                    lo_s,
                    hi_s,
                    completed: completed_by[i],
                    killed: killed_by[i],
                }
            })
            .collect();

        // Degraded-capacity integrals over the step profile. The profile
        // starts at t = 0 and each segment runs to the next edge (or the
        // horizon).
        let profile = model.capacity_profile(total_cpus, horizon);
        let horizon_s = horizon.as_secs();
        let mut degraded_s = 0u64;
        let mut lost_cpu_s = 0f64;
        for (i, &(start, avail)) in profile.iter().enumerate() {
            let end = profile
                .get(i + 1)
                .map(|&(t, _)| t)
                .unwrap_or(horizon)
                .min(horizon);
            let dur = end.as_secs().saturating_sub(start.as_secs());
            if avail < total_cpus {
                degraded_s += dur;
                lost_cpu_s += f64::from(total_cpus - avail) * dur as f64;
            }
        }
        let degraded = DegradedCapacity {
            degraded_s,
            degraded_fraction: if horizon_s > 0 {
                degraded_s as f64 / horizon_s as f64
            } else {
                0.0
            },
            lost_cpu_s,
            mean_available_cpus: if horizon_s > 0 {
                f64::from(total_cpus) - lost_cpu_s / horizon_s as f64
            } else {
                f64::from(total_cpus)
            },
        };

        ResilienceReport {
            total_cpus,
            horizon_s,
            goodput_cpu_s,
            wasted_cpu_s: stats.fault_wasted_cpu_seconds,
            interstitial_wasted_cpu_s: stats.interstitial_wasted_cpu_seconds,
            salvaged_cpu_s: stats.salvaged_cpu_seconds,
            reexecuted_cpu_s: stats.reexecuted_cpu_seconds,
            checkpoint_overhead_cpu_s: stats.checkpoint_overhead_cpu_seconds,
            checkpoints_taken: stats.checkpoints_taken,
            interstitial_resumes: stats.interstitial_resumes,
            node_failures: stats.node_failures,
            node_repairs: stats.node_repairs,
            native_requeues: stats.native_requeues,
            interstitial_retries: stats.interstitial_retries,
            interstitial_given_up: stats.interstitial_given_up,
            survival,
            degraded,
        }
    }

    /// Fraction of all consumed CPU·seconds the faults destroyed.
    /// Checkpoint overhead counts as consumption, not waste — it bought
    /// the salvage.
    pub fn waste_fraction(&self) -> f64 {
        let consumed = self.goodput_cpu_s + self.wasted_cpu_s + self.checkpoint_overhead_cpu_s;
        if consumed <= 0.0 {
            return 0.0;
        }
        self.wasted_cpu_s / consumed
    }

    /// Of the eviction-interrupted CPU·seconds, the fraction the recovery
    /// policy carried forward: 0 under kill-restart (everything redone),
    /// 1 under suspend-resume when every victim resumed.
    pub fn salvage_fraction(&self) -> f64 {
        let interrupted = self.salvaged_cpu_s + self.wasted_cpu_s;
        if interrupted <= 0.0 {
            return 0.0;
        }
        self.salvaged_cpu_s / interrupted
    }

    /// Render the scalar panel as a two-column table.
    pub fn table(&self) -> Table {
        let mut t = Table::new("Resilience", &["metric", "value"]);
        let f = |v: f64| format!("{v:.1}");
        t.row(&["goodput CPU·s".into(), f(self.goodput_cpu_s)]);
        t.row(&["wasted CPU·s".into(), f(self.wasted_cpu_s)]);
        t.row(&[
            "interstitial wasted CPU·s".into(),
            f(self.interstitial_wasted_cpu_s),
        ]);
        t.row(&[
            "waste fraction".into(),
            format!("{:.4}", self.waste_fraction()),
        ]);
        t.row(&["salvaged CPU·s".into(), f(self.salvaged_cpu_s)]);
        t.row(&["re-executed CPU·s".into(), f(self.reexecuted_cpu_s)]);
        t.row(&[
            "salvage fraction".into(),
            format!("{:.4}", self.salvage_fraction()),
        ]);
        t.row(&[
            "checkpoint overhead CPU·s".into(),
            f(self.checkpoint_overhead_cpu_s),
        ]);
        t.row(&[
            "checkpoints taken".into(),
            self.checkpoints_taken.to_string(),
        ]);
        t.row(&[
            "interstitial resumes".into(),
            self.interstitial_resumes.to_string(),
        ]);
        t.row(&["node failures".into(), self.node_failures.to_string()]);
        t.row(&["node repairs".into(), self.node_repairs.to_string()]);
        t.row(&["native requeues".into(), self.native_requeues.to_string()]);
        t.row(&[
            "interstitial retries".into(),
            self.interstitial_retries.to_string(),
        ]);
        t.row(&[
            "interstitial given up".into(),
            self.interstitial_given_up.to_string(),
        ]);
        t.row(&[
            "degraded seconds".into(),
            self.degraded.degraded_s.to_string(),
        ]);
        t.row(&[
            "degraded fraction".into(),
            format!("{:.4}", self.degraded.degraded_fraction),
        ]);
        t.row(&["lost capacity CPU·s".into(), f(self.degraded.lost_cpu_s)]);
        t.row(&[
            "mean CPUs in service".into(),
            format!("{:.1}", self.degraded.mean_available_cpus),
        ]);
        t
    }

    /// Render the survival curve as a table (one row per populated
    /// bucket).
    pub fn survival_table(&self) -> Table {
        let mut t = Table::new(
            "Execution survival vs runtime",
            &["runtime [s)", "completed", "killed", "survival"],
        );
        for b in &self.survival {
            t.row(&[
                format!("{}–{}", b.lo_s, b.hi_s),
                b.completed.to_string(),
                b.killed.to_string(),
                format!("{:.3}", b.survival()),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::{FaultSpec, KilledJob};
    use simkit::time::SimDuration;
    use workload::{Job, JobClass};

    fn done(id: u64, cpus: u32, runtime_s: u64, start_s: u64) -> CompletedJob {
        CompletedJob::new(
            Job {
                id,
                class: JobClass::Native,
                user: 0,
                group: 0,
                submit: SimTime::ZERO,
                cpus,
                runtime: SimDuration::from_secs(runtime_s),
                estimate: SimDuration::from_secs(runtime_s),
            },
            SimTime::from_secs(start_s),
        )
    }

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_bounds(0), (0, 2));
        assert_eq!(bucket_bounds(3), (8, 16));
    }

    #[test]
    fn goodput_waste_and_survival_from_a_tiny_run() {
        let completed = vec![done(1, 10, 100, 0), done(2, 4, 100, 0), done(3, 2, 5000, 0)];
        let stats = FaultStats {
            node_failures: 1,
            node_repairs: 1,
            native_requeues: 1,
            fault_wasted_cpu_seconds: 600.0,
            kills: vec![KilledJob {
                job: 1,
                cpus: 10,
                runtime_s: 100,
                interstitial: false,
            }],
            ..FaultStats::default()
        };
        let model = FaultModel::none();
        let r =
            ResilienceReport::from_run(&completed, &stats, &model, 64, SimTime::from_secs(10_000));
        assert!((r.goodput_cpu_s - (1_000.0 + 400.0 + 10_000.0)).abs() < 1e-9);
        assert!((r.wasted_cpu_s - 600.0).abs() < 1e-9);
        assert!((r.waste_fraction() - 600.0 / 12_000.0).abs() < 1e-9);
        // Runtime 100 lands in [64, 128): 2 completions + 1 kill there.
        let b100 = r
            .survival
            .iter()
            .find(|b| b.lo_s == 64)
            .expect("bucket for runtime 100");
        assert_eq!((b100.completed, b100.killed), (2, 1));
        assert!((b100.survival() - 2.0 / 3.0).abs() < 1e-9);
        // Runtime 5000 lands in [4096, 8192), untouched by faults.
        let b5k = r.survival.iter().find(|b| b.lo_s == 4_096).unwrap();
        assert!((b5k.survival() - 1.0).abs() < 1e-12);
        assert_eq!(r.degraded.degraded_s, 0);
        assert_eq!(r.degraded.lost_cpu_s, 0.0);
        assert_eq!(r.degraded.mean_available_cpus, 64.0);
    }

    #[test]
    fn salvage_decomposition_rides_the_stats() {
        let stats = FaultStats {
            fault_wasted_cpu_seconds: 300.0,
            interstitial_wasted_cpu_seconds: 180.0,
            salvaged_cpu_seconds: 900.0,
            reexecuted_cpu_seconds: 300.0,
            checkpoint_overhead_cpu_seconds: 50.0,
            checkpoints_taken: 5,
            interstitial_resumes: 3,
            ..FaultStats::default()
        };
        let r = ResilienceReport::from_run(
            &[],
            &stats,
            &FaultModel::none(),
            64,
            SimTime::from_secs(1_000),
        );
        assert!((r.interstitial_wasted_cpu_s - 180.0).abs() < 1e-12);
        assert!((r.salvaged_cpu_s - 900.0).abs() < 1e-12);
        assert!((r.reexecuted_cpu_s - 300.0).abs() < 1e-12);
        assert!((r.checkpoint_overhead_cpu_s - 50.0).abs() < 1e-12);
        assert_eq!(r.checkpoints_taken, 5);
        assert_eq!(r.interstitial_resumes, 3);
        // 900 of 1200 interrupted CPU·s carried forward.
        assert!((r.salvage_fraction() - 0.75).abs() < 1e-9);
        // Overhead is consumption, not waste: 300 / (300 + 50).
        assert!((r.waste_fraction() - 300.0 / 350.0).abs() < 1e-9);
        let text = r.table().to_text();
        assert!(text.contains("interstitial wasted CPU·s"), "{text}");
        assert!(text.contains("salvaged CPU·s"), "{text}");
        assert!(text.contains("checkpoints taken"), "{text}");
    }

    #[test]
    fn degraded_windows_integrate_the_capacity_profile() {
        // 4 nodes × 16 CPUs, one synthesized failure pattern: integrals
        // must agree with a brute-force scan of available_cpus().
        let spec = FaultSpec::parse("mtbf=5000,mttr=1000,nodes=4,seed=9").unwrap();
        let horizon = SimTime::from_secs(50_000);
        let model = FaultModel::synthesize(&spec, 64, horizon);
        let r = ResilienceReport::from_run(&[], &FaultStats::default(), &model, 64, horizon);
        let mut brute_degraded = 0u64;
        let mut brute_lost = 0f64;
        for s in 0..horizon.as_secs() {
            let avail = model.available_cpus(SimTime::from_secs(s), 64);
            if avail < 64 {
                brute_degraded += 1;
                brute_lost += f64::from(64 - avail);
            }
        }
        assert_eq!(r.degraded.degraded_s, brute_degraded);
        assert!((r.degraded.lost_cpu_s - brute_lost).abs() < 1e-6);
        assert!(r.degraded.degraded_s > 0, "spec must produce failures");
        assert!(r.degraded.degraded_fraction > 0.0 && r.degraded.degraded_fraction < 1.0);
        assert!(r.degraded.mean_available_cpus < 64.0);
    }

    #[test]
    fn empty_run_reports_are_well_defined() {
        let r = ResilienceReport::from_run(
            &[],
            &FaultStats::default(),
            &FaultModel::none(),
            64,
            SimTime::ZERO,
        );
        assert_eq!(r.waste_fraction(), 0.0);
        assert!(r.survival.is_empty());
        assert_eq!(r.degraded.mean_available_cpus, 64.0);
        assert!(!r.table().is_empty());
        assert!(r.survival_table().is_empty());
    }
}
