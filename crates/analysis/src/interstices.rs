//! Interstice (gap) structure of a free-capacity profile.
//!
//! The paper's §1 intuition — "it is easy to see why large and/or long jobs
//! cannot fit in the interstices of the utilization" — becomes measurable
//! here: given a free-capacity [`StepFunction`], compute how much
//! CPU·time is harvestable by a job of a given width and length, and the
//! marginal distribution of gap widths over time.

use simkit::series::StepFunction;
use simkit::time::{SimDuration, SimTime};

/// How much of the profile's total free CPU·time a `(cpus, dur)` job shape
/// can actually harvest: at every instant the usable capacity is
/// `floor(free/cpus) × cpus`, further restricted to runs of at least `dur`
/// contiguous seconds. Returns `(harvestable, total_free)` CPU·seconds.
///
/// This is the exact "breakage in space × breakage in time" integral the
/// §4.2 approximations estimate in expectation.
pub fn harvestable_cpu_seconds(profile: &StepFunction, cpus: u32, dur: SimDuration) -> (f64, f64) {
    let total: f64 = profile
        .iter_segments()
        .map(|(a, b, v)| v.max(0) as f64 * (b - a).as_secs_f64())
        .sum();
    if cpus == 0 {
        return (0.0, total);
    }
    // Quantize capacity to whole job-widths (space breakage)…
    let width = i64::from(cpus);
    let mut harvest = 0.0;
    // …then drop runs shorter than `dur` at each occupancy level (time
    // breakage). Scan per level: number of levels = free range / cpus; for
    // supercomputer profiles this is at most a few hundred.
    let max_lanes = profile
        .iter_segments()
        .map(|(_, _, v)| (v.max(0) / width) as u32)
        .max()
        .unwrap_or(0);
    for lane in 1..=max_lanes {
        let need = width * i64::from(lane);
        // Accumulate contiguous stretches where `lane` full widths fit.
        let mut run_start: Option<SimTime> = None;
        let mut prev_end = SimTime::ZERO;
        for (a, b, v) in profile.iter_segments() {
            if v >= need {
                if run_start.is_none() {
                    run_start = Some(a);
                }
                prev_end = b;
            } else {
                if let Some(s) = run_start.take() {
                    let span = prev_end - s;
                    if span >= dur {
                        harvest += width as f64 * span.as_secs_f64();
                    }
                }
            }
        }
        if let Some(s) = run_start {
            let span = prev_end - s;
            if span >= dur {
                harvest += width as f64 * span.as_secs_f64();
            }
        }
    }
    (harvest, total)
}

/// Fraction of the free capacity harvestable by a `(cpus, dur)` shape.
pub fn harvestable_fraction(profile: &StepFunction, cpus: u32, dur: SimDuration) -> f64 {
    let (h, t) = harvestable_cpu_seconds(profile, cpus, dur);
    if t == 0.0 {
        0.0
    } else {
        h / t
    }
}

/// Time-weighted distribution of free-CPU counts: how many seconds the
/// profile spends with free capacity in each of the given bucket upper
/// bounds (ascending; values above the last bound land in an implicit
/// overflow bucket). Returns seconds per bucket (len = bounds.len() + 1).
pub fn free_capacity_histogram(profile: &StepFunction, bounds: &[u32]) -> Vec<f64> {
    debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
    let mut out = vec![0.0; bounds.len() + 1];
    for (a, b, v) in profile.iter_segments() {
        let free = v.max(0) as u32;
        let idx = bounds.partition_point(|&bound| bound < free);
        out[idx] += (b - a).as_secs_f64();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn flat_profile_is_fully_harvestable_by_divisor_widths() {
        let f = StepFunction::constant(t(1_000), 90);
        // 1-CPU jobs of any length ≤ 1000 s: everything.
        let (h, total) = harvestable_cpu_seconds(&f, 1, d(100));
        assert_eq!(total, 90_000.0);
        assert_eq!(h, 90_000.0);
        // 30-CPU jobs: 3 lanes fit exactly → still everything.
        assert_eq!(harvestable_fraction(&f, 30, d(100)), 1.0);
    }

    #[test]
    fn space_breakage_shows_up() {
        let f = StepFunction::constant(t(1_000), 90);
        // 32-CPU jobs: 2 lanes = 64 of 90 CPUs usable → 64/90.
        let frac = harvestable_fraction(&f, 32, d(10));
        assert!((frac - 64.0 / 90.0).abs() < 1e-9);
        // 100-CPU jobs: none.
        assert_eq!(harvestable_fraction(&f, 100, d(10)), 0.0);
    }

    #[test]
    fn time_breakage_shows_up() {
        // 10 CPUs free except a dip to 0 in the middle: two 400 s windows.
        let mut f = StepFunction::constant(t(1_000), 10);
        f.range_add(t(400), t(600), -10);
        // Jobs of 400 s fit both windows: 2 × 400 × 10 = 8000 of 8000.
        assert_eq!(harvestable_fraction(&f, 10, d(400)), 1.0);
        // Jobs of 401 s fit neither.
        assert_eq!(harvestable_fraction(&f, 10, d(401)), 0.0);
        // 1-CPU jobs of 401 s: same verdict (time breakage is width-blind
        // here since the dip hits every lane).
        assert_eq!(harvestable_fraction(&f, 1, d(401)), 0.0);
    }

    #[test]
    fn lane_accounting_at_varying_capacity() {
        // Capacity 20 on [0,500), 35 on [500,1000). 10-CPU jobs, 100 s.
        let mut f = StepFunction::constant(t(1_000), 20);
        f.range_add(t(500), t(1_000), 15);
        let (h, total) = harvestable_cpu_seconds(&f, 10, d(100));
        assert_eq!(total, 20.0 * 500.0 + 35.0 * 500.0);
        // Lanes 1,2 run the whole 1000 s; lane 3 runs 500 s (500..1000).
        let want = 10.0 * 1_000.0 * 2.0 + 10.0 * 500.0;
        assert_eq!(h, want);
    }

    #[test]
    fn short_runs_are_dropped_per_lane() {
        // Lane 3 exists only for 50 s — too short for a 100 s job; lanes
        // 1–2 run throughout.
        let mut f = StepFunction::constant(t(1_000), 20);
        f.range_add(t(100), t(150), 15); // 35 free on [100,150)
        let (h, _) = harvestable_cpu_seconds(&f, 10, d(100));
        assert_eq!(h, 10.0 * 1_000.0 * 2.0);
    }

    #[test]
    fn histogram_buckets_time_by_free_cpus() {
        let mut f = StepFunction::constant(t(1_000), 5);
        f.range_add(t(0), t(300), 95); // 100 free on [0,300)
        f.range_add(t(300), t(600), 27); // 32 free on [300,600)
                                         // Buckets: ≤10, ≤50, >50.
        let h = free_capacity_histogram(&f, &[10, 50]);
        assert_eq!(h.len(), 3);
        assert_eq!(h[0], 400.0, "5 free on [600,1000)");
        assert_eq!(h[1], 300.0, "32 free on [300,600)");
        assert_eq!(h[2], 300.0, "100 free on [0,300)");
    }

    #[test]
    fn negative_segments_count_as_zero_free() {
        let mut f = StepFunction::constant(t(100), 5);
        f.range_add(t(0), t(50), -10); // -5 on [0,50)
        let (h, total) = harvestable_cpu_seconds(&f, 1, d(10));
        assert_eq!(total, 5.0 * 50.0);
        assert_eq!(h, 250.0);
        let hist = free_capacity_histogram(&f, &[0]);
        assert_eq!(hist[0], 50.0, "zero-free time");
    }
}
