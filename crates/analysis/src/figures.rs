//! Figure series and ASCII plots.
//!
//! Each figure regenerator produces (a) the numeric series as CSV for real
//! plotting and (b) a terminal-friendly ASCII rendering so the shape is
//! visible straight from `cargo run`.

use simkit::series::BinnedSeries;
use simkit::stats::{Ecdf, Log10Histogram};
use simkit::time::{SimDuration, SimTime};
use workload::CompletedJob;

/// Hourly (or other `bin`-width) utilization trace over `[0, horizon)` —
/// Figure 4's series. `include` filters by class: `(native, interstitial)`.
pub fn utilization_series(
    completed: &[CompletedJob],
    total_cpus: u32,
    horizon: SimTime,
    bin: SimDuration,
    include_native: bool,
    include_interstitial: bool,
) -> Vec<f64> {
    let mut s = BinnedSeries::new(horizon, bin);
    for c in completed {
        let inter = c.job.class.is_interstitial();
        if (inter && !include_interstitial) || (!inter && !include_native) {
            continue;
        }
        s.add_span(c.start, c.finish, c.job.cpus as f64);
    }
    s.normalized(total_cpus as f64)
}

/// Log₁₀-decade wait histogram over a class-filtered job set (Figures 5–6):
/// decades `[10⁰,10¹) … [10⁵,10⁶)` seconds.
pub fn wait_histogram<'a>(jobs: impl Iterator<Item = &'a CompletedJob>) -> Log10Histogram {
    let mut h = Log10Histogram::new(0, 6);
    for c in jobs {
        h.push(c.wait().as_secs_f64());
    }
    h
}

/// Survival curve `P(makespan > x)` of project makespans (hours) on an even
/// grid — Figure 3's y-axis ("CDF > Makespan").
pub fn survival_curve(makespans_hours: &[f64], points: usize) -> Vec<(f64, f64)> {
    if makespans_hours.is_empty() {
        return Vec::new();
    }
    let e = Ecdf::new(makespans_hours.to_vec());
    e.curve(points)
        .into_iter()
        .map(|(x, f)| (x, 1.0 - f))
        .collect()
}

/// Render a numeric series as a block-character ASCII chart with `height`
/// rows. Values are clamped to `[0, max]` where `max` is the series maximum
/// (or 1.0 for utilization-like series when `unit_scale`).
pub fn ascii_chart(values: &[f64], height: usize, unit_scale: bool) -> String {
    if values.is_empty() || height == 0 {
        return String::new();
    }
    let max = if unit_scale {
        1.0
    } else {
        values.iter().cloned().fold(f64::MIN_POSITIVE, f64::max)
    };
    let mut out = String::new();
    for level in (0..height).rev() {
        let lo = level as f64 / height as f64 * max;
        let label = if level == height - 1 {
            format!("{max:6.2} |")
        } else if level == 0 {
            format!("{:6.2} |", 0.0)
        } else {
            "       |".to_string()
        };
        out.push_str(&label);
        for &v in values {
            out.push(if v > lo { '█' } else { ' ' });
        }
        out.push('\n');
    }
    out.push_str("       +");
    out.push_str(&"-".repeat(values.len()));
    out.push('\n');
    out
}

/// Render labelled probability bars (Figures 5–6 style).
pub fn ascii_bars(labels: &[String], probs: &[f64], width: usize) -> String {
    assert_eq!(labels.len(), probs.len());
    let label_w = labels.iter().map(|l| l.chars().count()).max().unwrap_or(0);
    let mut out = String::new();
    for (l, &p) in labels.iter().zip(probs) {
        let bar = (p * width as f64).round() as usize;
        out.push_str(&format!(
            "{l:label_w$} {p:6.3} {}\n",
            "#".repeat(bar.min(width))
        ));
    }
    out
}

/// Downsample a long series by averaging into at most `max_points` buckets —
/// keeps ASCII charts terminal-width.
pub fn downsample(values: &[f64], max_points: usize) -> Vec<f64> {
    if values.len() <= max_points || max_points == 0 {
        return values.to_vec();
    }
    let chunk = values.len().div_ceil(max_points);
    values
        .chunks(chunk)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

/// Emit `(x, y)` pairs as a two-column CSV with headers.
pub fn xy_csv(points: &[(f64, f64)], x_name: &str, y_name: &str) -> String {
    let mut out = format!("{x_name},{y_name}\n");
    for (x, y) in points {
        out.push_str(&format!("{x},{y}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{Job, JobClass};

    fn completed(class: JobClass, cpus: u32, start: u64, run: u64, wait: u64) -> CompletedJob {
        CompletedJob::new(
            Job {
                id: start * 1000 + run,
                class,
                user: 0,
                group: 0,
                submit: SimTime::from_secs(start - wait.min(start)),
                cpus,
                runtime: SimDuration::from_secs(run),
                estimate: SimDuration::from_secs(run),
            },
            SimTime::from_secs(start),
        )
    }

    #[test]
    fn utilization_series_filters_classes() {
        let jobs = vec![
            completed(JobClass::Native, 5, 0, 3_600, 0),
            completed(JobClass::Interstitial, 5, 3_600, 3_600, 0),
        ];
        let horizon = SimTime::from_secs(7_200);
        let bin = SimDuration::from_hours(1);
        let native = utilization_series(&jobs, 10, horizon, bin, true, false);
        assert_eq!(native, vec![0.5, 0.0]);
        let both = utilization_series(&jobs, 10, horizon, bin, true, true);
        assert_eq!(both, vec![0.5, 0.5]);
    }

    #[test]
    fn wait_histogram_decades() {
        let jobs = [
            completed(JobClass::Native, 1, 100, 10, 0), // wait 0 → bin 0
            completed(JobClass::Native, 1, 100, 10, 50), // wait 50 → bin [1,2)
            completed(JobClass::Native, 1, 100_000, 10, 50_000), // bin [4,5)
        ];
        let h = wait_histogram(jobs.iter());
        assert_eq!(h.total(), 3);
        let p = h.probabilities();
        assert!((p[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((p[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((p[4] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn survival_curve_decreases_from_one() {
        let ms = vec![10.0, 20.0, 30.0, 40.0];
        let c = survival_curve(&ms, 5);
        assert_eq!(c.len(), 5);
        assert!(c.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!((c[0].1 - 0.75).abs() < 1e-9, "P(>10) = 0.75");
        assert!((c.last().unwrap().1 - 0.0).abs() < 1e-9);
        assert!(survival_curve(&[], 5).is_empty());
    }

    #[test]
    fn ascii_chart_shape() {
        let chart = ascii_chart(&[0.2, 0.9, 0.5], 4, true);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 5);
        // Top row: only the 0.9 column is filled.
        assert!(lines[0].contains('█'));
        assert_eq!(lines[0].matches('█').count(), 1);
        // Bottom data row: all three filled.
        assert_eq!(lines[3].matches('█').count(), 3);
        assert!(lines[4].starts_with("       +---"));
        assert_eq!(ascii_chart(&[], 4, true), "");
    }

    #[test]
    fn ascii_bars_render() {
        let bars = ascii_bars(&["[0,1)".into(), "[1,2)".into()], &[0.5, 0.25], 20);
        let lines: Vec<&str> = bars.lines().collect();
        assert_eq!(lines[0].matches('#').count(), 10);
        assert_eq!(lines[1].matches('#').count(), 5);
    }

    #[test]
    fn downsample_averages() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = downsample(&v, 10);
        assert_eq!(d.len(), 10);
        assert!((d[0] - 4.5).abs() < 1e-12);
        assert!((d[9] - 94.5).abs() < 1e-12);
        // No-op when short enough.
        assert_eq!(downsample(&v, 200), v);
    }

    #[test]
    fn xy_csv_format() {
        let csv = xy_csv(&[(1.0, 2.0), (3.0, 4.5)], "x", "y");
        assert_eq!(csv, "x,y\n1,2\n3,4.5\n");
    }
}
