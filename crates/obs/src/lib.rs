//! # obs — observability for the interstitial simulator
//!
//! The paper's claims are all *measurements* (utilization interstices,
//! wait-time deltas, makespan distributions), so the simulation stack needs
//! a measurement substrate of its own. This crate provides three
//! independent, individually switchable instruments, bundled in [`Obs`]:
//!
//! * [`trace::TraceSink`] — a structured event log: every job submit /
//!   start / finish / preemption / outage event, tagged with sim-time and
//!   the scheduling-cycle id, serialized as deterministic JSONL. Zero-cost
//!   when disabled: `record` is a single predictable branch and the event
//!   buffer never allocates.
//! * [`metrics::MetricsRegistry`] — counters, gauges and log₂ histograms
//!   keyed by `&'static str`. BTreeMap-backed so snapshots iterate in a
//!   fixed order (simlint R1) and the emitted JSON is byte-stable across
//!   runs — the property the golden-trace regression suite anchors on.
//! * [`profile::PhaseProfiler`] — wall-clock spans for the simulator's hot
//!   phases (schedule-cycle, backfill, free-profile, event-pump). The only
//!   place outside the bench harness allowed to read the wall clock
//!   (audited simlint R2 exception): span durations are reported, never fed
//!   back into simulation behaviour.
//!
//! [`report::RunReport`] snapshots all three into one machine-readable JSON
//! document per run. The golden suite compares only the deterministic
//! sections (trace + metrics); wall-clock phase timings are excluded from
//! golden comparisons by construction ([`report::RunReport::to_json_deterministic`]).

#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod probe;
pub mod profile;
pub mod report;
pub mod trace;

pub use event::{EventKind, PreemptKind, StartKind, TraceEvent};
pub use metrics::MetricsRegistry;
pub use profile::PhaseProfiler;
pub use report::RunReport;
pub use trace::TraceSink;

/// The full observability bundle threaded through a simulation run.
///
/// Each instrument is independently enabled; [`Obs::disabled`] (the
/// default) turns the whole bundle into cheap no-ops, which is what every
/// hot path that does not ask for observability pays.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    /// Structured event log.
    pub trace: TraceSink,
    /// Counters / gauges / histograms.
    pub metrics: MetricsRegistry,
    /// Wall-clock phase spans.
    pub profiler: PhaseProfiler,
}

impl Obs {
    /// Everything off — the zero-cost default.
    pub fn disabled() -> Self {
        Obs::default()
    }

    /// Everything on: tracing, metrics and phase profiling.
    pub fn enabled() -> Self {
        Obs {
            trace: TraceSink::enabled(),
            metrics: MetricsRegistry::enabled(),
            profiler: PhaseProfiler::enabled(),
        }
    }

    /// Selectively enable instruments.
    pub fn with(trace: bool, metrics: bool, profile: bool) -> Self {
        Obs {
            trace: if trace {
                TraceSink::enabled()
            } else {
                TraceSink::disabled()
            },
            metrics: if metrics {
                MetricsRegistry::enabled()
            } else {
                MetricsRegistry::disabled()
            },
            profiler: if profile {
                PhaseProfiler::enabled()
            } else {
                PhaseProfiler::disabled()
            },
        }
    }

    /// True when at least one instrument is collecting.
    pub fn is_active(&self) -> bool {
        self.trace.is_enabled() || self.metrics.is_enabled() || self.profiler.is_enabled()
    }

    /// Snapshot the metrics registry and phase profile into a [`RunReport`].
    pub fn run_report(&self) -> RunReport {
        RunReport::new(self.metrics.snapshot(), self.profiler.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_bundle_is_inert() {
        let mut o = Obs::disabled();
        assert!(!o.is_active());
        o.metrics.inc("x", 1);
        o.trace
            .record(simkit::time::SimTime::ZERO, EventKind::Outage { up: true });
        assert_eq!(o.trace.recorded(), 0);
        assert_eq!(o.trace.heap_allocations(), 0);
        assert!(o.run_report().metrics.counters.is_empty());
    }

    #[test]
    fn selective_enablement() {
        let o = Obs::with(true, false, false);
        assert!(o.trace.is_enabled());
        assert!(!o.metrics.is_enabled());
        assert!(!o.profiler.is_enabled());
        assert!(o.is_active());
    }
}
