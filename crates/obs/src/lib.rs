//! # obs — observability for the interstitial simulator
//!
//! The paper's claims are all *measurements* (utilization interstices,
//! wait-time deltas, makespan distributions), so the simulation stack needs
//! a measurement substrate of its own. This crate provides three
//! independent, individually switchable instruments, bundled in [`Obs`]:
//!
//! * [`trace::TraceSink`] — a structured event log: every job submit /
//!   start / finish / preemption / outage event, tagged with sim-time and
//!   the scheduling-cycle id, serialized as deterministic JSONL. Zero-cost
//!   when disabled: `record` is a single predictable branch and the event
//!   buffer never allocates.
//! * [`metrics::MetricsRegistry`] — counters, gauges and log₂ histograms
//!   keyed by `&'static str`. BTreeMap-backed so snapshots iterate in a
//!   fixed order (simlint R1) and the emitted JSON is byte-stable across
//!   runs — the property the golden-trace regression suite anchors on.
//! * [`profile::PhaseProfiler`] — wall-clock spans for the simulator's hot
//!   phases (schedule-cycle, backfill, free-profile, event-pump). The only
//!   place outside the bench harness allowed to read the wall clock
//!   (audited simlint R2 exception): span durations are reported, never fed
//!   back into simulation behaviour.
//!
//! [`report::RunReport`] snapshots all three into one machine-readable JSON
//! document per run. The golden suite compares only the deterministic
//! sections (trace + metrics); wall-clock phase timings are excluded from
//! golden comparisons by construction ([`report::RunReport::to_json_deterministic`]).

#![warn(missing_docs)]

pub mod alloc;
pub mod event;
pub mod json;
pub mod metrics;
pub mod p2;
pub mod perf;
pub mod probe;
pub mod profile;
pub mod recorder;
pub mod report;
pub mod telemetry;
pub mod trace;
pub mod work;

pub use alloc::AllocCounters;
pub use event::{EventKind, PreemptKind, StartKind, TraceEvent};
pub use metrics::MetricsRegistry;
pub use p2::{Quantiles, P2};
pub use perf::{PerfBaseline, PerfComparison, ScenarioPerf};
pub use profile::PhaseProfiler;
pub use recorder::CycleRecorder;
pub use report::RunReport;
pub use telemetry::{SloSpec, SloWatchdog, TelemetryBus, TelemetryDump};
pub use trace::TraceSink;
pub use work::WorkCounters;

/// The full observability bundle threaded through a simulation run.
///
/// Each instrument is independently enabled; [`Obs::disabled`] (the
/// default) turns the whole bundle into cheap no-ops, which is what every
/// hot path that does not ask for observability pays.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    /// Structured event log.
    pub trace: TraceSink,
    /// Counters / gauges / histograms.
    pub metrics: MetricsRegistry,
    /// Wall-clock phase spans.
    pub profiler: PhaseProfiler,
    /// Deterministic work counters (never written to the trace stream).
    pub work: WorkCounters,
    /// Per-cycle flight recorder. Opt-in only (`--record-cycles`): not
    /// switched on by [`Obs::enabled`], since a bounded ring per run is
    /// still real memory traffic the default paths should not pay.
    pub recorder: CycleRecorder,
    /// Allocator tallies for the run window, filled in by the driver at
    /// end of run. All zero unless the `alloc-count` feature is on.
    pub mem: AllocCounters,
    /// Fixed-cadence in-sim time series. Opt-in only (`--telemetry`): not
    /// switched on by [`Obs::enabled`], since per-tick sampling is real
    /// work the default observed paths should not pay — the same contract
    /// as the flight recorder.
    pub telemetry: TelemetryBus,
}

impl Obs {
    /// Everything off — the zero-cost default.
    pub fn disabled() -> Self {
        Obs::default()
    }

    /// Everything on except the flight recorder: tracing, metrics, phase
    /// profiling and work counters. Cycle recording stays opt-in via the
    /// [`Obs::recorder`] field.
    pub fn enabled() -> Self {
        Obs {
            trace: TraceSink::enabled(),
            metrics: MetricsRegistry::enabled(),
            profiler: PhaseProfiler::enabled(),
            work: WorkCounters::enabled(),
            ..Obs::disabled()
        }
    }

    /// Selectively enable instruments. Work counters follow `metrics`: they
    /// are counter-like data and share its cost profile (integer adds).
    pub fn with(trace: bool, metrics: bool, profile: bool) -> Self {
        Obs {
            trace: if trace {
                TraceSink::enabled()
            } else {
                TraceSink::disabled()
            },
            metrics: if metrics {
                MetricsRegistry::enabled()
            } else {
                MetricsRegistry::disabled()
            },
            profiler: if profile {
                PhaseProfiler::enabled()
            } else {
                PhaseProfiler::disabled()
            },
            work: if metrics {
                WorkCounters::enabled()
            } else {
                WorkCounters::disabled()
            },
            ..Obs::disabled()
        }
    }

    /// Work counters only: what the bench harness runs with, so timed
    /// replays pay for integer adds but no tracing or metrics maps.
    pub fn counting() -> Self {
        Obs {
            work: WorkCounters::enabled(),
            ..Obs::disabled()
        }
    }

    /// True when at least one instrument is collecting.
    pub fn is_active(&self) -> bool {
        self.trace.is_enabled()
            || self.metrics.is_enabled()
            || self.profiler.is_enabled()
            || self.work.is_enabled()
            || self.recorder.is_enabled()
            || self.telemetry.is_enabled()
    }

    /// Snapshot the metrics registry, phase profile, work counters and
    /// allocator tallies into a [`RunReport`].
    pub fn run_report(&self) -> RunReport {
        RunReport::new(
            self.metrics.snapshot(),
            self.profiler.snapshot(),
            self.work,
            self.mem,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_bundle_is_inert() {
        let mut o = Obs::disabled();
        assert!(!o.is_active());
        o.metrics.inc("x", 1);
        o.trace
            .record(simkit::time::SimTime::ZERO, EventKind::Outage { up: true });
        assert_eq!(o.trace.recorded(), 0);
        assert_eq!(o.trace.heap_allocations(), 0);
        assert!(o.run_report().metrics.counters.is_empty());
    }

    #[test]
    fn selective_enablement() {
        let o = Obs::with(true, false, false);
        assert!(o.trace.is_enabled());
        assert!(!o.metrics.is_enabled());
        assert!(!o.profiler.is_enabled());
        assert!(
            !o.work.is_enabled(),
            "work counters follow the metrics switch"
        );
        assert!(o.is_active());
        let o = Obs::with(false, true, false);
        assert!(o.work.is_enabled());
    }

    #[test]
    fn counting_bundle_collects_only_work() {
        let mut o = Obs::counting();
        assert!(o.is_active());
        assert!(!o.trace.is_enabled());
        assert!(!o.metrics.is_enabled());
        assert!(!o.profiler.is_enabled());
        o.work.record_engine(3, 4, 2);
        assert_eq!(o.run_report().work.events_popped, 3);
        assert_eq!(o.trace.heap_allocations(), 0);
    }
}
