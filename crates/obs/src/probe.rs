//! Adapter between [`simkit::engine::run_probed`] and an [`Obs`] bundle.
//!
//! Counts processed events into the metrics registry and stamps the final
//! [`RunStats`] as gauges, so any model driven through the generic engine
//! loop gets event-pump accounting for free.

use crate::telemetry::ENGINE_SIGNALS;
use crate::Obs;
use simkit::engine::{Probe, RunStats, StopReason};
use simkit::time::SimTime;

/// Borrows an [`Obs`] bundle for the duration of one engine run.
#[derive(Debug)]
pub struct ObsProbe<'a> {
    /// The observed bundle; counters land in its metrics registry.
    pub obs: &'a mut Obs,
    /// Events handled since the last telemetry tick (the `d_engine_events`
    /// signal when the bundle carries an engine-signal telemetry bus).
    engine_events_delta: u64,
}

impl<'a> ObsProbe<'a> {
    /// Wrap `obs` for a single [`simkit::engine::run_probed`] call.
    pub fn new(obs: &'a mut Obs) -> Self {
        ObsProbe {
            obs,
            engine_events_delta: 0,
        }
    }
}

/// Stable tag for a stop reason, usable as a metrics suffix.
pub fn stop_reason_tag(reason: StopReason) -> &'static str {
    match reason {
        StopReason::Drained => "drained",
        StopReason::Horizon => "horizon",
        StopReason::StepBudget => "step_budget",
    }
}

impl Probe for ObsProbe<'_> {
    #[inline]
    fn on_event(&mut self, _now: SimTime) {
        self.obs.metrics.inc("engine.events", 1);
        self.engine_events_delta += 1;
    }

    fn on_advance(&mut self, now: SimTime, queue_depth: usize) {
        // Fixed-cadence engine telemetry: only when the bundle's bus was
        // configured with the engine signal set (the core driver samples
        // its richer signal set from its own loop, not through here).
        while let Some(t) = self.obs.telemetry.pending_tick(now) {
            if self.obs.telemetry.signals() != ENGINE_SIGNALS {
                return;
            }
            self.obs
                .telemetry
                .record_tick(t, &[self.engine_events_delta, queue_depth as u64]);
            self.engine_events_delta = 0;
        }
    }

    fn on_stop(&mut self, stats: &RunStats) {
        self.obs
            .work
            .record_engine(stats.steps, stats.events_scheduled, stats.peak_queue_depth);
        let m = &mut self.obs.metrics;
        m.gauge_set(
            "engine.end_time_s",
            i64::try_from(stats.end_time.as_secs()).unwrap_or(i64::MAX),
        );
        m.gauge_set(
            "engine.steps",
            i64::try_from(stats.steps).unwrap_or(i64::MAX),
        );
        match stats.reason {
            StopReason::Drained => m.inc("engine.stop.drained", 1),
            StopReason::Horizon => m.inc("engine.stop.horizon", 1),
            StopReason::StepBudget => m.inc("engine.stop.step_budget", 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::engine::{run_probed, Simulation};
    use simkit::event::EventQueue;
    use simkit::time::SimDuration;

    struct Ticker {
        remaining: u32,
    }

    impl Simulation for Ticker {
        type Event = ();
        fn handle<Q: simkit::FutureEventList<()>>(&mut self, now: SimTime, _: (), queue: &mut Q) {
            if self.remaining > 0 {
                self.remaining -= 1;
                queue.schedule(now + SimDuration::from_secs(10), ());
            }
        }
    }

    #[test]
    fn probe_counts_engine_events() {
        let mut obs = Obs::enabled();
        let mut sim = Ticker { remaining: 4 };
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        let stats = run_probed(
            &mut sim,
            &mut q,
            SimTime::MAX,
            1_000,
            &mut ObsProbe::new(&mut obs),
        );
        assert_eq!(stats.steps, 5);
        assert_eq!(obs.metrics.counter("engine.events"), 5);
        assert_eq!(obs.metrics.counter("engine.stop.drained"), 1);
        assert_eq!(obs.metrics.snapshot().gauges["engine.steps"], 5);
        assert_eq!(obs.work.events_popped, 5);
        assert_eq!(obs.work.events_scheduled, 5, "1 seed + 4 reschedules");
        assert_eq!(obs.work.heap_peak_depth, 1);
    }

    #[test]
    fn disabled_obs_collects_nothing_through_probe() {
        let mut obs = Obs::disabled();
        let mut sim = Ticker { remaining: 2 };
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        run_probed(
            &mut sim,
            &mut q,
            SimTime::MAX,
            100,
            &mut ObsProbe::new(&mut obs),
        );
        assert_eq!(obs.metrics.counter("engine.events"), 0);
        assert!(obs.run_report().metrics.counters.is_empty());
    }

    #[test]
    fn engine_loop_feeds_a_telemetry_bus_on_cadence() {
        let mut obs = Obs::enabled();
        obs.telemetry = crate::TelemetryBus::enabled(20, ENGINE_SIGNALS);
        let mut sim = Ticker { remaining: 6 };
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        // Events fire at t = 0,10,…,60: ticks land at 0,20,40,60.
        run_probed(
            &mut sim,
            &mut q,
            SimTime::MAX,
            1_000,
            &mut ObsProbe::new(&mut obs),
        );
        assert_eq!(obs.telemetry.ticks(), &[0, 20, 40, 60]);
        let deltas = obs.telemetry.values("d_engine_events").unwrap();
        assert_eq!(deltas.iter().sum::<u64>(), 7, "every event attributed");
        // A bus with a foreign signal set is left alone by the probe.
        let mut obs = Obs::enabled();
        obs.telemetry = crate::TelemetryBus::enabled(20, &["something_else"]);
        let mut sim = Ticker { remaining: 3 };
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        run_probed(
            &mut sim,
            &mut q,
            SimTime::MAX,
            1_000,
            &mut ObsProbe::new(&mut obs),
        );
        assert!(obs.telemetry.is_empty());
    }

    #[test]
    fn stop_reason_tags_are_stable() {
        assert_eq!(stop_reason_tag(StopReason::Drained), "drained");
        assert_eq!(stop_reason_tag(StopReason::Horizon), "horizon");
        assert_eq!(stop_reason_tag(StopReason::StepBudget), "step_budget");
    }
}
