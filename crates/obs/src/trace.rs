//! Structured event log with a zero-cost disabled path.
//!
//! [`TraceSink::record`] is the hot call, invoked from the driver's event
//! handlers and scheduling cycle. When the sink is disabled it is one
//! predictable branch and returns without touching memory — the driver can
//! keep the calls inline unconditionally. When enabled, events accumulate
//! in order into a `Vec` and serialize to deterministic JSONL via
//! [`TraceSink::to_jsonl`], led by a one-line `{"schema":…}` header that
//! versions the encoding (see `crates/obs/SCHEMA.md`).

use crate::event::{EventKind, TraceEvent};
use crate::json;
use simkit::time::SimTime;

/// Baseline version of the JSONL trace encoding: the original event
/// alphabet (submit/start/finish/preempt/outage). Traces containing only
/// these events stamp this version, keeping fault-free traces bit-for-bit
/// stable across the v2 extension.
pub const SCHEMA_VERSION: u64 = 1;

/// Version stamped when a trace contains fault/retry events
/// (`node_down`/`node_up`/`job_failed`/`job_requeued`). Readers (tracekit)
/// accept both versions; see `crates/obs/SCHEMA.md`.
pub const SCHEMA_VERSION_FAULTS: u64 = 2;

/// Version stamped when a trace contains recovery-policy events
/// (`job_checkpointed`/`job_suspended`/`job_resumed`). Only the checkpoint
/// and suspend-resume policies emit these, so kill-restart runs keep
/// stamping schema 1 or 2 bit-for-bit; see `crates/obs/SCHEMA.md`.
pub const SCHEMA_VERSION_RECOVERY: u64 = 3;

/// Version stamped when a trace contains SLO watchdog annotations
/// (`slo_breach`/`slo_clear`). Only runs with `--slo` rules loaded can
/// emit these, so untracked runs — telemetry sampling included — keep
/// their smaller stamp bit-for-bit; see `crates/obs/SCHEMA.md`.
pub const SCHEMA_VERSION_TELEMETRY: u64 = 4;

/// An append-only, cycle-stamped event log.
#[derive(Clone, Debug, Default)]
pub struct TraceSink {
    enabled: bool,
    events: Vec<TraceEvent>,
    cycle: u64,
    heap_allocations: u64,
    /// Machine identity stamped on the header line (name, total CPUs).
    machine: Option<(&'static str, u32)>,
}

impl TraceSink {
    /// A sink that records nothing (the default).
    pub fn disabled() -> Self {
        TraceSink::default()
    }

    /// A sink that records every event.
    pub fn enabled() -> Self {
        TraceSink {
            enabled: true,
            ..TraceSink::default()
        }
    }

    /// Whether [`record`](TraceSink::record) stores anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Stamp the machine identity onto the header line. No-op (and no
    /// state change) when the sink is disabled, preserving the zero-cost
    /// contract.
    pub fn set_machine(&mut self, name: &'static str, cpus: u32) {
        if self.enabled {
            self.machine = Some((name, cpus));
        }
    }

    /// The machine identity the header will carry, if stamped.
    pub fn machine(&self) -> Option<(&'static str, u32)> {
        self.machine
    }

    /// Mark the start of the next scheduling cycle; subsequent records are
    /// stamped with the new cycle id.
    #[inline]
    pub fn advance_cycle(&mut self) {
        if self.enabled {
            self.cycle += 1;
        }
    }

    /// The cycle id that the next record would be stamped with.
    #[inline]
    pub fn current_cycle(&self) -> u64 {
        self.cycle
    }

    /// Record one event at instant `t`. No-op (and no allocation) when the
    /// sink is disabled.
    #[inline]
    pub fn record(&mut self, t: SimTime, kind: EventKind) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.events.capacity() {
            self.heap_allocations += 1;
        }
        self.events.push(TraceEvent {
            t,
            cycle: self.cycle,
            kind,
        });
    }

    /// The schema version the header will stamp: the maximum any recorded
    /// event requires. Fault-free traces stay schema 1 bit-for-bit.
    pub fn schema_version(&self) -> u64 {
        self.events
            .iter()
            .map(|e| e.kind.schema_version())
            .max()
            .unwrap_or(SCHEMA_VERSION)
    }

    /// Number of events recorded so far.
    pub fn recorded(&self) -> u64 {
        self.events.len() as u64
    }

    /// Number of times the event buffer had to grow. Stays 0 forever when
    /// the sink is disabled — the property the driver test asserts.
    pub fn heap_allocations(&self) -> u64 {
        self.heap_allocations
    }

    /// The recorded events, in record order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Serialize the whole log as JSONL: a `{"schema":…}` header line, then
    /// one event per line with a trailing newline after the last. A
    /// disabled sink serializes to the empty string (no header).
    pub fn to_jsonl(&self) -> String {
        if !self.enabled {
            return String::new();
        }
        // Rough per-line budget keeps reallocation out of serialization.
        let mut out = String::with_capacity(self.events.len() * 96 + 64);
        out.push('{');
        let first = json::push_u64_field(&mut out, true, "schema", self.schema_version());
        if let Some((name, cpus)) = self.machine {
            let first = json::push_str_field(&mut out, first, "machine", name);
            let _ = json::push_u64_field(&mut out, first, "cpus", u64::from(cpus));
        }
        out.push_str("}\n");
        for ev in &self.events {
            ev.write_jsonl(&mut out);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StartKind;

    #[test]
    fn disabled_records_nothing_and_never_allocates() {
        let mut sink = TraceSink::disabled();
        for i in 0..10_000 {
            sink.record(
                SimTime::from_secs(i),
                EventKind::Start {
                    job: i,
                    cpus: 1,
                    kind: StartKind::InOrder,
                },
            );
        }
        assert_eq!(sink.recorded(), 0);
        assert_eq!(sink.heap_allocations(), 0);
        assert_eq!(sink.to_jsonl(), "");
    }

    #[test]
    fn cycle_stamping() {
        let mut sink = TraceSink::enabled();
        sink.record(SimTime::ZERO, EventKind::Outage { up: false });
        sink.advance_cycle();
        sink.advance_cycle();
        sink.record(SimTime::from_secs(5), EventKind::Outage { up: true });
        let evs = sink.events();
        assert_eq!(evs[0].cycle, 0);
        assert_eq!(evs[1].cycle, 2);
        assert_eq!(sink.current_cycle(), 2);
    }

    #[test]
    fn jsonl_has_header_plus_one_line_per_event() {
        let mut sink = TraceSink::enabled();
        for i in 0..5 {
            sink.record(SimTime::from_secs(i), EventKind::Outage { up: i % 2 == 0 });
        }
        let text = sink.to_jsonl();
        assert_eq!(text.lines().count(), 6, "schema header + 5 events");
        assert_eq!(text.lines().next(), Some("{\"schema\":1}"));
        assert!(text.ends_with('\n'));
        assert!(
            sink.heap_allocations() > 0,
            "growth from empty buffer counts"
        );
    }

    #[test]
    fn header_carries_machine_identity_when_stamped() {
        let mut sink = TraceSink::enabled();
        sink.set_machine("Ross", 1436);
        assert_eq!(sink.machine(), Some(("Ross", 1436)));
        let text = sink.to_jsonl();
        assert_eq!(
            text.lines().next(),
            Some("{\"schema\":1,\"machine\":\"Ross\",\"cpus\":1436}")
        );
        // Disabled sinks ignore the stamp and stay header-free.
        let mut off = TraceSink::disabled();
        off.set_machine("Ross", 1436);
        assert_eq!(off.machine(), None);
        assert_eq!(off.to_jsonl(), "");
    }

    #[test]
    fn header_upgrades_to_v2_only_when_fault_events_present() {
        let mut sink = TraceSink::enabled();
        sink.record(SimTime::ZERO, EventKind::Outage { up: false });
        assert_eq!(sink.schema_version(), SCHEMA_VERSION);
        assert_eq!(sink.to_jsonl().lines().next(), Some("{\"schema\":1}"));
        sink.record(
            SimTime::from_secs(10),
            EventKind::NodeDown { node: 2, cpus: 8 },
        );
        assert_eq!(sink.schema_version(), SCHEMA_VERSION_FAULTS);
        assert_eq!(sink.to_jsonl().lines().next(), Some("{\"schema\":2}"));
    }
}
