//! Structured event log with a zero-cost disabled path.
//!
//! [`TraceSink::record`] is the hot call, invoked from the driver's event
//! handlers and scheduling cycle. When the sink is disabled it is one
//! predictable branch and returns without touching memory — the driver can
//! keep the calls inline unconditionally. When enabled, events accumulate
//! in order into a `Vec` and serialize to deterministic JSONL via
//! [`TraceSink::to_jsonl`].

use crate::event::{EventKind, TraceEvent};
use simkit::time::SimTime;

/// An append-only, cycle-stamped event log.
#[derive(Clone, Debug, Default)]
pub struct TraceSink {
    enabled: bool,
    events: Vec<TraceEvent>,
    cycle: u64,
    heap_allocations: u64,
}

impl TraceSink {
    /// A sink that records nothing (the default).
    pub fn disabled() -> Self {
        TraceSink::default()
    }

    /// A sink that records every event.
    pub fn enabled() -> Self {
        TraceSink {
            enabled: true,
            ..TraceSink::default()
        }
    }

    /// Whether [`record`](TraceSink::record) stores anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Mark the start of the next scheduling cycle; subsequent records are
    /// stamped with the new cycle id.
    #[inline]
    pub fn advance_cycle(&mut self) {
        if self.enabled {
            self.cycle += 1;
        }
    }

    /// The cycle id that the next record would be stamped with.
    #[inline]
    pub fn current_cycle(&self) -> u64 {
        self.cycle
    }

    /// Record one event at instant `t`. No-op (and no allocation) when the
    /// sink is disabled.
    #[inline]
    pub fn record(&mut self, t: SimTime, kind: EventKind) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.events.capacity() {
            self.heap_allocations += 1;
        }
        self.events.push(TraceEvent {
            t,
            cycle: self.cycle,
            kind,
        });
    }

    /// Number of events recorded so far.
    pub fn recorded(&self) -> u64 {
        self.events.len() as u64
    }

    /// Number of times the event buffer had to grow. Stays 0 forever when
    /// the sink is disabled — the property the driver test asserts.
    pub fn heap_allocations(&self) -> u64 {
        self.heap_allocations
    }

    /// The recorded events, in record order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Serialize the whole log as JSONL (one event per line, trailing
    /// newline after the last line, empty string when nothing recorded).
    pub fn to_jsonl(&self) -> String {
        // Rough per-line budget keeps reallocation out of serialization.
        let mut out = String::with_capacity(self.events.len() * 96);
        for ev in &self.events {
            ev.write_jsonl(&mut out);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StartKind;

    #[test]
    fn disabled_records_nothing_and_never_allocates() {
        let mut sink = TraceSink::disabled();
        for i in 0..10_000 {
            sink.record(
                SimTime::from_secs(i),
                EventKind::Start {
                    job: i,
                    cpus: 1,
                    kind: StartKind::InOrder,
                },
            );
        }
        assert_eq!(sink.recorded(), 0);
        assert_eq!(sink.heap_allocations(), 0);
        assert_eq!(sink.to_jsonl(), "");
    }

    #[test]
    fn cycle_stamping() {
        let mut sink = TraceSink::enabled();
        sink.record(SimTime::ZERO, EventKind::Outage { up: false });
        sink.advance_cycle();
        sink.advance_cycle();
        sink.record(SimTime::from_secs(5), EventKind::Outage { up: true });
        let evs = sink.events();
        assert_eq!(evs[0].cycle, 0);
        assert_eq!(evs[1].cycle, 2);
        assert_eq!(sink.current_cycle(), 2);
    }

    #[test]
    fn jsonl_has_one_line_per_event() {
        let mut sink = TraceSink::enabled();
        for i in 0..5 {
            sink.record(SimTime::from_secs(i), EventKind::Outage { up: i % 2 == 0 });
        }
        let text = sink.to_jsonl();
        assert_eq!(text.lines().count(), 5);
        assert!(text.ends_with('\n'));
        assert!(
            sink.heap_allocations() > 0,
            "growth from empty buffer counts"
        );
    }
}
