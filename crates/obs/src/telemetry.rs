//! Online telemetry bus: deterministic in-sim time series plus SLO rules.
//!
//! Every other instrument in this crate is end-of-run (counters, reports)
//! or per-event (the trace); nothing observes the simulation *as sim-time
//! advances*. [`TelemetryBus`] closes that gap: a fixed-cadence sampling
//! bus driven purely by the simulation clock. The driver (or an engine
//! probe) asks [`TelemetryBus::pending_tick`] whether a sample is due
//! before the event it is about to apply, snapshots its signal values, and
//! hands them to [`TelemetryBus::record_tick`]. Samples land in columnar
//! SoA storage — one `Vec<u64>` per signal sharing a single tick index —
//! so a run's worth of series exports as a handful of dense arrays.
//!
//! Determinism and cost follow the house rules:
//!
//! * **zero-cost when disabled** — [`TelemetryBus::pending_tick`] on a
//!   disabled bus is one predictable branch; nothing allocates, so the
//!   default simulation path pays nothing (the same contract as
//!   [`crate::trace::TraceSink`]).
//! * **sim-time-driven** — ticks are scheduled on the integer-second sim
//!   clock, never the wall clock; the same seed yields byte-identical
//!   exports.
//! * **bounded** — when a run outlives the point budget, the bus decimates
//!   deterministically: every other retained sample is dropped and the
//!   effective cadence doubles, so memory stays O(budget) while the series
//!   still spans the whole run.
//!
//! On top of the bus sit the SLO types: [`SloSpec::parse`] reads the
//! `--slo metric<=LIMIT,...` CLI grammar (the same `key=value` comma-list
//! discipline as `FaultSpec`), and [`SloWatchdog`] evaluates the rules
//! against each tick's values, reporting breach/clear *transitions* that
//! the driver records as schema-v4 trace events and bus annotations.
//!
//! The columnar JSONL export (`{"telemetry_schema":1}` header, one
//! `{"signal":…,"values":[…]}` line per series, one flat line per
//! annotation) has a strict reader, [`TelemetryDump::from_jsonl`]: unlike
//! the trace reader's corrupt-line recovery, telemetry files are always
//! machine-written, so any malformed line is a hard error.

use crate::json;
use simkit::time::SimTime;

/// Version stamped on the telemetry export header. Bump when the encoding
/// changes shape; the strict reader rejects anything newer.
pub const TELEMETRY_SCHEMA: u64 = 1;

/// Default sampling cadence, seconds of sim-time between ticks.
pub const DEFAULT_CADENCE_S: u64 = 300;

/// Default per-signal point budget before deterministic decimation.
pub const DEFAULT_POINT_BUDGET: usize = 2048;

/// Reserved name for the shared tick-index column in the export.
pub const TICK_SIGNAL: &str = "tick_s";

/// The signal set the core driver samples each cadence tick, in column
/// order. The driver owns the sampling code; the names live here so the
/// SLO metric table, the CLI reporter and the tests agree on one spelling.
pub const DRIVER_SIGNALS: &[&str] = &[
    "busy_native_cpus",
    "busy_inter_cpus",
    "free_cpus",
    "in_service_cpus",
    "util_permille",
    "queue_depth",
    "queued_cpu_s",
    "frag_permille",
    "running_jobs",
    "native_wait_p99_s",
    "d_events",
    "d_starts",
    "d_cands",
    "d_segs",
];

/// The reduced signal set [`crate::probe::ObsProbe`] samples when a model
/// is driven through the generic `simkit` engine loop rather than the core
/// driver: event-pump throughput and future-event-list depth.
pub const ENGINE_SIGNALS: &[&str] = &["d_engine_events", "queue_depth"];

/// `(user-facing key, signal column, fractional)` for every metric the
/// `--slo` grammar accepts. Fractional metrics take a decimal fraction in
/// `[0, 1]` as their limit and compare in permille.
const SLO_METRICS: &[(&str, &str, bool)] = &[
    ("native_p99_wait", "native_wait_p99_s", false),
    ("util", "util_permille", true),
    ("frag", "frag_permille", true),
    ("queue_depth", "queue_depth", false),
    ("queued_cpu_s", "queued_cpu_s", false),
    ("free_cpus", "free_cpus", false),
    ("running", "running_jobs", false),
];

/// Intern an SLO metric key parsed from text (e.g. by tracekit's line
/// parser) into its `&'static` spelling, or `None` for unknown metrics.
pub fn slo_metric_key(s: &str) -> Option<&'static str> {
    SLO_METRICS
        .iter()
        .find(|(key, _, _)| *key == s)
        .map(|(key, _, _)| *key)
}

/// The telemetry signal column an SLO metric key reads, or `None` for an
/// unknown key. The report dashboard uses this to place breach bands on
/// the chart of the signal the rule actually watched.
pub fn slo_metric_signal(key: &str) -> Option<&'static str> {
    SLO_METRICS
        .iter()
        .find(|(k, _, _)| *k == key)
        .map(|(_, signal, _)| *signal)
}

/// What kind of moment an annotation marks on the time axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnnotationKind {
    /// An SLO rule started failing at this tick.
    Breach,
    /// A previously breached SLO rule recovered at this tick.
    Clear,
    /// The whole machine went down (outage or fault overlay).
    MachineDown,
    /// The machine came back up.
    MachineUp,
}

impl AnnotationKind {
    /// Stable lowercase tag used in the JSONL encoding.
    pub fn tag(self) -> &'static str {
        match self {
            AnnotationKind::Breach => "breach",
            AnnotationKind::Clear => "clear",
            AnnotationKind::MachineDown => "machine_down",
            AnnotationKind::MachineUp => "machine_up",
        }
    }
}

/// One time-axis annotation: an SLO transition or a fault overlay marker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Annotation {
    /// Sim-time of the moment, integer seconds.
    pub t_s: u64,
    /// What the moment is.
    pub kind: AnnotationKind,
    /// The SLO metric key for breach/clear; `""` for fault overlays.
    pub label: &'static str,
    /// Observed value at the transition (0 for fault overlays).
    pub value: u64,
    /// The rule's limit (0 for fault overlays).
    pub limit: u64,
}

/// The fixed-cadence, sim-time-driven sampling bus.
#[derive(Clone, Debug, Default)]
pub struct TelemetryBus {
    enabled: bool,
    signals: &'static [&'static str],
    cadence_s: u64,
    effective_cadence_s: u64,
    next_tick_s: u64,
    budget: usize,
    decimations: u64,
    ticks: Vec<u64>,
    columns: Vec<Vec<u64>>,
    annotations: Vec<Annotation>,
    machine: Option<(&'static str, u32)>,
}

impl TelemetryBus {
    /// A bus that samples nothing (the default).
    pub fn disabled() -> Self {
        TelemetryBus::default()
    }

    /// A collecting bus sampling `signals` every `cadence_s` sim-seconds
    /// (clamped to at least 1), with the default point budget. The first
    /// tick lands at t=0.
    pub fn enabled(cadence_s: u64, signals: &'static [&'static str]) -> Self {
        let cadence_s = cadence_s.max(1);
        TelemetryBus {
            enabled: true,
            signals,
            cadence_s,
            effective_cadence_s: cadence_s,
            next_tick_s: 0,
            budget: DEFAULT_POINT_BUDGET,
            columns: vec![Vec::new(); signals.len()],
            ..TelemetryBus::default()
        }
    }

    /// Override the per-signal point budget (clamped to at least 2).
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget.max(2);
        self
    }

    /// Whether the bus is collecting.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Stamp the machine identity onto the export header. No-op when the
    /// bus is disabled, preserving the zero-cost contract.
    pub fn set_machine(&mut self, name: &'static str, cpus: u32) {
        if self.enabled {
            self.machine = Some((name, cpus));
        }
    }

    /// The signal set this bus was configured with (empty when disabled).
    pub fn signals(&self) -> &'static [&'static str] {
        self.signals
    }

    /// The configured cadence, seconds.
    pub fn cadence_s(&self) -> u64 {
        self.cadence_s
    }

    /// The current effective cadence: the configured cadence doubled once
    /// per decimation.
    pub fn effective_cadence_s(&self) -> u64 {
        self.effective_cadence_s
    }

    /// How many times the series has been decimated.
    pub fn decimations(&self) -> u64 {
        self.decimations
    }

    /// Number of retained sample points.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// True when no samples have been retained.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// The shared tick index, integer sim-seconds.
    pub fn ticks(&self) -> &[u64] {
        &self.ticks
    }

    /// The column for `signal`, or `None` for an unknown name.
    pub fn values(&self, signal: &str) -> Option<&[u64]> {
        let idx = self.signals.iter().position(|s| *s == signal)?;
        self.columns.get(idx).map(Vec::as_slice)
    }

    /// Recorded annotations, in record order.
    pub fn annotations(&self) -> &[Annotation] {
        &self.annotations
    }

    /// If a sample is due at or before `now`, the tick's sim-time. The
    /// caller samples its signals *before* applying the event at `now`, so
    /// a tick records the left-limit state at its instant — which is what
    /// keeps trace-time monotone when the watchdog stamps breach events at
    /// tick times. One predictable branch when disabled or not due.
    #[inline]
    pub fn pending_tick(&self, now: SimTime) -> Option<u64> {
        if self.enabled && self.next_tick_s <= now.as_secs() {
            Some(self.next_tick_s)
        } else {
            None
        }
    }

    /// Record the sample for the tick at `t_s` (as returned by
    /// [`TelemetryBus::pending_tick`]); `values` must be in signal order.
    /// Schedules the next tick one effective cadence later, decimating
    /// first when the point budget is full.
    pub fn record_tick(&mut self, t_s: u64, values: &[u64]) {
        if !self.enabled {
            return;
        }
        debug_assert_eq!(values.len(), self.signals.len(), "one value per signal");
        if self.ticks.len() == self.budget {
            self.decimate();
        }
        self.ticks.push(t_s);
        for (column, v) in self.columns.iter_mut().zip(values) {
            column.push(*v);
        }
        self.next_tick_s = t_s.saturating_add(self.effective_cadence_s);
    }

    /// Drop every odd-indexed sample and double the effective cadence.
    /// Deterministic: which points survive depends only on the record
    /// sequence, never on memory pressure or timing. The retained ticks
    /// are spaced one *new* cadence apart, so the next scheduled tick
    /// (`last kept + old cadence * 2`) stays on the coarsened grid.
    fn decimate(&mut self) {
        fn keep_even<T>(v: &mut Vec<T>) {
            let mut i = 0usize;
            v.retain(|_| {
                let keep = i.is_multiple_of(2);
                i += 1;
                keep
            });
        }
        keep_even(&mut self.ticks);
        for column in &mut self.columns {
            keep_even(column);
        }
        self.effective_cadence_s = self.effective_cadence_s.saturating_mul(2);
        self.decimations += 1;
    }

    /// Append one annotation (SLO transition or fault overlay marker).
    /// No-op when disabled.
    pub fn annotate(
        &mut self,
        t_s: u64,
        kind: AnnotationKind,
        label: &'static str,
        value: u64,
        limit: u64,
    ) {
        if self.enabled {
            self.annotations.push(Annotation {
                t_s,
                kind,
                label,
                value,
                limit,
            });
        }
    }

    /// Serialize the whole bus as columnar JSONL: a header line, the
    /// shared tick index as signal `tick_s`, one line per signal column,
    /// then one flat line per annotation. A disabled bus serializes to
    /// the empty string.
    pub fn to_jsonl(&self) -> String {
        if !self.enabled {
            return String::new();
        }
        // ~8 bytes per point per column plus slack for names/annotations.
        let mut out =
            String::with_capacity((self.signals.len() + 1) * (self.ticks.len() * 8 + 48) + 256);
        out.push('{');
        let first = json::push_u64_field(&mut out, true, "telemetry_schema", TELEMETRY_SCHEMA);
        let first = if let Some((name, cpus)) = self.machine {
            let first = json::push_str_field(&mut out, first, "machine", name);
            json::push_u64_field(&mut out, first, "cpus", u64::from(cpus))
        } else {
            first
        };
        let first = json::push_u64_field(&mut out, first, "cadence_s", self.cadence_s);
        let first = json::push_u64_field(
            &mut out,
            first,
            "effective_cadence_s",
            self.effective_cadence_s,
        );
        let first = json::push_u64_field(&mut out, first, "decimations", self.decimations);
        let first = json::push_u64_field(&mut out, first, "points", self.ticks.len() as u64);
        let first = json::push_u64_field(&mut out, first, "signals", self.signals.len() as u64);
        let _ = json::push_u64_field(
            &mut out,
            first,
            "annotations",
            self.annotations.len() as u64,
        );
        out.push_str("}\n");
        push_series_line(&mut out, TICK_SIGNAL, &self.ticks);
        for (name, column) in self.signals.iter().zip(&self.columns) {
            push_series_line(&mut out, name, column);
        }
        for a in &self.annotations {
            out.push('{');
            let first = json::push_u64_field(&mut out, true, "t", a.t_s);
            let first = json::push_str_field(&mut out, first, "ann", a.kind.tag());
            let first = json::push_str_field(&mut out, first, "label", a.label);
            let first = json::push_u64_field(&mut out, first, "value", a.value);
            let _ = json::push_u64_field(&mut out, first, "limit", a.limit);
            out.push_str("}\n");
        }
        out
    }
}

/// Append `{"signal":NAME,"values":[…]}` plus newline.
fn push_series_line(out: &mut String, name: &str, values: &[u64]) {
    out.push('{');
    let first = json::push_str_field(out, true, "signal", name);
    if !first {
        out.push(',');
    }
    json::push_key(out, "values");
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = std::fmt::Write::write_fmt(out, format_args!("{v}"));
    }
    out.push_str("]}\n");
}

/// One annotation as read back from an export (owned strings).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DumpAnnotation {
    /// Sim-time of the moment, integer seconds.
    pub t_s: u64,
    /// The annotation kind tag (`breach`, `clear`, `machine_down`, …).
    pub kind: String,
    /// The SLO metric key, or `""` for fault overlays.
    pub label: String,
    /// Observed value at the transition.
    pub value: u64,
    /// The rule's limit.
    pub limit: u64,
}

/// A telemetry export loaded back into memory by the strict reader.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetryDump {
    /// Header schema version.
    pub schema: u64,
    /// Machine identity from the header, when stamped.
    pub machine: Option<(String, u32)>,
    /// Configured cadence, seconds.
    pub cadence_s: u64,
    /// Effective cadence after decimation, seconds.
    pub effective_cadence_s: u64,
    /// Decimation rounds applied.
    pub decimations: u64,
    /// The shared tick index.
    pub ticks: Vec<u64>,
    /// `(signal name, column)` in file order, excluding `tick_s`.
    pub series: Vec<(String, Vec<u64>)>,
    /// Annotations in file order.
    pub annotations: Vec<DumpAnnotation>,
}

impl TelemetryDump {
    /// Parse a columnar telemetry export. Strict: telemetry files are
    /// machine-written, so a bad header, an unknown schema, a malformed
    /// line, or column lengths that disagree with the tick index are all
    /// hard errors (with 1-based line numbers).
    pub fn from_jsonl(text: &str) -> Result<TelemetryDump, String> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| "empty telemetry file (no header line)".to_string())?;
        let schema = field_u64(header, "telemetry_schema")
            .ok_or_else(|| format!("line 1: not a telemetry header: {header:?}"))?;
        if schema == 0 || schema > TELEMETRY_SCHEMA {
            return Err(format!(
                "line 1: unsupported telemetry schema {schema} (this reader handles 1-{TELEMETRY_SCHEMA})"
            ));
        }
        let expect = |key: &'static str| {
            field_u64(header, key).ok_or_else(|| format!("line 1: header missing {key:?}"))
        };
        let declared_points = expect("points")?;
        let declared_signals = expect("signals")?;
        let declared_annotations = expect("annotations")?;
        let machine = match (field_str(header, "machine"), field_u64(header, "cpus")) {
            (Some(name), Some(cpus)) => Some((
                name.to_string(),
                u32::try_from(cpus).map_err(|_| format!("line 1: cpus {cpus} out of range"))?,
            )),
            _ => None,
        };
        let mut dump = TelemetryDump {
            schema,
            machine,
            cadence_s: expect("cadence_s")?,
            effective_cadence_s: expect("effective_cadence_s")?,
            decimations: expect("decimations")?,
            ..TelemetryDump::default()
        };
        let mut saw_ticks = false;
        for (idx, line) in lines {
            let lineno = idx + 1;
            if line.trim().is_empty() {
                return Err(format!("line {lineno}: blank line in telemetry file"));
            }
            if let Some(name) = field_str(line, "signal") {
                let values = parse_values(line)
                    .map_err(|e| format!("line {lineno}: signal {name:?}: {e}"))?;
                if name == TICK_SIGNAL {
                    if saw_ticks {
                        return Err(format!("line {lineno}: duplicate {TICK_SIGNAL:?} column"));
                    }
                    saw_ticks = true;
                    dump.ticks = values;
                } else {
                    dump.series.push((name.to_string(), values));
                }
            } else if let Some(kind) = field_str(line, "ann") {
                let need = |key: &'static str| {
                    field_u64(line, key)
                        .ok_or_else(|| format!("line {lineno}: annotation missing {key:?}"))
                };
                dump.annotations.push(DumpAnnotation {
                    t_s: need("t")?,
                    kind: kind.to_string(),
                    label: field_str(line, "label")
                        .ok_or_else(|| format!("line {lineno}: annotation missing \"label\""))?
                        .to_string(),
                    value: need("value")?,
                    limit: need("limit")?,
                });
            } else {
                return Err(format!(
                    "line {lineno}: neither a signal column nor an annotation: {line:?}"
                ));
            }
        }
        if !saw_ticks {
            return Err(format!("missing the {TICK_SIGNAL:?} index column"));
        }
        if dump.ticks.len() as u64 != declared_points {
            return Err(format!(
                "header declares {declared_points} points but {TICK_SIGNAL:?} has {}",
                dump.ticks.len()
            ));
        }
        if dump.series.len() as u64 != declared_signals {
            return Err(format!(
                "header declares {declared_signals} signals but file carries {}",
                dump.series.len()
            ));
        }
        if dump.annotations.len() as u64 != declared_annotations {
            return Err(format!(
                "header declares {declared_annotations} annotations but file carries {}",
                dump.annotations.len()
            ));
        }
        for (name, column) in &dump.series {
            if column.len() != dump.ticks.len() {
                return Err(format!(
                    "signal {name:?} has {} points but {TICK_SIGNAL:?} has {}",
                    column.len(),
                    dump.ticks.len()
                ));
            }
        }
        Ok(dump)
    }

    /// The column for `signal`, or `None` for an unknown name.
    pub fn values(&self, signal: &str) -> Option<&[u64]> {
        self.series
            .iter()
            .find(|(name, _)| name == signal)
            .map(|(_, v)| v.as_slice())
    }
}

/// Find `"key":<digits>` in a machine-written JSON line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Find `"key":"<string>"` in a machine-written JSON line. The values we
/// read back (signal names, annotation tags, machine names) never contain
/// escapes, so a raw slice up to the closing quote is exact.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    rest.split('"').next()
}

/// Parse the `"values":[…]` array of a signal line.
fn parse_values(line: &str) -> Result<Vec<u64>, String> {
    let at = line
        .find("\"values\":[")
        .ok_or_else(|| "missing \"values\" array".to_string())?
        + "\"values\":[".len();
    let rest = &line[at..];
    let end = rest
        .find(']')
        .ok_or_else(|| "unterminated \"values\" array".to_string())?;
    let body = &rest[..end];
    if body.is_empty() {
        return Ok(Vec::new());
    }
    body.split(',')
        .map(|tok| {
            tok.parse::<u64>()
                .map_err(|_| format!("bad array element {tok:?}"))
        })
        .collect()
}

/// Comparison direction of one SLO rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloOp {
    /// The signal must stay at or below the limit (`<=`).
    Le,
    /// The signal must stay at or above the limit (`>=`).
    Ge,
}

impl SloOp {
    /// The operator's source spelling.
    pub fn tag(self) -> &'static str {
        match self {
            SloOp::Le => "<=",
            SloOp::Ge => ">=",
        }
    }
}

/// One parsed SLO rule: `metric OP limit`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SloRule {
    /// The user-facing metric key (`util`, `native_p99_wait`, …).
    pub key: &'static str,
    /// The telemetry signal column the rule reads.
    pub signal: &'static str,
    /// Comparison direction.
    pub op: SloOp,
    /// The limit, in the signal's units (permille for fractional metrics).
    pub limit: u64,
}

/// Parsed `--slo` specification: a comma list of rules.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SloSpec {
    /// The rules, in spec order. Rule indices in breach events refer to
    /// this order.
    pub rules: Vec<SloRule>,
}

impl SloSpec {
    /// Parse a comma list of `metric<=LIMIT` / `metric>=LIMIT` rules, e.g.
    /// `native_p99_wait<=3600,util>=0.85`. Fractional metrics (`util`,
    /// `frag`) take a decimal fraction in `[0, 1]` with up to three
    /// decimals, converted to permille; everything else takes an integer
    /// in the signal's natural unit (seconds, CPUs, jobs, CPU·s).
    pub fn parse(s: &str) -> Result<SloSpec, String> {
        let mut rules = Vec::new();
        for part in s.split(',').filter(|p| !p.is_empty()) {
            let (op, split_at) = if let Some(k) = part.find("<=") {
                (SloOp::Le, k)
            } else if let Some(k) = part.find(">=") {
                (SloOp::Ge, k)
            } else {
                return Err(format!(
                    "--slo: expected metric<=LIMIT or metric>=LIMIT, got {part:?}"
                ));
            };
            let key_raw = part[..split_at].trim();
            let value = part[split_at + 2..].trim();
            let Some(&(key, signal, fractional)) =
                SLO_METRICS.iter().find(|(k, _, _)| *k == key_raw)
            else {
                let known: Vec<&str> = SLO_METRICS.iter().map(|(k, _, _)| *k).collect();
                return Err(format!(
                    "--slo: unknown metric {key_raw:?} (use {})",
                    known.join(", ")
                ));
            };
            let limit = if fractional {
                parse_fraction_permille(value).ok_or_else(|| {
                    format!("--slo: {key} wants a fraction in [0,1], got {value:?}")
                })?
            } else {
                value
                    .parse::<u64>()
                    .map_err(|_| format!("--slo: {key} wants an integer, got {value:?}"))?
            };
            rules.push(SloRule {
                key,
                signal,
                op,
                limit,
            });
        }
        if rules.is_empty() {
            return Err("--slo: no rules given".to_string());
        }
        Ok(SloSpec { rules })
    }
}

/// Parse `0.85` / `1` / `0.9` as permille (850 / 1000 / 900) without float
/// arithmetic: integer part, then up to three decimal digits.
fn parse_fraction_permille(s: &str) -> Option<u64> {
    let (int_part, frac_part) = match s.split_once('.') {
        Some((i, f)) => (i, f),
        None => (s, ""),
    };
    let int: u64 = int_part.parse().ok()?;
    if frac_part.len() > 3 || frac_part.chars().any(|c| !c.is_ascii_digit()) {
        return None;
    }
    let frac: u64 = if frac_part.is_empty() {
        0
    } else {
        // Right-pad to exactly three digits: "9" -> 900, "85" -> 850.
        let padded: u64 = frac_part.parse().ok()?;
        padded * 10u64.pow(3 - frac_part.len() as u32)
    };
    let permille = int * 1000 + frac;
    (permille <= 1000).then_some(permille)
}

/// One breach or clear transition reported by the watchdog.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SloTransition {
    /// Index of the rule in the spec.
    pub rule: u32,
    /// The rule's user-facing metric key.
    pub metric: &'static str,
    /// The observed signal value at the transition tick.
    pub value: u64,
    /// The rule's limit.
    pub limit: u64,
    /// True for a breach, false for a clear.
    pub breached: bool,
}

/// Online SLO evaluator: holds per-rule breach state and reports only the
/// *transitions*, so an SLO that stays breached for a thousand ticks emits
/// one event, not a thousand.
#[derive(Clone, Debug, Default)]
pub struct SloWatchdog {
    /// `(rule, column index into the bus's signal order)`.
    rules: Vec<(SloRule, usize)>,
    breached: Vec<bool>,
}

impl SloWatchdog {
    /// A watchdog with no rules (never fires).
    pub fn none() -> Self {
        SloWatchdog::default()
    }

    /// Resolve each rule's signal against `signals` (the bus's column
    /// order). Errors if a rule names a signal the bus does not sample.
    pub fn new(spec: &SloSpec, signals: &'static [&'static str]) -> Result<Self, String> {
        let mut rules = Vec::with_capacity(spec.rules.len());
        for rule in &spec.rules {
            let idx = signals
                .iter()
                .position(|s| *s == rule.signal)
                .ok_or_else(|| {
                    format!(
                        "--slo: metric {} reads signal {:?}, which this bus does not sample",
                        rule.key, rule.signal
                    )
                })?;
            rules.push((*rule, idx));
        }
        let breached = vec![false; rules.len()];
        Ok(SloWatchdog { rules, breached })
    }

    /// True when no rules are loaded.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Evaluate every rule against one tick's `values` (in bus signal
    /// order) and return the breach/clear transitions, in rule order.
    pub fn evaluate(&mut self, values: &[u64]) -> Vec<SloTransition> {
        let mut out = Vec::new();
        for (i, (rule, column)) in self.rules.iter().enumerate() {
            let Some(&value) = values.get(*column) else {
                continue;
            };
            let ok = match rule.op {
                SloOp::Le => value <= rule.limit,
                SloOp::Ge => value >= rule.limit,
            };
            if self.breached[i] == ok {
                self.breached[i] = !ok;
                out.push(SloTransition {
                    rule: i as u32,
                    metric: rule.key,
                    value,
                    limit: rule.limit,
                    breached: !ok,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIGS: &[&str] = &["a", "b"];

    #[test]
    fn disabled_bus_is_inert_and_never_allocates() {
        let mut bus = TelemetryBus::disabled();
        assert!(!bus.is_enabled());
        assert_eq!(bus.pending_tick(SimTime::from_secs(1_000_000)), None);
        bus.record_tick(0, &[1, 2]);
        bus.annotate(0, AnnotationKind::Breach, "util", 1, 2);
        bus.set_machine("Ross", 1436);
        assert!(bus.is_empty());
        assert!(bus.annotations().is_empty());
        assert_eq!(bus.to_jsonl(), "");
    }

    #[test]
    fn cadence_ticks_fire_in_order() {
        let mut bus = TelemetryBus::enabled(60, SIGS);
        assert_eq!(bus.pending_tick(SimTime::ZERO), Some(0));
        bus.record_tick(0, &[1, 10]);
        assert_eq!(bus.pending_tick(SimTime::from_secs(59)), None);
        assert_eq!(bus.pending_tick(SimTime::from_secs(60)), Some(60));
        // An event far in the future flushes every elapsed tick one by one.
        bus.record_tick(60, &[2, 20]);
        assert_eq!(bus.pending_tick(SimTime::from_secs(200)), Some(120));
        bus.record_tick(120, &[3, 30]);
        assert_eq!(bus.pending_tick(SimTime::from_secs(200)), Some(180));
        bus.record_tick(180, &[4, 40]);
        assert_eq!(bus.pending_tick(SimTime::from_secs(200)), None);
        assert_eq!(bus.ticks(), &[0, 60, 120, 180]);
        assert_eq!(bus.values("a"), Some(&[1, 2, 3, 4][..]));
        assert_eq!(bus.values("b"), Some(&[10, 20, 30, 40][..]));
        assert_eq!(bus.values("nope"), None);
    }

    #[test]
    fn decimation_keeps_even_points_and_doubles_cadence() {
        let mut bus = TelemetryBus::enabled(10, SIGS).with_budget(4);
        let mut t = 0;
        for i in 0..4u64 {
            bus.record_tick(t, &[i, i * 2]);
            t += bus.effective_cadence_s();
        }
        assert_eq!(bus.ticks(), &[0, 10, 20, 30]);
        // The 5th point triggers decimation first: {0,20} survive, cadence
        // doubles to 20, and the new point lands at 40 — on the new grid.
        assert_eq!(bus.pending_tick(SimTime::from_secs(40)), Some(40));
        bus.record_tick(40, &[4, 8]);
        assert_eq!(bus.ticks(), &[0, 20, 40]);
        assert_eq!(bus.values("a"), Some(&[0, 2, 4][..]));
        assert_eq!(bus.effective_cadence_s(), 20);
        assert_eq!(bus.decimations(), 1);
        assert_eq!(bus.pending_tick(SimTime::from_secs(60)), Some(60));
    }

    #[test]
    fn export_and_strict_reader_round_trip() {
        let mut bus = TelemetryBus::enabled(30, SIGS);
        bus.set_machine("Ross", 1436);
        bus.record_tick(0, &[5, 6]);
        bus.record_tick(30, &[7, 8]);
        bus.annotate(30, AnnotationKind::Breach, "util", 7, 6);
        bus.annotate(60, AnnotationKind::MachineDown, "", 0, 0);
        let text = bus.to_jsonl();
        assert!(text.starts_with(
            "{\"telemetry_schema\":1,\"machine\":\"Ross\",\"cpus\":1436,\"cadence_s\":30,\
             \"effective_cadence_s\":30,\"decimations\":0,\"points\":2,\"signals\":2,\
             \"annotations\":2}\n"
        ));
        let dump = TelemetryDump::from_jsonl(&text).unwrap();
        assert_eq!(dump.schema, 1);
        assert_eq!(dump.machine, Some(("Ross".to_string(), 1436)));
        assert_eq!(dump.cadence_s, 30);
        assert_eq!(dump.ticks, vec![0, 30]);
        assert_eq!(dump.values("a"), Some(&[5, 7][..]));
        assert_eq!(dump.values("b"), Some(&[6, 8][..]));
        assert_eq!(dump.annotations.len(), 2);
        assert_eq!(dump.annotations[0].kind, "breach");
        assert_eq!(dump.annotations[0].label, "util");
        assert_eq!(dump.annotations[1].kind, "machine_down");
        // Same bus, same calls → byte-identical export.
        assert_eq!(text, bus.to_jsonl());
    }

    #[test]
    fn strict_reader_rejects_malformed_files() {
        assert!(TelemetryDump::from_jsonl("").unwrap_err().contains("empty"));
        assert!(TelemetryDump::from_jsonl("{\"schema\":1}\n")
            .unwrap_err()
            .contains("not a telemetry header"));
        assert!(TelemetryDump::from_jsonl("{\"telemetry_schema\":99}\n")
            .unwrap_err()
            .contains("unsupported telemetry schema 99"));
        let mut bus = TelemetryBus::enabled(30, SIGS);
        bus.record_tick(0, &[1, 2]);
        let good = bus.to_jsonl();
        // A truncated signal line is a hard error, not a skip.
        let broken = good.replace("\"values\":[2]", "\"values\":[2");
        assert!(TelemetryDump::from_jsonl(&broken)
            .unwrap_err()
            .contains("unterminated"));
        // A garbage element is a hard error.
        let broken = good.replace("\"values\":[2]", "\"values\":[x]");
        assert!(TelemetryDump::from_jsonl(&broken)
            .unwrap_err()
            .contains("bad array element"));
        // Dropping a whole signal line breaks the declared count.
        let missing: String = good
            .lines()
            .filter(|l| !l.contains("\"signal\":\"b\""))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(TelemetryDump::from_jsonl(&missing)
            .unwrap_err()
            .contains("declares 2 signals"));
        // A stray non-telemetry line is a hard error.
        let noisy = format!("{good}{{\"ev\":\"start\"}}\n");
        assert!(TelemetryDump::from_jsonl(&noisy)
            .unwrap_err()
            .contains("neither a signal column nor an annotation"));
    }

    #[test]
    fn slo_spec_parses_the_fault_spec_grammar() {
        let spec = SloSpec::parse("native_p99_wait<=3600,util>=0.85").unwrap();
        assert_eq!(spec.rules.len(), 2);
        assert_eq!(spec.rules[0].key, "native_p99_wait");
        assert_eq!(spec.rules[0].signal, "native_wait_p99_s");
        assert_eq!(spec.rules[0].op, SloOp::Le);
        assert_eq!(spec.rules[0].limit, 3600);
        assert_eq!(spec.rules[1].key, "util");
        assert_eq!(spec.rules[1].op, SloOp::Ge);
        assert_eq!(spec.rules[1].limit, 850, "0.85 → permille");

        // Fraction spellings.
        assert_eq!(SloSpec::parse("util>=1").unwrap().rules[0].limit, 1000);
        assert_eq!(SloSpec::parse("util>=0.9").unwrap().rules[0].limit, 900);
        assert_eq!(SloSpec::parse("frag<=0.125").unwrap().rules[0].limit, 125);

        // Errors name the problem.
        assert!(SloSpec::parse("").unwrap_err().contains("no rules"));
        assert!(SloSpec::parse("util=0.5").unwrap_err().contains("expected"));
        assert!(SloSpec::parse("bogus<=1")
            .unwrap_err()
            .contains("unknown metric"));
        assert!(SloSpec::parse("util>=1.5")
            .unwrap_err()
            .contains("fraction in [0,1]"));
        assert!(SloSpec::parse("util>=0.8500")
            .unwrap_err()
            .contains("fraction"));
        assert!(SloSpec::parse("queue_depth<=x")
            .unwrap_err()
            .contains("integer"));
    }

    #[test]
    fn watchdog_reports_transitions_not_levels() {
        let spec = SloSpec::parse("queue_depth<=5,util>=0.5").unwrap();
        let mut dog = SloWatchdog::new(&spec, DRIVER_SIGNALS).unwrap();
        assert!(!dog.is_empty());
        let qd = DRIVER_SIGNALS
            .iter()
            .position(|s| *s == "queue_depth")
            .unwrap();
        let util = DRIVER_SIGNALS
            .iter()
            .position(|s| *s == "util_permille")
            .unwrap();
        let mut values = vec![0u64; DRIVER_SIGNALS.len()];
        values[qd] = 3;
        values[util] = 600;
        assert!(dog.evaluate(&values).is_empty(), "all healthy: no events");
        values[qd] = 9;
        let t = dog.evaluate(&values);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].metric, "queue_depth");
        assert!(t[0].breached);
        assert_eq!((t[0].value, t[0].limit), (9, 5));
        assert!(dog.evaluate(&values).is_empty(), "still breached: silent");
        values[qd] = 2;
        values[util] = 400;
        let t = dog.evaluate(&values);
        assert_eq!(t.len(), 2, "queue clears while util breaches");
        assert!(!t[0].breached);
        assert_eq!(t[0].metric, "queue_depth");
        assert!(t[1].breached);
        assert_eq!(t[1].metric, "util");
    }

    #[test]
    fn slo_metric_keys_intern_and_resolve_against_driver_signals() {
        for (key, signal, _) in SLO_METRICS {
            assert_eq!(slo_metric_key(key), Some(*key));
            assert!(
                DRIVER_SIGNALS.contains(signal),
                "SLO metric {key} reads {signal}, which the driver must sample"
            );
        }
        assert_eq!(slo_metric_key("nope"), None);
    }

    #[test]
    fn engine_signals_resolve_for_the_probe() {
        assert!(ENGINE_SIGNALS.contains(&"queue_depth"));
        let spec = SloSpec::parse("queue_depth<=10").unwrap();
        assert!(SloWatchdog::new(&spec, ENGINE_SIGNALS).is_ok());
        let spec = SloSpec::parse("util>=0.5").unwrap();
        assert!(SloWatchdog::new(&spec, ENGINE_SIGNALS)
            .unwrap_err()
            .contains("does not sample"));
    }
}
