//! Deterministic per-cycle flight recorder.
//!
//! The profiler answers "where does the run's wall-clock go", the work
//! counters "how much total work was done" — neither can say *which cycles*
//! were expensive, and tail-aware arguments (Byun et al., arXiv:2008.02223)
//! turn on exactly that. [`CycleRecorder`] closes the gap: one record per
//! driver scheduling pass, holding the pass's deterministic counter deltas
//! (events coalesced, dispatches, backfill candidates scanned, profile
//! segments walked) alongside audited wall-clock nanos, kept in a bounded
//! ring buffer (the most recent window) plus an exact ledger of the top-K
//! most expensive cycles over the whole run.
//!
//! Two serializations, mirroring `RunReport`'s split:
//!
//! * [`CycleRecorder::to_jsonl`] — everything, including per-cycle and
//!   per-phase nanos. Schema-versioned JSONL for `interstitial perf
//!   hotspots`.
//! * [`CycleRecorder::counters_jsonl`] — the deterministic counter fields
//!   only. Byte-identical across same-seed runs on any host; this is what
//!   the determinism suite pins.
//!
//! "Cost" ranks cycles deterministically: the sum of the pass's event,
//! candidate-scan and segment-walk deltas — the same units the perf gate
//! already compares exactly. Wall nanos ride along for attribution but
//! never decide ring membership or top-K order, so the recorder's shape is
//! a pure function of the seed. This module is (with the phase profiler)
//! one of the two audited wall-clock exceptions in `obs` (simlint R2/R8):
//! readings are reporting-only and never feed back into simulation state.

use crate::json;
use crate::profile::ProfileSnapshot;
use simkit::time::SimTime;
use std::collections::VecDeque;
use std::time::Instant;

/// Recorder JSONL schema version (the header line's `recorder_schema`).
pub const RECORDER_SCHEMA: u64 = 1;

/// Default ring-buffer capacity (most recent cycles retained).
pub const DEFAULT_CAPACITY: usize = 4096;

/// Default size of the exact most-expensive-cycles ledger.
pub const DEFAULT_TOP_K: usize = 32;

/// One scheduling pass's record.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleRecord {
    /// Monotone pass index assigned by the recorder (0-based). Note this is
    /// the *driver* pass count: the scheduler's own `sched_cycles` counter
    /// skips outage passes, so the two need not match.
    pub cycle: u64,
    /// Sim-time of the pass, integer seconds.
    pub t_s: u64,
    /// Native jobs waiting after the pass.
    pub queue_depth: u64,
    /// Events handled at this instant (the coalesced pump batch).
    pub events: u64,
    /// Jobs dispatched this pass (in-order + backfill).
    pub starts: u64,
    /// Backfill candidates scanned this pass.
    pub candidates: u64,
    /// Free-profile segments walked this pass.
    pub segments: u64,
    /// Deterministic cost: `events + candidates + segments`.
    pub cost: u64,
    /// Audited wall-clock nanos for the whole pass (pump + cycle).
    pub ns_total: u64,
    /// Wall nanos attributed to the event pump this pass.
    pub ns_pump: u64,
    /// Wall nanos attributed to queue ordering this pass.
    pub ns_order: u64,
    /// Wall nanos attributed to free-profile construction this pass.
    pub ns_profile: u64,
    /// Wall nanos attributed to backfill planning this pass.
    pub ns_backfill: u64,
}

/// The number of deterministic counter fields in a [`CycleRecord`].
pub const COUNTER_FIELD_COUNT: usize = 8;

impl CycleRecord {
    /// The deterministic fields in canonical order — what
    /// [`CycleRecorder::counters_jsonl`] serializes and the determinism
    /// suite compares bitwise.
    pub fn counter_fields(&self) -> [(&'static str, u64); COUNTER_FIELD_COUNT] {
        [
            ("cycle", self.cycle),
            ("t_s", self.t_s),
            ("queue_depth", self.queue_depth),
            ("events", self.events),
            ("starts", self.starts),
            ("candidates", self.candidates),
            ("segments", self.segments),
            ("cost", self.cost),
        ]
    }

    /// The wall-clock fields in canonical order (full form only).
    pub fn ns_fields(&self) -> [(&'static str, u64); 5] {
        [
            ("ns_total", self.ns_total),
            ("ns_pump", self.ns_pump),
            ("ns_order", self.ns_order),
            ("ns_profile", self.ns_profile),
            ("ns_backfill", self.ns_backfill),
        ]
    }

    /// Set a field by its serialized name; false if the name is unknown.
    pub fn set_field(&mut self, name: &str, value: u64) -> bool {
        let slot = match name {
            "cycle" => &mut self.cycle,
            "t_s" => &mut self.t_s,
            "queue_depth" => &mut self.queue_depth,
            "events" => &mut self.events,
            "starts" => &mut self.starts,
            "candidates" => &mut self.candidates,
            "segments" => &mut self.segments,
            "cost" => &mut self.cost,
            "ns_total" => &mut self.ns_total,
            "ns_pump" => &mut self.ns_pump,
            "ns_order" => &mut self.ns_order,
            "ns_profile" => &mut self.ns_profile,
            "ns_backfill" => &mut self.ns_backfill,
            _ => return false,
        };
        *slot = value;
        true
    }

    fn write_line(&self, kind: &str, counters_only: bool, out: &mut String) {
        out.push('{');
        let mut first = json::push_str_field(out, true, "kind", kind);
        for (name, value) in self.counter_fields() {
            first = json::push_u64_field(out, first, name, value);
        }
        if !counters_only {
            for (name, value) in self.ns_fields() {
                first = json::push_u64_field(out, first, name, value);
            }
        }
        let _ = first;
        out.push_str("}\n");
    }
}

/// Cumulative totals the driver hands to [`CycleRecorder::end_cycle`];
/// the recorder diffs consecutive snapshots itself, so callers pass the
/// running sums they already maintain. Plain u64s keep `obs` free of a
/// `sched` dependency.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleTotals {
    /// Events handled so far (the driver's step count).
    pub events: u64,
    /// Jobs dispatched so far (in-order + backfill).
    pub starts: u64,
    /// Backfill candidates scanned so far.
    pub candidates: u64,
    /// Free-profile segments walked so far.
    pub segments: u64,
}

/// Cumulative per-phase wall nanos at the end of a pass (from
/// [`crate::profile::PhaseProfiler::total_ns`]); diffed like
/// [`CycleTotals`]. All zero when phase profiling is off.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseNanos {
    /// `event-pump` cumulative nanos.
    pub pump: u64,
    /// `order-queue` cumulative nanos.
    pub order: u64,
    /// `free-profile` cumulative nanos.
    pub profile: u64,
    /// `backfill` cumulative nanos.
    pub backfill: u64,
}

/// Bounded per-cycle flight recorder (see module docs).
#[derive(Clone, Debug)]
pub struct CycleRecorder {
    enabled: bool,
    capacity: usize,
    top_k: usize,
    cycles_seen: u64,
    dropped: u64,
    prev: CycleTotals,
    prev_ns: PhaseNanos,
    ring: VecDeque<CycleRecord>,
    top: Vec<CycleRecord>,
}

impl Default for CycleRecorder {
    fn default() -> Self {
        CycleRecorder::disabled()
    }
}

impl CycleRecorder {
    /// Recording off — the zero-cost default.
    pub fn disabled() -> Self {
        CycleRecorder {
            enabled: false,
            capacity: DEFAULT_CAPACITY,
            top_k: DEFAULT_TOP_K,
            cycles_seen: 0,
            dropped: 0,
            prev: CycleTotals::default(),
            prev_ns: PhaseNanos::default(),
            ring: VecDeque::new(),
            top: Vec::new(),
        }
    }

    /// Recording on with the default ring capacity and top-K size.
    pub fn enabled() -> Self {
        CycleRecorder::with_limits(DEFAULT_CAPACITY, DEFAULT_TOP_K)
    }

    /// Recording on with explicit limits (both clamped to at least 1).
    pub fn with_limits(capacity: usize, top_k: usize) -> Self {
        CycleRecorder {
            enabled: true,
            capacity: capacity.max(1),
            top_k: top_k.max(1),
            ring: VecDeque::with_capacity(capacity.clamp(1, DEFAULT_CAPACITY)),
            ..CycleRecorder::disabled()
        }
    }

    /// Is this recorder collecting?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Open a pass. Returns `None` (no clock read) when disabled; pass the
    /// token to [`end_cycle`](CycleRecorder::end_cycle).
    #[inline]
    pub fn begin(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Close the pass opened by [`begin`](CycleRecorder::begin): diff the
    /// cumulative totals against the previous pass, record the result in
    /// the ring and (if expensive enough) the top-K ledger.
    pub fn end_cycle(
        &mut self,
        token: Option<Instant>,
        now: SimTime,
        queue_depth: u64,
        totals: CycleTotals,
        ns: PhaseNanos,
    ) {
        let Some(t0) = token else { return };
        if !self.enabled {
            return;
        }
        let ns_total = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let events = totals.events.wrapping_sub(self.prev.events);
        let candidates = totals.candidates.wrapping_sub(self.prev.candidates);
        let segments = totals.segments.wrapping_sub(self.prev.segments);
        let rec = CycleRecord {
            cycle: self.cycles_seen,
            t_s: now.as_secs(),
            queue_depth,
            events,
            starts: totals.starts.wrapping_sub(self.prev.starts),
            candidates,
            segments,
            cost: events + candidates + segments,
            ns_total,
            ns_pump: ns.pump.wrapping_sub(self.prev_ns.pump),
            ns_order: ns.order.wrapping_sub(self.prev_ns.order),
            ns_profile: ns.profile.wrapping_sub(self.prev_ns.profile),
            ns_backfill: ns.backfill.wrapping_sub(self.prev_ns.backfill),
        };
        self.prev = totals;
        self.prev_ns = ns;
        self.cycles_seen += 1;
        self.ring.push_back(rec);
        if self.ring.len() > self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        // Exact top-K by (cost desc, cycle asc): the deterministic tie-break
        // keeps earlier passes ahead of equal-cost later ones.
        let pos = self
            .top
            .partition_point(|r| r.cost > rec.cost || (r.cost == rec.cost && r.cycle < rec.cycle));
        if pos < self.top_k {
            self.top.insert(pos, rec);
            self.top.truncate(self.top_k);
        }
    }

    /// Total passes recorded over the run.
    pub fn cycles_seen(&self) -> u64 {
        self.cycles_seen
    }

    /// Passes evicted from the ring (recorded but no longer retained).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained ring window, oldest first.
    pub fn ring(&self) -> impl Iterator<Item = &CycleRecord> {
        self.ring.iter()
    }

    /// The exact top-K ledger, most expensive first.
    pub fn top(&self) -> &[CycleRecord] {
        &self.top
    }

    fn write_header(&self, out: &mut String) {
        out.push('{');
        let first = json::push_u64_field(out, true, "recorder_schema", RECORDER_SCHEMA);
        let first = json::push_u64_field(out, first, "capacity", self.capacity as u64);
        let first = json::push_u64_field(out, first, "top_k", self.top_k as u64);
        let first = json::push_u64_field(out, first, "cycles_seen", self.cycles_seen);
        let _ = json::push_u64_field(out, first, "dropped", self.dropped);
        out.push_str("}\n");
    }

    /// Full schema-versioned JSONL: header, ring window (oldest first),
    /// top-K ledger (most expensive first), then one `phase` line per
    /// profiler phase from `profile` (run totals, for the hotspots phase
    /// breakdown). Wall-clock fields included — NOT run-to-run stable.
    pub fn to_jsonl(&self, profile: &ProfileSnapshot) -> String {
        let mut out = String::new();
        self.write_header(&mut out);
        for rec in &self.ring {
            rec.write_line("cycle", false, &mut out);
        }
        for rec in &self.top {
            rec.write_line("top", false, &mut out);
        }
        for (name, stat) in &profile.phases {
            out.push('{');
            let first = json::push_str_field(&mut out, true, "kind", "phase");
            let first = json::push_str_field(&mut out, first, "name", name);
            let first = json::push_u64_field(&mut out, first, "calls", stat.calls);
            let _ = json::push_u64_field(&mut out, first, "total_ns", stat.total_ns);
            out.push_str("}\n");
        }
        out
    }

    /// Deterministic subset: header plus ring and top-K records with the
    /// counter fields only. Byte-identical across same-seed runs — the
    /// determinism suite's anchor.
    pub fn counters_jsonl(&self) -> String {
        let mut out = String::new();
        self.write_header(&mut out);
        for rec in &self.ring {
            rec.write_line("cycle", true, &mut out);
        }
        for rec in &self.top {
            rec.write_line("top", true, &mut out);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Reader (for `interstitial perf hotspots`)
// ---------------------------------------------------------------------------

/// A parsed recorder dump.
#[derive(Clone, Debug, Default)]
pub struct RecorderDump {
    /// Header `recorder_schema`.
    pub schema: u64,
    /// Ring capacity the writer ran with.
    pub capacity: u64,
    /// Ledger size the writer ran with.
    pub top_k: u64,
    /// Total passes recorded.
    pub cycles_seen: u64,
    /// Passes evicted from the ring.
    pub dropped: u64,
    /// Retained ring window, oldest first.
    pub ring: Vec<CycleRecord>,
    /// Top-K ledger, most expensive first.
    pub top: Vec<CycleRecord>,
    /// Per-phase run totals: `(name, calls, total_ns)`.
    pub phases: Vec<(String, u64, u64)>,
}

/// A value in a flat recorder line: unsigned integer or string.
enum FlatValue {
    Number(u64),
    Text(String),
}

/// Parse one flat JSON object line (`{"k":1,"s":"x",…}`) into pairs.
/// Recorder lines are flat by construction — no nesting, no arrays.
fn parse_flat(line: &str) -> Result<Vec<(String, FlatValue)>, String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();
    let skip_ws = |pos: &mut usize| {
        while bytes
            .get(*pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r'))
        {
            *pos += 1;
        }
    };
    let eat = |pos: &mut usize, want: u8| -> Result<(), String> {
        if bytes.get(*pos) == Some(&want) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {} of {line:?}",
                want as char, *pos
            ))
        }
    };
    let string = |pos: &mut usize| -> Result<String, String> {
        eat(pos, b'"')?;
        let start = *pos;
        while let Some(&b) = bytes.get(*pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
                *pos += 1;
                return Ok(s.to_string());
            }
            if b == b'\\' {
                return Err(format!("escapes unsupported in recorder line {line:?}"));
            }
            *pos += 1;
        }
        Err(format!("unterminated string in {line:?}"))
    };
    let number = |pos: &mut usize| -> Result<u64, String> {
        let start = *pos;
        while bytes.get(*pos).is_some_and(|b| b.is_ascii_digit()) {
            *pos += 1;
        }
        if start == *pos {
            return Err(format!("expected digits at byte {start} of {line:?}"));
        }
        std::str::from_utf8(&bytes[start..*pos])
            .map_err(|e| e.to_string())?
            .parse::<u64>()
            .map_err(|e| format!("bad integer in {line:?}: {e}"))
    };
    skip_ws(&mut pos);
    eat(&mut pos, b'{')?;
    skip_ws(&mut pos);
    if bytes.get(pos) == Some(&b'}') {
        return Ok(out);
    }
    loop {
        skip_ws(&mut pos);
        let key = string(&mut pos)?;
        skip_ws(&mut pos);
        eat(&mut pos, b':')?;
        skip_ws(&mut pos);
        let value = match bytes.get(pos) {
            Some(b'"') => FlatValue::Text(string(&mut pos)?),
            Some(b) if b.is_ascii_digit() => FlatValue::Number(number(&mut pos)?),
            other => {
                return Err(format!(
                    "unsupported value at byte {pos} of {line:?} (found {:?})",
                    other.map(|b| *b as char)
                ))
            }
        };
        out.push((key, value));
        skip_ws(&mut pos);
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => return Ok(out),
            other => {
                return Err(format!(
                    "expected ',' or '}}' at byte {pos} of {line:?} (found {:?})",
                    other.map(|b| *b as char)
                ))
            }
        }
    }
}

impl RecorderDump {
    /// Parse JSONL written by [`CycleRecorder::to_jsonl`] or
    /// [`CycleRecorder::counters_jsonl`] (the counter-only form simply
    /// leaves the nanos at zero and carries no phase lines).
    pub fn from_jsonl(text: &str) -> Result<RecorderDump, String> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (_, header) = lines
            .next()
            .ok_or_else(|| "empty recorder dump".to_string())?;
        let mut dump = RecorderDump::default();
        for (key, value) in parse_flat(header)? {
            if let FlatValue::Number(n) = value {
                match key.as_str() {
                    "recorder_schema" => dump.schema = n,
                    "capacity" => dump.capacity = n,
                    "top_k" => dump.top_k = n,
                    "cycles_seen" => dump.cycles_seen = n,
                    "dropped" => dump.dropped = n,
                    _ => {}
                }
            }
        }
        if dump.schema != RECORDER_SCHEMA {
            return Err(format!(
                "unsupported recorder schema {} (expected {RECORDER_SCHEMA}) — is this a \
                 --record-cycles artifact?",
                dump.schema
            ));
        }
        for (lineno, line) in lines {
            let pairs = parse_flat(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let mut kind = String::new();
            let mut name = String::new();
            let mut rec = CycleRecord::default();
            let mut calls = 0u64;
            let mut total_ns = 0u64;
            for (key, value) in pairs {
                match (key.as_str(), value) {
                    ("kind", FlatValue::Text(s)) => kind = s,
                    ("name", FlatValue::Text(s)) => name = s,
                    ("calls", FlatValue::Number(n)) => calls = n,
                    ("total_ns", FlatValue::Number(n)) => total_ns = n,
                    (field, FlatValue::Number(n)) => {
                        // Unknown numeric fields are ignored (forward compat).
                        let _ = rec.set_field(field, n);
                    }
                    _ => {}
                }
            }
            match kind.as_str() {
                "cycle" => dump.ring.push(rec),
                "top" => dump.top.push(rec),
                "phase" => dump.phases.push((name, calls, total_ns)),
                other => {
                    return Err(format!(
                        "line {}: unknown record kind {other:?}",
                        lineno + 1
                    ))
                }
            }
        }
        Ok(dump)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive `n` passes with LCG-derived totals; returns the recorder.
    fn drive(n: u64, capacity: usize, top_k: usize) -> CycleRecorder {
        let mut r = CycleRecorder::with_limits(capacity, top_k);
        let mut totals = CycleTotals::default();
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..n {
            let t = r.begin();
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            totals.events += (x >> 33) % 7;
            totals.starts += (x >> 23) % 3;
            totals.candidates += (x >> 13) % 11;
            totals.segments += (x >> 3) % 5;
            r.end_cycle(
                t,
                SimTime::from_secs(i * 60),
                (x >> 40) % 100,
                totals,
                PhaseNanos::default(),
            );
        }
        r
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let mut r = CycleRecorder::disabled();
        let t = r.begin();
        assert!(t.is_none());
        r.end_cycle(
            t,
            SimTime::from_secs(1),
            5,
            CycleTotals {
                events: 10,
                ..Default::default()
            },
            PhaseNanos::default(),
        );
        assert_eq!(r.cycles_seen(), 0);
        assert_eq!(r.ring().count(), 0);
        assert!(r.top().is_empty());
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let r = drive(100, 16, 4);
        assert_eq!(r.cycles_seen(), 100);
        assert_eq!(r.dropped(), 84);
        let cycles: Vec<u64> = r.ring().map(|rec| rec.cycle).collect();
        let want: Vec<u64> = (84..100).collect();
        assert_eq!(cycles, want, "ring holds the newest window in pass order");
    }

    #[test]
    fn top_k_is_exact_against_brute_force() {
        for (n, cap, k) in [(200u64, 32usize, 8usize), (50, 8, 16), (500, 64, 1)] {
            let r = drive(n, cap, k);
            // Brute force: replay the same LCG stream, sort by the ledger's
            // order (cost desc, cycle asc), truncate.
            let full = drive(n, n as usize + 1, n as usize + 1);
            let mut all: Vec<CycleRecord> = full.ring().copied().collect();
            all.sort_by(|a, b| b.cost.cmp(&a.cost).then(a.cycle.cmp(&b.cycle)));
            all.truncate(k);
            let got: Vec<(u64, u64)> = r.top().iter().map(|x| (x.cost, x.cycle)).collect();
            let want: Vec<(u64, u64)> = all.iter().map(|x| (x.cost, x.cycle)).collect();
            assert_eq!(got, want, "n={n} cap={cap} k={k}");
        }
    }

    #[test]
    fn cost_is_the_sum_of_counter_deltas() {
        let r = drive(10, 16, 4);
        for rec in r.ring() {
            assert_eq!(rec.cost, rec.events + rec.candidates + rec.segments);
        }
    }

    #[test]
    fn counters_jsonl_is_identical_across_identical_runs() {
        let a = drive(300, 64, 8).counters_jsonl();
        let b = drive(300, 64, 8).counters_jsonl();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"recorder_schema\":1,"), "{a}");
        assert!(
            !a.contains("ns_total"),
            "counter form must exclude wall nanos"
        );
    }

    #[test]
    fn jsonl_round_trips_through_the_reader() {
        let r = drive(40, 16, 4);
        let mut profile = ProfileSnapshot::default();
        profile.phases.insert(
            "event-pump",
            crate::profile::PhaseStat {
                calls: 40,
                total_ns: 12345,
                ..Default::default()
            },
        );
        let full = r.to_jsonl(&profile);
        let dump = RecorderDump::from_jsonl(&full).unwrap();
        assert_eq!(dump.schema, RECORDER_SCHEMA);
        assert_eq!(dump.cycles_seen, 40);
        assert_eq!(dump.dropped, 24);
        assert_eq!(dump.ring.len(), 16);
        assert_eq!(dump.top.len(), 4);
        assert_eq!(dump.phases, vec![("event-pump".to_string(), 40, 12345)]);
        let ring: Vec<CycleRecord> = r.ring().copied().collect();
        assert_eq!(dump.ring, ring, "counter+ns fields survive the round trip");
        assert_eq!(dump.top, r.top());
        // The counter-only form parses too, with nanos zeroed.
        let lean = RecorderDump::from_jsonl(&r.counters_jsonl()).unwrap();
        assert_eq!(lean.ring.len(), 16);
        assert!(lean.ring.iter().all(|x| x.ns_total == 0));
        assert!(lean.phases.is_empty());
    }

    #[test]
    fn reader_rejects_garbage_and_wrong_schema() {
        assert!(RecorderDump::from_jsonl("").is_err());
        assert!(RecorderDump::from_jsonl("{\"recorder_schema\":99}\n").is_err());
        assert!(RecorderDump::from_jsonl("{\"recorder_schema\":1}\n{\"kind\":\"wat\"}\n").is_err());
        assert!(RecorderDump::from_jsonl("{\"recorder_schema\":1}\nnot json\n").is_err());
    }
}
