//! Per-run machine-readable report.
//!
//! A [`RunReport`] bundles the metrics snapshot and the phase profile from
//! one simulation run into a single JSON document. Two serializations
//! exist on purpose:
//!
//! * [`RunReport::to_json`] — everything, including wall-clock phase
//!   timings. For humans, dashboards and bench trajectories.
//! * [`RunReport::to_json_deterministic`] — metrics and work counters only.
//!   Byte-stable for a fixed seed, which is what the golden-trace suite and
//!   CI diff.
//!
//! Work counters appear in *both* forms (they are deterministic) but never
//! in the trace stream — see `crates/obs/SCHEMA.md`.

use crate::alloc::AllocCounters;
use crate::json;
use crate::metrics::MetricsSnapshot;
use crate::profile::ProfileSnapshot;
use crate::work::WorkCounters;

/// Snapshot of one run's metrics, work counters and phase profile.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Counters / gauges / histograms at end of run.
    pub metrics: MetricsSnapshot,
    /// Wall-clock phase timings (empty when profiling was disabled).
    pub profile: ProfileSnapshot,
    /// Deterministic work counters (all zero when counting was disabled).
    pub work: WorkCounters,
    /// Allocator tallies for the run window (all zero unless the
    /// `alloc-count` feature is on).
    pub mem: AllocCounters,
}

impl RunReport {
    /// Bundle a metrics snapshot, a phase profile, the work counters and
    /// the run's allocator tallies.
    pub fn new(
        metrics: MetricsSnapshot,
        profile: ProfileSnapshot,
        work: WorkCounters,
        mem: AllocCounters,
    ) -> Self {
        RunReport {
            metrics,
            profile,
            work,
            mem,
        }
    }

    /// Full report: `{"metrics":{..},"work":{..},"profile":{..},"mem":{..}}`.
    /// The profile section contains wall-clock values and is NOT
    /// run-to-run stable; the mem section depends on allocator behaviour
    /// of the exact build, so neither is golden-pinned.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_deterministic_sections(&mut out);
        out.push(',');
        json::push_key(&mut out, "profile");
        self.profile.write_json(&mut out);
        out.push(',');
        json::push_key(&mut out, "mem");
        self.mem.write_json(&mut out);
        out.push('}');
        out
    }

    /// Deterministic subset: `{"metrics":{..},"work":{..}}`. Byte-identical
    /// across same-seed runs; this is what golden files pin.
    pub fn to_json_deterministic(&self) -> String {
        let mut out = String::new();
        self.write_deterministic_sections(&mut out);
        out.push('}');
        out
    }

    /// `{"metrics":{..},"work":{..}` — shared prefix of both forms, left
    /// unterminated so callers can append or close.
    fn write_deterministic_sections(&self, out: &mut String) {
        out.push('{');
        json::push_key(out, "metrics");
        self.metrics.write_json(out);
        out.push(',');
        json::push_key(out, "work");
        self.work.write_json(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::profile::PhaseProfiler;

    #[test]
    fn deterministic_json_excludes_profile_but_keeps_work() {
        let mut m = MetricsRegistry::enabled();
        m.inc("jobs.finished.native", 2);
        let mut p = PhaseProfiler::enabled();
        let t = p.begin();
        p.end("schedule-cycle", t);
        let mut w = WorkCounters::enabled();
        w.record_engine(7, 9, 3);
        let report = RunReport::new(m.snapshot(), p.snapshot(), w, AllocCounters::disabled());
        let det = report.to_json_deterministic();
        assert_eq!(
            det,
            "{\"metrics\":{\"counters\":{\"jobs.finished.native\":2},\
             \"gauges\":{},\"histograms\":{}},\
             \"work\":{\"events_popped\":7,\"events_scheduled\":9,\
             \"heap_peak_depth\":3,\"sched_cycles\":0,\"inorder_starts\":0,\
             \"backfill_starts\":0,\"backfill_candidates_scanned\":0,\
             \"profile_segments_walked\":0,\"requeues\":0,\"retries\":0,\
             \"checkpoints_taken\":0,\"cpu_s_salvaged\":0,\
             \"cpu_s_reexecuted\":0}}"
        );
        let full = report.to_json();
        assert!(full.contains("\"profile\":{\"schedule-cycle\""));
        assert!(full.starts_with(&det[..det.len() - 1]), "shared prefix");
        assert!(!det.contains("\"profile\":"), "no phase-timing section");
        assert!(
            full.contains("\"mem\":{\"allocations\":"),
            "mem in full form"
        );
        assert!(!det.contains("\"mem\":"), "mem is not golden-pinned");
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let r = RunReport::default();
        assert_eq!(
            r.to_json(),
            "{\"metrics\":{\"counters\":{},\"gauges\":{},\"histograms\":{}},\
             \"work\":{\"events_popped\":0,\"events_scheduled\":0,\
             \"heap_peak_depth\":0,\"sched_cycles\":0,\"inorder_starts\":0,\
             \"backfill_starts\":0,\"backfill_candidates_scanned\":0,\
             \"profile_segments_walked\":0,\"requeues\":0,\"retries\":0,\
             \"checkpoints_taken\":0,\"cpu_s_salvaged\":0,\
             \"cpu_s_reexecuted\":0},\
             \"profile\":{},\
             \"mem\":{\"allocations\":0,\"deallocations\":0,\
             \"bytes_allocated\":0,\"bytes_freed\":0,\"peak_live_bytes\":0}}"
        );
    }
}
