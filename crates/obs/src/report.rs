//! Per-run machine-readable report.
//!
//! A [`RunReport`] bundles the metrics snapshot and the phase profile from
//! one simulation run into a single JSON document. Two serializations
//! exist on purpose:
//!
//! * [`RunReport::to_json`] — everything, including wall-clock phase
//!   timings. For humans, dashboards and bench trajectories.
//! * [`RunReport::to_json_deterministic`] — metrics only. Byte-stable for
//!   a fixed seed, which is what the golden-trace suite and CI diff.

use crate::json;
use crate::metrics::MetricsSnapshot;
use crate::profile::ProfileSnapshot;

/// Snapshot of one run's metrics and phase profile.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Counters / gauges / histograms at end of run.
    pub metrics: MetricsSnapshot,
    /// Wall-clock phase timings (empty when profiling was disabled).
    pub profile: ProfileSnapshot,
}

impl RunReport {
    /// Bundle a metrics snapshot with a phase profile.
    pub fn new(metrics: MetricsSnapshot, profile: ProfileSnapshot) -> Self {
        RunReport { metrics, profile }
    }

    /// Full report: `{"metrics":{..},"profile":{..}}`. The profile section
    /// contains wall-clock values and is NOT run-to-run stable.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        json::push_key(&mut out, "metrics");
        self.metrics.write_json(&mut out);
        out.push(',');
        json::push_key(&mut out, "profile");
        self.profile.write_json(&mut out);
        out.push('}');
        out
    }

    /// Deterministic subset: `{"metrics":{..}}` only. Byte-identical across
    /// same-seed runs; this is what golden files pin.
    pub fn to_json_deterministic(&self) -> String {
        let mut out = String::new();
        out.push('{');
        json::push_key(&mut out, "metrics");
        self.metrics.write_json(&mut out);
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::profile::PhaseProfiler;

    #[test]
    fn deterministic_json_excludes_profile() {
        let mut m = MetricsRegistry::enabled();
        m.inc("jobs.finished.native", 2);
        let mut p = PhaseProfiler::enabled();
        let t = p.begin();
        p.end("schedule-cycle", t);
        let report = RunReport::new(m.snapshot(), p.snapshot());
        let det = report.to_json_deterministic();
        assert_eq!(
            det,
            "{\"metrics\":{\"counters\":{\"jobs.finished.native\":2},\
             \"gauges\":{},\"histograms\":{}}}"
        );
        let full = report.to_json();
        assert!(full.contains("\"profile\":{\"schedule-cycle\""));
        assert!(!det.contains("profile"));
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let r = RunReport::default();
        assert_eq!(
            r.to_json(),
            "{\"metrics\":{\"counters\":{},\"gauges\":{},\"histograms\":{}},\"profile\":{}}"
        );
    }
}
