//! Streaming quantile estimation — the P² algorithm.
//!
//! Jain & Chlamtac's P² method (CACM 1985) tracks a single quantile with
//! five markers updated per observation: constant memory, one pass, no
//! buffering — exactly what percentile summaries over multi-million-line
//! traces need. The first five observations are held exactly, so small
//! samples report true order statistics; beyond that the middle marker
//! approximates the quantile with rank error that the property suite
//! bounds on sorted, random and adversarial inputs.
//!
//! The estimator lives in `obs` (rather than its historical home in
//! `tracekit`, which re-exports it unchanged) so that online consumers —
//! the telemetry bus's rolling native-wait signal in the core driver —
//! can use the exact same marker arithmetic as the post-hoc trace
//! summaries without a dependency cycle through `tracekit`.

/// One-quantile P² estimator.
#[derive(Clone, Debug)]
pub struct P2 {
    /// The target quantile in (0, 1).
    p: f64,
    /// Observations seen.
    count: u64,
    /// Marker heights (ascending).
    q: [f64; 5],
    /// Actual marker positions (1-based ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Per-observation increments of the desired positions.
    dn: [f64; 5],
}

impl P2 {
    /// Estimator for quantile `p` (e.g. 0.5 for the median). `p` must be
    /// strictly inside (0, 1).
    pub fn new(p: f64) -> Self {
        debug_assert!(p > 0.0 && p < 1.0, "quantile must be in (0,1)");
        P2 {
            p,
            count: 0,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
        }
    }

    /// The target quantile.
    pub fn quantile(&self) -> f64 {
        self.p
    }

    /// Observations fed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feed one observation.
    pub fn observe(&mut self, x: f64) {
        if self.count < 5 {
            // Exact phase: insert into the sorted prefix of q.
            let mut i = self.count as usize;
            self.q[i] = x;
            while i > 0 && self.q[i - 1] > self.q[i] {
                self.q.swap(i - 1, i);
                i -= 1;
            }
            self.count += 1;
            return;
        }
        self.count += 1;

        // Locate the cell and update the extremes.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            // q[k] <= x < q[k+1] for some k in 0..=3.
            let mut k = 0;
            while k < 3 && x >= self.q[k + 1] {
                k += 1;
            }
            k
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust the three interior markers toward their desired ranks.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            let room_up = self.n[i + 1] - self.n[i] > 1.0;
            let room_down = self.n[i - 1] - self.n[i] < -1.0;
            if (d >= 1.0 && room_up) || (d <= -1.0 && room_down) {
                let d = d.signum();
                let parabolic = self.q[i]
                    + d / (self.n[i + 1] - self.n[i - 1])
                        * ((self.n[i] - self.n[i - 1] + d) * (self.q[i + 1] - self.q[i])
                            / (self.n[i + 1] - self.n[i])
                            + (self.n[i + 1] - self.n[i] - d) * (self.q[i] - self.q[i - 1])
                                / (self.n[i] - self.n[i - 1]));
                self.q[i] = if self.q[i - 1] < parabolic && parabolic < self.q[i + 1] {
                    parabolic
                } else {
                    // Fall back to linear interpolation toward the
                    // neighbour in the movement direction.
                    let j = if d > 0.0 { i + 1 } else { i - 1 };
                    self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
                };
                self.n[i] += d;
            }
        }
    }

    /// Current estimate, or `None` before any observation. Exact
    /// (nearest-rank) for five or fewer observations.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count <= 5 {
            // q[..count] is sorted; nearest-rank order statistic.
            let rank = (self.p * self.count as f64).ceil().max(1.0) as usize;
            return Some(self.q[rank.min(self.count as usize) - 1]);
        }
        Some(self.q[2])
    }
}

/// The percentile bundle trace summaries report: p50 / p90 / p99.
#[derive(Clone, Debug)]
pub struct Quantiles {
    p50: P2,
    p90: P2,
    p99: P2,
    min: f64,
    max: f64,
    sum: f64,
    count: u64,
}

impl Default for Quantiles {
    fn default() -> Self {
        Quantiles::new()
    }
}

impl Quantiles {
    /// Empty bundle.
    pub fn new() -> Self {
        Quantiles {
            p50: P2::new(0.5),
            p90: P2::new(0.9),
            p99: P2::new(0.99),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            count: 0,
        }
    }

    /// Feed one observation into every estimator.
    pub fn observe(&mut self, x: f64) {
        self.p50.observe(x);
        self.p90.observe(x);
        self.p99.observe(x);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.sum += x;
        self.count += 1;
    }

    /// Observations seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean, or `None` on an empty bundle.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// `(min, p50, p90, p99, max)`, or `None` on an empty bundle.
    pub fn snapshot(&self) -> Option<(f64, f64, f64, f64, f64)> {
        match (
            self.p50.estimate(),
            self.p90.estimate(),
            self.p99.estimate(),
        ) {
            (Some(a), Some(b), Some(c)) => Some((self.min, a, b, c, self.max)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_tiny_samples_are_exact() {
        let mut e = P2::new(0.5);
        assert_eq!(e.estimate(), None);
        e.observe(7.0);
        assert_eq!(e.estimate(), Some(7.0));
        e.observe(1.0);
        e.observe(9.0);
        assert_eq!(e.estimate(), Some(7.0), "median of {{1,7,9}}");
        e.observe(3.0);
        e.observe(5.0);
        assert_eq!(e.estimate(), Some(5.0), "median of {{1,3,5,7,9}}");
    }

    #[test]
    fn median_of_uniform_ramp_is_close() {
        let mut e = P2::new(0.5);
        for i in 0..10_001 {
            e.observe(i as f64);
        }
        let m = e.estimate().unwrap();
        assert!((m - 5_000.0).abs() < 100.0, "median estimate {m}");
    }

    #[test]
    fn p99_tracks_the_tail() {
        let mut e = P2::new(0.99);
        for i in 0..10_000 {
            e.observe(if i % 100 == 0 { 1_000.0 } else { 1.0 });
        }
        let v = e.estimate().unwrap();
        assert!(v > 1.0, "p99 must see the 1% spike population, got {v}");
    }

    #[test]
    fn constant_stream_is_exact() {
        let mut e = P2::new(0.9);
        for _ in 0..1_000 {
            e.observe(4.25);
        }
        assert_eq!(e.estimate(), Some(4.25));
    }

    #[test]
    fn quantile_bundle_tracks_extremes_and_mean() {
        let mut q = Quantiles::new();
        assert_eq!(q.snapshot(), None);
        assert_eq!(q.mean(), None);
        for i in 1..=100 {
            q.observe(i as f64);
        }
        let (min, p50, p90, p99, max) = q.snapshot().unwrap();
        assert_eq!(min, 1.0);
        assert_eq!(max, 100.0);
        assert!((q.mean().unwrap() - 50.5).abs() < 1e-9);
        assert!((p50 - 50.0).abs() < 5.0, "{p50}");
        assert!((p90 - 90.0).abs() < 5.0, "{p90}");
        assert!(p99 > 90.0 && p99 <= 100.0, "{p99}");
        assert_eq!(q.count(), 100);
    }
}
