//! Allocation telemetry behind the `alloc-count` feature.
//!
//! ROADMAP open item 1 (arena/SoA job and event storage) is an *allocation*
//! optimization, and the perf gate cannot hold a line it cannot see: wall
//! time is too noisy to resolve allocator churn and the work counters only
//! count algorithmic scans. This module adds the missing axis — a counting
//! [`core::alloc::GlobalAlloc`] wrapper around `std::alloc::System` that
//! tallies allocation/deallocation calls, bytes, and the peak live-byte
//! high-water mark, exposed per run (and, via
//! [`crate::profile::PhaseProfiler`], per phase).
//!
//! Three deliberate properties:
//!
//! * **Feature-gated, off by default.** The wrapper costs a few relaxed
//!   atomic ops per heap call; production and tier-1 test builds keep the
//!   plain system allocator. Every public function here still exists
//!   without the feature and returns zeros, so callers never `cfg`.
//! * **Reporting-only.** Counts feed `RunReport`/`PerfBaseline` and never
//!   influence scheduling; determinism of the simulation is untouched.
//! * **Deterministic per build.** Allocation counts are a pure function of
//!   the replay (no hash randomization, no wall-clock), so `perf compare`
//!   gates them *exactly* — but they are only comparable across identical
//!   toolchains, which is why they live beside (not inside) the work
//!   counters. Counts are process-global: window deltas taken by
//!   [`mark`]/[`since`] are only meaningful while one replay runs at a
//!   time (the bench harness and CLI are sequential; see DESIGN.md §14).
//!
//! [`AllocCounters`] mirrors [`crate::work::WorkCounters`]: canonical
//! `fields()` order shared by serializer/parser/compare, associative and
//! commutative `merge` (sums, peak as max) so a fleet runner can fold
//! per-shard counters.

use crate::json;

/// The number of individual counters in [`AllocCounters::fields`].
pub const FIELD_COUNT: usize = 5;

/// Per-window allocation tallies (see module docs).
///
/// Plain `Copy` data, mirroring [`crate::work::WorkCounters`]: merging is
/// fieldwise sums except the peak, which folds as a max — associative and
/// commutative with a fresh instance as identity on the counter values.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocCounters {
    enabled: bool,
    /// Heap allocation calls (including the alloc half of each realloc).
    pub allocations: u64,
    /// Heap deallocation calls (including the free half of each realloc).
    pub deallocations: u64,
    /// Bytes requested across all allocation calls.
    pub bytes_allocated: u64,
    /// Bytes returned across all deallocation calls.
    pub bytes_freed: u64,
    /// High-water mark of live bytes above the window's starting level.
    pub peak_live_bytes: u64,
}

impl AllocCounters {
    /// Counting off — the zero-cost default.
    pub fn disabled() -> Self {
        AllocCounters::default()
    }

    /// Counting on (an empty window; real data comes from [`since`]).
    pub fn enabled() -> Self {
        AllocCounters {
            enabled: true,
            ..AllocCounters::default()
        }
    }

    /// Did this window come from a build with the counting allocator?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// All counters as `(name, value)` pairs in canonical (JSON) order.
    ///
    /// The single source of truth for serialization, parsing and the
    /// perf-compare diff, exactly like `WorkCounters::fields`.
    pub fn fields(&self) -> [(&'static str, u64); FIELD_COUNT] {
        [
            ("allocations", self.allocations),
            ("deallocations", self.deallocations),
            ("bytes_allocated", self.bytes_allocated),
            ("bytes_freed", self.bytes_freed),
            ("peak_live_bytes", self.peak_live_bytes),
        ]
    }

    /// Set a counter by its canonical name; false if the name is unknown.
    pub fn set_field(&mut self, name: &str, value: u64) -> bool {
        let slot = match name {
            "allocations" => &mut self.allocations,
            "deallocations" => &mut self.deallocations,
            "bytes_allocated" => &mut self.bytes_allocated,
            "bytes_freed" => &mut self.bytes_freed,
            "peak_live_bytes" => &mut self.peak_live_bytes,
            _ => return false,
        };
        *slot = value;
        true
    }

    /// Combine two windows: sums everywhere, max for the peak.
    ///
    /// Associative and commutative; merging with a fresh instance is the
    /// identity on counter values. Enablement is sticky (`or`).
    pub fn merge(&self, other: &AllocCounters) -> AllocCounters {
        AllocCounters {
            enabled: self.enabled || other.enabled,
            allocations: self.allocations + other.allocations,
            deallocations: self.deallocations + other.deallocations,
            bytes_allocated: self.bytes_allocated + other.bytes_allocated,
            bytes_freed: self.bytes_freed + other.bytes_freed,
            peak_live_bytes: self.peak_live_bytes.max(other.peak_live_bytes),
        }
    }

    /// Append `{"allocations":N,…}` to `out` in canonical field order.
    pub fn write_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        for (name, value) in self.fields() {
            first = json::push_u64_field(out, first, name, value);
        }
        out.push('}');
    }

    /// The counters as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

/// Is the counting allocator compiled into this build?
pub const fn counting_enabled() -> bool {
    cfg!(feature = "alloc-count")
}

/// A snapshot of the cumulative process tallies, opening a measurement
/// window. Pass it to [`since`] to close the window.
#[derive(Clone, Copy, Debug, Default)]
// The fields are only read by `since` when alloc-count is compiled in.
#[cfg_attr(not(feature = "alloc-count"), allow(dead_code))]
pub struct AllocMark {
    allocations: u64,
    deallocations: u64,
    bytes_allocated: u64,
    bytes_freed: u64,
    live_at_mark: u64,
}

#[cfg(feature = "alloc-count")]
mod counting {
    //! The counting wrapper itself. Relaxed atomics: tallies need no
    //! ordering guarantees, only eventual sums — and the simulator is
    //! single-threaded wherever windows are interpreted.

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    pub static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
    pub static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
    pub static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);
    pub static BYTES_FREED: AtomicU64 = AtomicU64::new(0);
    pub static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
    pub static PEAK_LIVE_BYTES: AtomicU64 = AtomicU64::new(0);

    pub struct CountingAlloc;

    fn on_alloc(size: u64) {
        ALLOCATIONS.fetch_add(1, Relaxed);
        BYTES_ALLOCATED.fetch_add(size, Relaxed);
        let live = LIVE_BYTES.fetch_add(size, Relaxed) + size;
        PEAK_LIVE_BYTES.fetch_max(live, Relaxed);
    }

    fn on_dealloc(size: u64) {
        DEALLOCATIONS.fetch_add(1, Relaxed);
        BYTES_FREED.fetch_add(size, Relaxed);
        LIVE_BYTES.fetch_sub(size, Relaxed);
    }

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                on_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc_zeroed(layout);
            if !p.is_null() {
                on_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            on_dealloc(layout.size() as u64);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                // A realloc is one free plus one allocation — counted as
                // such so allocations - deallocations tracks live blocks.
                on_dealloc(layout.size() as u64);
                on_alloc(new_size as u64);
            }
            p
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;
}

/// Open a measurement window: snapshot the cumulative tallies and reset
/// the peak tracker to the current live level, so the window's peak is the
/// high-water mark *within* the window. Zeros without `alloc-count`.
pub fn mark() -> AllocMark {
    #[cfg(feature = "alloc-count")]
    {
        use std::sync::atomic::Ordering::Relaxed;
        let live = counting::LIVE_BYTES.load(Relaxed);
        counting::PEAK_LIVE_BYTES.store(live, Relaxed);
        AllocMark {
            allocations: counting::ALLOCATIONS.load(Relaxed),
            deallocations: counting::DEALLOCATIONS.load(Relaxed),
            bytes_allocated: counting::BYTES_ALLOCATED.load(Relaxed),
            bytes_freed: counting::BYTES_FREED.load(Relaxed),
            live_at_mark: live,
        }
    }
    #[cfg(not(feature = "alloc-count"))]
    AllocMark::default()
}

/// Close a window opened by [`mark`]: the allocator activity since, with
/// `peak_live_bytes` as the maximum live growth over the window. Returns
/// a disabled all-zero instance without `alloc-count`.
pub fn since(m: &AllocMark) -> AllocCounters {
    #[cfg(feature = "alloc-count")]
    {
        use std::sync::atomic::Ordering::Relaxed;
        AllocCounters {
            enabled: true,
            allocations: counting::ALLOCATIONS
                .load(Relaxed)
                .wrapping_sub(m.allocations),
            deallocations: counting::DEALLOCATIONS
                .load(Relaxed)
                .wrapping_sub(m.deallocations),
            bytes_allocated: counting::BYTES_ALLOCATED
                .load(Relaxed)
                .wrapping_sub(m.bytes_allocated),
            bytes_freed: counting::BYTES_FREED
                .load(Relaxed)
                .wrapping_sub(m.bytes_freed),
            peak_live_bytes: counting::PEAK_LIVE_BYTES
                .load(Relaxed)
                .saturating_sub(m.live_at_mark),
        }
    }
    #[cfg(not(feature = "alloc-count"))]
    {
        let _ = m;
        AllocCounters::disabled()
    }
}

/// Cumulative allocation calls so far (0 without `alloc-count`). Cheap
/// enough for per-span sampling by the phase profiler.
pub fn allocations_now() -> u64 {
    #[cfg(feature = "alloc-count")]
    {
        counting::ALLOCATIONS.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "alloc-count"))]
    0
}

/// Cumulative bytes allocated so far (0 without `alloc-count`).
pub fn bytes_allocated_now() -> u64 {
    #[cfg(feature = "alloc-count")]
    {
        counting::BYTES_ALLOCATED.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "alloc-count"))]
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64) -> AllocCounters {
        // Same LCG pattern as the WorkCounters merge-algebra tests.
        let mut c = AllocCounters::enabled();
        let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for (name, _) in AllocCounters::default().fields() {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            assert!(c.set_field(name, x >> 33));
        }
        c
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let (a, b, c) = (sample(1), sample(2), sample(3));
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
    }

    #[test]
    fn merge_identity_is_the_fresh_instance() {
        let a = sample(9);
        assert_eq!(a.merge(&AllocCounters::enabled()), a);
        let via_disabled = a.merge(&AllocCounters::disabled());
        assert_eq!(via_disabled.fields(), a.fields());
    }

    #[test]
    fn json_is_canonical_and_complete() {
        let mut c = AllocCounters::enabled();
        assert!(c.set_field("allocations", 3));
        assert!(c.set_field("bytes_allocated", 256));
        assert!(c.set_field("peak_live_bytes", 128));
        assert_eq!(
            c.to_json(),
            "{\"allocations\":3,\"deallocations\":0,\"bytes_allocated\":256,\
             \"bytes_freed\":0,\"peak_live_bytes\":128}"
        );
        assert_eq!(c.fields().len(), FIELD_COUNT);
        assert!(!c.set_field("no_such_counter", 1));
    }

    #[test]
    fn window_without_feature_is_disabled_zeroes() {
        // Without alloc-count the window API is inert; with it, allocating
        // inside a window must register (tolerant >=: other test threads
        // share the process-global tallies).
        let m = mark();
        let v: Vec<u64> = (0..4096).collect();
        let w = since(&m);
        assert_eq!(w.is_enabled(), counting_enabled());
        if counting_enabled() {
            assert!(w.allocations >= 1, "{w:?}");
            assert!(w.bytes_allocated >= 4096 * 8, "{w:?}");
            assert!(w.peak_live_bytes >= 4096 * 8, "{w:?}");
        } else {
            assert_eq!(w, AllocCounters::disabled());
            assert_eq!(allocations_now(), 0);
            assert_eq!(bytes_allocated_now(), 0);
        }
        drop(v);
    }
}
