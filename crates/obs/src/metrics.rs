//! Deterministic metrics registry.
//!
//! Counters, gauges and log₂ histograms keyed by `&'static str`. All maps
//! are `BTreeMap` (simlint R1): iteration — and therefore the snapshot JSON
//! — is in lexicographic key order, byte-stable across runs. Values are
//! integers only; anything naturally fractional is scaled by the caller
//! before it gets here so artifacts stay float-free.

use crate::json;
use std::collections::BTreeMap;

/// Number of log₂ buckets: bucket 0 holds value 0, bucket `i` (i ≥ 1)
/// holds values whose bit length is `i`, i.e. `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log₂ histogram over `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Samples observed.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample (meaningless when `count == 0`).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Per-bucket sample counts; see [`bucket_index`].
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

/// Which bucket a sample falls into: 0 for 0, otherwise the sample's bit
/// length (so bucket `i` spans `[2^(i-1), 2^i)`).
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

impl Histogram {
    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Append `{"count":..,"sum":..,"min":..,"max":..,"buckets":[[i,n],..]}`
    /// (only non-empty buckets, ascending index).
    pub fn write_json(&self, out: &mut String) {
        out.push('{');
        let first = json::push_u64_field(out, true, "count", self.count);
        let first = json::push_u64_field(out, first, "sum", self.sum);
        let first = json::push_u64_field(
            out,
            first,
            "min",
            if self.count == 0 { 0 } else { self.min },
        );
        let first = json::push_u64_field(out, first, "max", self.max);
        if !first {
            out.push(',');
        }
        json::push_key(out, "buckets");
        out.push('[');
        let mut first_bucket = true;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !first_bucket {
                out.push(',');
            }
            first_bucket = false;
            let _ = std::fmt::Write::write_fmt(out, format_args!("[{i},{n}]"));
        }
        out.push_str("]}");
    }
}

/// An immutable, ordered snapshot of the registry at one instant.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotone counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Last-set / max-tracked gauges.
    pub gauges: BTreeMap<&'static str, i64>,
    /// Log₂ histograms.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsSnapshot {
    /// Append `{"counters":{..},"gauges":{..},"histograms":{..}}` in key
    /// order — byte-stable across runs.
    pub fn write_json(&self, out: &mut String) {
        out.push('{');
        json::push_key(out, "counters");
        out.push('{');
        let mut first = true;
        for (k, v) in &self.counters {
            first = json::push_u64_field(out, first, k, *v);
        }
        out.push_str("},");
        json::push_key(out, "gauges");
        out.push('{');
        let mut first = true;
        for (k, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            json::push_key(out, k);
            let _ = std::fmt::Write::write_fmt(out, format_args!("{v}"));
        }
        out.push_str("},");
        json::push_key(out, "histograms");
        out.push('{');
        let mut first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            json::push_key(out, k);
            h.write_json(out);
        }
        out.push_str("}}");
    }

    /// The snapshot as a standalone JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }
}

/// Counters, gauges and histograms behind one enable switch.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    snap: MetricsSnapshot,
}

impl MetricsRegistry {
    /// A registry that ignores all updates (the default).
    pub fn disabled() -> Self {
        MetricsRegistry::default()
    }

    /// A collecting registry.
    pub fn enabled() -> Self {
        MetricsRegistry {
            enabled: true,
            snap: MetricsSnapshot::default(),
        }
    }

    /// Whether updates are collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Add `by` to counter `name` (creating it at 0).
    #[inline]
    pub fn inc(&mut self, name: &'static str, by: u64) {
        if self.enabled {
            *self.snap.counters.entry(name).or_insert(0) += by;
        }
    }

    /// Set gauge `name` to `value`.
    #[inline]
    pub fn gauge_set(&mut self, name: &'static str, value: i64) {
        if self.enabled {
            self.snap.gauges.insert(name, value);
        }
    }

    /// Raise gauge `name` to `value` if larger (high-water mark).
    #[inline]
    pub fn gauge_max(&mut self, name: &'static str, value: i64) {
        if self.enabled {
            let g = self.snap.gauges.entry(name).or_insert(i64::MIN);
            if value > *g {
                *g = value;
            }
        }
    }

    /// Record `value` into histogram `name`.
    #[inline]
    pub fn observe(&mut self, name: &'static str, value: u64) {
        if self.enabled {
            self.snap.histograms.entry(name).or_default().observe(value);
        }
    }

    /// Read a counter (0 when absent or disabled).
    pub fn counter(&self, name: &'static str) -> u64 {
        self.snap.counters.get(name).copied().unwrap_or(0)
    }

    /// Copy out the current state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.snap.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ignores_everything() {
        let mut m = MetricsRegistry::disabled();
        m.inc("a", 5);
        m.gauge_set("g", -3);
        m.observe("h", 100);
        let s = m.snapshot();
        assert!(s.counters.is_empty() && s.gauges.is_empty() && s.histograms.is_empty());
        assert_eq!(m.counter("a"), 0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_boundary_property_holds_across_the_whole_u64_range() {
        // The bucket-i-spans-[2^(i-1), 2^i) property, checked exhaustively
        // at every power-of-two edge rather than at a few spot values.
        for i in 1..=63u32 {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(bucket_index(lo), i as usize, "lower edge of bucket {i}");
            assert_eq!(bucket_index(hi), i as usize, "upper edge of bucket {i}");
            if i > 1 {
                assert_eq!(bucket_index(lo - 1), i as usize - 1, "below bucket {i}");
            }
        }
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), 64);
        // The extremes must neither panic nor wrap the histogram.
        let mut h = Histogram::default();
        h.observe(0);
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, u64::MAX, "sum saturates instead of wrapping");
        assert_eq!((h.min, h.max), (0, u64::MAX));
        assert_eq!((h.buckets[0], h.buckets[64]), (1, 2));
        // A deterministic pseudo-random sweep across magnitudes: every
        // sample lands in exactly one in-range bucket that contains it.
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mut h = Histogram::default();
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let v = x >> (x % 64);
            let idx = bucket_index(v);
            assert!(idx < HISTOGRAM_BUCKETS);
            if v == 0 {
                assert_eq!(idx, 0);
            } else {
                assert!(v >= 1u64 << (idx - 1), "{v} below bucket {idx}");
                if idx < 64 {
                    assert!(v < 1u64 << idx, "{v} above bucket {idx}");
                }
            }
            h.observe(v);
        }
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
    }

    #[test]
    fn histogram_tracks_extremes() {
        let mut h = Histogram::default();
        for v in [7u64, 0, 1_000_000] {
            h.observe(v);
        }
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 1_000_007);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1_000_000);
    }

    #[test]
    fn snapshot_json_is_key_ordered() {
        let mut m = MetricsRegistry::enabled();
        m.inc("zebra", 1);
        m.inc("alpha", 2);
        m.gauge_set("neg", -7);
        m.observe("wait", 3);
        let json = m.snapshot().to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"alpha\":2,\"zebra\":1},\"gauges\":{\"neg\":-7},\
             \"histograms\":{\"wait\":{\"count\":1,\"sum\":3,\"min\":3,\"max\":3,\
             \"buckets\":[[2,1]]}}}"
        );
    }

    #[test]
    fn gauge_max_is_high_water() {
        let mut m = MetricsRegistry::enabled();
        m.gauge_max("hw", 5);
        m.gauge_max("hw", 3);
        m.gauge_max("hw", 9);
        assert_eq!(m.snapshot().gauges["hw"], 9);
    }
}
