//! Wall-clock phase profiling.
//!
//! This module is the one audited simlint R2 exception outside the bench
//! harness: it reads `std::time::Instant` to time simulator phases
//! (schedule-cycle, backfill, free-profile, event-pump). The readings are
//! *reported only* — they never influence scheduling decisions, event
//! ordering or any simulated quantity, so determinism is untouched. Golden
//! comparisons exclude the profile section by construction
//! (`RunReport::to_json_deterministic`).
//!
//! Spans use an explicit begin/end token rather than a drop guard so that
//! nested phases (backfill inside schedule-cycle) can be timed without
//! holding overlapping `&mut` borrows of the profiler.

use crate::alloc;
use crate::json;
use std::collections::BTreeMap;
use std::time::Instant;

/// Accumulated timing for one named phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Number of completed spans.
    pub calls: u64,
    /// Total wall-clock nanoseconds across those spans (saturating).
    pub total_ns: u64,
    /// Allocator calls attributed to spans of this phase. Zero unless the
    /// `alloc-count` feature is on (see [`crate::alloc`]).
    pub alloc_calls: u64,
    /// Bytes allocated during spans of this phase (same gating).
    pub alloc_bytes: u64,
}

/// An open span: the start instant plus allocator tallies at `begin`.
/// Opaque to callers — obtained from [`PhaseProfiler::begin`] and handed
/// back to [`PhaseProfiler::end`].
#[derive(Clone, Copy, Debug)]
pub struct SpanToken {
    t0: Instant,
    allocs: u64,
    bytes: u64,
}

/// An ordered snapshot of all phase statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// Per-phase stats in name order.
    pub phases: BTreeMap<&'static str, PhaseStat>,
}

impl ProfileSnapshot {
    /// Append `{"phase":{"calls":..,"total_ns":..},..}` in name order.
    /// Values are wall-clock readings — never compared in golden tests.
    pub fn write_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        for (name, stat) in &self.phases {
            if !first {
                out.push(',');
            }
            first = false;
            json::push_key(out, name);
            out.push('{');
            let inner = json::push_u64_field(out, true, "calls", stat.calls);
            let inner = json::push_u64_field(out, inner, "total_ns", stat.total_ns);
            let inner = json::push_u64_field(out, inner, "alloc_calls", stat.alloc_calls);
            let _ = json::push_u64_field(out, inner, "alloc_bytes", stat.alloc_bytes);
            out.push('}');
        }
        out.push('}');
    }
}

/// Named wall-clock span accumulator with a zero-cost disabled path.
#[derive(Clone, Debug, Default)]
pub struct PhaseProfiler {
    enabled: bool,
    snap: ProfileSnapshot,
}

impl PhaseProfiler {
    /// A profiler whose spans are no-ops (the default).
    pub fn disabled() -> Self {
        PhaseProfiler::default()
    }

    /// A collecting profiler.
    pub fn enabled() -> Self {
        PhaseProfiler {
            enabled: true,
            snap: ProfileSnapshot::default(),
        }
    }

    /// Whether spans are timed.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Open a span. Returns `None` (no clock read) when disabled; pass the
    /// token to [`end`](PhaseProfiler::end) to close it. With `alloc-count`
    /// on, the token also snapshots the process-global allocator tallies so
    /// the span's allocation activity can be attributed to its phase.
    #[inline]
    pub fn begin(&self) -> Option<SpanToken> {
        if self.enabled {
            Some(SpanToken {
                t0: Instant::now(),
                allocs: alloc::allocations_now(),
                bytes: alloc::bytes_allocated_now(),
            })
        } else {
            None
        }
    }

    /// Close a span opened by [`begin`](PhaseProfiler::begin), attributing
    /// the elapsed wall-clock time (and, with `alloc-count`, allocator
    /// activity) to `name`.
    #[inline]
    pub fn end(&mut self, name: &'static str, token: Option<SpanToken>) {
        if let Some(span) = token {
            let ns = u64::try_from(span.t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let stat = self.snap.phases.entry(name).or_default();
            stat.calls += 1;
            stat.total_ns = stat.total_ns.saturating_add(ns);
            stat.alloc_calls = stat
                .alloc_calls
                .saturating_add(alloc::allocations_now().wrapping_sub(span.allocs));
            stat.alloc_bytes = stat
                .alloc_bytes
                .saturating_add(alloc::bytes_allocated_now().wrapping_sub(span.bytes));
        }
    }

    /// Copy out the accumulated stats.
    pub fn snapshot(&self) -> ProfileSnapshot {
        self.snap.clone()
    }

    /// Cumulative wall nanos for one phase so far (0 when unseen). Feeds
    /// the flight recorder's per-cycle phase deltas without a snapshot
    /// clone per cycle.
    pub fn total_ns(&self, name: &'static str) -> u64 {
        self.snap.phases.get(name).map_or(0, |s| s.total_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_reads_the_clock() {
        let mut p = PhaseProfiler::disabled();
        let token = p.begin();
        assert!(token.is_none());
        p.end("phase", token);
        assert!(p.snapshot().phases.is_empty());
    }

    #[test]
    fn spans_accumulate_per_name() {
        let mut p = PhaseProfiler::enabled();
        for _ in 0..3 {
            let t = p.begin();
            p.end("cycle", t);
        }
        let t = p.begin();
        p.end("pump", t);
        let snap = p.snapshot();
        assert_eq!(snap.phases["cycle"].calls, 3);
        assert_eq!(snap.phases["pump"].calls, 1);
    }

    #[test]
    fn nested_spans_work() {
        let mut p = PhaseProfiler::enabled();
        let outer = p.begin();
        let inner = p.begin();
        p.end("inner", inner);
        p.end("outer", outer);
        let snap = p.snapshot();
        assert_eq!(snap.phases.len(), 2);
        assert!(snap.phases["outer"].total_ns >= snap.phases["inner"].total_ns);
    }

    #[test]
    fn json_shape() {
        let mut p = PhaseProfiler::enabled();
        let t = p.begin();
        p.end("a", t);
        let mut s = String::new();
        p.snapshot().write_json(&mut s);
        assert!(s.starts_with("{\"a\":{\"calls\":1,\"total_ns\":"), "{s}");
    }
}
