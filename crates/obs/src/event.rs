//! The trace event alphabet.
//!
//! One record per scheduler-visible state change, mirroring the per-event
//! schedule traces of Dubenskaya & Polyakov (arXiv:1909.00394): submissions,
//! starts (split by placement kind), finishes, preemptions and outage
//! boundaries. Every record carries the sim-time (integer seconds) and the
//! scheduling-cycle id it belongs to, so a trace can be replayed or diffed
//! event-for-event.

use crate::json;
use simkit::time::SimTime;

/// How a job came to occupy CPUs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StartKind {
    /// Dispatched from the head of the priority-ordered native queue.
    InOrder,
    /// A native job that jumped a blocked head (backfill placement).
    Backfill,
    /// An interstitial job placed into spare cycles (Figure 1 placement).
    Interstitial,
    /// A checkpointed interstitial job resuming after suspension.
    Resume,
}

impl StartKind {
    /// Stable lowercase tag used in the JSONL encoding.
    pub fn tag(self) -> &'static str {
        match self {
            StartKind::InOrder => "inorder",
            StartKind::Backfill => "backfill",
            StartKind::Interstitial => "interstitial",
            StartKind::Resume => "resume",
        }
    }
}

/// What preemption did to a running interstitial job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PreemptKind {
    /// Work discarded; the job will be resubmitted from scratch.
    Kill,
    /// Progress checkpointed; the job resumes later with remaining work.
    Checkpoint,
}

impl PreemptKind {
    /// Stable lowercase tag used in the JSONL encoding.
    pub fn tag(self) -> &'static str {
        match self {
            PreemptKind::Kill => "kill",
            PreemptKind::Checkpoint => "checkpoint",
        }
    }
}

/// The payload of one trace record (sim-time and cycle id are attached by
/// the sink).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A job entered the system.
    Submit {
        /// Job id.
        job: u64,
        /// CPUs requested.
        cpus: u32,
        /// User-supplied runtime estimate, seconds.
        estimate_s: u64,
        /// True for interstitial jobs.
        interstitial: bool,
    },
    /// A job began executing.
    Start {
        /// Job id.
        job: u64,
        /// CPUs allocated.
        cpus: u32,
        /// Placement kind (in-order / backfill / interstitial / resume).
        kind: StartKind,
    },
    /// A job finished and released its CPUs.
    Finish {
        /// Job id.
        job: u64,
        /// CPUs released.
        cpus: u32,
        /// Queue wait realized by the job, seconds.
        wait_s: u64,
        /// True for interstitial jobs.
        interstitial: bool,
    },
    /// A running interstitial job was preempted for the native head.
    Preempt {
        /// Job id.
        job: u64,
        /// CPUs reclaimed.
        cpus: u32,
        /// Kill or checkpoint.
        kind: PreemptKind,
    },
    /// The machine crossed an outage boundary.
    Outage {
        /// True when the machine is up after this event.
        up: bool,
    },
    /// A node failed, taking its CPUs out of service (schema v2).
    NodeDown {
        /// Node index within the fault model.
        node: u32,
        /// CPUs the node removes from capacity.
        cpus: u32,
    },
    /// A failed node was repaired and rejoined the pool (schema v2).
    NodeUp {
        /// Node index within the fault model.
        node: u32,
        /// CPUs returned to capacity.
        cpus: u32,
    },
    /// A running job was killed by a node failure (schema v2).
    JobFailed {
        /// Job id.
        job: u64,
        /// CPUs the job held.
        cpus: u32,
        /// The failing node's index.
        node: u32,
        /// True for interstitial jobs.
        interstitial: bool,
    },
    /// A fault victim re-entered the system: a native victim requeued at
    /// the queue head, or an interstitial victim released for a backoff
    /// retry (schema v2).
    JobRequeued {
        /// Job id.
        job: u64,
        /// How many times this job has been fault-killed so far.
        attempt: u32,
    },
    /// An evicted interstitial job's progress was rounded down to its last
    /// completed checkpoint under `--recovery ckpt=I` (schema v3). Emitted
    /// at eviction time, summarizing the whole attempt — checkpoints are
    /// not individually traced.
    JobCheckpointed {
        /// Job id.
        job: u64,
        /// Checkpoints completed during the evicted attempt.
        checkpoints: u32,
        /// Total work credited to the job so far, seconds.
        salvaged_s: u64,
        /// Work past the last checkpoint, lost and re-executed, seconds.
        lost_s: u64,
    },
    /// An evicted interstitial job was frozen with all progress intact
    /// under `--recovery suspend` (schema v3).
    JobSuspended {
        /// Job id.
        job: u64,
        /// Work left when the job resumes, seconds.
        remaining_s: u64,
    },
    /// A checkpointed or suspended interstitial job restarted with its
    /// credited progress (schema v3). The matching `start` record carries
    /// `kind:"resume"`.
    JobResumed {
        /// Job id.
        job: u64,
        /// Work remaining at this restart, seconds.
        remaining_s: u64,
    },
    /// An SLO rule started failing at a telemetry tick (schema v4). Only
    /// emitted when a `--slo` watchdog is loaded, so untracked runs keep
    /// their smaller schema stamp bit-for-bit.
    SloBreach {
        /// Rule index within the `--slo` spec.
        rule: u32,
        /// The rule's metric key (interned; see `telemetry::slo_metric_key`).
        metric: &'static str,
        /// Observed signal value at the breach tick.
        value: u64,
        /// The rule's limit, in the signal's units.
        limit: u64,
    },
    /// A previously breached SLO rule recovered at a telemetry tick
    /// (schema v4).
    SloClear {
        /// Rule index within the `--slo` spec.
        rule: u32,
        /// The rule's metric key.
        metric: &'static str,
        /// Observed signal value at the clear tick.
        value: u64,
        /// The rule's limit, in the signal's units.
        limit: u64,
    },
}

impl EventKind {
    /// The minimum trace-schema version able to encode this event: 1 for
    /// the original alphabet, 2 for the fault/retry extension, 3 for the
    /// recovery-policy events, 4 for the SLO watchdog annotations. The
    /// sink stamps the maximum over all recorded events onto the header,
    /// so fault-free traces keep their schema-1 encoding bit-for-bit,
    /// `--recovery kill` runs stay schema 2, and runs without `--slo`
    /// never stamp 4.
    pub fn schema_version(&self) -> u64 {
        match self {
            EventKind::Submit { .. }
            | EventKind::Start { .. }
            | EventKind::Finish { .. }
            | EventKind::Preempt { .. }
            | EventKind::Outage { .. } => 1,
            EventKind::NodeDown { .. }
            | EventKind::NodeUp { .. }
            | EventKind::JobFailed { .. }
            | EventKind::JobRequeued { .. } => 2,
            EventKind::JobCheckpointed { .. }
            | EventKind::JobSuspended { .. }
            | EventKind::JobResumed { .. } => 3,
            EventKind::SloBreach { .. } | EventKind::SloClear { .. } => 4,
        }
    }
}

/// A fully tagged trace record: when, in which scheduling cycle, and what.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation instant, integer seconds.
    pub t: SimTime,
    /// Scheduling-cycle id the event belongs to (0 before the first cycle).
    pub cycle: u64,
    /// The event payload.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Append this record as one JSON line (without trailing newline).
    pub fn write_jsonl(&self, out: &mut String) {
        out.push('{');
        let first = json::push_u64_field(out, true, "t", self.t.as_secs());
        let first = json::push_u64_field(out, first, "cycle", self.cycle);
        match self.kind {
            EventKind::Submit {
                job,
                cpus,
                estimate_s,
                interstitial,
            } => {
                let first = json::push_str_field(out, first, "ev", "submit");
                let first = json::push_u64_field(out, first, "job", job);
                let first = json::push_u64_field(out, first, "cpus", u64::from(cpus));
                let first = json::push_u64_field(out, first, "estimate_s", estimate_s);
                let _ = json::push_str_field(
                    out,
                    first,
                    "class",
                    if interstitial {
                        "interstitial"
                    } else {
                        "native"
                    },
                );
            }
            EventKind::Start { job, cpus, kind } => {
                let first = json::push_str_field(out, first, "ev", "start");
                let first = json::push_u64_field(out, first, "job", job);
                let first = json::push_u64_field(out, first, "cpus", u64::from(cpus));
                let _ = json::push_str_field(out, first, "kind", kind.tag());
            }
            EventKind::Finish {
                job,
                cpus,
                wait_s,
                interstitial,
            } => {
                let first = json::push_str_field(out, first, "ev", "finish");
                let first = json::push_u64_field(out, first, "job", job);
                let first = json::push_u64_field(out, first, "cpus", u64::from(cpus));
                let first = json::push_u64_field(out, first, "wait_s", wait_s);
                let _ = json::push_str_field(
                    out,
                    first,
                    "class",
                    if interstitial {
                        "interstitial"
                    } else {
                        "native"
                    },
                );
            }
            EventKind::Preempt { job, cpus, kind } => {
                let first = json::push_str_field(out, first, "ev", "preempt");
                let first = json::push_u64_field(out, first, "job", job);
                let first = json::push_u64_field(out, first, "cpus", u64::from(cpus));
                let _ = json::push_str_field(out, first, "kind", kind.tag());
            }
            EventKind::Outage { up } => {
                let first = json::push_str_field(out, first, "ev", "outage");
                let _ = json::push_str_field(out, first, "up", if up { "true" } else { "false" });
            }
            EventKind::NodeDown { node, cpus } => {
                let first = json::push_str_field(out, first, "ev", "node_down");
                let first = json::push_u64_field(out, first, "node", u64::from(node));
                let _ = json::push_u64_field(out, first, "cpus", u64::from(cpus));
            }
            EventKind::NodeUp { node, cpus } => {
                let first = json::push_str_field(out, first, "ev", "node_up");
                let first = json::push_u64_field(out, first, "node", u64::from(node));
                let _ = json::push_u64_field(out, first, "cpus", u64::from(cpus));
            }
            EventKind::JobFailed {
                job,
                cpus,
                node,
                interstitial,
            } => {
                let first = json::push_str_field(out, first, "ev", "job_failed");
                let first = json::push_u64_field(out, first, "job", job);
                let first = json::push_u64_field(out, first, "cpus", u64::from(cpus));
                let first = json::push_u64_field(out, first, "node", u64::from(node));
                let _ = json::push_str_field(
                    out,
                    first,
                    "class",
                    if interstitial {
                        "interstitial"
                    } else {
                        "native"
                    },
                );
            }
            EventKind::JobRequeued { job, attempt } => {
                let first = json::push_str_field(out, first, "ev", "job_requeued");
                let first = json::push_u64_field(out, first, "job", job);
                let _ = json::push_u64_field(out, first, "attempt", u64::from(attempt));
            }
            EventKind::JobCheckpointed {
                job,
                checkpoints,
                salvaged_s,
                lost_s,
            } => {
                let first = json::push_str_field(out, first, "ev", "job_checkpointed");
                let first = json::push_u64_field(out, first, "job", job);
                let first = json::push_u64_field(out, first, "checkpoints", u64::from(checkpoints));
                let first = json::push_u64_field(out, first, "salvaged_s", salvaged_s);
                let _ = json::push_u64_field(out, first, "lost_s", lost_s);
            }
            EventKind::JobSuspended { job, remaining_s } => {
                let first = json::push_str_field(out, first, "ev", "job_suspended");
                let first = json::push_u64_field(out, first, "job", job);
                let _ = json::push_u64_field(out, first, "remaining_s", remaining_s);
            }
            EventKind::JobResumed { job, remaining_s } => {
                let first = json::push_str_field(out, first, "ev", "job_resumed");
                let first = json::push_u64_field(out, first, "job", job);
                let _ = json::push_u64_field(out, first, "remaining_s", remaining_s);
            }
            EventKind::SloBreach {
                rule,
                metric,
                value,
                limit,
            } => {
                let first = json::push_str_field(out, first, "ev", "slo_breach");
                let first = json::push_u64_field(out, first, "rule", u64::from(rule));
                let first = json::push_str_field(out, first, "metric", metric);
                let first = json::push_u64_field(out, first, "value", value);
                let _ = json::push_u64_field(out, first, "limit", limit);
            }
            EventKind::SloClear {
                rule,
                metric,
                value,
                limit,
            } => {
                let first = json::push_str_field(out, first, "ev", "slo_clear");
                let first = json::push_u64_field(out, first, "rule", u64::from(rule));
                let first = json::push_str_field(out, first, "metric", metric);
                let first = json::push_u64_field(out, first, "value", value);
                let _ = json::push_u64_field(out, first, "limit", limit);
            }
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_encoding_is_stable() {
        let ev = TraceEvent {
            t: SimTime::from_secs(42),
            cycle: 7,
            kind: EventKind::Start {
                job: 9,
                cpus: 32,
                kind: StartKind::Backfill,
            },
        };
        let mut s = String::new();
        ev.write_jsonl(&mut s);
        assert_eq!(
            s,
            "{\"t\":42,\"cycle\":7,\"ev\":\"start\",\"job\":9,\"cpus\":32,\"kind\":\"backfill\"}"
        );
    }

    #[test]
    fn all_kinds_encode() {
        let kinds = [
            EventKind::Submit {
                job: 1,
                cpus: 2,
                estimate_s: 3,
                interstitial: false,
            },
            EventKind::Finish {
                job: 1,
                cpus: 2,
                wait_s: 0,
                interstitial: true,
            },
            EventKind::Preempt {
                job: 1,
                cpus: 2,
                kind: PreemptKind::Checkpoint,
            },
            EventKind::Outage { up: false },
            EventKind::NodeDown { node: 3, cpus: 8 },
            EventKind::NodeUp { node: 3, cpus: 8 },
            EventKind::JobFailed {
                job: 1,
                cpus: 2,
                node: 3,
                interstitial: true,
            },
            EventKind::JobRequeued { job: 1, attempt: 2 },
            EventKind::JobCheckpointed {
                job: 1,
                checkpoints: 2,
                salvaged_s: 600,
                lost_s: 55,
            },
            EventKind::JobSuspended {
                job: 1,
                remaining_s: 45,
            },
            EventKind::JobResumed {
                job: 1,
                remaining_s: 45,
            },
            EventKind::SloBreach {
                rule: 0,
                metric: "util",
                value: 400,
                limit: 850,
            },
            EventKind::SloClear {
                rule: 0,
                metric: "util",
                value: 900,
                limit: 850,
            },
        ];
        for k in kinds {
            let mut s = String::new();
            TraceEvent {
                t: SimTime::ZERO,
                cycle: 0,
                kind: k,
            }
            .write_jsonl(&mut s);
            assert!(s.starts_with("{\"t\":0,\"cycle\":0,\"ev\":\""), "{s}");
            assert!(s.ends_with('}'));
        }
    }

    #[test]
    fn fault_events_need_schema_v2() {
        assert_eq!(EventKind::Outage { up: true }.schema_version(), 1);
        assert_eq!(EventKind::NodeDown { node: 0, cpus: 4 }.schema_version(), 2);
        assert_eq!(
            EventKind::JobRequeued { job: 1, attempt: 1 }.schema_version(),
            2
        );
        let ev = TraceEvent {
            t: SimTime::from_secs(9),
            cycle: 2,
            kind: EventKind::JobFailed {
                job: 5,
                cpus: 16,
                node: 1,
                interstitial: false,
            },
        };
        let mut s = String::new();
        ev.write_jsonl(&mut s);
        assert_eq!(
            s,
            "{\"t\":9,\"cycle\":2,\"ev\":\"job_failed\",\"job\":5,\"cpus\":16,\"node\":1,\"class\":\"native\"}"
        );
    }

    #[test]
    fn recovery_events_need_schema_v3() {
        let kinds = [
            EventKind::JobCheckpointed {
                job: 7,
                checkpoints: 3,
                salvaged_s: 900,
                lost_s: 120,
            },
            EventKind::JobSuspended {
                job: 7,
                remaining_s: 300,
            },
            EventKind::JobResumed {
                job: 7,
                remaining_s: 300,
            },
        ];
        for k in &kinds {
            assert_eq!(k.schema_version(), 3);
        }
        let mut s = String::new();
        TraceEvent {
            t: SimTime::from_secs(9),
            cycle: 2,
            kind: kinds[0],
        }
        .write_jsonl(&mut s);
        assert_eq!(
            s,
            "{\"t\":9,\"cycle\":2,\"ev\":\"job_checkpointed\",\"job\":7,\
             \"checkpoints\":3,\"salvaged_s\":900,\"lost_s\":120}"
        );
        s.clear();
        TraceEvent {
            t: SimTime::from_secs(10),
            cycle: 2,
            kind: kinds[1],
        }
        .write_jsonl(&mut s);
        assert_eq!(
            s,
            "{\"t\":10,\"cycle\":2,\"ev\":\"job_suspended\",\"job\":7,\"remaining_s\":300}"
        );
        s.clear();
        TraceEvent {
            t: SimTime::from_secs(11),
            cycle: 3,
            kind: kinds[2],
        }
        .write_jsonl(&mut s);
        assert_eq!(
            s,
            "{\"t\":11,\"cycle\":3,\"ev\":\"job_resumed\",\"job\":7,\"remaining_s\":300}"
        );
    }

    #[test]
    fn slo_events_need_schema_v4() {
        let breach = EventKind::SloBreach {
            rule: 1,
            metric: "native_p99_wait",
            value: 4000,
            limit: 3600,
        };
        let clear = EventKind::SloClear {
            rule: 1,
            metric: "native_p99_wait",
            value: 3000,
            limit: 3600,
        };
        assert_eq!(breach.schema_version(), 4);
        assert_eq!(clear.schema_version(), 4);
        let mut s = String::new();
        TraceEvent {
            t: SimTime::from_secs(600),
            cycle: 12,
            kind: breach,
        }
        .write_jsonl(&mut s);
        assert_eq!(
            s,
            "{\"t\":600,\"cycle\":12,\"ev\":\"slo_breach\",\"rule\":1,\
             \"metric\":\"native_p99_wait\",\"value\":4000,\"limit\":3600}"
        );
        s.clear();
        TraceEvent {
            t: SimTime::from_secs(900),
            cycle: 14,
            kind: clear,
        }
        .write_jsonl(&mut s);
        assert_eq!(
            s,
            "{\"t\":900,\"cycle\":14,\"ev\":\"slo_clear\",\"rule\":1,\
             \"metric\":\"native_p99_wait\",\"value\":3000,\"limit\":3600}"
        );
    }
}
