//! Minimal deterministic JSON emission.
//!
//! The workspace is dependency-free (no serde), and the golden-trace suite
//! requires byte-stable output, so everything here writes integers and
//! escaped strings straight into a `String` with no locale, float or
//! map-order pitfalls. Floats never appear: quantities that are naturally
//! fractional are emitted as scaled integers by the callers (e.g.
//! milli-units), keeping R3's "no float time" discipline in the artifacts
//! too.

/// Append a JSON string literal (with escaping) to `out`.
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `"key":` to `out`.
pub fn push_key(out: &mut String, key: &str) {
    push_str_literal(out, key);
    out.push(':');
}

/// Append `"key":<u64>` with a leading comma when `first` is false; returns
/// false (the next field is no longer first).
pub fn push_u64_field(out: &mut String, first: bool, key: &str, value: u64) -> bool {
    if !first {
        out.push(',');
    }
    push_key(out, key);
    let _ = std::fmt::Write::write_fmt(out, format_args!("{value}"));
    false
}

/// Append `"key":"value"` with a leading comma when `first` is false.
pub fn push_str_field(out: &mut String, first: bool, key: &str, value: &str) -> bool {
    if !first {
        out.push(',');
    }
    push_key(out, key);
    push_str_literal(out, value);
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        push_str_literal(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn fields_chain_with_commas() {
        let mut s = String::from("{");
        let first = true;
        let first = push_u64_field(&mut s, first, "a", 1);
        let first = push_str_field(&mut s, first, "b", "x");
        let _ = push_u64_field(&mut s, first, "c", 2);
        s.push('}');
        assert_eq!(s, "{\"a\":1,\"b\":\"x\",\"c\":2}");
    }
}
