//! Deterministic work counters.
//!
//! Wall-clock timings answer "how long", but cannot attribute cost: the
//! backfill literature (Mu'alem & Feitelson) shows scheduler expense is
//! dominated by queue/profile *scan work*, which only shows up as counts.
//! [`WorkCounters`] collects those counts — events popped, schedule cycles,
//! backfill candidates scanned, free-profile segments walked, heap peak
//! depth, requeue/retry churn — as pure functions of the simulation seed.
//!
//! Three properties the perf-regression gate relies on:
//!
//! * **Deterministic** — same seed, same machine ⇒ bitwise-identical
//!   counters, on any host. CI diffs them *exactly*.
//! * **Zero-cost when disabled** — every `record_*` method is a single
//!   predictable branch on a bool, the same pattern as
//!   [`crate::metrics::MetricsRegistry`].
//! * **Out-of-band** — counters live in [`crate::report::RunReport`], never
//!   in the trace stream, so golden traces stay byte-identical whether or
//!   not counting is on.

use crate::json;

/// The number of individual counters in [`WorkCounters::fields`].
pub const FIELD_COUNT: usize = 13;

/// Deterministic per-run work counters (see module docs).
///
/// Plain `Copy` data: snapshotting is a move, merging is fieldwise
/// arithmetic (sums, except the peak which is a max), so `merge` is
/// associative and commutative with [`WorkCounters::disabled`] as identity
/// on the counter values — properties pinned by tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkCounters {
    enabled: bool,
    /// Events popped off the future-event list.
    pub events_popped: u64,
    /// Events ever scheduled onto the future-event list.
    pub events_scheduled: u64,
    /// High-water mark of the future-event list.
    pub heap_peak_depth: u64,
    /// Scheduling cycles executed.
    pub sched_cycles: u64,
    /// Jobs started in queue order.
    pub inorder_starts: u64,
    /// Jobs started by backfill.
    pub backfill_starts: u64,
    /// Queued jobs examined by the backfill planner, summed over cycles.
    pub backfill_candidates_scanned: u64,
    /// Segments in the free-capacity profiles built for planning.
    pub profile_segments_walked: u64,
    /// Native jobs requeued after a fault kill.
    pub requeues: u64,
    /// Interstitial retry submissions after a fault kill.
    pub retries: u64,
    /// Checkpoints completed by interstitial jobs (`--recovery ckpt=I`).
    /// Stays zero under kill-restart: the legacy path never engages the
    /// recovery ledger, keeping frozen perf baselines comparable.
    pub checkpoints_taken: u64,
    /// CPU-seconds of evicted interstitial progress carried across a
    /// resume instead of being discarded.
    pub cpu_s_salvaged: u64,
    /// CPU-seconds of evicted interstitial progress lost past the last
    /// checkpoint and re-executed (zero under kill-restart, which accounts
    /// its losses as fault waste instead).
    pub cpu_s_reexecuted: u64,
}

impl WorkCounters {
    /// Counting off — the zero-cost default.
    pub fn disabled() -> Self {
        WorkCounters::default()
    }

    /// Counting on.
    pub fn enabled() -> Self {
        WorkCounters {
            enabled: true,
            ..WorkCounters::default()
        }
    }

    /// Is this instance collecting?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Fold in event-pump totals (adds; the peak folds as a max).
    #[inline]
    pub fn record_engine(&mut self, popped: u64, scheduled: u64, peak_depth: u64) {
        if !self.enabled {
            return;
        }
        self.events_popped += popped;
        self.events_scheduled += scheduled;
        self.heap_peak_depth = self.heap_peak_depth.max(peak_depth);
    }

    /// Fold in scheduler totals.
    #[inline]
    pub fn record_sched(
        &mut self,
        cycles: u64,
        inorder: u64,
        backfill: u64,
        candidates_scanned: u64,
        segments_walked: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.sched_cycles += cycles;
        self.inorder_starts += inorder;
        self.backfill_starts += backfill;
        self.backfill_candidates_scanned += candidates_scanned;
        self.profile_segments_walked += segments_walked;
    }

    /// Fold in fault-churn totals.
    #[inline]
    pub fn record_churn(&mut self, requeues: u64, retries: u64) {
        if !self.enabled {
            return;
        }
        self.requeues += requeues;
        self.retries += retries;
    }

    /// Fold in recovery-ledger totals (checkpoint/suspend policies only).
    #[inline]
    pub fn record_recovery(&mut self, checkpoints: u64, salvaged: u64, reexecuted: u64) {
        if !self.enabled {
            return;
        }
        self.checkpoints_taken += checkpoints;
        self.cpu_s_salvaged += salvaged;
        self.cpu_s_reexecuted += reexecuted;
    }

    /// All counters as `(name, value)` pairs in canonical (JSON) order.
    ///
    /// The single source of truth for serialization, parsing and the
    /// perf-compare diff, so the three can never drift apart.
    pub fn fields(&self) -> [(&'static str, u64); FIELD_COUNT] {
        [
            ("events_popped", self.events_popped),
            ("events_scheduled", self.events_scheduled),
            ("heap_peak_depth", self.heap_peak_depth),
            ("sched_cycles", self.sched_cycles),
            ("inorder_starts", self.inorder_starts),
            ("backfill_starts", self.backfill_starts),
            (
                "backfill_candidates_scanned",
                self.backfill_candidates_scanned,
            ),
            ("profile_segments_walked", self.profile_segments_walked),
            ("requeues", self.requeues),
            ("retries", self.retries),
            ("checkpoints_taken", self.checkpoints_taken),
            ("cpu_s_salvaged", self.cpu_s_salvaged),
            ("cpu_s_reexecuted", self.cpu_s_reexecuted),
        ]
    }

    /// Set a counter by its canonical name; false if the name is unknown.
    pub fn set_field(&mut self, name: &str, value: u64) -> bool {
        let slot = match name {
            "events_popped" => &mut self.events_popped,
            "events_scheduled" => &mut self.events_scheduled,
            "heap_peak_depth" => &mut self.heap_peak_depth,
            "sched_cycles" => &mut self.sched_cycles,
            "inorder_starts" => &mut self.inorder_starts,
            "backfill_starts" => &mut self.backfill_starts,
            "backfill_candidates_scanned" => &mut self.backfill_candidates_scanned,
            "profile_segments_walked" => &mut self.profile_segments_walked,
            "requeues" => &mut self.requeues,
            "retries" => &mut self.retries,
            "checkpoints_taken" => &mut self.checkpoints_taken,
            "cpu_s_salvaged" => &mut self.cpu_s_salvaged,
            "cpu_s_reexecuted" => &mut self.cpu_s_reexecuted,
            _ => return false,
        };
        *slot = value;
        true
    }

    /// Combine two snapshots: sums everywhere, max for the peak depth.
    ///
    /// Associative and commutative; merging with a fresh instance is the
    /// identity on counter values. Enablement is sticky (`or`).
    pub fn merge(&self, other: &WorkCounters) -> WorkCounters {
        WorkCounters {
            enabled: self.enabled || other.enabled,
            events_popped: self.events_popped + other.events_popped,
            events_scheduled: self.events_scheduled + other.events_scheduled,
            heap_peak_depth: self.heap_peak_depth.max(other.heap_peak_depth),
            sched_cycles: self.sched_cycles + other.sched_cycles,
            inorder_starts: self.inorder_starts + other.inorder_starts,
            backfill_starts: self.backfill_starts + other.backfill_starts,
            backfill_candidates_scanned: self.backfill_candidates_scanned
                + other.backfill_candidates_scanned,
            profile_segments_walked: self.profile_segments_walked + other.profile_segments_walked,
            requeues: self.requeues + other.requeues,
            retries: self.retries + other.retries,
            checkpoints_taken: self.checkpoints_taken + other.checkpoints_taken,
            cpu_s_salvaged: self.cpu_s_salvaged + other.cpu_s_salvaged,
            cpu_s_reexecuted: self.cpu_s_reexecuted + other.cpu_s_reexecuted,
        }
    }

    /// Append `{"events_popped":N,…}` to `out` in canonical field order.
    pub fn write_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        for (name, value) in self.fields() {
            first = json::push_u64_field(out, first, name, value);
        }
        out.push('}');
    }

    /// The counters as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64) -> WorkCounters {
        // Small deterministic LCG so tests need no RNG dependency.
        let mut w = WorkCounters::enabled();
        let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for (name, _) in WorkCounters::default().fields() {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            assert!(w.set_field(name, x >> 33));
        }
        w
    }

    #[test]
    fn disabled_records_nothing() {
        let mut w = WorkCounters::disabled();
        w.record_engine(10, 20, 5);
        w.record_sched(1, 2, 3, 4, 5);
        w.record_churn(6, 7);
        w.record_recovery(1, 2, 3);
        assert_eq!(w, WorkCounters::disabled());
    }

    #[test]
    fn enabled_accumulates_and_peaks() {
        let mut w = WorkCounters::enabled();
        w.record_engine(10, 12, 5);
        w.record_engine(1, 2, 3);
        assert_eq!(w.events_popped, 11);
        assert_eq!(w.events_scheduled, 14);
        assert_eq!(w.heap_peak_depth, 5, "peak is a max, not a sum");
        w.record_sched(2, 1, 1, 7, 9);
        w.record_churn(1, 4);
        w.record_recovery(2, 640, 96);
        assert_eq!(w.sched_cycles, 2);
        assert_eq!(w.backfill_candidates_scanned, 7);
        assert_eq!(w.profile_segments_walked, 9);
        assert_eq!(w.requeues, 1);
        assert_eq!(w.retries, 4);
        assert_eq!(w.checkpoints_taken, 2);
        assert_eq!(w.cpu_s_salvaged, 640);
        assert_eq!(w.cpu_s_reexecuted, 96);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let (a, b, c) = (sample(1), sample(2), sample(3));
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
    }

    #[test]
    fn merge_identity_is_the_fresh_instance() {
        let a = sample(42);
        assert_eq!(a.merge(&WorkCounters::enabled()), a);
        let via_disabled = a.merge(&WorkCounters::disabled());
        assert_eq!(via_disabled.fields(), a.fields());
    }

    #[test]
    fn json_is_canonical_and_complete() {
        let mut w = WorkCounters::enabled();
        w.record_engine(3, 4, 2);
        w.record_sched(1, 1, 0, 5, 6);
        assert_eq!(
            w.to_json(),
            "{\"events_popped\":3,\"events_scheduled\":4,\"heap_peak_depth\":2,\
             \"sched_cycles\":1,\"inorder_starts\":1,\"backfill_starts\":0,\
             \"backfill_candidates_scanned\":5,\"profile_segments_walked\":6,\
             \"requeues\":0,\"retries\":0,\"checkpoints_taken\":0,\
             \"cpu_s_salvaged\":0,\"cpu_s_reexecuted\":0}"
        );
        assert_eq!(w.fields().len(), FIELD_COUNT);
    }

    #[test]
    fn set_field_round_trips_every_name() {
        let mut w = WorkCounters::enabled();
        for (i, (name, _)) in WorkCounters::default().fields().iter().enumerate() {
            assert!(w.set_field(name, i as u64 + 1));
        }
        for (i, (_, value)) in w.fields().iter().enumerate() {
            assert_eq!(*value, i as u64 + 1);
        }
        assert!(!w.set_field("no_such_counter", 1));
    }
}
