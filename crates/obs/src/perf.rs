//! Machine-readable perf baselines and the regression-compare rules.
//!
//! The bench harness (`bench --bin perf`) writes one `BENCH_<machine>.json`
//! per calibrated machine; `interstitial perf compare <old> <new>` diffs two
//! of them. Both sides of that contract live here so the writer, the parser
//! and the diff can never drift apart.
//!
//! Two kinds of data share the file, with different comparison rules:
//!
//! * **Work counters** ([`crate::work::WorkCounters`]) — deterministic, so
//!   they are compared *exactly*: any increase is a regression, any decrease
//!   an improvement.
//! * **Wall-clock** — noisy, so medians are compared within a caller-chosen
//!   percentage tolerance (CI uses a generous one).
//!
//! All quantities are integers (simlint R3 discipline extends to the
//! artifacts): wall time in microseconds, throughput in milli-jobs/sec and
//! milli-events/sec. The emitted JSON is deterministic — BTreeMap scenario
//! order, fixed field order — so baseline diffs in git history are readable.

use crate::alloc::AllocCounters;
use crate::json;
use crate::work::WorkCounters;
use std::collections::BTreeMap;

/// Current baseline schema version. Schema 2 added the optional per-scenario
/// `"mem"` section (allocation counters from the `alloc-count` feature);
/// schema-1 files remain readable, but [`compare`] refuses mixed-schema
/// pairs — regenerate both sides with the same bench harness instead.
pub const PERF_SCHEMA: u64 = 2;

/// Measured results for one scenario (e.g. `fault_free` or `faulted`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScenarioPerf {
    /// Median wall time over the repetitions, microseconds.
    pub wall_us_median: u64,
    /// Median absolute deviation of the wall times, microseconds.
    pub wall_us_mad: u64,
    /// Jobs completed per replay (native + interstitial).
    pub jobs: u64,
    /// Events processed per replay.
    pub events: u64,
    /// Throughput: jobs per second × 1000, from the median wall time.
    pub jobs_per_sec_milli: u64,
    /// Throughput: events per second × 1000, from the median wall time.
    pub events_per_sec_milli: u64,
    /// Deterministic work counters (identical across repetitions).
    pub work: WorkCounters,
    /// Allocation counters (schema ≥ 2, present only when the harness was
    /// built with `alloc-count`; identical across repetitions).
    pub mem: Option<AllocCounters>,
}

/// One machine's perf baseline: scenarios plus provenance.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PerfBaseline {
    /// Baseline schema version ([`PERF_SCHEMA`]).
    pub schema: u64,
    /// Machine preset key (`ross`, `blue_mountain`, `blue_pacific`).
    pub machine: String,
    /// Git revision the baseline was recorded at (informational only).
    pub git_rev: String,
    /// Timed repetitions per scenario.
    pub reps: u64,
    /// Warmup repetitions (untimed).
    pub warmup: u64,
    /// Trace truncation: replay only the first N jobs (0 = full trace).
    pub jobs_prefix: u64,
    /// Scenario name → measurements, in BTreeMap (sorted) order.
    pub scenarios: BTreeMap<String, ScenarioPerf>,
}

impl PerfBaseline {
    /// Serialize as deterministic, pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        for (key, value) in [
            ("schema", self.schema),
            ("reps", self.reps),
            ("warmup", self.warmup),
            ("jobs_prefix", self.jobs_prefix),
        ] {
            out.push_str("  ");
            json::push_key(&mut out, key);
            out.push_str(&format!("{value},\n"));
        }
        out.push_str("  ");
        let _ = json::push_str_field(&mut out, true, "machine", &self.machine);
        out.push_str(",\n  ");
        let _ = json::push_str_field(&mut out, true, "git_rev", &self.git_rev);
        out.push_str(",\n  \"scenarios\":{");
        let mut first_scn = true;
        for (name, s) in &self.scenarios {
            if !first_scn {
                out.push(',');
            }
            first_scn = false;
            out.push_str("\n    ");
            json::push_key(&mut out, name);
            out.push_str("{\n");
            for (key, value) in [
                ("wall_us_median", s.wall_us_median),
                ("wall_us_mad", s.wall_us_mad),
                ("jobs", s.jobs),
                ("events", s.events),
                ("jobs_per_sec_milli", s.jobs_per_sec_milli),
                ("events_per_sec_milli", s.events_per_sec_milli),
            ] {
                out.push_str("      ");
                json::push_key(&mut out, key);
                out.push_str(&format!("{value},\n"));
            }
            out.push_str("      ");
            json::push_key(&mut out, "work");
            s.work.write_json(&mut out);
            if let Some(mem) = &s.mem {
                out.push_str(",\n      ");
                json::push_key(&mut out, "mem");
                mem.write_json(&mut out);
            }
            out.push_str("\n    }");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parse a baseline written by [`PerfBaseline::to_json`].
    ///
    /// Accepts any whitespace layout; unknown keys are ignored so older
    /// readers tolerate newer writers.
    pub fn from_json(text: &str) -> Result<PerfBaseline, String> {
        let root = match parse_value(text)? {
            JsonValue::Object(map) => map,
            _ => return Err("baseline root is not a JSON object".to_string()),
        };
        let mut b = PerfBaseline::default();
        for (key, value) in &root {
            match (key.as_str(), value) {
                ("schema", JsonValue::Number(n)) => b.schema = *n,
                ("reps", JsonValue::Number(n)) => b.reps = *n,
                ("warmup", JsonValue::Number(n)) => b.warmup = *n,
                ("jobs_prefix", JsonValue::Number(n)) => b.jobs_prefix = *n,
                ("machine", JsonValue::String(s)) => b.machine = s.clone(),
                ("git_rev", JsonValue::String(s)) => b.git_rev = s.clone(),
                ("scenarios", JsonValue::Object(scns)) => {
                    for (name, scn) in scns {
                        b.scenarios
                            .insert(name.clone(), scenario_from_value(name, scn)?);
                    }
                }
                _ => {}
            }
        }
        // Schema 1 is schema 2 without the optional "mem" sections, so the
        // same reader accepts both; `compare` still refuses mixed pairs.
        if b.schema != PERF_SCHEMA && b.schema != 1 {
            return Err(format!(
                "unsupported baseline schema {} (expected {PERF_SCHEMA} or 1)",
                b.schema
            ));
        }
        Ok(b)
    }
}

fn scenario_from_value(name: &str, value: &JsonValue) -> Result<ScenarioPerf, String> {
    let map = match value {
        JsonValue::Object(map) => map,
        _ => return Err(format!("scenario {name:?} is not a JSON object")),
    };
    let mut s = ScenarioPerf::default();
    for (key, value) in map {
        match (key.as_str(), value) {
            ("wall_us_median", JsonValue::Number(n)) => s.wall_us_median = *n,
            ("wall_us_mad", JsonValue::Number(n)) => s.wall_us_mad = *n,
            ("jobs", JsonValue::Number(n)) => s.jobs = *n,
            ("events", JsonValue::Number(n)) => s.events = *n,
            ("jobs_per_sec_milli", JsonValue::Number(n)) => s.jobs_per_sec_milli = *n,
            ("events_per_sec_milli", JsonValue::Number(n)) => s.events_per_sec_milli = *n,
            ("work", JsonValue::Object(work)) => {
                let mut w = WorkCounters::enabled();
                for (counter, v) in work {
                    if let JsonValue::Number(n) = v {
                        // Unknown counters are ignored (forward compat).
                        let _ = w.set_field(counter, *n);
                    }
                }
                s.work = w;
            }
            ("mem", JsonValue::Object(mem)) => {
                let mut m = AllocCounters::enabled();
                for (counter, v) in mem {
                    if let JsonValue::Number(n) = v {
                        let _ = m.set_field(counter, *n);
                    }
                }
                s.mem = Some(m);
            }
            _ => {}
        }
    }
    Ok(s)
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

/// Outcome of diffing two baselines.
#[derive(Clone, Debug, Default)]
pub struct PerfComparison {
    /// Hard failures: counter increases, wall blow-ups, shape mismatches.
    pub regressions: Vec<String>,
    /// Counter decreases and wall speed-ups (informational).
    pub improvements: Vec<String>,
    /// Neutral observations (provenance changes, new scenarios).
    pub notes: Vec<String>,
}

impl PerfComparison {
    /// True when the gate should fail.
    pub fn is_regression(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// Human-readable report, one finding per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.regressions {
            out.push_str("REGRESSION  ");
            out.push_str(r);
            out.push('\n');
        }
        for i in &self.improvements {
            out.push_str("improvement ");
            out.push_str(i);
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str("note        ");
            out.push_str(n);
            out.push('\n');
        }
        if self.regressions.is_empty() && self.improvements.is_empty() {
            out.push_str("no change: counters identical, wall within tolerance\n");
        }
        out
    }
}

/// Diff `new` against `old`: counters exactly, wall medians within
/// `wall_tol_pct` percent. Provenance (`git_rev`, `reps`) never fails the
/// gate; shape mismatches (machine, jobs_prefix, missing scenarios) do,
/// because they make the counters incomparable.
pub fn compare(old: &PerfBaseline, new: &PerfBaseline, wall_tol_pct: u64) -> PerfComparison {
    let mut cmp = PerfComparison::default();
    if old.schema != new.schema {
        cmp.regressions.push(format!(
            "schema mismatch: baseline is schema {}, candidate is schema {} — \
             regenerate both sides with the same bench harness",
            old.schema, new.schema
        ));
        return cmp;
    }
    if old.machine != new.machine {
        cmp.regressions.push(format!(
            "machine mismatch: baseline is {:?}, candidate is {:?}",
            old.machine, new.machine
        ));
        return cmp;
    }
    if old.jobs_prefix != new.jobs_prefix {
        cmp.regressions.push(format!(
            "jobs_prefix mismatch: {} vs {} — counters are incomparable",
            old.jobs_prefix, new.jobs_prefix
        ));
        return cmp;
    }
    if old.git_rev != new.git_rev {
        cmp.notes
            .push(format!("git_rev {} -> {}", old.git_rev, new.git_rev));
    }
    for (name, old_s) in &old.scenarios {
        let Some(new_s) = new.scenarios.get(name) else {
            cmp.regressions
                .push(format!("{name}: scenario missing from candidate"));
            continue;
        };
        for ((counter, old_v), (_, new_v)) in
            old_s.work.fields().iter().zip(new_s.work.fields().iter())
        {
            if new_v > old_v {
                cmp.regressions.push(format!(
                    "{name}: counter {counter} rose {old_v} -> {new_v} (+{})",
                    new_v - old_v
                ));
            } else if new_v < old_v {
                cmp.improvements.push(format!(
                    "{name}: counter {counter} fell {old_v} -> {new_v} (-{})",
                    old_v - new_v
                ));
            }
        }
        match (&old_s.mem, &new_s.mem) {
            (Some(old_m), Some(new_m)) => {
                // Allocation counters are deterministic per build, so they
                // gate exactly, like the work counters.
                for ((counter, old_v), (_, new_v)) in
                    old_m.fields().iter().zip(new_m.fields().iter())
                {
                    if new_v > old_v {
                        cmp.regressions.push(format!(
                            "{name}: mem counter {counter} rose {old_v} -> {new_v} (+{})",
                            new_v - old_v
                        ));
                    } else if new_v < old_v {
                        cmp.improvements.push(format!(
                            "{name}: mem counter {counter} fell {old_v} -> {new_v} (-{})",
                            old_v - new_v
                        ));
                    }
                }
            }
            (Some(_), None) => {
                cmp.regressions.push(format!(
                    "{name}: mem section missing from candidate — was the bench \
                     harness built without the alloc-count feature?"
                ));
            }
            (None, Some(_)) => {
                cmp.notes.push(format!(
                    "{name}: mem counters newly present (no baseline to gate against)"
                ));
            }
            (None, None) => {}
        }
        let ceiling = (old_s.wall_us_median as u128) * (100 + wall_tol_pct as u128) / 100;
        if (new_s.wall_us_median as u128) > ceiling {
            cmp.regressions.push(format!(
                "{name}: wall median {}us -> {}us exceeds +{wall_tol_pct}% tolerance \
                 (ceiling {ceiling}us)",
                old_s.wall_us_median, new_s.wall_us_median
            ));
        } else if new_s.wall_us_median < old_s.wall_us_median {
            cmp.improvements.push(format!(
                "{name}: wall median {}us -> {}us",
                old_s.wall_us_median, new_s.wall_us_median
            ));
        }
    }
    for name in new.scenarios.keys() {
        if !old.scenarios.contains_key(name) {
            cmp.notes
                .push(format!("{name}: new scenario (no baseline)"));
        }
    }
    cmp
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (objects, strings, unsigned integers)
// ---------------------------------------------------------------------------

/// The JSON subset baselines use. Arrays, floats, booleans and null do not
/// appear in the format and are rejected by the parser.
#[derive(Clone, Debug, PartialEq, Eq)]
enum JsonValue {
    Number(u64),
    String(String),
    Object(BTreeMap<String, JsonValue>),
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                want as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        other => {
                            return Err(format!(
                                "unsupported escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through unchanged: we copy raw
                    // bytes of one char at a time via str slicing.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    match s.chars().next() {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err("unterminated string".to_string()),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected digits at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<u64>()
            .map_err(|e| format!("bad integer at byte {start}: {e}"))
    }

    fn value(&mut self, depth: u32) -> Result<JsonValue, String> {
        if depth > 16 {
            return Err("JSON nesting too deep".to_string());
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let value = self.value(depth + 1)?;
                    map.insert(key, value);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(JsonValue::Object(map));
                        }
                        other => {
                            return Err(format!(
                                "expected ',' or '}}' at byte {}, found {:?}",
                                self.pos,
                                other.map(|b| b as char)
                            ))
                        }
                    }
                }
            }
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b) if b.is_ascii_digit() => Ok(JsonValue::Number(self.number()?)),
            other => Err(format!(
                "unsupported JSON value at byte {} (found {:?}): baselines \
                 contain only objects, strings and unsigned integers",
                self.pos,
                other.map(|b| b as char)
            )),
        }
    }
}

fn parse_value(text: &str) -> Result<JsonValue, String> {
    let mut r = Reader {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = r.value(0)?;
    r.skip_ws();
    if r.pos != r.bytes.len() {
        return Err(format!("trailing garbage at byte {}", r.pos));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(allocations: u64) -> AllocCounters {
        let mut m = AllocCounters::enabled();
        assert!(m.set_field("allocations", allocations));
        assert!(m.set_field("deallocations", allocations));
        assert!(m.set_field("bytes_allocated", allocations * 64));
        assert!(m.set_field("bytes_freed", allocations * 64));
        assert!(m.set_field("peak_live_bytes", allocations * 8));
        m
    }

    fn baseline(wall: u64, candidates: u64) -> PerfBaseline {
        let mut work = WorkCounters::enabled();
        work.record_engine(100, 120, 8);
        work.record_sched(10, 5, 3, candidates, 40);
        work.record_churn(1, 2);
        let scenario = ScenarioPerf {
            wall_us_median: wall,
            wall_us_mad: wall / 20,
            jobs: 8,
            events: 100,
            jobs_per_sec_milli: 8_000_000_000u64.checked_div(wall).unwrap_or(0),
            events_per_sec_milli: 100_000_000_000u64.checked_div(wall).unwrap_or(0),
            work,
            mem: Some(mem(5000)),
        };
        let mut scenarios = BTreeMap::new();
        scenarios.insert("fault_free".to_string(), scenario.clone());
        scenarios.insert("faulted".to_string(), scenario);
        PerfBaseline {
            schema: PERF_SCHEMA,
            machine: "ross".to_string(),
            git_rev: "abc1234".to_string(),
            reps: 3,
            warmup: 1,
            jobs_prefix: 2000,
            scenarios,
        }
    }

    #[test]
    fn json_round_trips() {
        let b = baseline(5000, 77);
        let text = b.to_json();
        let parsed = PerfBaseline::from_json(&text).unwrap();
        assert_eq!(parsed, b);
        // Serialization is deterministic.
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(PerfBaseline::from_json("").is_err());
        assert!(PerfBaseline::from_json("[1,2]").is_err());
        assert!(PerfBaseline::from_json("{\"schema\":1").is_err());
        assert!(
            PerfBaseline::from_json("{\"schema\":3}").is_err(),
            "unknown schema"
        );
        assert!(
            PerfBaseline::from_json("{\"schema\":2}{}").is_err(),
            "trailing"
        );
    }

    #[test]
    fn schema_2_json_shape_is_pinned() {
        // The exact layout the bench harness commits as BENCH_<machine>.json.
        // Field order, indentation and the optional trailing mem section are
        // all contractual: git diffs of regenerated baselines must be
        // readable, and the reader round-trips this byte-for-byte.
        let mut b = baseline(5000, 77);
        b.scenarios.remove("faulted");
        let scn = b.scenarios.get_mut("fault_free").unwrap();
        scn.mem = Some(mem(2));
        scn.work = {
            let mut w = WorkCounters::enabled();
            w.record_engine(100, 120, 8);
            w.record_sched(10, 5, 3, 77, 40);
            w.record_churn(1, 2);
            w
        };
        let expected = "{\n  \"schema\":2,\n  \"reps\":3,\n  \"warmup\":1,\n  \
\"jobs_prefix\":2000,\n  \"machine\":\"ross\",\n  \"git_rev\":\"abc1234\",\n  \
\"scenarios\":{\n    \"fault_free\":{\n      \"wall_us_median\":5000,\n      \
\"wall_us_mad\":250,\n      \"jobs\":8,\n      \"events\":100,\n      \
\"jobs_per_sec_milli\":1600000,\n      \"events_per_sec_milli\":20000000,\n      \
\"work\":{\"events_popped\":100,\"events_scheduled\":120,\"heap_peak_depth\":8,\
\"sched_cycles\":10,\"inorder_starts\":5,\"backfill_starts\":3,\
\"backfill_candidates_scanned\":77,\"profile_segments_walked\":40,\
\"requeues\":1,\"retries\":2,\"checkpoints_taken\":0,\"cpu_s_salvaged\":0,\
\"cpu_s_reexecuted\":0},\n      \
\"mem\":{\"allocations\":2,\"deallocations\":2,\"bytes_allocated\":128,\
\"bytes_freed\":128,\"peak_live_bytes\":16}\n    }\n  }\n}\n";
        assert_eq!(b.to_json(), expected);
    }

    #[test]
    fn schema_1_files_still_parse_without_mem() {
        // A baseline as the previous harness wrote it: schema 1, no mem.
        let legacy = "{\n  \"schema\":1,\n  \"reps\":3,\n  \"warmup\":1,\n  \
\"jobs_prefix\":2000,\n  \"machine\":\"ross\",\n  \"git_rev\":\"abc1234\",\n  \
\"scenarios\":{\n    \"fault_free\":{\n      \"wall_us_median\":5000,\n      \
\"wall_us_mad\":250,\n      \"jobs\":8,\n      \"events\":100,\n      \
\"jobs_per_sec_milli\":1600000,\n      \"events_per_sec_milli\":20000000,\n      \
\"work\":{\"events_popped\":100,\"events_scheduled\":120,\"heap_peak_depth\":8,\
\"sched_cycles\":10,\"inorder_starts\":5,\"backfill_starts\":3,\
\"backfill_candidates_scanned\":77,\"profile_segments_walked\":40,\
\"requeues\":1,\"retries\":2}\n    }\n  }\n}\n";
        let b = PerfBaseline::from_json(legacy).unwrap();
        assert_eq!(b.schema, 1);
        let scn = &b.scenarios["fault_free"];
        assert_eq!(scn.mem, None);
        assert_eq!(scn.work.events_popped, 100);
        // Counters missing from the legacy file parse as zero (forward
        // compat), so re-serialization appends them; the rest of the
        // layout survives the round trip.
        assert_eq!(scn.work.checkpoints_taken, 0);
        let round = b.to_json();
        assert!(round.starts_with("{\n  \"schema\":1,"), "{round}");
        assert!(
            round.contains("\"retries\":2,\"checkpoints_taken\":0,\"cpu_s_salvaged\":0,"),
            "{round}"
        );
    }

    #[test]
    fn compare_rejects_mixed_schema_pairs() {
        let old = baseline(5000, 77);
        let mut legacy = baseline(5000, 77);
        legacy.schema = 1;
        for scn in legacy.scenarios.values_mut() {
            scn.mem = None;
        }
        let cmp = compare(&legacy, &old, 25);
        assert!(cmp.is_regression());
        assert_eq!(cmp.regressions.len(), 1, "fails fast, no field spray");
        assert!(cmp.regressions[0].contains("schema mismatch"));
        assert!(cmp.regressions[0].contains("regenerate both sides"));
    }

    #[test]
    fn mem_counters_gate_exactly() {
        let old = baseline(5000, 77);
        let mut worse = baseline(5000, 77);
        worse.scenarios.get_mut("faulted").unwrap().mem = Some(mem(5001));
        let cmp = compare(&old, &worse, 25);
        assert!(cmp.is_regression());
        assert!(
            cmp.regressions
                .iter()
                .any(|r| r.contains("mem counter allocations rose 5000 -> 5001")),
            "{:?}",
            cmp.regressions
        );
        let mut better = baseline(5000, 77);
        better.scenarios.get_mut("faulted").unwrap().mem = Some(mem(4999));
        let cmp = compare(&old, &better, 25);
        assert!(!cmp.is_regression());
        assert!(cmp.improvements.iter().any(|i| i.contains("mem counter")));
    }

    #[test]
    fn missing_mem_in_candidate_fails_but_new_mem_is_a_note() {
        let old = baseline(5000, 77);
        let mut no_mem = baseline(5000, 77);
        for scn in no_mem.scenarios.values_mut() {
            scn.mem = None;
        }
        let cmp = compare(&old, &no_mem, 25);
        assert!(cmp.is_regression());
        assert!(cmp.regressions[0].contains("alloc-count"));
        // Baseline without mem, candidate with: informational only.
        let cmp = compare(&no_mem, &old, 25);
        assert!(!cmp.is_regression());
        assert!(cmp.notes.iter().any(|n| n.contains("newly present")));
        // Neither side has mem: silent.
        let cmp = compare(&no_mem, &no_mem, 25);
        assert!(!cmp.is_regression());
        assert!(cmp.notes.is_empty());
    }

    #[test]
    fn identical_baselines_compare_clean() {
        let b = baseline(5000, 77);
        let cmp = compare(&b, &b, 25);
        assert!(!cmp.is_regression());
        assert!(cmp.improvements.is_empty());
        assert!(cmp.render().contains("no change"));
    }

    #[test]
    fn counter_increase_is_a_regression_decrease_an_improvement() {
        let old = baseline(5000, 77);
        let worse = baseline(5000, 78);
        let cmp = compare(&old, &worse, 25);
        assert!(cmp.is_regression());
        assert!(cmp.regressions[0].contains("backfill_candidates_scanned"));
        let better = baseline(5000, 76);
        let cmp = compare(&old, &better, 25);
        assert!(!cmp.is_regression());
        assert_eq!(cmp.improvements.len(), 2, "both scenarios improved");
    }

    #[test]
    fn wall_clock_respects_tolerance() {
        let old = baseline(1000, 77);
        let slower = baseline(1200, 77);
        assert!(!compare(&old, &slower, 25).is_regression(), "within +25%");
        assert!(compare(&old, &slower, 10).is_regression(), "beyond +10%");
        let faster = baseline(800, 77);
        let cmp = compare(&old, &faster, 25);
        assert!(!cmp.is_regression());
        assert!(!cmp.improvements.is_empty());
    }

    #[test]
    fn shape_mismatches_fail_the_gate() {
        let old = baseline(1000, 77);
        let mut other_machine = baseline(1000, 77);
        other_machine.machine = "blue_mountain".to_string();
        assert!(compare(&old, &other_machine, 25).is_regression());
        let mut truncated_differently = baseline(1000, 77);
        truncated_differently.jobs_prefix = 500;
        assert!(compare(&old, &truncated_differently, 25).is_regression());
        let mut missing = baseline(1000, 77);
        missing.scenarios.remove("faulted");
        assert!(compare(&old, &missing, 25).is_regression());
        // Provenance changes are notes, not failures.
        let mut new_rev = baseline(1000, 77);
        new_rev.git_rev = "fff0000".to_string();
        assert!(!compare(&old, &new_rev, 25).is_regression());
    }
}
