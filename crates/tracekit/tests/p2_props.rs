//! Property tests for the P² streaming quantile estimator.
//!
//! The estimator is approximate, so correctness is stated as a *rank
//! error* bound: converting the estimate back to a rank in the true
//! sorted sample must land within a few percent of the target quantile —
//! on sorted, reverse-sorted, random, sawtooth-adversarial and
//! heavy-tailed inputs alike. Small samples (n ≤ 5) must be exact order
//! statistics.

use simkit::rng::Rng;
use tracekit::P2;

/// Distance from the target rank `p` to the rank interval the estimate
/// occupies in the true sorted sample (0 when the estimate's rank
/// straddles `p`, e.g. among duplicates).
fn rank_error(sorted: &[f64], estimate: f64, p: f64) -> f64 {
    let n = sorted.len() as f64;
    let below = sorted.partition_point(|&v| v < estimate) as f64 / n;
    let at_or_below = sorted.partition_point(|&v| v <= estimate) as f64 / n;
    if p < below {
        below - p
    } else if p > at_or_below {
        p - at_or_below
    } else {
        0.0
    }
}

fn assert_rank_bound(label: &str, data: &[f64], p: f64, tol: f64) {
    let mut e = P2::new(p);
    for &x in data {
        e.observe(x);
    }
    let est = e.estimate().expect("non-empty stream");
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mut err = rank_error(&sorted, est, p);
    // Atomic distributions: P² interpolates between atoms, so an estimate
    // a hair off an atom would convert to the gap's boundary rank. Snap
    // to the nearest sample value when (and only when) the estimate is
    // within 1% of the data range of it — atom resolution, not a free
    // pass for mid-gap garbage.
    let range = sorted[sorted.len() - 1] - sorted[0];
    let i = sorted.partition_point(|&v| v < est);
    for neighbor in [i.checked_sub(1), Some(i)].into_iter().flatten() {
        if let Some(&v) = sorted.get(neighbor) {
            if (est - v).abs() <= 0.01 * range {
                err = err.min(rank_error(&sorted, v, p));
            }
        }
    }
    assert!(
        err <= tol,
        "{label}: p={p} estimate {est} has rank error {err:.4} > {tol}"
    );
}

fn quantile_grid() -> [f64; 3] {
    [0.5, 0.9, 0.99]
}

#[test]
fn sorted_ramp_stays_within_rank_bound() {
    let data: Vec<f64> = (0..5_000).map(|i| i as f64).collect();
    for p in quantile_grid() {
        assert_rank_bound("sorted ramp", &data, p, 0.05);
    }
}

#[test]
fn reverse_sorted_ramp_stays_within_rank_bound() {
    let data: Vec<f64> = (0..5_000).rev().map(|i| i as f64).collect();
    for p in quantile_grid() {
        assert_rank_bound("reverse ramp", &data, p, 0.05);
    }
}

#[test]
fn uniform_random_streams_stay_within_rank_bound() {
    for seed in [1u64, 42, 1_000_003] {
        let mut rng = Rng::new(seed);
        let data: Vec<f64> = (0..5_000).map(|_| rng.f64()).collect();
        for p in quantile_grid() {
            assert_rank_bound(&format!("uniform seed {seed}"), &data, p, 0.05);
        }
    }
}

#[test]
fn sawtooth_adversarial_stream_stays_within_rank_bound() {
    // Alternating converging ramps — every observation lands at an
    // extreme cell AND the distribution drifts toward the center, which
    // is outside P²'s stationarity assumption. The median marker stays
    // accurate; the tail markers lag the drift (measured rank error
    // ≈ 0.37 at p90), so the tail bound here is a loose regression
    // ceiling, not a precision claim.
    let n = 5_000;
    let data: Vec<f64> = (0..n)
        .map(|i| {
            if i % 2 == 0 {
                i as f64
            } else {
                (2 * n - i) as f64
            }
        })
        .collect();
    assert_rank_bound("sawtooth", &data, 0.5, 0.05);
    for p in [0.9, 0.99] {
        assert_rank_bound("sawtooth tail", &data, p, 0.45);
    }
}

#[test]
fn periodic_spike_adversarial_stream_stays_within_rank_bound() {
    // Stationary adversarial ordering: a deterministic 9:1 mixture of
    // zeros and huge spikes, so consecutive observations whipsaw between
    // the extreme cells without any distribution drift.
    let data: Vec<f64> = (0..5_000)
        .map(|i| if i % 10 == 9 { 1e6 + i as f64 } else { 0.0 })
        .collect();
    for p in quantile_grid() {
        assert_rank_bound("periodic spikes", &data, p, 0.05);
    }
}

#[test]
fn heavy_tail_stream_stays_within_rank_bound() {
    // Exponential-ish tail via inverse-CDF sampling — matches the shape
    // of queue-wait distributions (most zero-ish, rare huge).
    let mut rng = Rng::new(7);
    let data: Vec<f64> = (0..5_000).map(|_| -rng.f64_open().ln() * 1_000.0).collect();
    for p in quantile_grid() {
        assert_rank_bound("heavy tail", &data, p, 0.10);
    }
}

#[test]
fn small_samples_are_exact_order_statistics() {
    let mut rng = Rng::new(11);
    for n in 1..=5usize {
        for trial in 0..50 {
            let data: Vec<f64> = (0..n).map(|_| (rng.below(100)) as f64).collect();
            for p in quantile_grid() {
                let mut e = P2::new(p);
                for &x in &data {
                    e.observe(x);
                }
                let mut sorted = data.clone();
                sorted.sort_by(f64::total_cmp);
                // Nearest-rank definition: ceil(p·n), at least 1.
                let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
                assert_eq!(
                    e.estimate(),
                    Some(sorted[rank - 1]),
                    "n={n} trial={trial} p={p} data={data:?}"
                );
            }
        }
    }
}

#[test]
fn estimate_is_always_inside_observed_range() {
    let mut rng = Rng::new(5);
    for trial in 0..20 {
        let mut e = P2::new(0.9);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..500 {
            let x = rng.f64() * 1e6 - 5e5;
            lo = lo.min(x);
            hi = hi.max(x);
            e.observe(x);
            let est = e.estimate().unwrap();
            assert!(
                (lo..=hi).contains(&est),
                "trial {trial}: estimate {est} outside [{lo}, {hi}]"
            );
        }
    }
}
