//! Property tests for causal wait attribution.
//!
//! The load-bearing invariant: for every native job that starts, the four
//! category accumulators partition the measured queue wait *exactly* —
//! no gap, no overlap, integer seconds. Checked against (a) real
//! simulator traces on a machine preset with interstitial load, and
//! (b) randomized synthetic event streams that exercise interleavings the
//! simulator never emits (bursty ties, outages mid-queue, preempt storms).

use interstitial::prelude::*;
use obs::{EventKind, Obs, StartKind, TraceEvent};
use simkit::rng::Rng;
use simkit::time::SimTime;
use tracekit::{read_all, Attributor, WaitCategory};
use workload::traces::native_trace;

fn assert_partition(report: &tracekit::AttributionReport, label: &str) {
    assert!(!report.jobs.is_empty(), "{label}: no jobs attributed");
    for j in &report.jobs {
        assert_eq!(
            j.attributed(),
            j.wait(),
            "{label}: job {} attribution {:?} does not partition wait {} s",
            j.id,
            j.seconds,
            j.wait().as_secs()
        );
    }
    // Machine totals must equal the per-job sums exactly.
    let mut totals = [0u64; 4];
    for j in &report.jobs {
        for (t, s) in totals.iter_mut().zip(j.seconds) {
            *t += s;
        }
    }
    assert_eq!(totals, report.totals, "{label}: totals drifted from jobs");
}

#[test]
fn simulator_trace_waits_partition_exactly() {
    let cfg = machine::config::ross();
    let mut natives = native_trace(&cfg, 13);
    natives.truncate(120);
    let horizon =
        SimTime::from_secs(natives.iter().map(|j| j.submit.as_secs()).max().unwrap() + 86_400);
    let out = SimBuilder::new(cfg.clone())
        .natives(natives)
        .horizon(horizon)
        .interstitial(
            InterstitialProject::per_paper(u64::MAX / 2, (cfg.cpus / 8).max(1), 3_600.0),
            InterstitialMode::Continual,
            InterstitialPolicy::default(),
        )
        .observer(Obs::enabled())
        .build()
        .run();
    let (meta, events, stats) = read_all(&out.obs.trace.to_jsonl()).unwrap();
    assert_eq!(stats.corrupt, 0, "simulator wrote corrupt lines");
    assert_eq!(meta.cpus, Some(cfg.cpus), "header must carry the size");
    let mut a = Attributor::new(cfg.cpus);
    for ev in &events {
        a.observe(ev);
    }
    let report = a.finish();
    assert_partition(&report, "ross+interstitial");
    assert_eq!(report.inconsistencies, 0);
    assert_eq!(report.unmatched_starts, 0);

    // Cross-check against the writer's own wait measurements: the wait_s
    // on each native finish equals the attributed job's start − submit.
    let mut finish_waits = std::collections::BTreeMap::new();
    for ev in &events {
        if let EventKind::Finish {
            job,
            wait_s,
            interstitial: false,
            ..
        } = ev.kind
        {
            finish_waits.insert(job, wait_s);
        }
    }
    let mut checked = 0;
    for j in &report.jobs {
        if let Some(&w) = finish_waits.get(&j.id) {
            assert_eq!(
                j.wait().as_secs(),
                w,
                "job {}: trace wait_s disagrees with lifecycle wait",
                j.id
            );
            checked += 1;
        }
    }
    assert!(
        checked > 50,
        "too few finished jobs cross-checked: {checked}"
    );
}

/// Generate a random but internally consistent native+interstitial event
/// stream: jobs submit in time order, start after their submit, and the
/// machine occasionally blinks through outages and preemptions.
fn random_stream(seed: u64, total: u32) -> Vec<TraceEvent> {
    let mut rng = Rng::new(seed);
    let mut events = Vec::new();
    let mut t = 0u64;
    // Native jobs: (id, submit, start, finish) with start − submit random,
    // several ties at identical instants to stress ordering.
    for id in 1..=60u64 {
        t += rng.below(300);
        let submit = t;
        let wait = if rng.chance(0.3) { 0 } else { rng.below(5_000) };
        let start = submit + wait;
        let run = 1 + rng.below(4_000);
        let cpus = 1 + rng.below(u64::from(total)) as u32 / 4;
        events.push((
            submit,
            0,
            EventKind::Submit {
                job: id,
                cpus,
                estimate_s: run * 2,
                interstitial: false,
            },
        ));
        events.push((
            start,
            1,
            EventKind::Start {
                job: id,
                cpus,
                kind: if rng.chance(0.5) {
                    StartKind::InOrder
                } else {
                    StartKind::Backfill
                },
            },
        ));
        events.push((
            start + run,
            2,
            EventKind::Finish {
                job: id,
                cpus,
                wait_s: wait,
                interstitial: false,
            },
        ));
    }
    // Interstitial churn: start → (preempt | finish).
    for k in 0..30u64 {
        let id = (1 << 40) + k;
        let s = rng.below(20_000);
        let cpus = 1 + rng.below(u64::from(total / 8).max(1)) as u32;
        events.push((
            s,
            1,
            EventKind::Start {
                job: id,
                cpus,
                kind: StartKind::Interstitial,
            },
        ));
        let end = s + 1 + rng.below(3_000);
        if rng.chance(0.4) {
            events.push((
                end,
                2,
                EventKind::Preempt {
                    job: id,
                    cpus,
                    kind: obs::PreemptKind::Kill,
                },
            ));
        } else {
            events.push((
                end,
                2,
                EventKind::Finish {
                    job: id,
                    cpus,
                    wait_s: 0,
                    interstitial: true,
                },
            ));
        }
    }
    // Outage blinks.
    for _ in 0..5 {
        let down = rng.below(20_000);
        events.push((down, 3, EventKind::Outage { up: false }));
        events.push((down + 1 + rng.below(500), 3, EventKind::Outage { up: true }));
    }
    // Stable order: time, then a phase key so submits precede starts at
    // the same instant (as the real driver emits them).
    events.sort_by_key(|&(t, phase, _)| (t, phase));
    events
        .into_iter()
        .map(|(t, _, kind)| TraceEvent {
            t: SimTime::from_secs(t),
            cycle: 0,
            kind,
        })
        .collect()
}

#[test]
fn random_streams_partition_exactly() {
    for seed in 0..25u64 {
        let total = 64 + (seed as u32 % 5) * 100;
        let events = random_stream(seed, total);
        let mut a = Attributor::new(total);
        for ev in &events {
            a.observe(ev);
        }
        let report = a.finish();
        assert_partition(&report, &format!("random seed {seed}"));
        for j in &report.jobs {
            // Each bucket individually can never exceed the whole wait.
            for (i, &s) in j.seconds.iter().enumerate() {
                assert!(
                    s <= j.wait().as_secs(),
                    "seed {seed} job {}: bucket {i} overflows wait",
                    j.id
                );
            }
        }
    }
}

#[test]
fn saturated_category_vanishes_on_an_infinite_machine() {
    // With effectively unlimited CPUs and no interstitial load, waits can
    // only be fair-share or window — never saturated/interference.
    let events = random_stream(3, 64);
    let natives: Vec<_> = events
        .iter()
        .filter(|e| {
            !matches!(
                e.kind,
                EventKind::Start {
                    kind: StartKind::Interstitial | StartKind::Resume,
                    ..
                } | EventKind::Preempt { .. }
                    | EventKind::Outage { .. }
            ) && match e.kind {
                EventKind::Submit { interstitial, .. } => !interstitial,
                EventKind::Finish { interstitial, .. } => !interstitial,
                _ => true,
            }
        })
        .cloned()
        .collect();
    let mut a = Attributor::new(u32::MAX);
    for ev in &natives {
        a.observe(ev);
    }
    let report = a.finish();
    assert_partition(&report, "infinite machine");
    assert_eq!(report.totals[WaitCategory::Saturated.index()], 0);
    assert_eq!(report.totals[WaitCategory::Interference.index()], 0);
    assert!(report.total_wait_s() > 0, "streams do contain waits");
}
