//! Per-job lifecycle reconstruction from the event stream.
//!
//! [`Occupancy`] is the shared state machine every analyzer builds on: it
//! replays submit → start → finish/preempt transitions, tracking which
//! jobs run, which natives wait, how many CPUs each class holds and
//! whether the machine is up. State is proportional to the number of
//! *live* jobs (running + waiting), never to trace length — the property
//! that keeps `trace summarize` memory-flat on arbitrarily long streams.
//!
//! The stream is treated as untrusted input: transitions that make no
//! sense (a finish without a start, a duplicate submit) are reported as
//! [`Transition::Inconsistent`] and leave the counters unharmed, so a
//! truncated or corrupt-recovered trace still yields best-effort
//! analysis.

use obs::{EventKind, StartKind, TraceEvent};
use simkit::time::SimTime;
use std::collections::BTreeMap;

/// Scheduling facts about one running job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Running {
    /// CPUs held.
    pub cpus: u32,
    /// True for interstitial jobs.
    pub interstitial: bool,
    /// When this execution segment started.
    pub start: SimTime,
}

/// A submitted native job that has not started yet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Waiting {
    /// CPUs requested.
    pub cpus: u32,
    /// Submission instant.
    pub submit: SimTime,
}

/// What applying one event did to the reconstructed state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transition {
    /// A job entered the system (natives join the waiting set).
    Submitted {
        /// Job id.
        id: u64,
        /// True for interstitial jobs.
        interstitial: bool,
    },
    /// A job began (or resumed) executing.
    Started {
        /// Job id.
        id: u64,
        /// CPUs allocated.
        cpus: u32,
        /// True for interstitial placements (incl. resumes).
        interstitial: bool,
        /// Submission instant, when the submit was observed (natives).
        submit: Option<SimTime>,
        /// Placement kind from the event.
        kind: StartKind,
    },
    /// A job finished and released its CPUs.
    Finished {
        /// Job id.
        id: u64,
        /// CPUs released.
        cpus: u32,
        /// True for interstitial jobs.
        interstitial: bool,
        /// Queue wait the writer measured, seconds.
        wait_s: u64,
        /// Start of the final execution segment, when observed.
        start: Option<SimTime>,
        /// Finish instant.
        finish: SimTime,
    },
    /// A running interstitial job was preempted.
    Preempted {
        /// Job id.
        id: u64,
        /// CPUs reclaimed.
        cpus: u32,
        /// Start of the interrupted segment, when observed.
        start: Option<SimTime>,
    },
    /// The machine crossed an outage boundary.
    OutageEdge {
        /// Machine state after the event.
        up: bool,
    },
    /// A node failed or was repaired (schema v2), moving its CPUs out of
    /// or back into service.
    NodeEdge {
        /// Node index.
        node: u32,
        /// CPUs the node holds.
        cpus: u32,
        /// True when the node is back in service after this event.
        up: bool,
    },
    /// A running job was crashed by a node failure (schema v2). Native
    /// victims rejoin the waiting set (the requeue-at-head recovery);
    /// interstitial victims leave the live state until a later start.
    Failed {
        /// Job id.
        id: u64,
        /// CPUs the job held.
        cpus: u32,
        /// True for interstitial jobs.
        interstitial: bool,
        /// Start of the interrupted segment, when observed.
        start: Option<SimTime>,
    },
    /// A fault victim re-entered the system (requeue or retry release).
    Requeued {
        /// Job id.
        id: u64,
        /// Fault kills absorbed so far.
        attempt: u32,
    },
    /// A recovery-policy annotation (schema v3). These ride alongside the
    /// occupancy-changing events — the paired `JobFailed`/`Preempt` or
    /// `Start` carries the CPU movement, so applying a marker never
    /// touches the busy counters.
    Recovery {
        /// Job id.
        id: u64,
        /// What the recovery policy did.
        mark: RecoveryMark,
    },
    /// An SLO watchdog annotation (schema v4): a rule crossed its limit
    /// (`breached: true`) or recovered (`breached: false`). Pure time-axis
    /// markers — applying one never touches the busy counters.
    SloEdge {
        /// Rule index within the run's `--slo` spec.
        rule: u32,
        /// The rule's metric key.
        metric: &'static str,
        /// Observed signal value at the transition tick.
        value: u64,
        /// The rule's limit, in the signal's units.
        limit: u64,
        /// True for a breach, false for a clear.
        breached: bool,
    },
    /// The event contradicts reconstructed state (duplicate submit,
    /// finish without start, …); counters were left untouched where the
    /// contradiction made them unknowable.
    Inconsistent(&'static str),
}

/// Which recovery-policy marker a schema-v3 event carried.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryMark {
    /// An evicted job's progress up to its last completed checkpoint was
    /// credited for the next attempt.
    Checkpointed {
        /// Checkpoint boundaries the interrupted attempt crossed.
        checkpoints: u32,
        /// Total credited progress after the eviction, seconds.
        salvaged_s: u64,
        /// Work past the last checkpoint, lost to re-execution, seconds.
        lost_s: u64,
    },
    /// An evicted job was frozen with its remainder intact.
    Suspended {
        /// Seconds of work outstanding at suspension.
        remaining_s: u64,
    },
    /// A previously evicted job re-entered execution.
    Resumed {
        /// Seconds of work it restarted with.
        remaining_s: u64,
    },
}

/// Reconstructed machine occupancy at the current point of the stream.
#[derive(Clone, Debug, Default)]
pub struct Occupancy {
    /// Total machine CPUs, when known (header or caller).
    total: Option<u32>,
    up: bool,
    native_busy: u32,
    inter_busy: u32,
    /// CPUs on failed nodes (schema v2 traces; 0 otherwise).
    offline: u32,
    running: BTreeMap<u64, Running>,
    waiting: BTreeMap<u64, Waiting>,
    peak_tracked: usize,
    inconsistencies: u64,
}

impl Occupancy {
    /// Fresh state; machine assumed up until an outage event says
    /// otherwise (matching the driver's initial state for traces without
    /// scheduled outages at t=0).
    pub fn new(total: Option<u32>) -> Self {
        Occupancy {
            total,
            up: true,
            ..Occupancy::default()
        }
    }

    /// Total machine CPUs, if known.
    pub fn total(&self) -> Option<u32> {
        self.total
    }

    /// Machine availability after the last applied event.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// CPUs held by native jobs.
    pub fn native_busy(&self) -> u32 {
        self.native_busy
    }

    /// CPUs held by interstitial jobs.
    pub fn inter_busy(&self) -> u32 {
        self.inter_busy
    }

    /// CPUs out of service on failed nodes (nonzero only while a schema-v2
    /// trace has nodes down).
    pub fn offline(&self) -> u32 {
        self.offline
    }

    /// Free CPUs, when the machine size is known: total minus busy minus
    /// failed-node CPUs.
    pub fn free(&self) -> Option<u32> {
        self.total
            .map(|t| t.saturating_sub(self.native_busy + self.inter_busy + self.offline))
    }

    /// The waiting native set, keyed by job id.
    pub fn waiting(&self) -> &BTreeMap<u64, Waiting> {
        &self.waiting
    }

    /// The running set, keyed by job id.
    pub fn running(&self) -> &BTreeMap<u64, Running> {
        &self.running
    }

    /// The waiting native that holds the head claim: earliest submit,
    /// ties broken by lower id (the scheduler's arrival order).
    pub fn oldest_waiting(&self) -> Option<u64> {
        self.waiting
            .iter()
            .min_by_key(|(id, w)| (w.submit, **id))
            .map(|(id, _)| *id)
    }

    /// Jobs currently tracked (running + waiting) — the live-state size.
    pub fn tracked_jobs(&self) -> usize {
        self.running.len() + self.waiting.len()
    }

    /// High-water mark of [`Occupancy::tracked_jobs`] over the stream.
    pub fn peak_tracked_jobs(&self) -> usize {
        self.peak_tracked
    }

    /// Number of [`Transition::Inconsistent`] outcomes so far.
    pub fn inconsistencies(&self) -> u64 {
        self.inconsistencies
    }

    fn inconsistent(&mut self, what: &'static str) -> Transition {
        self.inconsistencies += 1;
        Transition::Inconsistent(what)
    }

    /// Apply one event, returning the resulting lifecycle transition.
    pub fn apply(&mut self, ev: &TraceEvent) -> Transition {
        let out = match ev.kind {
            EventKind::Submit {
                job,
                cpus,
                interstitial,
                ..
            } => {
                if interstitial {
                    // Interstitial submits are immediately followed by
                    // their start; the waiting set tracks natives only.
                    Transition::Submitted {
                        id: job,
                        interstitial,
                    }
                } else if self.waiting.contains_key(&job) || self.running.contains_key(&job) {
                    self.inconsistent("duplicate submit")
                } else {
                    self.waiting.insert(job, Waiting { cpus, submit: ev.t });
                    Transition::Submitted {
                        id: job,
                        interstitial,
                    }
                }
            }
            EventKind::Start { job, cpus, kind } => {
                let interstitial = matches!(kind, StartKind::Interstitial | StartKind::Resume);
                if self.running.contains_key(&job) {
                    return self.inconsistent("start of an already-running job");
                }
                let submit = if interstitial {
                    None
                } else {
                    self.waiting.remove(&job).map(|w| w.submit)
                };
                self.running.insert(
                    job,
                    Running {
                        cpus,
                        interstitial,
                        start: ev.t,
                    },
                );
                if interstitial {
                    self.inter_busy += cpus;
                } else {
                    self.native_busy += cpus;
                }
                Transition::Started {
                    id: job,
                    cpus,
                    interstitial,
                    submit,
                    kind,
                }
            }
            EventKind::Finish {
                job,
                cpus,
                wait_s,
                interstitial,
            } => {
                let start = match self.running.remove(&job) {
                    Some(r) => {
                        if r.interstitial {
                            self.inter_busy = self.inter_busy.saturating_sub(r.cpus);
                        } else {
                            self.native_busy = self.native_busy.saturating_sub(r.cpus);
                        }
                        Some(r.start)
                    }
                    None => return self.inconsistent("finish without a running start"),
                };
                Transition::Finished {
                    id: job,
                    cpus,
                    interstitial,
                    wait_s,
                    start,
                    finish: ev.t,
                }
            }
            EventKind::Preempt { job, cpus, .. } => match self.running.remove(&job) {
                Some(r) => {
                    self.inter_busy = self.inter_busy.saturating_sub(r.cpus);
                    Transition::Preempted {
                        id: job,
                        cpus,
                        start: Some(r.start),
                    }
                }
                None => self.inconsistent("preempt of a job that is not running"),
            },
            EventKind::Outage { up } => {
                self.up = up;
                Transition::OutageEdge { up }
            }
            EventKind::NodeDown { node, cpus } => {
                self.offline = self.offline.saturating_add(cpus);
                Transition::NodeEdge {
                    node,
                    cpus,
                    up: false,
                }
            }
            EventKind::NodeUp { node, cpus } => {
                self.offline = self.offline.saturating_sub(cpus);
                Transition::NodeEdge {
                    node,
                    cpus,
                    up: true,
                }
            }
            EventKind::JobFailed {
                job,
                cpus,
                interstitial,
                ..
            } => match self.running.remove(&job) {
                Some(r) => {
                    if r.interstitial {
                        self.inter_busy = self.inter_busy.saturating_sub(r.cpus);
                    } else {
                        self.native_busy = self.native_busy.saturating_sub(r.cpus);
                        // The requeue-at-head recovery: the victim is back
                        // in the queue. Its original submit instant is long
                        // gone from the live state, so the failure instant
                        // stands in (waits measured from here understate
                        // the victim's true wait; the Finish event carries
                        // the writer's exact figure).
                        self.waiting.insert(job, Waiting { cpus, submit: ev.t });
                    }
                    Transition::Failed {
                        id: job,
                        cpus,
                        interstitial,
                        start: Some(r.start),
                    }
                }
                None => self.inconsistent("fault kill of a job that is not running"),
            },
            EventKind::JobRequeued { job, attempt } => Transition::Requeued { id: job, attempt },
            EventKind::JobCheckpointed {
                job,
                checkpoints,
                salvaged_s,
                lost_s,
            } => Transition::Recovery {
                id: job,
                mark: RecoveryMark::Checkpointed {
                    checkpoints,
                    salvaged_s,
                    lost_s,
                },
            },
            EventKind::JobSuspended { job, remaining_s } => Transition::Recovery {
                id: job,
                mark: RecoveryMark::Suspended { remaining_s },
            },
            EventKind::JobResumed { job, remaining_s } => Transition::Recovery {
                id: job,
                mark: RecoveryMark::Resumed { remaining_s },
            },
            EventKind::SloBreach {
                rule,
                metric,
                value,
                limit,
            } => Transition::SloEdge {
                rule,
                metric,
                value,
                limit,
                breached: true,
            },
            EventKind::SloClear {
                rule,
                metric,
                value,
                limit,
            } => Transition::SloEdge {
                rule,
                metric,
                value,
                limit,
                breached: false,
            },
        };
        self.peak_tracked = self.peak_tracked.max(self.tracked_jobs());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            t: SimTime::from_secs(t),
            cycle: 0,
            kind,
        }
    }

    fn submit(t: u64, job: u64, cpus: u32, interstitial: bool) -> TraceEvent {
        ev(
            t,
            EventKind::Submit {
                job,
                cpus,
                estimate_s: 100,
                interstitial,
            },
        )
    }

    fn start(t: u64, job: u64, cpus: u32, kind: StartKind) -> TraceEvent {
        ev(t, EventKind::Start { job, cpus, kind })
    }

    fn finish(t: u64, job: u64, cpus: u32, wait_s: u64, interstitial: bool) -> TraceEvent {
        ev(
            t,
            EventKind::Finish {
                job,
                cpus,
                wait_s,
                interstitial,
            },
        )
    }

    #[test]
    fn native_lifecycle_round_trip() {
        let mut occ = Occupancy::new(Some(64));
        occ.apply(&submit(0, 1, 16, false));
        assert_eq!(occ.waiting().len(), 1);
        assert_eq!(occ.free(), Some(64));
        let tr = occ.apply(&start(10, 1, 16, StartKind::InOrder));
        assert_eq!(
            tr,
            Transition::Started {
                id: 1,
                cpus: 16,
                interstitial: false,
                submit: Some(SimTime::from_secs(0)),
                kind: StartKind::InOrder,
            }
        );
        assert_eq!(occ.native_busy(), 16);
        assert_eq!(occ.free(), Some(48));
        let tr = occ.apply(&finish(110, 1, 16, 10, false));
        assert!(matches!(
            tr,
            Transition::Finished {
                id: 1,
                wait_s: 10,
                start: Some(s),
                ..
            } if s == SimTime::from_secs(10)
        ));
        assert_eq!(occ.native_busy(), 0);
        assert_eq!(occ.tracked_jobs(), 0);
        assert_eq!(occ.peak_tracked_jobs(), 1);
        assert_eq!(occ.inconsistencies(), 0);
    }

    #[test]
    fn interstitial_preempt_and_resume() {
        let mut occ = Occupancy::new(Some(64));
        let id = 1 << 40;
        occ.apply(&submit(0, id, 16, true));
        occ.apply(&start(0, id, 16, StartKind::Interstitial));
        assert_eq!(occ.inter_busy(), 16);
        assert!(occ.waiting().is_empty(), "interstitials never wait");
        let tr = occ.apply(&ev(
            50,
            EventKind::Preempt {
                job: id,
                cpus: 16,
                kind: obs::PreemptKind::Checkpoint,
            },
        ));
        assert!(matches!(tr, Transition::Preempted { id: j, .. } if j == id));
        assert_eq!(occ.inter_busy(), 0);
        let tr = occ.apply(&start(500, id, 16, StartKind::Resume));
        assert!(matches!(
            tr,
            Transition::Started {
                interstitial: true,
                kind: StartKind::Resume,
                ..
            }
        ));
        assert_eq!(occ.inter_busy(), 16);
    }

    #[test]
    fn oldest_waiting_breaks_ties_by_id() {
        let mut occ = Occupancy::new(None);
        occ.apply(&submit(5, 7, 1, false));
        occ.apply(&submit(5, 3, 1, false));
        occ.apply(&submit(2, 9, 1, false));
        assert_eq!(occ.oldest_waiting(), Some(9), "earliest submit wins");
        occ.apply(&start(6, 9, 1, StartKind::InOrder));
        assert_eq!(occ.oldest_waiting(), Some(3), "tie broken by lower id");
    }

    #[test]
    fn outage_edges_toggle_up() {
        let mut occ = Occupancy::new(None);
        assert!(occ.is_up());
        occ.apply(&ev(10, EventKind::Outage { up: false }));
        assert!(!occ.is_up());
        occ.apply(&ev(20, EventKind::Outage { up: true }));
        assert!(occ.is_up());
    }

    #[test]
    fn malformed_transitions_are_contained() {
        let mut occ = Occupancy::new(Some(8));
        assert!(matches!(
            occ.apply(&finish(5, 1, 4, 0, false)),
            Transition::Inconsistent(_)
        ));
        occ.apply(&submit(0, 1, 4, false));
        assert!(matches!(
            occ.apply(&submit(1, 1, 4, false)),
            Transition::Inconsistent(_)
        ));
        occ.apply(&start(2, 1, 4, StartKind::InOrder));
        assert!(matches!(
            occ.apply(&start(3, 1, 4, StartKind::InOrder)),
            Transition::Inconsistent(_)
        ));
        assert_eq!(occ.inconsistencies(), 3);
        assert_eq!(occ.native_busy(), 4, "counters survive bad events");
    }

    #[test]
    fn node_edges_move_cpus_out_of_service() {
        let mut occ = Occupancy::new(Some(64));
        assert_eq!(occ.free(), Some(64));
        let tr = occ.apply(&ev(10, EventKind::NodeDown { node: 3, cpus: 16 }));
        assert_eq!(
            tr,
            Transition::NodeEdge {
                node: 3,
                cpus: 16,
                up: false,
            }
        );
        assert_eq!(occ.offline(), 16);
        assert_eq!(occ.free(), Some(48));
        occ.apply(&ev(20, EventKind::NodeUp { node: 3, cpus: 16 }));
        assert_eq!(occ.offline(), 0);
        assert_eq!(occ.free(), Some(64));
    }

    #[test]
    fn fault_kill_requeues_the_native_victim() {
        let mut occ = Occupancy::new(Some(64));
        occ.apply(&submit(0, 1, 16, false));
        occ.apply(&start(5, 1, 16, StartKind::InOrder));
        let tr = occ.apply(&ev(
            50,
            EventKind::JobFailed {
                job: 1,
                cpus: 16,
                node: 2,
                interstitial: false,
            },
        ));
        assert_eq!(
            tr,
            Transition::Failed {
                id: 1,
                cpus: 16,
                interstitial: false,
                start: Some(SimTime::from_secs(5)),
            }
        );
        assert_eq!(occ.native_busy(), 0);
        assert_eq!(occ.waiting().len(), 1, "native victim is waiting again");
        let tr = occ.apply(&ev(50, EventKind::JobRequeued { job: 1, attempt: 1 }));
        assert_eq!(tr, Transition::Requeued { id: 1, attempt: 1 });
        occ.apply(&start(60, 1, 16, StartKind::InOrder));
        assert_eq!(occ.native_busy(), 16);
        assert_eq!(occ.inconsistencies(), 0);
    }

    #[test]
    fn recovery_markers_leave_occupancy_untouched() {
        let mut occ = Occupancy::new(Some(64));
        let id = 1 << 40;
        occ.apply(&submit(0, id, 8, true));
        occ.apply(&start(0, id, 8, StartKind::Interstitial));
        occ.apply(&ev(
            30,
            EventKind::JobFailed {
                job: id,
                cpus: 8,
                node: 0,
                interstitial: true,
            },
        ));
        let tr = occ.apply(&ev(
            30,
            EventKind::JobCheckpointed {
                job: id,
                checkpoints: 2,
                salvaged_s: 60,
                lost_s: 12,
            },
        ));
        assert_eq!(
            tr,
            Transition::Recovery {
                id,
                mark: RecoveryMark::Checkpointed {
                    checkpoints: 2,
                    salvaged_s: 60,
                    lost_s: 12,
                },
            }
        );
        assert_eq!(occ.inter_busy(), 0, "marker moved no CPUs");
        let tr = occ.apply(&ev(
            30,
            EventKind::JobSuspended {
                job: id,
                remaining_s: 40,
            },
        ));
        assert!(matches!(
            tr,
            Transition::Recovery {
                mark: RecoveryMark::Suspended { remaining_s: 40 },
                ..
            }
        ));
        // Resume: the Start event carries the occupancy change, the marker
        // rides along.
        occ.apply(&start(500, id, 8, StartKind::Resume));
        let tr = occ.apply(&ev(
            500,
            EventKind::JobResumed {
                job: id,
                remaining_s: 40,
            },
        ));
        assert!(matches!(
            tr,
            Transition::Recovery {
                mark: RecoveryMark::Resumed { remaining_s: 40 },
                ..
            }
        ));
        assert_eq!(occ.inter_busy(), 8);
        assert_eq!(occ.inconsistencies(), 0);
    }

    #[test]
    fn slo_annotations_leave_occupancy_untouched() {
        let mut occ = Occupancy::new(Some(64));
        occ.apply(&submit(0, 1, 16, false));
        occ.apply(&start(5, 1, 16, StartKind::InOrder));
        let tr = occ.apply(&ev(
            600,
            EventKind::SloBreach {
                rule: 0,
                metric: "util",
                value: 250,
                limit: 850,
            },
        ));
        assert_eq!(
            tr,
            Transition::SloEdge {
                rule: 0,
                metric: "util",
                value: 250,
                limit: 850,
                breached: true,
            }
        );
        let tr = occ.apply(&ev(
            1200,
            EventKind::SloClear {
                rule: 0,
                metric: "util",
                value: 900,
                limit: 850,
            },
        ));
        assert!(matches!(
            tr,
            Transition::SloEdge {
                breached: false,
                ..
            }
        ));
        assert_eq!(occ.native_busy(), 16, "annotations move no CPUs");
        assert_eq!(occ.inconsistencies(), 0);
    }

    #[test]
    fn fault_kill_of_an_interstitial_leaves_no_residue() {
        let mut occ = Occupancy::new(Some(64));
        let id = 1 << 40;
        occ.apply(&submit(0, id, 8, true));
        occ.apply(&start(0, id, 8, StartKind::Interstitial));
        occ.apply(&ev(
            30,
            EventKind::JobFailed {
                job: id,
                cpus: 8,
                node: 0,
                interstitial: true,
            },
        ));
        assert_eq!(occ.inter_busy(), 0);
        assert_eq!(occ.waiting().len(), 0, "retry is not a queue entry");
        assert_eq!(occ.tracked_jobs(), 0);
        // A fault kill of a job never seen running is a contradiction.
        assert!(matches!(
            occ.apply(&ev(
                40,
                EventKind::JobFailed {
                    job: 99,
                    cpus: 4,
                    node: 0,
                    interstitial: false,
                },
            )),
            Transition::Inconsistent(_)
        ));
    }
}
