//! Occupancy timeline and interstice census reconstruction.
//!
//! [`TimelineBuilder`] replays a trace into per-class occupancy
//! [`StepFunction`]s — the same structure the simulator's packer
//! interrogates — so the *analyzer* can ask the paper's questions of a
//! finished run: how much capacity was free, in what gap widths, and how
//! much of it a given job shape could have harvested
//! (`analysis::interstices`). The ASCII heatmap renderer makes the shape
//! visible straight from `interstitial trace timeline`.

use crate::lifecycle::{Occupancy, Transition};
use obs::TraceEvent;
use simkit::series::{BinnedSeries, StepFunction};
use simkit::time::{SimDuration, SimTime};

/// One contiguous execution span of a job, reconstructed from the stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Span start.
    pub start: SimTime,
    /// Span end (finish, preempt, or end-of-trace for still-running jobs).
    pub end: SimTime,
    /// CPUs held over the span.
    pub cpus: u32,
    /// True for interstitial spans.
    pub interstitial: bool,
}

/// Streaming collector of execution spans and outage windows.
#[derive(Clone, Debug, Default)]
pub struct TimelineBuilder {
    occ: Occupancy,
    spans: Vec<Span>,
    down: Vec<(SimTime, SimTime)>,
    down_since: Option<SimTime>,
    last_t: SimTime,
}

impl TimelineBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        TimelineBuilder {
            occ: Occupancy::new(None),
            ..TimelineBuilder::default()
        }
    }

    /// Fold in the next event (nondecreasing time order).
    pub fn observe(&mut self, ev: &TraceEvent) {
        self.last_t = self.last_t.max(ev.t);
        match self.occ.apply(ev) {
            Transition::Finished {
                cpus,
                interstitial,
                start: Some(start),
                finish,
                ..
            } => self.spans.push(Span {
                start,
                end: finish,
                cpus,
                interstitial,
            }),
            Transition::Preempted {
                cpus,
                start: Some(start),
                ..
            } => self.spans.push(Span {
                start,
                end: ev.t,
                cpus,
                interstitial: true,
            }),
            Transition::OutageEdge { up } => {
                if up {
                    if let Some(since) = self.down_since.take() {
                        self.down.push((since, ev.t));
                    }
                } else if self.down_since.is_none() {
                    self.down_since = Some(ev.t);
                }
            }
            _ => {}
        }
    }

    /// Close open spans at end-of-trace and build the profiles.
    /// `total_cpus` (header or `--cpus`) enables the free profile and the
    /// interstice census.
    pub fn finish(mut self, total_cpus: Option<u32>) -> Timeline {
        let end = self.last_t;
        for r in self.occ.running().values() {
            self.spans.push(Span {
                start: r.start,
                end,
                cpus: r.cpus,
                interstitial: r.interstitial,
            });
        }
        if let Some(since) = self.down_since.take() {
            self.down.push((since, end));
        }
        // StepFunction needs a positive domain even for empty traces.
        let horizon = SimTime::from_secs(end.as_secs().max(1));
        let mut native = StepFunction::constant(horizon, 0);
        let mut inter = StepFunction::constant(horizon, 0);
        for s in &self.spans {
            let f = if s.interstitial {
                &mut inter
            } else {
                &mut native
            };
            f.range_add(s.start, s.end, i64::from(s.cpus));
        }
        native.coalesce();
        inter.coalesce();
        Timeline {
            horizon,
            native,
            inter,
            total_cpus,
            down: self.down,
            spans: self.spans,
        }
    }
}

/// Reconstructed occupancy profiles over `[0, horizon)`.
#[derive(Clone, Debug)]
pub struct Timeline {
    /// End of the reconstructed domain (last event instant, min 1 s).
    pub horizon: SimTime,
    /// CPUs held by native jobs over time.
    pub native: StepFunction,
    /// CPUs held by interstitial jobs over time.
    pub inter: StepFunction,
    /// Machine size, when known.
    pub total_cpus: Option<u32>,
    /// Outage windows, in time order.
    pub down: Vec<(SimTime, SimTime)>,
    /// All reconstructed execution spans.
    pub spans: Vec<Span>,
}

/// Five-level shade for heatmap cells, from empty to full.
fn shade(frac: f64) -> char {
    const RAMP: [char; 5] = [' ', '░', '▒', '▓', '█'];
    let idx = (frac.clamp(0.0, 1.0) * 4.0).round() as usize;
    RAMP[idx.min(4)]
}

impl Timeline {
    /// Free-capacity profile `total − native − inter`, with outage
    /// windows forced to zero (a down machine has no harvestable gaps).
    /// `None` when the machine size is unknown.
    pub fn free(&self) -> Option<StepFunction> {
        let total = self.total_cpus?;
        let mut f = StepFunction::constant(self.horizon, i64::from(total));
        for s in &self.spans {
            f.range_add(s.start, s.end, -i64::from(s.cpus));
        }
        for &(a, b) in &self.down {
            f.range_add(a, b, -i64::from(total));
        }
        f.coalesce();
        Some(f)
    }

    /// Bin a profile into `width` utilization fractions of `denom` CPUs.
    fn binned(&self, profile: &StepFunction, width: usize, denom: f64) -> Vec<f64> {
        let mut s = BinnedSeries::new(
            self.horizon,
            SimDuration::from_secs(self.horizon.as_secs().div_ceil(width as u64).max(1)),
        );
        for (a, b, v) in profile.iter_segments() {
            s.add_span(a, b, v.max(0) as f64);
        }
        s.normalized(denom).into_iter().take(width).collect()
    }

    /// One shaded heatmap row for a profile.
    fn heat_row(&self, label: &str, profile: &StepFunction, width: usize, denom: f64) -> String {
        let cells: String = self
            .binned(profile, width, denom)
            .into_iter()
            .map(shade)
            .collect();
        format!("{label:<7}|{cells}|\n")
    }

    /// ASCII heatmap of native / interstitial / free occupancy over
    /// `width` time bins, plus an interstice census when the machine size
    /// is known. Shade ramp: `' ░▒▓█'` = 0–100% of machine CPUs.
    pub fn render(&self, width: usize) -> String {
        let width = width.max(1);
        // Without a machine size, normalize by the peak so shapes still
        // show; fractions are then relative, which the caption states.
        let denom = match self.total_cpus {
            Some(c) => f64::from(c),
            None => self
                .native
                .iter_segments()
                .chain(self.inter.iter_segments())
                .map(|(_, _, v)| v.max(1))
                .max()
                .unwrap_or(1) as f64,
        };
        let hours = self.horizon.as_secs() as f64 / 3600.0;
        let mut out = match self.total_cpus {
            Some(c) => format!(
                "occupancy heatmap: {width} bins over {hours:.1} h, shade = fraction of {c} CPUs\n"
            ),
            None => format!(
                "occupancy heatmap: {width} bins over {hours:.1} h, shade relative to peak \
                 (machine size unknown; pass --cpus)\n"
            ),
        };
        out.push_str(&self.heat_row("native", &self.native, width, denom));
        out.push_str(&self.heat_row("inter", &self.inter, width, denom));
        if let Some(free) = self.free() {
            out.push_str(&self.heat_row("free", &free, width, denom));
            out.push_str(&self.census(&free));
        }
        if !self.down.is_empty() {
            out.push_str(&format!(
                "outages: {} window(s), {} s down\n",
                self.down.len(),
                self.down
                    .iter()
                    .map(|&(a, b)| (b - a).as_secs())
                    .sum::<u64>()
            ));
        }
        out
    }

    /// Interstice census over the free profile: time spent at each
    /// free-capacity band, and the harvestable fraction for
    /// paper-representative job shapes (1 h long, widths 1/8 … 1/2 of the
    /// machine).
    fn census(&self, free: &StepFunction) -> String {
        let total = match self.total_cpus {
            Some(c) if c > 0 => c,
            _ => return String::new(),
        };
        let bounds = [0, total / 8, total / 4, total / 2, total]
            .windows(2)
            .flat_map(|w| (w[0] < w[1]).then_some(w[1]))
            .collect::<Vec<_>>();
        let hist = analysis::interstices::free_capacity_histogram(free, &bounds);
        let span = self.horizon.as_secs().max(1) as f64;
        let mut out = String::from("interstice census (free CPUs, share of time):\n");
        let mut lo = 0u32;
        for (i, &secs) in hist.iter().enumerate() {
            let label = match bounds.get(i) {
                Some(&hi) => {
                    let l = format!("  {lo:>5}..{hi:<5}");
                    lo = hi;
                    l
                }
                None => format!("  {:>5}..{:<5}", lo, "max"),
            };
            out.push_str(&format!("{label} {:5.1}%\n", 100.0 * secs / span));
        }
        out.push_str("harvestable by 1 h jobs (fraction of free CPU·s):\n");
        for denom_w in [8u32, 4, 2] {
            let cpus = (total / denom_w).max(1);
            let frac =
                analysis::interstices::harvestable_fraction(free, cpus, SimDuration::from_hours(1));
            out.push_str(&format!("  {cpus:>6} cpus: {:5.1}%\n", 100.0 * frac));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::{EventKind, PreemptKind, StartKind};

    fn ev(t: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            t: SimTime::from_secs(t),
            cycle: 0,
            kind,
        }
    }

    fn build(evs: &[TraceEvent], total: Option<u32>) -> Timeline {
        let mut b = TimelineBuilder::new();
        for e in evs {
            b.observe(e);
        }
        b.finish(total)
    }

    #[test]
    fn profiles_reconstruct_occupancy() {
        let ij = 1 << 40;
        let tl = build(
            &[
                ev(
                    0,
                    EventKind::Start {
                        job: 1,
                        cpus: 32,
                        kind: StartKind::InOrder,
                    },
                ),
                ev(
                    100,
                    EventKind::Start {
                        job: ij,
                        cpus: 16,
                        kind: StartKind::Interstitial,
                    },
                ),
                ev(
                    200,
                    EventKind::Preempt {
                        job: ij,
                        cpus: 16,
                        kind: PreemptKind::Kill,
                    },
                ),
                ev(
                    400,
                    EventKind::Finish {
                        job: 1,
                        cpus: 32,
                        wait_s: 0,
                        interstitial: false,
                    },
                ),
            ],
            Some(64),
        );
        assert_eq!(tl.horizon, SimTime::from_secs(400));
        assert_eq!(tl.native.value_at(SimTime::from_secs(50)), 32);
        assert_eq!(tl.inter.value_at(SimTime::from_secs(150)), 16);
        assert_eq!(tl.inter.value_at(SimTime::from_secs(250)), 0);
        let free = tl.free().unwrap();
        assert_eq!(free.value_at(SimTime::from_secs(150)), 16);
        assert_eq!(free.value_at(SimTime::from_secs(399)), 32);
        assert_eq!(
            free.integral(SimTime::ZERO, tl.horizon),
            64 * 400 - 32 * 400 - 16 * 100
        );
    }

    #[test]
    fn still_running_jobs_extend_to_trace_end() {
        let tl = build(
            &[
                ev(
                    0,
                    EventKind::Start {
                        job: 1,
                        cpus: 8,
                        kind: StartKind::InOrder,
                    },
                ),
                ev(500, EventKind::Outage { up: false }),
            ],
            Some(16),
        );
        assert_eq!(tl.native.value_at(SimTime::from_secs(499)), 8);
        assert_eq!(
            tl.down,
            vec![(SimTime::from_secs(500), SimTime::from_secs(500))]
        );
    }

    #[test]
    fn outage_zeroes_free_capacity() {
        let tl = build(
            &[
                ev(100, EventKind::Outage { up: false }),
                ev(300, EventKind::Outage { up: true }),
                ev(
                    400,
                    EventKind::Finish {
                        job: 1,
                        cpus: 1,
                        wait_s: 0,
                        interstitial: false,
                    },
                ),
            ],
            Some(10),
        );
        let free = tl.free().unwrap();
        assert_eq!(free.value_at(SimTime::from_secs(50)), 10);
        assert_eq!(free.value_at(SimTime::from_secs(200)), 0);
        assert_eq!(free.value_at(SimTime::from_secs(350)), 10);
    }

    #[test]
    fn render_has_three_rows_and_census() {
        let tl = build(
            &[
                ev(
                    0,
                    EventKind::Start {
                        job: 1,
                        cpus: 64,
                        kind: StartKind::InOrder,
                    },
                ),
                ev(
                    7200,
                    EventKind::Finish {
                        job: 1,
                        cpus: 64,
                        wait_s: 0,
                        interstitial: false,
                    },
                ),
            ],
            Some(64),
        );
        let r = tl.render(40);
        assert!(r.contains("native |"));
        assert!(r.contains("inter  |"));
        assert!(r.contains("free   |"));
        assert!(r.contains("interstice census"));
        assert!(r.contains("harvestable"));
        // Native row fully shaded: machine is 100% busy throughout.
        let native_row = r.lines().find(|l| l.starts_with("native")).unwrap();
        assert!(native_row.contains('█'));
        assert!(!native_row.contains('░'));
    }

    #[test]
    fn render_without_machine_size_degrades_gracefully() {
        let tl = build(
            &[ev(
                10,
                EventKind::Finish {
                    job: 1,
                    cpus: 4,
                    wait_s: 0,
                    interstitial: false,
                },
            )],
            None,
        );
        let r = tl.render(10);
        assert!(r.contains("machine size unknown"));
        assert!(!r.contains("free   |"));
    }

    #[test]
    fn empty_trace_renders_without_panic() {
        let tl = build(&[], Some(8));
        assert_eq!(tl.horizon, SimTime::from_secs(1));
        let r = tl.render(10);
        assert!(r.contains("occupancy heatmap"));
    }
}
