//! Streaming quantile estimation — the P² algorithm.
//!
//! The estimator itself lives in [`obs::p2`] so that online consumers
//! (the core driver's telemetry bus feeds a rolling native-wait P99)
//! share the exact marker arithmetic with the post-hoc summaries here,
//! without a dependency cycle through this crate. The re-export keeps
//! `tracekit::P2` / `tracekit::Quantiles` as the public spelling every
//! analyzer and the CLI already use.

pub use obs::p2::{Quantiles, P2};
