//! Zero-copy scanner for one line of the JSONL trace schema.
//!
//! The writer (`obs::event::TraceEvent::write_jsonl`) emits flat objects
//! whose values are only unsigned integers and plain strings, so a full
//! JSON parser is unnecessary: this module walks the line's bytes once,
//! borrows string values straight out of the input, and dispatches keys
//! by name. Unknown keys are skipped (reserved for future schema-1 minor
//! additions per `crates/obs/SCHEMA.md`); anything structurally
//! unexpected is a [`ParseError`] so the reader can count and skip the
//! line.

use obs::{EventKind, PreemptKind, StartKind, TraceEvent};
use simkit::time::SimTime;

/// Why one line failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description, with a byte offset where relevant.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: String) -> Result<T, ParseError> {
    Err(ParseError { msg })
}

/// The `{"schema":…}` line that leads every versioned trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header<'a> {
    /// Declared schema version.
    pub schema: u64,
    /// Machine preset name, when the driver stamped it.
    pub machine: Option<&'a str>,
    /// Total CPUs of the traced machine, when stamped.
    pub cpus: Option<u32>,
}

/// One successfully parsed line: the header or an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Line<'a> {
    /// The version header (normally the first line of a trace).
    Header(Header<'a>),
    /// A trace event.
    Event(TraceEvent),
}

/// A scanned value: the schema only ever carries unsigned integers and
/// plain strings.
#[derive(Clone, Copy)]
enum Value<'a> {
    Num(u64),
    Str(&'a str),
}

/// Byte cursor over one line.
struct Cursor<'a> {
    s: &'a str,
    i: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.s.as_bytes().get(self.i).copied()
    }

    fn eat(&mut self, want: u8) -> Result<(), ParseError> {
        match self.peek() {
            Some(c) if c == want => {
                self.i += 1;
                Ok(())
            }
            _ => err(format!(
                "expected {:?} at byte {} of {:?}",
                want as char, self.i, self.s
            )),
        }
    }

    /// A `"…"` literal with no escapes (the writer never emits any for
    /// schema-1 values; a line that needs them is treated as corrupt).
    fn string(&mut self) -> Result<&'a str, ParseError> {
        self.eat(b'"')?;
        let start = self.i;
        loop {
            match self.peek() {
                Some(b'"') => {
                    let out = &self.s[start..self.i];
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    return err(format!(
                        "escaped string at byte {} of {:?} (not used by schema 1)",
                        self.i, self.s
                    ))
                }
                Some(_) => self.i += 1,
                None => return err(format!("unterminated string in {:?}", self.s)),
            }
        }
    }

    fn number(&mut self) -> Result<u64, ParseError> {
        let start = self.i;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.i == start {
            return err(format!("expected digit at byte {} of {:?}", start, self.s));
        }
        match self.s[start..self.i].parse() {
            Ok(n) => Ok(n),
            Err(_) => err(format!("integer overflow in {:?}", &self.s[start..self.i])),
        }
    }

    fn value(&mut self) -> Result<Value<'a>, ParseError> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            _ => Ok(Value::Num(self.number()?)),
        }
    }
}

/// Every field schemas 1 through 4 can carry, collected in one pass.
#[derive(Default)]
struct Fields<'a> {
    t: Option<u64>,
    cycle: Option<u64>,
    job: Option<u64>,
    cpus: Option<u64>,
    estimate_s: Option<u64>,
    wait_s: Option<u64>,
    schema: Option<u64>,
    node: Option<u64>,
    attempt: Option<u64>,
    checkpoints: Option<u64>,
    salvaged_s: Option<u64>,
    lost_s: Option<u64>,
    remaining_s: Option<u64>,
    rule: Option<u64>,
    value: Option<u64>,
    limit: Option<u64>,
    ev: Option<&'a str>,
    class: Option<&'a str>,
    kind: Option<&'a str>,
    up: Option<&'a str>,
    machine: Option<&'a str>,
    metric: Option<&'a str>,
}

fn as_num(v: Value<'_>, key: &str) -> Result<u64, ParseError> {
    match v {
        Value::Num(n) => Ok(n),
        Value::Str(_) => err(format!("field {key:?} must be a number")),
    }
}

fn as_str<'a>(v: Value<'a>, key: &str) -> Result<&'a str, ParseError> {
    match v {
        Value::Str(s) => Ok(s),
        Value::Num(_) => err(format!("field {key:?} must be a string")),
    }
}

fn req<T>(v: Option<T>, key: &str) -> Result<T, ParseError> {
    match v {
        Some(x) => Ok(x),
        None => err(format!("missing field {key:?}")),
    }
}

fn cpus_u32(n: u64) -> Result<u32, ParseError> {
    u32::try_from(n).or_else(|_| err(format!("field value {n} exceeds u32")))
}

fn interstitial_of(class: &str) -> Result<bool, ParseError> {
    match class {
        "native" => Ok(false),
        "interstitial" => Ok(true),
        other => err(format!("unknown class {other:?}")),
    }
}

/// Intern an SLO metric name to the `&'static str` the in-memory event
/// carries; names outside the watchdog's grammar mark a corrupt line.
fn metric_of(metric: &str) -> Result<&'static str, ParseError> {
    match obs::telemetry::slo_metric_key(metric) {
        Some(key) => Ok(key),
        None => err(format!("unknown slo metric {metric:?}")),
    }
}

/// Parse one trimmed line into a [`Line`]. Borrowed string values point
/// into `line` (zero-copy); errors allocate only their message.
pub fn parse_line(line: &str) -> Result<Line<'_>, ParseError> {
    let s = line.trim_end_matches(['\n', '\r']);
    let mut c = Cursor { s, i: 0 };
    let mut f = Fields::default();
    c.eat(b'{')?;
    if c.peek() != Some(b'}') {
        loop {
            let key = c.string()?;
            c.eat(b':')?;
            let v = c.value()?;
            match key {
                "t" => f.t = Some(as_num(v, key)?),
                "cycle" => f.cycle = Some(as_num(v, key)?),
                "job" => f.job = Some(as_num(v, key)?),
                "cpus" => f.cpus = Some(as_num(v, key)?),
                "estimate_s" => f.estimate_s = Some(as_num(v, key)?),
                "wait_s" => f.wait_s = Some(as_num(v, key)?),
                "schema" => f.schema = Some(as_num(v, key)?),
                "node" => f.node = Some(as_num(v, key)?),
                "attempt" => f.attempt = Some(as_num(v, key)?),
                "checkpoints" => f.checkpoints = Some(as_num(v, key)?),
                "salvaged_s" => f.salvaged_s = Some(as_num(v, key)?),
                "lost_s" => f.lost_s = Some(as_num(v, key)?),
                "remaining_s" => f.remaining_s = Some(as_num(v, key)?),
                "rule" => f.rule = Some(as_num(v, key)?),
                "value" => f.value = Some(as_num(v, key)?),
                "limit" => f.limit = Some(as_num(v, key)?),
                "ev" => f.ev = Some(as_str(v, key)?),
                "class" => f.class = Some(as_str(v, key)?),
                "kind" => f.kind = Some(as_str(v, key)?),
                "up" => f.up = Some(as_str(v, key)?),
                "machine" => f.machine = Some(as_str(v, key)?),
                "metric" => f.metric = Some(as_str(v, key)?),
                _ => {} // reserved for forward-compatible additions
            }
            match c.peek() {
                Some(b',') => c.i += 1,
                _ => break,
            }
        }
    }
    c.eat(b'}')?;
    if c.i != s.len() {
        return err(format!("trailing garbage after object in {s:?}"));
    }

    if let Some(schema) = f.schema {
        return Ok(Line::Header(Header {
            schema,
            machine: f.machine,
            cpus: f.cpus.map(cpus_u32).transpose()?,
        }));
    }

    let t = SimTime::from_secs(req(f.t, "t")?);
    let cycle = req(f.cycle, "cycle")?;
    let kind = match req(f.ev, "ev")? {
        "submit" => EventKind::Submit {
            job: req(f.job, "job")?,
            cpus: cpus_u32(req(f.cpus, "cpus")?)?,
            estimate_s: req(f.estimate_s, "estimate_s")?,
            interstitial: interstitial_of(req(f.class, "class")?)?,
        },
        "start" => EventKind::Start {
            job: req(f.job, "job")?,
            cpus: cpus_u32(req(f.cpus, "cpus")?)?,
            kind: match req(f.kind, "kind")? {
                "inorder" => StartKind::InOrder,
                "backfill" => StartKind::Backfill,
                "interstitial" => StartKind::Interstitial,
                "resume" => StartKind::Resume,
                other => return err(format!("unknown start kind {other:?}")),
            },
        },
        "finish" => EventKind::Finish {
            job: req(f.job, "job")?,
            cpus: cpus_u32(req(f.cpus, "cpus")?)?,
            wait_s: req(f.wait_s, "wait_s")?,
            interstitial: interstitial_of(req(f.class, "class")?)?,
        },
        "preempt" => EventKind::Preempt {
            job: req(f.job, "job")?,
            cpus: cpus_u32(req(f.cpus, "cpus")?)?,
            kind: match req(f.kind, "kind")? {
                "kill" => PreemptKind::Kill,
                "checkpoint" => PreemptKind::Checkpoint,
                other => return err(format!("unknown preempt kind {other:?}")),
            },
        },
        "outage" => EventKind::Outage {
            up: match req(f.up, "up")? {
                "true" => true,
                "false" => false,
                other => return err(format!("unknown outage state {other:?}")),
            },
        },
        "node_down" => EventKind::NodeDown {
            node: cpus_u32(req(f.node, "node")?)?,
            cpus: cpus_u32(req(f.cpus, "cpus")?)?,
        },
        "node_up" => EventKind::NodeUp {
            node: cpus_u32(req(f.node, "node")?)?,
            cpus: cpus_u32(req(f.cpus, "cpus")?)?,
        },
        "job_failed" => EventKind::JobFailed {
            job: req(f.job, "job")?,
            cpus: cpus_u32(req(f.cpus, "cpus")?)?,
            node: cpus_u32(req(f.node, "node")?)?,
            interstitial: interstitial_of(req(f.class, "class")?)?,
        },
        "job_requeued" => EventKind::JobRequeued {
            job: req(f.job, "job")?,
            attempt: cpus_u32(req(f.attempt, "attempt")?)?,
        },
        "job_checkpointed" => EventKind::JobCheckpointed {
            job: req(f.job, "job")?,
            checkpoints: cpus_u32(req(f.checkpoints, "checkpoints")?)?,
            salvaged_s: req(f.salvaged_s, "salvaged_s")?,
            lost_s: req(f.lost_s, "lost_s")?,
        },
        "job_suspended" => EventKind::JobSuspended {
            job: req(f.job, "job")?,
            remaining_s: req(f.remaining_s, "remaining_s")?,
        },
        "job_resumed" => EventKind::JobResumed {
            job: req(f.job, "job")?,
            remaining_s: req(f.remaining_s, "remaining_s")?,
        },
        "slo_breach" => EventKind::SloBreach {
            rule: cpus_u32(req(f.rule, "rule")?)?,
            metric: metric_of(req(f.metric, "metric")?)?,
            value: req(f.value, "value")?,
            limit: req(f.limit, "limit")?,
        },
        "slo_clear" => EventKind::SloClear {
            rule: cpus_u32(req(f.rule, "rule")?)?,
            metric: metric_of(req(f.metric, "metric")?)?,
            value: req(f.value, "value")?,
            limit: req(f.limit, "limit")?,
        },
        other => return err(format!("unknown event {other:?}")),
    };
    Ok(Line::Event(TraceEvent { t, cycle, kind }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event_of(line: &str) -> TraceEvent {
        match parse_line(line).unwrap() {
            Line::Event(ev) => ev,
            Line::Header(h) => panic!("unexpected header {h:?}"),
        }
    }

    #[test]
    fn round_trips_every_event_kind() {
        let kinds = [
            EventKind::Submit {
                job: 3,
                cpus: 32,
                estimate_s: 7_200,
                interstitial: false,
            },
            EventKind::Submit {
                job: 1 << 40,
                cpus: 8,
                estimate_s: 0,
                interstitial: true,
            },
            EventKind::Start {
                job: 9,
                cpus: 32,
                kind: StartKind::Backfill,
            },
            EventKind::Start {
                job: 9,
                cpus: 32,
                kind: StartKind::Resume,
            },
            EventKind::Finish {
                job: 9,
                cpus: 32,
                wait_s: 40,
                interstitial: true,
            },
            EventKind::Preempt {
                job: 7,
                cpus: 16,
                kind: PreemptKind::Checkpoint,
            },
            EventKind::Outage { up: false },
            EventKind::NodeDown { node: 3, cpus: 8 },
            EventKind::NodeUp { node: 3, cpus: 8 },
            EventKind::JobFailed {
                job: 11,
                cpus: 16,
                node: 2,
                interstitial: true,
            },
            EventKind::JobRequeued {
                job: 11,
                attempt: 2,
            },
            EventKind::JobCheckpointed {
                job: 1 << 40,
                checkpoints: 3,
                salvaged_s: 90,
                lost_s: 17,
            },
            EventKind::JobSuspended {
                job: 1 << 40,
                remaining_s: 30,
            },
            EventKind::JobResumed {
                job: 1 << 40,
                remaining_s: 30,
            },
            EventKind::SloBreach {
                rule: 1,
                metric: "native_p99_wait",
                value: 4_000,
                limit: 3_600,
            },
            EventKind::SloClear {
                rule: 0,
                metric: "util",
                value: 912,
                limit: 900,
            },
        ];
        for kind in kinds {
            let ev = TraceEvent {
                t: SimTime::from_secs(42),
                cycle: 7,
                kind,
            };
            let mut s = String::new();
            ev.write_jsonl(&mut s);
            assert_eq!(event_of(&s), ev, "{s}");
        }
    }

    #[test]
    fn header_parses_with_and_without_machine() {
        match parse_line("{\"schema\":1,\"machine\":\"Blue Mountain\",\"cpus\":6144}").unwrap() {
            Line::Header(h) => {
                assert_eq!(h.schema, 1);
                assert_eq!(h.machine, Some("Blue Mountain"));
                assert_eq!(h.cpus, Some(6144));
            }
            other => panic!("{other:?}"),
        }
        match parse_line("{\"schema\":3}").unwrap() {
            Line::Header(h) => {
                assert_eq!(h.schema, 3);
                assert_eq!(h.machine, None);
                assert_eq!(h.cpus, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_keys_are_skipped() {
        let ev = event_of(
            "{\"t\":5,\"cycle\":1,\"future\":99,\"ev\":\"outage\",\"up\":\"true\",\"note\":\"x\"}",
        );
        assert_eq!(ev.t, SimTime::from_secs(5));
        assert_eq!(ev.kind, EventKind::Outage { up: true });
    }

    #[test]
    fn trailing_newline_is_tolerated() {
        let ev = event_of("{\"t\":5,\"cycle\":1,\"ev\":\"outage\",\"up\":\"false\"}\n");
        assert_eq!(ev.kind, EventKind::Outage { up: false });
    }

    #[test]
    fn corrupt_lines_error_without_panicking() {
        for bad in [
            "",
            "not json",
            "{\"t\":5}",
            "{\"t\":5,\"cycle\":1,\"ev\":\"start\",\"job\":1,\"cpus\":2}", // missing kind
            "{\"t\":5,\"cycle\":1,\"ev\":\"dance\",\"job\":1}",
            "{\"t\":\"five\",\"cycle\":1,\"ev\":\"outage\",\"up\":\"true\"}",
            "{\"t\":5,\"cycle\":1,\"ev\":\"outage\",\"up\":\"maybe\"}",
            "{\"t\":5,\"cycle\":1,\"ev\":\"submit\",\"job\":1,\"cpus\":99999999999,\"estimate_s\":1,\"class\":\"native\"}",
            "{\"t\":5,\"cycle\":1,\"ev\":\"outage\",\"up\":\"true\"}garbage",
            "{\"t\":5,\"cycle\":1,\"ev\":\"submit\",\"job\":1,\"cpus\":2,\"estimate_s\":1,\"class\":\"alien\"}",
            "{\"t\":5,\"cycle\":1,\"ev\":\"node_down\",\"cpus\":8}", // missing node
            "{\"t\":5,\"cycle\":1,\"ev\":\"job_requeued\",\"job\":1}", // missing attempt
            "{\"t\":5,\"cycle\":1,\"ev\":\"slo_breach\",\"rule\":0,\"metric\":\"vibes\",\"value\":1,\"limit\":2}",
            "{\"t\":5,\"cycle\":1,\"ev\":\"slo_clear\",\"rule\":0,\"value\":1,\"limit\":2}", // missing metric
        ] {
            assert!(parse_line(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn string_values_borrow_from_the_input() {
        let line = "{\"schema\":1,\"machine\":\"Ross\",\"cpus\":1436}".to_string();
        let parsed = parse_line(&line).unwrap();
        if let Line::Header(h) = parsed {
            let m = h.machine.unwrap();
            let line_range = line.as_ptr() as usize..line.as_ptr() as usize + line.len();
            assert!(line_range.contains(&(m.as_ptr() as usize)), "not zero-copy");
        } else {
            panic!("expected header");
        }
    }
}
