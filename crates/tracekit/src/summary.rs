//! Single-pass streaming trace summary.
//!
//! [`Summarizer`] folds the event stream into counters, capacity
//! integrals and P² percentile bundles without ever storing events: its
//! state is [`Occupancy`] (live jobs only) plus a fixed set of scalars,
//! so peak memory is flat in trace length — the property the stress test
//! in `tests/trace_analytics.rs` measures via
//! [`TraceSummary::peak_tracked_jobs`].

use crate::lifecycle::{Occupancy, RecoveryMark, Transition};
use crate::quantile::Quantiles;
use obs::{PreemptKind, StartKind, TraceEvent};
use simkit::time::SimTime;

/// Everything `trace summarize` reports, accumulated in one pass.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// `(first, last)` event instants, `None` for an empty trace.
    pub span: Option<(SimTime, SimTime)>,
    /// Events folded in.
    pub events: u64,
    /// Native submit events.
    pub native_submits: u64,
    /// Interstitial submit events.
    pub inter_submits: u64,
    /// Native starts in queue order.
    pub starts_inorder: u64,
    /// Native starts via backfill.
    pub starts_backfill: u64,
    /// Interstitial first starts.
    pub starts_interstitial: u64,
    /// Interstitial resumes after checkpoint.
    pub starts_resume: u64,
    /// Native finishes.
    pub native_finishes: u64,
    /// Interstitial finishes.
    pub inter_finishes: u64,
    /// Preemptions that killed the job.
    pub preempt_kills: u64,
    /// Preemptions that checkpointed the job.
    pub preempt_checkpoints: u64,
    /// Down edges observed.
    pub outages: u64,
    /// Seconds the machine spent down within the span.
    pub downtime_s: u64,
    /// Node failure edges (schema v2).
    pub node_failures: u64,
    /// Node repair edges (schema v2).
    pub node_repairs: u64,
    /// Jobs crashed by node failures (schema v2).
    pub fault_kills: u64,
    /// Requeue/retry announcements for fault victims (schema v2).
    pub fault_requeues: u64,
    /// SLO watchdog breach edges (schema v4).
    pub slo_breaches: u64,
    /// SLO watchdog clear edges (schema v4).
    pub slo_clears: u64,
    /// Checkpoint-credit markers on evicted jobs (schema v3).
    pub recovery_checkpoints: u64,
    /// Suspension markers on evicted jobs (schema v3).
    pub recovery_suspensions: u64,
    /// Resume markers on previously evicted jobs (schema v3).
    pub recovery_resumes: u64,
    /// CPU·seconds out of service on failed nodes (occupancy integral).
    pub offline_cpu_s: u64,
    /// Native queue-wait percentiles, seconds (from finish events).
    pub native_wait: Quantiles,
    /// Native expansion-factor percentiles (1 + wait/runtime).
    pub native_ef: Quantiles,
    /// CPU·seconds delivered to native jobs (occupancy integral).
    pub native_cpu_s: u64,
    /// CPU·seconds harvested by interstitial jobs (occupancy integral).
    pub inter_cpu_s: u64,
    /// Machine size used for utilization, when known.
    pub total_cpus: Option<u32>,
    /// High-water mark of live (running + waiting) jobs — the memory
    /// proxy for the flat-memory contract.
    pub peak_tracked_jobs: usize,
    /// Lifecycle contradictions encountered in the stream.
    pub inconsistencies: u64,
    /// Highest scheduling-cycle id tagged on any event — the scan work the
    /// trace can attest to. The full work counters (candidate scans,
    /// profile segments, heap depth) live in the run's `RunReport`, not in
    /// trace bytes; this is the trace-derivable slice.
    pub sched_cycles: u64,
}

impl TraceSummary {
    /// Span length in seconds (0 for traces with fewer than two instants).
    pub fn span_s(&self) -> u64 {
        match self.span {
            Some((a, b)) => (b - a).as_secs(),
            None => 0,
        }
    }

    /// Total CPU·seconds of capacity over the span, if the machine size
    /// is known (outages are *not* subtracted — this is the nameplate).
    pub fn capacity_cpu_s(&self) -> Option<u64> {
        self.total_cpus.map(|c| u64::from(c) * self.span_s())
    }

    /// Native utilization of nameplate capacity over the span.
    pub fn native_utilization(&self) -> Option<f64> {
        self.capacity_cpu_s()
            .filter(|&c| c > 0)
            .map(|c| self.native_cpu_s as f64 / c as f64)
    }

    /// Interstitial utilization of nameplate capacity over the span.
    pub fn inter_utilization(&self) -> Option<f64> {
        self.capacity_cpu_s()
            .filter(|&c| c > 0)
            .map(|c| self.inter_cpu_s as f64 / c as f64)
    }
}

/// The streaming accumulator behind [`TraceSummary`].
#[derive(Clone, Debug)]
pub struct Summarizer {
    occ: Occupancy,
    last_t: Option<SimTime>,
    out: TraceSummary,
}

impl Summarizer {
    /// `total_cpus` (header or `--cpus`) enables the utilization figures;
    /// everything else works without it.
    pub fn new(total_cpus: Option<u32>) -> Self {
        Summarizer {
            occ: Occupancy::new(total_cpus),
            last_t: None,
            out: TraceSummary {
                total_cpus,
                ..TraceSummary::default()
            },
        }
    }

    /// Fold in the next event (nondecreasing time order).
    pub fn observe(&mut self, ev: &TraceEvent) {
        // Integrate occupancy over the interval ending at this event,
        // using the state *before* the event applies.
        if let Some(last) = self.last_t {
            let dt = (ev.t - last).as_secs();
            self.out.native_cpu_s += u64::from(self.occ.native_busy()) * dt;
            self.out.inter_cpu_s += u64::from(self.occ.inter_busy()) * dt;
            self.out.offline_cpu_s += u64::from(self.occ.offline()) * dt;
            if !self.occ.is_up() {
                self.out.downtime_s += dt;
            }
        }
        self.last_t = Some(ev.t);
        self.out.span = Some(match self.out.span {
            Some((first, _)) => (first, ev.t),
            None => (ev.t, ev.t),
        });
        self.out.events += 1;
        self.out.sched_cycles = self.out.sched_cycles.max(ev.cycle);

        match self.occ.apply(ev) {
            Transition::Submitted { interstitial, .. } => {
                if interstitial {
                    self.out.inter_submits += 1;
                } else {
                    self.out.native_submits += 1;
                }
            }
            Transition::Started { kind, .. } => match kind {
                StartKind::InOrder => self.out.starts_inorder += 1,
                StartKind::Backfill => self.out.starts_backfill += 1,
                StartKind::Interstitial => self.out.starts_interstitial += 1,
                StartKind::Resume => self.out.starts_resume += 1,
            },
            Transition::Finished {
                interstitial,
                wait_s,
                start,
                finish,
                ..
            } => {
                if interstitial {
                    self.out.inter_finishes += 1;
                } else {
                    self.out.native_finishes += 1;
                    self.out.native_wait.observe(wait_s as f64);
                    if let Some(start) = start {
                        let runtime = (finish - start).as_secs();
                        if runtime > 0 {
                            self.out
                                .native_ef
                                .observe(1.0 + wait_s as f64 / runtime as f64);
                        }
                    }
                }
            }
            Transition::Preempted { .. } => match ev.kind {
                obs::EventKind::Preempt {
                    kind: PreemptKind::Kill,
                    ..
                } => self.out.preempt_kills += 1,
                _ => self.out.preempt_checkpoints += 1,
            },
            Transition::OutageEdge { up } => {
                if !up {
                    self.out.outages += 1;
                }
            }
            Transition::NodeEdge { up, .. } => {
                if up {
                    self.out.node_repairs += 1;
                } else {
                    self.out.node_failures += 1;
                }
            }
            Transition::Failed { .. } => self.out.fault_kills += 1,
            Transition::Requeued { .. } => self.out.fault_requeues += 1,
            Transition::Recovery { mark, .. } => match mark {
                RecoveryMark::Checkpointed { .. } => self.out.recovery_checkpoints += 1,
                RecoveryMark::Suspended { .. } => self.out.recovery_suspensions += 1,
                RecoveryMark::Resumed { .. } => self.out.recovery_resumes += 1,
            },
            Transition::SloEdge { breached, .. } => {
                if breached {
                    self.out.slo_breaches += 1;
                } else {
                    self.out.slo_clears += 1;
                }
            }
            Transition::Inconsistent(_) => {}
        }
    }

    /// Live tracked jobs right now (memory-flatness probe).
    pub fn tracked_jobs(&self) -> usize {
        self.occ.tracked_jobs()
    }

    /// Consume the accumulator and return the summary.
    pub fn finish(mut self) -> TraceSummary {
        self.out.peak_tracked_jobs = self.occ.peak_tracked_jobs();
        self.out.inconsistencies = self.occ.inconsistencies();
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::EventKind;

    fn ev(t: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            t: SimTime::from_secs(t),
            cycle: 0,
            kind,
        }
    }

    #[test]
    fn counts_integrals_and_percentiles() {
        let mut s = Summarizer::new(Some(64));
        let ij = 1 << 40;
        let evs = [
            ev(
                0,
                EventKind::Submit {
                    job: 1,
                    cpus: 32,
                    estimate_s: 100,
                    interstitial: false,
                },
            ),
            ev(
                0,
                EventKind::Start {
                    job: 1,
                    cpus: 32,
                    kind: StartKind::InOrder,
                },
            ),
            ev(
                10,
                EventKind::Submit {
                    job: ij,
                    cpus: 16,
                    estimate_s: 100,
                    interstitial: true,
                },
            ),
            ev(
                10,
                EventKind::Start {
                    job: ij,
                    cpus: 16,
                    kind: StartKind::Interstitial,
                },
            ),
            ev(
                60,
                EventKind::Preempt {
                    job: ij,
                    cpus: 16,
                    kind: PreemptKind::Checkpoint,
                },
            ),
            ev(
                100,
                EventKind::Finish {
                    job: 1,
                    cpus: 32,
                    wait_s: 0,
                    interstitial: false,
                },
            ),
        ];
        for e in &evs {
            s.observe(e);
        }
        let out = s.finish();
        assert_eq!(out.events, 6);
        assert_eq!(out.native_submits, 1);
        assert_eq!(out.inter_submits, 1);
        assert_eq!(out.starts_inorder, 1);
        assert_eq!(out.starts_interstitial, 1);
        assert_eq!(out.preempt_checkpoints, 1);
        assert_eq!(out.native_finishes, 1);
        assert_eq!(out.span_s(), 100);
        assert_eq!(out.native_cpu_s, 32 * 100);
        assert_eq!(out.inter_cpu_s, 16 * 50);
        assert_eq!(out.capacity_cpu_s(), Some(6_400));
        assert!((out.native_utilization().unwrap() - 0.5).abs() < 1e-9);
        assert_eq!(out.native_wait.count(), 1);
        let (_, p50, ..) = out.native_ef.snapshot().unwrap();
        assert!((p50 - 1.0).abs() < 1e-9, "zero wait → EF 1");
        assert_eq!(out.peak_tracked_jobs, 2);
        assert_eq!(out.inconsistencies, 0);
    }

    #[test]
    fn downtime_is_integrated_between_edges() {
        let mut s = Summarizer::new(None);
        s.observe(&ev(100, EventKind::Outage { up: false }));
        s.observe(&ev(250, EventKind::Outage { up: true }));
        s.observe(&ev(300, EventKind::Outage { up: false }));
        s.observe(&ev(310, EventKind::Outage { up: true }));
        let out = s.finish();
        assert_eq!(out.outages, 2);
        assert_eq!(out.downtime_s, 160);
        assert_eq!(out.native_utilization(), None, "size unknown");
    }

    #[test]
    fn empty_trace_summary_is_all_zero() {
        let out = Summarizer::new(Some(8)).finish();
        assert_eq!(out.span, None);
        assert_eq!(out.span_s(), 0);
        assert_eq!(out.capacity_cpu_s(), Some(0));
        assert_eq!(out.native_utilization(), None);
        assert_eq!(out.sched_cycles, 0);
    }

    #[test]
    fn sched_cycles_is_the_highest_cycle_tag() {
        let mut s = Summarizer::new(None);
        for (t, cycle) in [(0u64, 1u64), (10, 7), (20, 4)] {
            s.observe(&TraceEvent {
                t: SimTime::from_secs(t),
                cycle,
                kind: EventKind::Outage { up: true },
            });
        }
        assert_eq!(s.finish().sched_cycles, 7);
    }
}
