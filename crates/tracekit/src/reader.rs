//! Streaming trace reader: schema check, line recovery, reused buffers.
//!
//! [`TraceReader`] pulls events one at a time from any [`BufRead`] source
//! with a single reused line buffer, so memory stays flat regardless of
//! trace length. The first line is inspected for the `{"schema":…}`
//! header: an unsupported version is a hard error (analyzing a trace
//! whose encoding we do not understand would silently produce garbage),
//! while a headerless stream — traces written before the header existed —
//! is tolerated and flagged. Corrupt event lines are counted and skipped
//! (with the first few retained verbatim for diagnostics) rather than
//! aborting a multi-million-line analysis.

use crate::parse::{self, Line};
use obs::trace::{SCHEMA_VERSION, SCHEMA_VERSION_TELEMETRY};
use obs::TraceEvent;
use std::io::BufRead;

/// Why reading a trace failed outright (line-level corruption is
/// *recovered*, not raised — see [`ReadStats`]).
#[derive(Debug)]
pub enum TraceError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// The header declares a schema version this tracekit cannot read.
    UnsupportedSchema {
        /// The version the trace declared.
        found: u64,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "reading trace: {e}"),
            TraceError::UnsupportedSchema { found } => write!(
                f,
                "unsupported trace schema version {found} (this tracekit reads schemas \
                 {SCHEMA_VERSION}-{SCHEMA_VERSION_TELEMETRY}); regenerate the trace with a \
                 matching simulator or upgrade tracekit"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// What the trace header declared (or failed to declare).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceMeta {
    /// Declared schema version ([`SCHEMA_VERSION`] through
    /// [`SCHEMA_VERSION_TELEMETRY`] once validated; 0 for a headerless
    /// legacy stream).
    pub schema: u64,
    /// Machine name from the header, if stamped.
    pub machine: Option<String>,
    /// Machine CPU count from the header, if stamped.
    pub cpus: Option<u32>,
    /// True when the stream had no header line (pre-versioning trace).
    pub headerless: bool,
}

/// Keep at most this many corrupt-line samples for error reporting.
const ERROR_SAMPLES: usize = 5;

/// Counters accumulated while reading.
#[derive(Clone, Debug, Default)]
pub struct ReadStats {
    /// Events successfully parsed and handed to the caller.
    pub events: u64,
    /// Non-blank lines examined (header excluded).
    pub lines: u64,
    /// Lines that failed to parse and were skipped.
    pub corrupt: u64,
    /// Up to [`ERROR_SAMPLES`] `(line_number, message)` pairs for the
    /// first corrupt lines (1-based, counting every line incl. header).
    pub first_errors: Vec<(u64, String)>,
}

/// A pull-based trace reader over any buffered byte source.
pub struct TraceReader<R: BufRead> {
    src: R,
    buf: String,
    meta: TraceMeta,
    stats: ReadStats,
    /// When the first line was an event (headerless stream), it is parked
    /// here so `next_event` can hand it out first.
    pending: Option<TraceEvent>,
    /// Physical line number of the last line read (1-based).
    lineno: u64,
}

impl<R: BufRead> TraceReader<R> {
    /// Open a trace: reads and validates the header line. Fails on I/O
    /// errors and on a header declaring an unsupported schema version.
    pub fn new(mut src: R) -> Result<Self, TraceError> {
        let mut buf = String::with_capacity(128);
        let mut meta = TraceMeta::default();
        let mut stats = ReadStats::default();
        let mut pending = None;
        let mut lineno = 0;
        if src.read_line(&mut buf)? > 0 {
            lineno = 1;
            match parse::parse_line(&buf) {
                Ok(Line::Header(h)) => {
                    if !(SCHEMA_VERSION..=SCHEMA_VERSION_TELEMETRY).contains(&h.schema) {
                        return Err(TraceError::UnsupportedSchema { found: h.schema });
                    }
                    meta.schema = h.schema;
                    meta.machine = h.machine.map(str::to_string);
                    meta.cpus = h.cpus;
                }
                Ok(Line::Event(ev)) => {
                    meta.headerless = true;
                    stats.lines = 1;
                    pending = Some(ev);
                }
                Err(e) => {
                    meta.headerless = true;
                    stats.lines = 1;
                    stats.corrupt = 1;
                    stats.first_errors.push((1, e.msg));
                }
            }
        }
        Ok(TraceReader {
            src,
            buf,
            meta,
            stats,
            pending,
            lineno,
        })
    }

    /// Header facts (available immediately after [`TraceReader::new`]).
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Counters so far.
    pub fn stats(&self) -> &ReadStats {
        &self.stats
    }

    /// The next event, or `None` at end of stream. Corrupt lines are
    /// skipped and counted; a mid-stream header line counts as corrupt
    /// (concatenated traces are not a valid stream).
    pub fn next_event(&mut self) -> Result<Option<TraceEvent>, TraceError> {
        if let Some(ev) = self.pending.take() {
            self.stats.events += 1;
            return Ok(Some(ev));
        }
        loop {
            self.buf.clear();
            if self.src.read_line(&mut self.buf)? == 0 {
                return Ok(None);
            }
            self.lineno += 1;
            if self.buf.trim().is_empty() {
                continue;
            }
            self.stats.lines += 1;
            let outcome = match parse::parse_line(&self.buf) {
                Ok(Line::Event(ev)) => Ok(ev),
                Ok(Line::Header(_)) => Err("unexpected header line mid-stream".to_string()),
                Err(e) => Err(e.msg),
            };
            match outcome {
                Ok(ev) => {
                    self.stats.events += 1;
                    return Ok(Some(ev));
                }
                Err(msg) => {
                    self.stats.corrupt += 1;
                    if self.stats.first_errors.len() < ERROR_SAMPLES {
                        self.stats.first_errors.push((self.lineno, msg));
                    }
                }
            }
        }
    }

    /// Drive every remaining event through `f`.
    pub fn for_each(&mut self, mut f: impl FnMut(&TraceEvent)) -> Result<(), TraceError> {
        while let Some(ev) = self.next_event()? {
            f(&ev);
        }
        Ok(())
    }
}

/// Open a trace file with a buffered reader.
pub fn open_path(
    path: &std::path::Path,
) -> Result<TraceReader<std::io::BufReader<std::fs::File>>, TraceError> {
    let file = std::fs::File::open(path)?;
    TraceReader::new(std::io::BufReader::new(file))
}

/// Read a whole in-memory trace (tests, fixtures) into a `Vec`.
pub fn read_all(text: &str) -> Result<(TraceMeta, Vec<TraceEvent>, ReadStats), TraceError> {
    let mut r = TraceReader::new(std::io::Cursor::new(text))?;
    let mut out = Vec::new();
    while let Some(ev) = r.next_event()? {
        out.push(ev);
    }
    Ok((r.meta, out, r.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::EventKind;

    const HEADER: &str = "{\"schema\":1,\"machine\":\"Ross\",\"cpus\":1436}\n";
    const OUTAGE: &str = "{\"t\":5,\"cycle\":1,\"ev\":\"outage\",\"up\":\"true\"}\n";
    const SUBMIT: &str =
        "{\"t\":9,\"cycle\":2,\"ev\":\"submit\",\"job\":1,\"cpus\":4,\"estimate_s\":60,\"class\":\"native\"}\n";

    #[test]
    fn reads_header_then_events() {
        let text = format!("{HEADER}{OUTAGE}{SUBMIT}");
        let (meta, evs, stats) = read_all(&text).unwrap();
        assert_eq!(meta.schema, 1);
        assert_eq!(meta.machine.as_deref(), Some("Ross"));
        assert_eq!(meta.cpus, Some(1436));
        assert!(!meta.headerless);
        assert_eq!(evs.len(), 2);
        assert!(matches!(evs[0].kind, EventKind::Outage { up: true }));
        assert_eq!(stats.events, 2);
        assert_eq!(stats.corrupt, 0);
    }

    #[test]
    fn unsupported_schema_is_a_hard_error() {
        let e = read_all("{\"schema\":99}\n").unwrap_err();
        match e {
            TraceError::UnsupportedSchema { found } => assert_eq!(found, 99),
            other => panic!("{other:?}"),
        }
        let msg = e.to_string();
        assert!(msg.contains("99") && msg.contains("schemas 1-4"), "{msg}");
    }

    #[test]
    fn schema_v2_fault_traces_are_accepted() {
        let text = concat!(
            "{\"schema\":2,\"machine\":\"Ross\",\"cpus\":1436}\n",
            "{\"t\":3,\"cycle\":1,\"ev\":\"node_down\",\"node\":4,\"cpus\":16}\n",
            "{\"t\":3,\"cycle\":1,\"ev\":\"job_failed\",\"job\":7,\"cpus\":16,\"node\":4,\
             \"class\":\"interstitial\"}\n",
            "{\"t\":3,\"cycle\":1,\"ev\":\"job_requeued\",\"job\":7,\"attempt\":1}\n",
            "{\"t\":9,\"cycle\":2,\"ev\":\"node_up\",\"node\":4,\"cpus\":16}\n",
        );
        let (meta, evs, stats) = read_all(text).unwrap();
        assert_eq!(meta.schema, 2);
        assert_eq!(evs.len(), 4);
        assert_eq!(stats.corrupt, 0);
        assert!(matches!(
            evs[0].kind,
            EventKind::NodeDown { node: 4, cpus: 16 }
        ));
        assert!(matches!(
            evs[1].kind,
            EventKind::JobFailed {
                job: 7,
                interstitial: true,
                ..
            }
        ));
        assert!(matches!(
            evs[2].kind,
            EventKind::JobRequeued { job: 7, attempt: 1 }
        ));
        assert!(matches!(evs[3].kind, EventKind::NodeUp { .. }));
    }

    #[test]
    fn schema_v3_recovery_traces_are_accepted() {
        let text = concat!(
            "{\"schema\":3,\"machine\":\"Ross\",\"cpus\":1436}\n",
            "{\"t\":3,\"cycle\":1,\"ev\":\"job_failed\",\"job\":7,\"cpus\":16,\"node\":4,\
             \"class\":\"interstitial\"}\n",
            "{\"t\":3,\"cycle\":1,\"ev\":\"job_checkpointed\",\"job\":7,\"checkpoints\":2,\
             \"salvaged_s\":60,\"lost_s\":12}\n",
            "{\"t\":3,\"cycle\":1,\"ev\":\"job_suspended\",\"job\":8,\"remaining_s\":40}\n",
            "{\"t\":9,\"cycle\":2,\"ev\":\"job_resumed\",\"job\":7,\"remaining_s\":60}\n",
        );
        let (meta, evs, stats) = read_all(text).unwrap();
        assert_eq!(meta.schema, 3);
        assert_eq!(evs.len(), 4);
        assert_eq!(stats.corrupt, 0);
        assert!(matches!(
            evs[1].kind,
            EventKind::JobCheckpointed {
                job: 7,
                checkpoints: 2,
                salvaged_s: 60,
                lost_s: 12,
            }
        ));
        assert!(matches!(
            evs[2].kind,
            EventKind::JobSuspended {
                job: 8,
                remaining_s: 40,
            }
        ));
        assert!(matches!(
            evs[3].kind,
            EventKind::JobResumed {
                job: 7,
                remaining_s: 60,
            }
        ));
    }

    #[test]
    fn schema_v4_slo_traces_are_accepted() {
        let text = concat!(
            "{\"schema\":4,\"machine\":\"Ross\",\"cpus\":1436}\n",
            "{\"t\":600,\"cycle\":12,\"ev\":\"slo_breach\",\"rule\":1,\
             \"metric\":\"native_p99_wait\",\"value\":4000,\"limit\":3600}\n",
            "{\"t\":900,\"cycle\":19,\"ev\":\"slo_clear\",\"rule\":1,\
             \"metric\":\"native_p99_wait\",\"value\":3100,\"limit\":3600}\n",
        );
        let (meta, evs, stats) = read_all(text).unwrap();
        assert_eq!(meta.schema, 4);
        assert_eq!(evs.len(), 2);
        assert_eq!(stats.corrupt, 0);
        assert!(matches!(
            evs[0].kind,
            EventKind::SloBreach {
                rule: 1,
                metric: "native_p99_wait",
                value: 4000,
                limit: 3600,
            }
        ));
        assert!(matches!(evs[1].kind, EventKind::SloClear { rule: 1, .. }));
    }

    #[test]
    fn headerless_stream_is_tolerated_and_flagged() {
        let text = format!("{OUTAGE}{SUBMIT}");
        let (meta, evs, stats) = read_all(&text).unwrap();
        assert!(meta.headerless);
        assert_eq!(meta.schema, 0);
        assert_eq!(evs.len(), 2, "first line must not be swallowed");
        assert_eq!(stats.events, 2);
    }

    #[test]
    fn corrupt_lines_are_skipped_and_sampled() {
        let text = format!("{HEADER}{OUTAGE}garbage line\n{{\"t\":1}}\n{SUBMIT}");
        let (_, evs, stats) = read_all(&text).unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(stats.corrupt, 2);
        assert_eq!(stats.first_errors.len(), 2);
        assert_eq!(stats.first_errors[0].0, 3, "1-based incl. header");
    }

    #[test]
    fn mid_stream_header_counts_as_corrupt() {
        let text = format!("{HEADER}{OUTAGE}{HEADER}{SUBMIT}");
        let (_, evs, stats) = read_all(&text).unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(stats.corrupt, 1);
        assert!(stats.first_errors[0].1.contains("mid-stream"));
    }

    #[test]
    fn empty_and_blank_streams() {
        let (meta, evs, stats) = read_all("").unwrap();
        assert!(evs.is_empty());
        assert_eq!(stats.lines, 0);
        assert_eq!(meta.schema, 0);
        let (_, evs, _) = read_all(&format!("{HEADER}\n\n")).unwrap();
        assert!(evs.is_empty());
    }

    #[test]
    fn error_sampling_caps_out() {
        let mut text = HEADER.to_string();
        for _ in 0..20 {
            text.push_str("junk\n");
        }
        let (_, _, stats) = read_all(&text).unwrap();
        assert_eq!(stats.corrupt, 20);
        assert_eq!(stats.first_errors.len(), ERROR_SAMPLES);
    }
}
