//! # tracekit — streaming trace analytics and causal wait attribution
//!
//! Readers and analyzers for the `obs` JSONL trace schema (see
//! `crates/obs/SCHEMA.md`), built for traces too large to hold in memory:
//!
//! * [`parse`] — zero-copy line parser with schema-version checking and
//!   precise per-line errors.
//! * [`reader`] — pull-based [`reader::TraceReader`] over any `BufRead`:
//!   validates the `{"schema":1}` header, hard-errors on unknown
//!   versions, recovers from corrupt lines (counted + sampled).
//! * [`lifecycle`] — [`lifecycle::Occupancy`], the shared submit → start
//!   → finish/preempt state machine; memory proportional to *live* jobs,
//!   never trace length.
//! * [`attribution`] — causal wait attribution: each native job's queue
//!   wait partitioned *exactly* into machine-saturated, interstitial-
//!   interference, fair-share-held and backfill-window intervals.
//! * [`summary`] — single-pass counters, occupancy integrals and P²
//!   percentiles behind `interstitial trace summarize`.
//! * [`timeline`] — `StepFunction`-backed occupancy/free profiles, ASCII
//!   heatmap and interstice census (reusing `analysis::interstices`).
//! * [`quantile`] — streaming P² quantile estimators (Jain & Chlamtac).
//! * [`diff`] — align a native-only baseline trace with a
//!   with-interstitial trace from the same seed and report per-job wait
//!   deltas plus Table-5 panels computed by the simulator's own
//!   aggregation code.
//!
//! The crate never buffers the event stream: every analyzer is a fold
//! with `observe(&TraceEvent)` / `finish()`, so `summarize` holds peak
//! memory proportional to queue depth even on multi-million-line traces.

#![warn(missing_docs)]

pub mod attribution;
pub mod diff;
pub mod lifecycle;
pub mod parse;
pub mod quantile;
pub mod reader;
pub mod summary;
pub mod timeline;

pub use attribution::{AttributionReport, Attributor, JobWait, WaitCategory, CATEGORIES};
pub use diff::{diff, JobDelta, OutcomeCollector, Outcomes, TraceDiff};
pub use lifecycle::{Occupancy, Transition};
pub use parse::{parse_line, Line, ParseError};
pub use quantile::{Quantiles, P2};
pub use reader::{open_path, read_all, ReadStats, TraceError, TraceMeta, TraceReader};
pub use summary::{Summarizer, TraceSummary};
pub use timeline::{Timeline, TimelineBuilder};
