//! Causal wait attribution: *why* did each native job wait?
//!
//! Between any two consecutive trace events the reconstructed machine
//! state is constant, so a waiting native job's queue time decomposes
//! exactly into per-interval charges. Each interval is attributed to the
//! single most-binding cause, tested in priority order:
//!
//! 1. **machine-saturated** — the machine is down, or native jobs alone
//!    leave fewer than the job's CPUs (`total − native_busy < cpus`): the
//!    wait would exist even with no interstitial load at all. Outage time
//!    is deliberately folded in here: like native saturation, it is
//!    independent of scavenging.
//! 2. **interstitial-interference** — natives leave room, but CPUs held
//!    by interstitial jobs push free capacity below the job's need
//!    (`free < cpus ≤ total − native_busy`). Reclaiming interstitial CPUs
//!    would have let it start: this is the paper's impact channel, the
//!    §4.3 delay that bad estimates let through the Figure 1 guard.
//! 3. **fair-share-held** — enough CPUs are free, but the job is not the
//!    oldest waiting native: the scheduler's priority order (and the
//!    backfill guard protecting the head's reservation) holds it back
//!    behind other natives.
//! 4. **backfill-window** — enough CPUs are free and the job *is* the
//!    oldest waiting native, yet it has not started: it is held by
//!    dispatch-window limits or the reservation mechanics of its own
//!    scheduler cycle granularity.
//!
//! Categories 3–4 are trace-derivable approximations of scheduler
//! internals (the trace does not carry the scheduler's priority order or
//! window state), but the partition property is exact by construction:
//! per job, the four accumulators sum to the measured queue wait with no
//! gap and no overlap — the invariant the property suite and the golden
//! traces both assert.

use crate::lifecycle::{Occupancy, Transition};
use obs::TraceEvent;
use simkit::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// The four wait causes, in attribution priority order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitCategory {
    /// Machine down, or native load alone blocks the job.
    Saturated,
    /// Interstitial CPUs are the binding constraint.
    Interference,
    /// Held behind older waiting natives.
    FairShare,
    /// Oldest waiter, capacity free, still held (window/reservation).
    Window,
}

/// All categories, in priority/reporting order.
pub const CATEGORIES: [WaitCategory; 4] = [
    WaitCategory::Saturated,
    WaitCategory::Interference,
    WaitCategory::FairShare,
    WaitCategory::Window,
];

impl WaitCategory {
    /// Index into per-job accumulator arrays.
    pub fn index(self) -> usize {
        match self {
            WaitCategory::Saturated => 0,
            WaitCategory::Interference => 1,
            WaitCategory::FairShare => 2,
            WaitCategory::Window => 3,
        }
    }

    /// Stable human-facing label.
    pub fn label(self) -> &'static str {
        match self {
            WaitCategory::Saturated => "machine-saturated",
            WaitCategory::Interference => "interstitial-interference",
            WaitCategory::FairShare => "fair-share-held",
            WaitCategory::Window => "backfill-window",
        }
    }
}

/// One native job's fully attributed queue wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobWait {
    /// Job id.
    pub id: u64,
    /// CPUs requested.
    pub cpus: u32,
    /// Submission instant.
    pub submit: SimTime,
    /// Start instant.
    pub start: SimTime,
    /// Seconds attributed per category (index via [`WaitCategory::index`]).
    pub seconds: [u64; 4],
}

impl JobWait {
    /// Measured queue wait.
    pub fn wait(&self) -> SimDuration {
        self.start - self.submit
    }

    /// Sum of the four attributed buckets — equals [`JobWait::wait`] by
    /// the partition invariant.
    pub fn attributed(&self) -> SimDuration {
        SimDuration::from_secs(self.seconds.iter().sum())
    }
}

/// Aggregate attribution over one trace.
#[derive(Clone, Debug, Default)]
pub struct AttributionReport {
    /// Per-job attributions, in start order.
    pub jobs: Vec<JobWait>,
    /// Machine-wide totals per category, seconds.
    pub totals: [u64; 4],
    /// Native starts whose submit was not in the trace (truncated
    /// stream); their waits cannot be attributed.
    pub unmatched_starts: u64,
    /// Lifecycle inconsistencies encountered (see [`Occupancy`]).
    pub inconsistencies: u64,
}

impl AttributionReport {
    /// Total attributed wait across all jobs and categories, seconds.
    pub fn total_wait_s(&self) -> u64 {
        self.totals.iter().sum()
    }

    /// Fraction of all attributed wait in `cat` (0 when nothing waited).
    pub fn fraction(&self, cat: WaitCategory) -> f64 {
        let total = self.total_wait_s();
        if total == 0 {
            0.0
        } else {
            self.totals[cat.index()] as f64 / total as f64
        }
    }
}

/// Streaming attribution engine: feed events in order, then
/// [`Attributor::finish`].
#[derive(Clone, Debug)]
pub struct Attributor {
    occ: Occupancy,
    /// Per-waiting-job category accumulators, seconds.
    acc: BTreeMap<u64, [u64; 4]>,
    last_t: SimTime,
    report: AttributionReport,
}

impl Attributor {
    /// Attribution needs the machine size (from the trace header or the
    /// caller) to tell saturation from interference.
    pub fn new(total_cpus: u32) -> Self {
        Attributor {
            occ: Occupancy::new(Some(total_cpus)),
            acc: BTreeMap::new(),
            last_t: SimTime::ZERO,
            report: AttributionReport::default(),
        }
    }

    /// Classify the *current* interval for a waiting job of `cpus` CPUs.
    fn classify(&self, id: u64, cpus: u32, oldest: Option<u64>) -> WaitCategory {
        if !self.occ.is_up() {
            return WaitCategory::Saturated;
        }
        let total = self.occ.total().unwrap_or(0);
        if total.saturating_sub(self.occ.native_busy()) < cpus {
            return WaitCategory::Saturated;
        }
        if self.occ.free().unwrap_or(0) < cpus {
            return WaitCategory::Interference;
        }
        if oldest != Some(id) {
            return WaitCategory::FairShare;
        }
        WaitCategory::Window
    }

    /// Charge the interval `[last_t, now)` to every waiting native.
    fn accrue(&mut self, now: SimTime) {
        let dt = (now - self.last_t).as_secs();
        if dt == 0 || self.occ.waiting().is_empty() {
            return;
        }
        let oldest = self.occ.oldest_waiting();
        // Classification only reads `occ`; collect to appease the borrow
        // of `acc` (waiting sets are small — queue depth, not trace
        // length).
        let charges: Vec<(u64, usize)> = self
            .occ
            .waiting()
            .iter()
            .map(|(&id, w)| (id, self.classify(id, w.cpus, oldest).index()))
            .collect();
        for (id, cat) in charges {
            self.acc.entry(id).or_default()[cat] += dt;
            self.report.totals[cat] += dt;
        }
    }

    /// Feed the next event (must be in nondecreasing time order).
    pub fn observe(&mut self, ev: &TraceEvent) {
        self.accrue(ev.t);
        self.last_t = ev.t;
        if let Transition::Started {
            id,
            cpus,
            interstitial: false,
            submit,
            ..
        } = self.occ.apply(ev)
        {
            match submit {
                Some(submit) => {
                    let seconds = self.acc.remove(&id).unwrap_or_default();
                    self.report.jobs.push(JobWait {
                        id,
                        cpus,
                        submit,
                        start: ev.t,
                        seconds,
                    });
                }
                None => self.report.unmatched_starts += 1,
            }
        }
    }

    /// Consume the engine and return the report. Natives still waiting at
    /// end of trace never started and are excluded (their wait is
    /// unbounded in-trace).
    pub fn finish(mut self) -> AttributionReport {
        // Waits accrued by never-started jobs are not part of any job's
        // attribution; remove them from the machine totals too so the
        // report stays internally consistent.
        for (_, seconds) in self.acc {
            for (i, s) in seconds.iter().enumerate() {
                self.report.totals[i] -= s;
            }
        }
        self.report.inconsistencies = self.occ.inconsistencies();
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::{EventKind, StartKind};

    fn ev(t: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            t: SimTime::from_secs(t),
            cycle: 0,
            kind,
        }
    }

    fn submit(t: u64, job: u64, cpus: u32, interstitial: bool) -> TraceEvent {
        ev(
            t,
            EventKind::Submit {
                job,
                cpus,
                estimate_s: 100,
                interstitial,
            },
        )
    }

    fn start(t: u64, job: u64, cpus: u32, kind: StartKind) -> TraceEvent {
        ev(t, EventKind::Start { job, cpus, kind })
    }

    fn finish_ev(t: u64, job: u64, cpus: u32, wait_s: u64, interstitial: bool) -> TraceEvent {
        ev(
            t,
            EventKind::Finish {
                job,
                cpus,
                wait_s,
                interstitial,
            },
        )
    }

    fn run(total: u32, evs: &[TraceEvent]) -> AttributionReport {
        let mut a = Attributor::new(total);
        for e in evs {
            a.observe(e);
        }
        a.finish()
    }

    #[test]
    fn native_saturation_is_not_interference() {
        // Job 1 fills the machine; job 2 waits entirely on native load.
        let r = run(
            64,
            &[
                submit(0, 1, 64, false),
                start(0, 1, 64, StartKind::InOrder),
                submit(10, 2, 64, false),
                finish_ev(1_000, 1, 64, 0, false),
                start(1_000, 2, 64, StartKind::InOrder),
            ],
        );
        assert_eq!(r.jobs.len(), 2);
        let j2 = r.jobs[1];
        assert_eq!(j2.wait(), SimDuration::from_secs(990));
        assert_eq!(j2.seconds[WaitCategory::Saturated.index()], 990);
        assert_eq!(j2.attributed(), j2.wait());
    }

    #[test]
    fn interstitial_occupancy_is_interference() {
        // Interstitial slab holds 32 of 64 CPUs; a 64-CPU native waits on
        // exactly that occupancy until the slab finishes.
        let ij = 1 << 40;
        let r = run(
            64,
            &[
                submit(0, ij, 32, true),
                start(0, ij, 32, StartKind::Interstitial),
                submit(50, 1, 64, false),
                finish_ev(800, ij, 32, 0, true),
                start(800, 1, 64, StartKind::InOrder),
            ],
        );
        let j1 = r.jobs[0];
        assert_eq!(j1.wait(), SimDuration::from_secs(750));
        assert_eq!(j1.seconds[WaitCategory::Interference.index()], 750);
        assert_eq!(r.fraction(WaitCategory::Interference), 1.0);
    }

    #[test]
    fn outage_time_is_saturated() {
        let r = run(
            64,
            &[
                ev(0, EventKind::Outage { up: false }),
                submit(10, 1, 8, false),
                ev(500, EventKind::Outage { up: true }),
                start(500, 1, 8, StartKind::InOrder),
            ],
        );
        let j = r.jobs[0];
        assert_eq!(j.seconds[WaitCategory::Saturated.index()], 490);
        assert_eq!(j.attributed(), j.wait());
    }

    #[test]
    fn younger_waiters_are_fairshare_held() {
        // Machine has room for both, but neither starts until t=100; the
        // older job's hold is "window", the younger one's is "fair-share".
        let r = run(
            64,
            &[
                submit(0, 1, 8, false),
                submit(0, 2, 8, false),
                start(100, 1, 8, StartKind::InOrder),
                start(100, 2, 8, StartKind::InOrder),
            ],
        );
        let j1 = r.jobs[0];
        let j2 = r.jobs[1];
        assert_eq!(j1.seconds[WaitCategory::Window.index()], 100);
        assert_eq!(j2.seconds[WaitCategory::FairShare.index()], 100);
        assert_eq!(r.totals, [0, 0, 100, 100]);
    }

    #[test]
    fn mixed_causes_partition_exactly() {
        // Phases for job 2 (needs 64): [10,300) native saturation (job 1
        // holds 32, 64-32 < 64... no: total-native_busy = 32 < 64 → saturated),
        // [300,500) interference (interstitial 32 holds it: free 32 < 64 ≤ 64),
        // [500,700) window (all free, oldest).
        let ij = 1 << 40;
        let r = run(
            64,
            &[
                submit(0, 1, 32, false),
                start(0, 1, 32, StartKind::InOrder),
                submit(10, 2, 64, false),
                finish_ev(300, 1, 32, 0, false),
                submit(300, ij, 32, true),
                start(300, ij, 32, StartKind::Interstitial),
                finish_ev(500, ij, 32, 0, true),
                start(700, 2, 64, StartKind::InOrder),
            ],
        );
        assert_eq!(r.jobs.len(), 2, "job 1 (zero wait) then job 2");
        let j2 = r.jobs[1];
        assert_eq!(j2.seconds[WaitCategory::Saturated.index()], 290);
        assert_eq!(j2.seconds[WaitCategory::Interference.index()], 200);
        assert_eq!(j2.seconds[WaitCategory::Window.index()], 200);
        assert_eq!(j2.seconds[WaitCategory::FairShare.index()], 0);
        assert_eq!(j2.attributed(), j2.wait());
    }

    #[test]
    fn never_started_jobs_leave_totals_consistent() {
        let r = run(
            64,
            &[
                submit(0, 1, 64, false),
                start(0, 1, 64, StartKind::InOrder),
                submit(10, 2, 64, false),
                finish_ev(500, 1, 64, 0, false),
                // Job 2 never starts before the trace ends.
            ],
        );
        assert_eq!(r.jobs.len(), 1, "only job 1 (zero wait) started");
        assert_eq!(r.total_wait_s(), 0, "unfinished waits excluded");
    }

    #[test]
    fn unmatched_start_is_counted_not_attributed() {
        let r = run(64, &[start(100, 1, 8, StartKind::InOrder)]);
        assert!(r.jobs.is_empty());
        assert_eq!(r.unmatched_starts, 1);
    }

    #[test]
    fn zero_wait_jobs_have_empty_attribution() {
        let r = run(
            64,
            &[submit(5, 1, 8, false), start(5, 1, 8, StartKind::InOrder)],
        );
        let j = r.jobs[0];
        assert_eq!(j.wait(), SimDuration::ZERO);
        assert_eq!(j.seconds, [0, 0, 0, 0]);
    }
}
