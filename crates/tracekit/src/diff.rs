//! Paired-trace comparison: native-only baseline vs with-interstitial.
//!
//! The paper's impact methodology is differential — run the same native
//! workload with and without interstitial load and compare native waits
//! (§4.3, Tables 5–8). [`diff`] reproduces that comparison from traces
//! alone: align the two runs' native jobs by id (same seed ⇒ same ids),
//! report per-job wait deltas, and compute each side's Table-5 panel via
//! `analysis::metrics::NativeImpact` — the *same* code path the simulator
//! uses, so a trace-derived aggregate is bit-identical to the in-process
//! one (the `trace_analytics` integration test asserts exactly this).

use crate::lifecycle::{Occupancy, Transition};
use analysis::metrics::NativeImpact;
use obs::TraceEvent;
use simkit::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use workload::{CompletedJob, Job, JobClass};

/// One native job's realized outcome, extracted from finish events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NativeOutcome {
    /// CPUs held.
    pub cpus: u32,
    /// Queue wait as the writer measured it, seconds.
    pub wait_s: u64,
    /// Realized runtime (finish − start), seconds.
    pub runtime_s: u64,
}

/// Streaming collector of one trace's native outcomes.
#[derive(Clone, Debug, Default)]
pub struct OutcomeCollector {
    occ: Occupancy,
    jobs: BTreeMap<u64, NativeOutcome>,
    /// Ids in first-finish order — [`Outcomes::impact`] must aggregate in
    /// the simulator's completion order for bit-identical float sums.
    order: Vec<u64>,
    duplicates: u64,
}

impl OutcomeCollector {
    /// Empty collector.
    pub fn new() -> Self {
        OutcomeCollector {
            occ: Occupancy::new(None),
            ..OutcomeCollector::default()
        }
    }

    /// Fold in the next event (nondecreasing time order).
    pub fn observe(&mut self, ev: &TraceEvent) {
        if let Transition::Finished {
            id,
            cpus,
            interstitial: false,
            wait_s,
            start: Some(start),
            finish,
        } = self.occ.apply(ev)
        {
            let outcome = NativeOutcome {
                cpus,
                wait_s,
                runtime_s: (finish - start).as_secs(),
            };
            if self.jobs.insert(id, outcome).is_some() {
                self.duplicates += 1;
            } else {
                self.order.push(id);
            }
        }
    }

    /// Consume the collector.
    pub fn finish(self) -> Outcomes {
        Outcomes {
            jobs: self.jobs,
            order: self.order,
            duplicates: self.duplicates,
            dropped: self.occ.inconsistencies(),
        }
    }
}

/// All native outcomes of one trace, keyed by job id.
#[derive(Clone, Debug, Default)]
pub struct Outcomes {
    /// Per-job outcomes.
    pub jobs: BTreeMap<u64, NativeOutcome>,
    /// Job ids in finish order (the simulator's completion order).
    pub order: Vec<u64>,
    /// Ids finished more than once (corrupt stream); last one wins.
    pub duplicates: u64,
    /// Finishes dropped for lacking a matching start (truncated stream).
    pub dropped: u64,
}

impl Outcomes {
    /// The Table-5 panel for this side, computed by the *simulator's own*
    /// aggregation code over synthetic job logs reconstructed from the
    /// trace — identical bits for identical runs.
    pub fn impact(&self) -> NativeImpact {
        // Finish order, not id order: float accumulation is order-
        // sensitive in the last ulp, and bit-identity with the in-process
        // `NativeImpact` requires summing in the same (finish) order.
        let completed: Vec<CompletedJob> = self
            .order
            .iter()
            .filter_map(|id| self.jobs.get(id).map(|o| (*id, *o)))
            .map(|(id, o)| {
                // Anchor submit at 0: only wait and runtime matter to the
                // wait/EF statistics, and both are preserved exactly.
                CompletedJob::new(
                    Job {
                        id,
                        class: JobClass::Native,
                        user: 0,
                        group: 0,
                        submit: SimTime::ZERO,
                        cpus: o.cpus,
                        runtime: SimDuration::from_secs(o.runtime_s),
                        estimate: SimDuration::from_secs(o.runtime_s),
                    },
                    SimTime::from_secs(o.wait_s),
                )
            })
            .collect();
        NativeImpact::of(&completed)
    }
}

/// One aligned job's wait on both sides.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobDelta {
    /// Job id (same on both sides by seed determinism).
    pub id: u64,
    /// CPUs held.
    pub cpus: u32,
    /// Runtime on the baseline side, seconds.
    pub runtime_s: u64,
    /// Wait in the native-only baseline, seconds.
    pub base_wait_s: u64,
    /// Wait in the with-interstitial run, seconds.
    pub with_wait_s: u64,
}

impl JobDelta {
    /// Added wait (positive = interstitial load delayed this job).
    pub fn delta_s(&self) -> i64 {
        self.with_wait_s as i64 - self.base_wait_s as i64
    }
}

/// The aligned comparison of two runs of the same native workload.
#[derive(Clone, Debug)]
pub struct TraceDiff {
    /// Jobs present in both traces, ascending id.
    pub matched: Vec<JobDelta>,
    /// Native jobs only the baseline finished.
    pub only_base: u64,
    /// Native jobs only the with-interstitial run finished.
    pub only_with: u64,
    /// Matched jobs whose runtimes disagree — a sign the traces are not
    /// the same seed/workload and the comparison is not differential.
    pub runtime_mismatches: u64,
    /// Baseline Table-5 panel.
    pub base_impact: NativeImpact,
    /// With-interstitial Table-5 panel.
    pub with_impact: NativeImpact,
}

impl TraceDiff {
    /// Matched jobs whose wait grew.
    pub fn delayed_jobs(&self) -> u64 {
        self.matched.iter().filter(|d| d.delta_s() > 0).count() as u64
    }

    /// Net added wait across all matched jobs, seconds.
    pub fn total_delta_s(&self) -> i64 {
        self.matched.iter().map(JobDelta::delta_s).sum()
    }

    /// Largest single-job added wait, seconds (0 when nothing matched).
    pub fn max_delta_s(&self) -> i64 {
        self.matched
            .iter()
            .map(JobDelta::delta_s)
            .max()
            .unwrap_or(0)
    }

    /// The `n` most-delayed jobs, descending delta, ties by ascending id.
    pub fn top_deltas(&self, n: usize) -> Vec<JobDelta> {
        let mut v = self.matched.clone();
        v.sort_by(|a, b| b.delta_s().cmp(&a.delta_s()).then(a.id.cmp(&b.id)));
        v.truncate(n);
        v
    }
}

/// Align two sides by job id and compare.
pub fn diff(base: &Outcomes, with: &Outcomes) -> TraceDiff {
    let mut matched = Vec::new();
    let mut only_base = 0;
    let mut runtime_mismatches = 0;
    for (&id, b) in &base.jobs {
        match with.jobs.get(&id) {
            Some(w) => {
                if w.runtime_s != b.runtime_s {
                    runtime_mismatches += 1;
                }
                matched.push(JobDelta {
                    id,
                    cpus: b.cpus,
                    runtime_s: b.runtime_s,
                    base_wait_s: b.wait_s,
                    with_wait_s: w.wait_s,
                });
            }
            None => only_base += 1,
        }
    }
    let only_with = with
        .jobs
        .keys()
        .filter(|id| !base.jobs.contains_key(id))
        .count() as u64;
    TraceDiff {
        matched,
        only_base,
        only_with,
        runtime_mismatches,
        base_impact: base.impact(),
        with_impact: with.impact(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::{EventKind, StartKind};

    fn lifecycle(
        c: &mut OutcomeCollector,
        id: u64,
        cpus: u32,
        submit: u64,
        start: u64,
        finish: u64,
    ) {
        let evs = [
            TraceEvent {
                t: SimTime::from_secs(submit),
                cycle: 0,
                kind: EventKind::Submit {
                    job: id,
                    cpus,
                    estimate_s: 100,
                    interstitial: false,
                },
            },
            TraceEvent {
                t: SimTime::from_secs(start),
                cycle: 0,
                kind: EventKind::Start {
                    job: id,
                    cpus,
                    kind: StartKind::InOrder,
                },
            },
            TraceEvent {
                t: SimTime::from_secs(finish),
                cycle: 0,
                kind: EventKind::Finish {
                    job: id,
                    cpus,
                    wait_s: start - submit,
                    interstitial: false,
                },
            },
        ];
        for e in &evs {
            c.observe(e);
        }
    }

    #[test]
    fn aligned_jobs_report_deltas() {
        let mut base = OutcomeCollector::new();
        lifecycle(&mut base, 1, 4, 0, 0, 100); // wait 0
        lifecycle(&mut base, 2, 8, 10, 20, 120); // wait 10
        let mut with = OutcomeCollector::new();
        lifecycle(&mut with, 1, 4, 0, 50, 150); // wait 50 (+50)
        lifecycle(&mut with, 2, 8, 10, 20, 120); // wait 10 (+0)
        let d = diff(&base.finish(), &with.finish());
        assert_eq!(d.matched.len(), 2);
        assert_eq!(d.matched[0].delta_s(), 50);
        assert_eq!(d.matched[1].delta_s(), 0);
        assert_eq!(d.delayed_jobs(), 1);
        assert_eq!(d.total_delta_s(), 50);
        assert_eq!(d.max_delta_s(), 50);
        assert_eq!(d.top_deltas(1)[0].id, 1);
        assert_eq!(d.runtime_mismatches, 0);
        assert_eq!((d.only_base, d.only_with), (0, 0));
    }

    #[test]
    fn unmatched_and_mismatched_jobs_are_counted() {
        let mut base = OutcomeCollector::new();
        lifecycle(&mut base, 1, 4, 0, 0, 100);
        lifecycle(&mut base, 2, 4, 0, 0, 100);
        let mut with = OutcomeCollector::new();
        lifecycle(&mut with, 2, 4, 0, 0, 200); // runtime differs
        lifecycle(&mut with, 3, 4, 0, 0, 100);
        let d = diff(&base.finish(), &with.finish());
        assert_eq!(d.matched.len(), 1);
        assert_eq!(d.only_base, 1);
        assert_eq!(d.only_with, 1);
        assert_eq!(d.runtime_mismatches, 1);
    }

    #[test]
    fn impact_matches_direct_native_impact() {
        // Build outcomes and the equivalent CompletedJob log; the two
        // aggregation paths must agree exactly.
        let mut c = OutcomeCollector::new();
        lifecycle(&mut c, 1, 2, 0, 30, 130); // wait 30, run 100
        lifecycle(&mut c, 2, 16, 5, 5, 1_005); // wait 0, run 1000
        let out = c.finish();
        let direct = {
            let jobs: Vec<CompletedJob> = [(1u64, 2u32, 30u64, 100u64), (2, 16, 0, 1_000)]
                .iter()
                .map(|&(id, cpus, wait, run)| {
                    CompletedJob::new(
                        Job {
                            id,
                            class: JobClass::Native,
                            user: 0,
                            group: 0,
                            submit: SimTime::ZERO,
                            cpus,
                            runtime: SimDuration::from_secs(run),
                            estimate: SimDuration::from_secs(run),
                        },
                        SimTime::from_secs(wait),
                    )
                })
                .collect();
            NativeImpact::of(&jobs)
        };
        let from_trace = out.impact();
        assert_eq!(from_trace.all, direct.all);
        assert_eq!(from_trace.largest, direct.largest);
        assert_eq!(from_trace.largest.count, 1, "ceil(2 × 5%) = 1");
    }

    #[test]
    fn interstitial_and_orphan_finishes_are_excluded() {
        let mut c = OutcomeCollector::new();
        // Orphan finish: no start observed.
        c.observe(&TraceEvent {
            t: SimTime::from_secs(10),
            cycle: 0,
            kind: EventKind::Finish {
                job: 9,
                cpus: 4,
                wait_s: 0,
                interstitial: false,
            },
        });
        let out = c.finish();
        assert!(out.jobs.is_empty());
        assert_eq!(out.dropped, 1);
        assert_eq!(out.impact().all.count, 0);
    }
}
