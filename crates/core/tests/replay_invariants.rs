//! Full replays of all three Table 1 machines under the runtime invariant
//! checker. The `check-invariants` feature is enabled for every test build
//! of this crate (see Cargo.toml), so each scheduling cycle here asserts
//! CPU conservation and the meta-backfill no-delay guarantee; a run that
//! completes *is* the acceptance evidence.
//!
//! Also the cross-run determinism check: two identical replays must produce
//! identical job logs, record for record.

use interstitial::driver::SimBuilder;
use interstitial::policy::{InterstitialMode, InterstitialPolicy, Preemption};
use interstitial::project::InterstitialProject;
use interstitial::report::SimOutput;
use machine::config::{blue_mountain, blue_pacific, ross, MachineConfig};
use workload::traces::native_trace;

fn checked_replay(cfg: MachineConfig, seed: u64, policy: InterstitialPolicy) -> SimOutput {
    let natives = native_trace(&cfg, seed);
    let project = InterstitialProject::per_paper(u64::MAX / 2, 32, 300.0);
    SimBuilder::new(cfg)
        .natives(natives)
        .interstitial(project, InterstitialMode::Continual, policy)
        .build()
        .run()
}

fn fingerprint(out: &SimOutput) -> Vec<(u64, u64, u64)> {
    out.completed
        .iter()
        .map(|c| (c.job.id, c.start.as_secs(), c.finish.as_secs()))
        .collect()
}

#[test]
fn ross_full_replay_passes_invariants() {
    let out = checked_replay(ross(), 11, InterstitialPolicy::default());
    assert!(out.native_completed() > 0);
    assert!(out.interstitial_completed() > 0);
}

#[test]
fn blue_mountain_full_replay_passes_invariants() {
    let out = checked_replay(blue_mountain(), 12, InterstitialPolicy::default());
    assert!(out.native_completed() > 0);
    assert!(out.interstitial_completed() > 0);
}

#[test]
fn blue_pacific_full_replay_passes_invariants() {
    let out = checked_replay(blue_pacific(), 13, InterstitialPolicy::default());
    assert!(out.native_completed() > 0);
    assert!(out.interstitial_completed() > 0);
}

#[test]
fn relaxed_guard_replay_passes_with_slack() {
    // The non-strict Figure 1 guard admits interstitial jobs ending up to
    // one second past the head's reservation; the checker must accept that
    // declared slack across a full replay.
    let policy = InterstitialPolicy {
        strict_backfill_guard: false,
        ..Default::default()
    };
    let out = checked_replay(ross(), 14, policy);
    assert!(out.interstitial_completed() > 0);
}

#[test]
fn preempting_replay_passes_conservation() {
    // Preemption deliberately relaxes the no-delay guard (the checker skips
    // it), but CPU conservation must hold through every kill/checkpoint
    // reclaim and resume.
    for flavor in [Preemption::Kill, Preemption::Checkpoint] {
        let out = checked_replay(ross(), 15, InterstitialPolicy::preempting(flavor));
        assert!(out.native_completed() > 0);
    }
}

#[test]
fn replays_are_deterministic_across_runs() {
    // One machine suffices here — the per-machine replays above already
    // exercise all three personalities under the checker, and the root
    // crate's tests/determinism.rs covers the unchecked configurations.
    let a = checked_replay(ross(), 7, InterstitialPolicy::default());
    let b = checked_replay(ross(), 7, InterstitialPolicy::default());
    assert_eq!(
        fingerprint(&a),
        fingerprint(&b),
        "replay diverged between identical runs"
    );
}
