//! Randomized tests of the simulation driver and omniscient packer, driven
//! by seeded [`simkit::rng::Rng`] streams so every run checks the identical
//! scenario set.

use interstitial::omniscient;
use interstitial::prelude::*;
use machine::MachineConfig;
use simkit::rng::Rng;
use simkit::series::StepFunction;
use simkit::time::{SimDuration, SimTime};
use workload::{Job, JobClass};

const TOTAL_CPUS: u32 = 48;
const CASES: u64 = 48;

fn test_machine() -> MachineConfig {
    let mut m = machine::config::ross();
    m.cpus = TOTAL_CPUS;
    m.clock_ghz = 1.0;
    m
}

fn rng_for(suite: u64, case: u64) -> Rng {
    Rng::new(0x51_D217).split(suite ^ (case << 8))
}

fn random_natives(rng: &mut Rng) -> Vec<Job> {
    (0..rng.below(40))
        .map(|i| Job {
            id: i + 1,
            class: JobClass::Native,
            user: i as u32 % 7,
            group: i as u32 % 3,
            submit: SimTime::from_secs(rng.below(20_000)),
            cpus: rng.range_u64(1, (TOTAL_CPUS - 1) as u64) as u32,
            runtime: SimDuration::from_secs(rng.range_u64(10, 1_999)),
            estimate: SimDuration::from_secs(rng.range_u64(10, 3_999)),
        })
        .collect()
}

/// Every submitted job completes exactly once, never starts before its
/// submission, and runs for exactly its runtime (non-preemption).
#[test]
fn conservation_and_nonpreemption() {
    for case in 0..CASES {
        let natives = random_natives(&mut rng_for(1, case));
        let n = natives.len() as u64;
        let out = SimBuilder::new(test_machine())
            .natives(natives)
            .horizon(SimTime::from_secs(100_000))
            .build()
            .run();
        assert_eq!(out.native_completed(), n);
        for c in out.natives() {
            assert!(c.start >= c.job.submit);
            assert_eq!((c.finish - c.start).as_secs(), c.job.runtime.as_secs());
        }
    }
}

/// At no instant do concurrently running jobs exceed the machine size.
/// (Checked post-hoc from the completed-job intervals.)
#[test]
fn machine_never_oversubscribed() {
    for case in 0..CASES {
        let mut rng = rng_for(2, case);
        let natives = random_natives(&mut rng);
        let with_ij = rng.chance(0.5);
        let mut b = SimBuilder::new(test_machine())
            .natives(natives)
            .horizon(SimTime::from_secs(60_000));
        if with_ij {
            b = b.interstitial(
                InterstitialProject::per_paper(u64::MAX / 2, 5, 77.0),
                InterstitialMode::Continual,
                InterstitialPolicy::default(),
            );
        }
        let out = b.build().run();
        // Sweep: +cpus at start, −cpus at finish.
        let mut events: Vec<(u64, i64)> = Vec::new();
        for c in &out.completed {
            events.push((c.start.as_secs(), i64::from(c.job.cpus)));
            events.push((c.finish.as_secs(), -i64::from(c.job.cpus)));
        }
        events.sort_by_key(|&(t, d)| (t, d)); // releases before acquires at ties
        let mut load = 0i64;
        for (_, d) in events {
            load += d;
            assert!(load <= i64::from(TOTAL_CPUS), "load {load}");
        }
    }
}

/// The driver is a pure function of its inputs.
#[test]
fn runs_are_deterministic() {
    for case in 0..CASES {
        let natives = random_natives(&mut rng_for(3, case));
        let run = || {
            SimBuilder::new(test_machine())
                .natives(natives.clone())
                .horizon(SimTime::from_secs(60_000))
                .interstitial(
                    InterstitialProject::per_paper(1_000, 3, 50.0),
                    InterstitialMode::Continual,
                    InterstitialPolicy::capped(0.9),
                )
                .build()
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.completed.len(), b.completed.len());
        for (x, y) in a.completed.iter().zip(b.completed.iter()) {
            assert_eq!(x.job.id, y.job.id);
            assert_eq!(x.start, y.start);
        }
    }
}

/// A tighter utilization cap never yields more interstitial jobs.
#[test]
fn cap_monotonicity() {
    for case in 0..CASES / 2 {
        let natives = random_natives(&mut rng_for(4, case));
        let run = |policy: InterstitialPolicy| {
            SimBuilder::new(test_machine())
                .natives(natives.clone())
                .horizon(SimTime::from_secs(60_000))
                .interstitial(
                    InterstitialProject::per_paper(u64::MAX / 2, 4, 60.0),
                    InterstitialMode::Continual,
                    policy,
                )
                .build()
                .run()
                .interstitial_completed()
        };
        let tight = run(InterstitialPolicy::capped(0.5));
        let loose = run(InterstitialPolicy::capped(0.9));
        let none = run(InterstitialPolicy::default());
        assert!(tight <= loose, "{tight} > {loose}");
        assert!(loose <= none, "{loose} > {none}");
    }
}

/// Omniscient packing never exceeds the free profile: after subtracting
/// the batches it reports, capacity stays non-negative. We re-verify by
/// replaying the pack over a naive per-second model.
#[test]
fn omniscient_pack_respects_capacity() {
    let mut checked = 0u64;
    let mut case = 0u64;
    while checked < CASES {
        let mut rng = rng_for(5, case);
        case += 1;
        let horizon = 20_000u64;
        let mut profile =
            StepFunction::constant(SimTime::from_secs(horizon), i64::from(TOTAL_CPUS));
        let mut naive = vec![i64::from(TOTAL_CPUS); horizon as usize];
        for _ in 0..rng.below(6) {
            let (a, b) = (rng.below(5_000), rng.below(5_000));
            let c = rng.range_u64(1, 39) as u32;
            let (a, b) = (a.min(b), a.max(b));
            profile.range_add(SimTime::from_secs(a), SimTime::from_secs(b), -i64::from(c));
            for t in a..b {
                naive[t as usize] -= i64::from(c);
            }
        }
        // Dips can go negative in the naive model if they stack; skip the
        // physically nonsensical profiles (mirrors prop_assume).
        if naive.iter().any(|&v| v < 0) {
            continue;
        }
        checked += 1;

        let jobs = rng.range_u64(1, 59);
        let cpus = rng.range_u64(1, 15) as u32;
        let dur = rng.range_u64(10, 499);
        let start = rng.below(2_000);
        let project = InterstitialProject::per_paper(jobs, cpus, dur as f64);
        let m = test_machine();
        if let Some(result) = omniscient::pack(profile, &project, &m, SimTime::from_secs(start)) {
            assert!(result.finish.as_secs() <= horizon);
            assert!(result.start == SimTime::from_secs(start));
            assert!(result.makespan().as_secs() >= dur);
            assert!(result.batches >= 1 && result.batches <= jobs);
        }
    }
}
