//! Fault-injection replays of all three Table 1 machines under the runtime
//! invariant checker. The `check-invariants` feature is on for every test
//! build of this crate, so each scheduling cycle asserts CPU conservation
//! *and* the degraded-capacity bound (occupancy never exceeds the fault
//! model's CPUs-in-service timeline); a replay that completes is the
//! acceptance evidence.
//!
//! Also here: same-seed runs must reproduce identical job logs, traces and
//! retry/requeue counters, and a [`FaultModel::none`] run must be
//! bit-for-bit identical to a run that never heard of the fault subsystem.

use interstitial::driver::SimBuilder;
use interstitial::policy::{InterstitialMode, InterstitialPolicy, RetryPolicy};
use interstitial::project::InterstitialProject;
use interstitial::report::SimOutput;
use machine::config::{blue_mountain, blue_pacific, ross, MachineConfig};
use machine::{FaultModel, FaultSpec};
use obs::Obs;
use simkit::time::SimDuration;
use workload::traces::native_trace;

fn faulted_replay(cfg: MachineConfig, seed: u64, spec: &FaultSpec, observe: bool) -> SimOutput {
    let natives = native_trace(&cfg, seed);
    let horizon = cfg.log_horizon();
    let faults = FaultModel::synthesize(spec, cfg.cpus, horizon);
    let project = InterstitialProject::per_paper(u64::MAX / 2, 32, 300.0);
    let mut b = SimBuilder::new(cfg)
        .natives(natives)
        .faults(faults)
        .retry(RetryPolicy {
            base_delay: SimDuration::from_secs(120),
            max_delay: SimDuration::from_secs(3_600),
            max_attempts: 4,
        })
        .interstitial(
            project,
            InterstitialMode::Continual,
            InterstitialPolicy::default(),
        );
    if observe {
        b = b.observer(Obs::enabled());
    }
    b.build().run()
}

fn fingerprint(out: &SimOutput) -> Vec<(u64, u64, u64)> {
    out.completed
        .iter()
        .map(|c| (c.job.id, c.start.as_secs(), c.finish.as_secs()))
        .collect()
}

/// A fault rate aggressive enough to exercise kills/retries on every
/// machine (node MTBF ~2 days against multi-hour jobs) without drowning
/// the run.
fn spec() -> FaultSpec {
    FaultSpec::parse("mtbf=172800,mttr=7200,nodes=16,seed=5").unwrap()
}

#[test]
fn ross_faulted_replay_passes_invariants() {
    let out = faulted_replay(ross(), 21, &spec(), false);
    assert!(out.native_completed() > 0);
    assert!(out.faults.node_failures > 0, "faults must actually fire");
    assert_eq!(out.faults.node_failures, out.faults.node_repairs);
}

#[test]
fn blue_mountain_faulted_replay_passes_invariants() {
    let out = faulted_replay(blue_mountain(), 22, &spec(), false);
    assert!(out.native_completed() > 0);
    assert!(out.faults.node_failures > 0);
}

#[test]
fn blue_pacific_faulted_replay_passes_invariants() {
    let out = faulted_replay(blue_pacific(), 23, &spec(), false);
    assert!(out.native_completed() > 0);
    assert!(out.faults.node_failures > 0);
}

#[test]
fn every_submitted_native_survives_the_faults() {
    // Natives are requeued, never dropped: whatever the failure pattern,
    // each submitted native job eventually completes exactly once.
    let out = faulted_replay(ross(), 24, &spec(), false);
    assert_eq!(out.native_completed(), out.native_submitted);
    let mut ids: Vec<u64> = out.natives().map(|c| c.job.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(
        ids.len() as u64,
        out.native_submitted,
        "no double completion"
    );
}

#[test]
fn same_seed_reproduces_traces_and_retry_counts() {
    let a = faulted_replay(ross(), 25, &spec(), true);
    let b = faulted_replay(ross(), 25, &spec(), true);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.obs.trace.to_jsonl(), b.obs.trace.to_jsonl());
    assert_eq!(a.faults.native_requeues, b.faults.native_requeues);
    assert_eq!(a.faults.interstitial_retries, b.faults.interstitial_retries);
    assert_eq!(
        a.faults.interstitial_given_up,
        b.faults.interstitial_given_up
    );
    assert!((a.faults.fault_wasted_cpu_seconds - b.faults.fault_wasted_cpu_seconds).abs() < 1e-9);
}

#[test]
fn none_model_is_bitwise_the_perfect_machine() {
    // The golden-preservation contract: threading FaultModel::none()
    // through the builder changes nothing — same job log, same trace
    // bytes, schema still v1 — compared to a build that never mentions
    // faults.
    let cfg = ross();
    let natives = native_trace(&cfg, 26);
    let project = InterstitialProject::per_paper(u64::MAX / 2, 32, 300.0);
    let run = |with_model: bool| {
        let mut b = SimBuilder::new(cfg.clone())
            .natives(natives.clone())
            .interstitial(
                project,
                InterstitialMode::Continual,
                InterstitialPolicy::default(),
            )
            .observer(Obs::enabled());
        if with_model {
            b = b.faults(FaultModel::none());
        }
        b.build().run()
    };
    let plain = run(false);
    let modeled = run(true);
    assert_eq!(fingerprint(&plain), fingerprint(&modeled));
    let jsonl = modeled.obs.trace.to_jsonl();
    assert_eq!(plain.obs.trace.to_jsonl(), jsonl);
    assert!(jsonl.starts_with("{\"schema\":1"), "fault-free stays v1");
    assert_eq!(modeled.faults.total_kills(), 0);
    assert_eq!(modeled.faults.node_failures, 0);
}
