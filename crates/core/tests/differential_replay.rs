//! Full-simulation differential replay: the naive and indexed free-profile
//! paths, crossed with the heap and calendar event queues, must produce
//! byte-identical traces and identical completions on every machine preset,
//! fault-free and faulted.
//!
//! This is the end-to-end arm of the equivalence proof (the sched-level arm
//! is `crates/sched/tests/differential.rs`): if a divergence slips past the
//! planner-level harness, it surfaces here as a trace diff. On failure, the
//! diverging artifacts are written to `target/differential/` so CI can
//! upload them for offline diffing.

use interstitial::prelude::*;
use machine::{FaultModel, FaultSpec, MachineConfig};
use obs::Obs;
use sched::{ProfileMode, Scheduler};
use simkit::time::{SimDuration, SimTime};
use simkit::QueueKind;
use workload::traces::native_trace;

const SEED: u64 = 7;
const JOBS: usize = 150;

fn presets() -> [(&'static str, MachineConfig); 3] {
    [
        ("ross", machine::config::ross()),
        ("blue_mountain", machine::config::blue_mountain()),
        ("blue_pacific", machine::config::blue_pacific()),
    ]
}

fn replay(cfg: &MachineConfig, faulted: bool, mode: ProfileMode, queue: QueueKind) -> SimOutput {
    let mut natives = native_trace(cfg, SEED);
    natives.truncate(JOBS);
    let horizon =
        SimTime::from_secs(natives.iter().map(|j| j.submit.as_secs()).max().unwrap() + 86_400);
    let project = InterstitialProject::per_paper(u64::MAX / 2, (cfg.cpus / 8).max(1), 3_600.0);
    let mut scheduler = Scheduler::for_machine(cfg);
    scheduler.profile_mode = mode;
    let mut b = SimBuilder::new(cfg.clone())
        .natives(natives)
        .horizon(horizon)
        .scheduler(scheduler)
        .event_queue(queue)
        .interstitial(
            project,
            InterstitialMode::Continual,
            InterstitialPolicy::default(),
        )
        .observer(Obs::enabled());
    if faulted {
        let spec = FaultSpec {
            mtbf: SimDuration::from_secs(172_800),
            mttr: SimDuration::from_secs(7_200),
            nodes: 16,
            seed: 5,
        };
        b = b.faults(FaultModel::synthesize(&spec, cfg.cpus, horizon));
    }
    b.build().run()
}

/// Where diverging artifacts land for CI upload.
fn artifact_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/differential")
}

/// Compare a run against the reference; on any mismatch, dump both sides'
/// traces and counters under `target/differential/<label>.*` and panic.
fn assert_equivalent(label: &str, reference: &SimOutput, got: &SimOutput, same_tally: bool) {
    let ref_trace = reference.obs.trace.to_jsonl();
    let got_trace = got.obs.trace.to_jsonl();
    let ref_completed: Vec<(u64, SimTime, SimTime)> = reference
        .completed
        .iter()
        .map(|c| (c.job.id, c.start, c.finish))
        .collect();
    let got_completed: Vec<(u64, SimTime, SimTime)> = got
        .completed
        .iter()
        .map(|c| (c.job.id, c.start, c.finish))
        .collect();
    // Counter vectors must match field-for-field; `profile_segments_walked`
    // deliberately tallies different units in the two profile modes
    // (segments built vs. overlay pieces examined), so it is only
    // comparable when both runs used the same mode.
    let counters_match = reference
        .obs
        .work
        .fields()
        .into_iter()
        .zip(got.obs.work.fields())
        .all(|((name, a), (_, b))| a == b || (!same_tally && name == "profile_segments_walked"));

    if ref_trace == got_trace && ref_completed == got_completed && counters_match {
        return;
    }
    let dir = artifact_dir();
    std::fs::create_dir_all(&dir).ok();
    std::fs::write(
        dir.join(format!("{label}.reference.trace.jsonl")),
        &ref_trace,
    )
    .ok();
    std::fs::write(dir.join(format!("{label}.got.trace.jsonl")), &got_trace).ok();
    std::fs::write(
        dir.join(format!("{label}.reference.work.json")),
        reference.obs.work.to_json(),
    )
    .ok();
    std::fs::write(
        dir.join(format!("{label}.got.work.json")),
        got.obs.work.to_json(),
    )
    .ok();
    panic!(
        "{label}: runs diverged (trace identical: {}, completions identical: {}, \
         counters identical: {counters_match}) — artifacts in {}",
        ref_trace == got_trace,
        ref_completed == got_completed,
        dir.display()
    );
}

/// The full 2×2 (profile mode × event queue) against the naive/heap
/// reference, per preset, fault-free and faulted.
#[test]
fn all_mode_queue_combinations_replay_identically() {
    for (name, cfg) in presets() {
        for faulted in [false, true] {
            let reference = replay(&cfg, faulted, ProfileMode::Naive, QueueKind::Heap);
            assert!(
                !reference.completed.is_empty(),
                "{name}: reference run completed nothing"
            );
            for (mode, queue, tag) in [
                (ProfileMode::Naive, QueueKind::Calendar, "naive-calendar"),
                (ProfileMode::Indexed, QueueKind::Heap, "indexed-heap"),
                (
                    ProfileMode::Indexed,
                    QueueKind::Calendar,
                    "indexed-calendar",
                ),
            ] {
                let got = replay(&cfg, faulted, mode, queue);
                let label = format!("{name}-faulted{faulted}-{tag}");
                assert_equivalent(&label, &reference, &got, mode == ProfileMode::Naive);
            }
        }
    }
}
