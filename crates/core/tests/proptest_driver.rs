//! Property-based tests of the simulation driver and omniscient packer.

use interstitial::omniscient;
use interstitial::prelude::*;
use machine::MachineConfig;
use proptest::prelude::*;
use simkit::series::StepFunction;
use simkit::time::{SimDuration, SimTime};
use workload::{Job, JobClass};

const TOTAL_CPUS: u32 = 48;

fn test_machine() -> MachineConfig {
    let mut m = machine::config::ross();
    m.cpus = TOTAL_CPUS;
    m.clock_ghz = 1.0;
    m
}

fn arb_natives() -> impl Strategy<Value = Vec<Job>> {
    proptest::collection::vec(
        (0u64..20_000, 1u32..TOTAL_CPUS, 10u64..2_000, 10u64..4_000),
        0..40,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (submit, cpus, runtime, estimate))| Job {
                id: i as u64 + 1,
                class: JobClass::Native,
                user: i as u32 % 7,
                group: i as u32 % 3,
                submit: SimTime::from_secs(submit),
                cpus,
                runtime: SimDuration::from_secs(runtime),
                estimate: SimDuration::from_secs(estimate),
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every submitted job completes exactly once, never starts before its
    /// submission, and runs for exactly its runtime (non-preemption).
    #[test]
    fn conservation_and_nonpreemption(natives in arb_natives()) {
        let n = natives.len() as u64;
        let out = SimBuilder::new(test_machine())
            .natives(natives.clone())
            .horizon(SimTime::from_secs(100_000))
            .build()
            .run();
        prop_assert_eq!(out.native_completed(), n);
        for c in out.natives() {
            prop_assert!(c.start >= c.job.submit);
            prop_assert_eq!((c.finish - c.start).as_secs(), c.job.runtime.as_secs());
        }
    }

    /// At no instant do concurrently running jobs exceed the machine size.
    /// (Checked post-hoc from the completed-job intervals.)
    #[test]
    fn machine_never_oversubscribed(natives in arb_natives(), with_ij in any::<bool>()) {
        let mut b = SimBuilder::new(test_machine())
            .natives(natives)
            .horizon(SimTime::from_secs(60_000));
        if with_ij {
            b = b.interstitial(
                InterstitialProject::per_paper(u64::MAX / 2, 5, 77.0),
                InterstitialMode::Continual,
                InterstitialPolicy::default(),
            );
        }
        let out = b.build().run();
        // Sweep: +cpus at start, −cpus at finish.
        let mut events: Vec<(u64, i64)> = Vec::new();
        for c in &out.completed {
            events.push((c.start.as_secs(), i64::from(c.job.cpus)));
            events.push((c.finish.as_secs(), -i64::from(c.job.cpus)));
        }
        events.sort_by_key(|&(t, d)| (t, d)); // releases before acquires at ties
        let mut load = 0i64;
        for (_, d) in events {
            load += d;
            prop_assert!(load <= i64::from(TOTAL_CPUS), "load {load}");
        }
    }

    /// The driver is a pure function of its inputs.
    #[test]
    fn runs_are_deterministic(natives in arb_natives()) {
        let run = || {
            SimBuilder::new(test_machine())
                .natives(natives.clone())
                .horizon(SimTime::from_secs(60_000))
                .interstitial(
                    InterstitialProject::per_paper(1_000, 3, 50.0),
                    InterstitialMode::Continual,
                    InterstitialPolicy::capped(0.9),
                )
                .build()
                .run()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.completed.len(), b.completed.len());
        for (x, y) in a.completed.iter().zip(b.completed.iter()) {
            prop_assert_eq!(x.job.id, y.job.id);
            prop_assert_eq!(x.start, y.start);
        }
    }

    /// A tighter utilization cap never yields more interstitial jobs.
    #[test]
    fn cap_monotonicity(natives in arb_natives()) {
        let run = |policy: InterstitialPolicy| {
            SimBuilder::new(test_machine())
                .natives(natives.clone())
                .horizon(SimTime::from_secs(60_000))
                .interstitial(
                    InterstitialProject::per_paper(u64::MAX / 2, 4, 60.0),
                    InterstitialMode::Continual,
                    policy,
                )
                .build()
                .run()
                .interstitial_completed()
        };
        let tight = run(InterstitialPolicy::capped(0.5));
        let loose = run(InterstitialPolicy::capped(0.9));
        let none = run(InterstitialPolicy::default());
        prop_assert!(tight <= loose, "{tight} > {loose}");
        prop_assert!(loose <= none, "{loose} > {none}");
    }

    /// Omniscient packing never exceeds the free profile: after subtracting
    /// the batches it reports, capacity stays non-negative. We re-verify by
    /// replaying the pack over a naive per-second model.
    #[test]
    fn omniscient_pack_respects_capacity(
        dips in proptest::collection::vec((0u64..5_000, 0u64..5_000, 1u32..40), 0..6),
        jobs in 1u64..60,
        cpus in 1u32..16,
        dur in 10u64..500,
        start in 0u64..2_000,
    ) {
        let horizon = 20_000u64;
        let mut profile = StepFunction::constant(
            SimTime::from_secs(horizon),
            i64::from(TOTAL_CPUS),
        );
        let mut naive = vec![i64::from(TOTAL_CPUS); horizon as usize];
        for &(a, b, c) in &dips {
            let (a, b) = (a.min(b), a.max(b));
            profile.range_add(SimTime::from_secs(a), SimTime::from_secs(b), -i64::from(c));
            for t in a..b {
                naive[t as usize] -= i64::from(c);
            }
        }
        // Dips can go negative in the naive model if they stack; clamp the
        // scenario to physically sensible profiles.
        prop_assume!(naive.iter().all(|&v| v >= 0));

        let project = InterstitialProject::per_paper(jobs, cpus, dur as f64);
        let m = test_machine();
        if let Some(result) =
            omniscient::pack(profile, &project, &m, SimTime::from_secs(start))
        {
            prop_assert!(result.finish.as_secs() <= horizon);
            prop_assert!(result.start == SimTime::from_secs(start));
            prop_assert!(result.makespan().as_secs() >= dur);
            prop_assert!(result.batches >= 1 && result.batches <= jobs);
        }
    }
}
