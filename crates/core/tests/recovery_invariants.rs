//! Recovery-policy replays under faults: the kill-restart default must be
//! bit-for-bit the legacy simulator, checkpoint/suspend must be same-seed
//! reproducible, stamp trace schema 3, and keep the salvage ledger
//! self-consistent (overhead exactly 10 CPU·s per CPU per checkpoint,
//! nothing re-executed under suspend, and the policy frontier on
//! interstitial waste: suspend ≤ checkpoint ≤ kill).

use interstitial::driver::SimBuilder;
use interstitial::policy::{
    InterstitialMode, InterstitialPolicy, RecoveryPolicy, RetryPolicy, CHECKPOINT_OVERHEAD_S,
};
use interstitial::project::InterstitialProject;
use interstitial::report::SimOutput;
use machine::config::ross;
use machine::{FaultModel, FaultSpec};
use obs::Obs;
use simkit::time::SimDuration;
use workload::traces::native_trace;

const STREAM_CPUS: u32 = 32;

fn replay(seed: u64, recovery: Option<RecoveryPolicy>) -> SimOutput {
    let cfg = ross();
    let natives = native_trace(&cfg, seed);
    let horizon = cfg.log_horizon();
    let spec = FaultSpec::parse("mtbf=172800,mttr=7200,nodes=16,seed=5").unwrap();
    let faults = FaultModel::synthesize(&spec, cfg.cpus, horizon);
    let mut b = SimBuilder::new(cfg)
        .natives(natives)
        .faults(faults)
        .retry(RetryPolicy {
            base_delay: SimDuration::from_secs(120),
            max_delay: SimDuration::from_secs(3_600),
            max_attempts: 4,
        })
        .interstitial(
            InterstitialProject::per_paper(u64::MAX / 2, STREAM_CPUS, 300.0),
            InterstitialMode::Continual,
            InterstitialPolicy::default(),
        )
        .observer(Obs::enabled());
    if let Some(r) = recovery {
        b = b.recovery(r);
    }
    b.build().run()
}

fn fingerprint(out: &SimOutput) -> Vec<(u64, u64, u64)> {
    out.completed
        .iter()
        .map(|c| (c.job.id, c.start.as_secs(), c.finish.as_secs()))
        .collect()
}

fn ckpt(secs: u64) -> RecoveryPolicy {
    RecoveryPolicy::Checkpoint {
        interval: SimDuration::from_secs(secs),
    }
}

#[test]
fn explicit_kill_restart_is_bitwise_the_legacy_path() {
    // `--recovery kill` is the default: selecting it explicitly changes
    // nothing — same job log, same trace bytes, schema still 2, no
    // recovery counters.
    let legacy = replay(31, None);
    let killed = replay(31, Some(RecoveryPolicy::KillRestart));
    assert_eq!(fingerprint(&legacy), fingerprint(&killed));
    let jsonl = killed.obs.trace.to_jsonl();
    assert_eq!(legacy.obs.trace.to_jsonl(), jsonl);
    assert!(jsonl.starts_with("{\"schema\":2"), "faulted kill stays v2");
    assert!(!jsonl.contains("\"ev\":\"job_checkpointed\""));
    assert!(!jsonl.contains("\"ev\":\"job_suspended\""));
    assert!(!jsonl.contains("\"ev\":\"job_resumed\""));
    assert_eq!(killed.faults.salvaged_cpu_seconds, 0.0);
    assert_eq!(killed.faults.reexecuted_cpu_seconds, 0.0);
    assert_eq!(killed.faults.checkpoint_overhead_cpu_seconds, 0.0);
    assert_eq!(killed.faults.checkpoints_taken, 0);
    assert_eq!(killed.faults.interstitial_resumes, 0);
    assert!(
        killed.faults.interstitial_retries > 0,
        "spec must evict interstitial jobs for the test to mean anything"
    );
}

#[test]
fn checkpoint_and_suspend_are_same_seed_reproducible() {
    for recovery in [ckpt(30), RecoveryPolicy::SuspendResume] {
        let a = replay(32, Some(recovery));
        let b = replay(32, Some(recovery));
        assert_eq!(fingerprint(&a), fingerprint(&b), "{recovery:?}");
        assert_eq!(a.obs.trace.to_jsonl(), b.obs.trace.to_jsonl());
        assert_eq!(a.faults.checkpoints_taken, b.faults.checkpoints_taken);
        assert_eq!(a.faults.interstitial_resumes, b.faults.interstitial_resumes);
        assert!((a.faults.salvaged_cpu_seconds - b.faults.salvaged_cpu_seconds).abs() < 1e-9);
    }
}

#[test]
fn recovery_traces_stamp_schema_3_with_the_policy_events() {
    let out = replay(33, Some(ckpt(30)));
    let jsonl = out.obs.trace.to_jsonl();
    assert!(jsonl.starts_with("{\"schema\":3"), "ckpt traces are v3");
    assert!(jsonl.contains("\"ev\":\"job_checkpointed\""));
    assert!(!jsonl.contains("\"ev\":\"job_suspended\""));

    let out = replay(33, Some(RecoveryPolicy::SuspendResume));
    let jsonl = out.obs.trace.to_jsonl();
    assert!(jsonl.starts_with("{\"schema\":3"), "suspend traces are v3");
    assert!(jsonl.contains("\"ev\":\"job_suspended\""));
    assert!(jsonl.contains("\"ev\":\"job_resumed\""));
    assert!(!jsonl.contains("\"ev\":\"job_checkpointed\""));
}

#[test]
fn checkpoint_overhead_is_exactly_priced() {
    // Every interstitial job in the stream holds STREAM_CPUS CPUs, so the
    // accumulated overhead must be exactly 10 CPU·s × CPUs × checkpoints.
    let out = replay(34, Some(ckpt(30)));
    assert!(out.faults.checkpoints_taken > 0, "spec must checkpoint");
    assert_eq!(
        out.faults.checkpoint_overhead_cpu_seconds,
        (out.faults.checkpoints_taken * CHECKPOINT_OVERHEAD_S * u64::from(STREAM_CPUS)) as f64
    );
    assert!(out.faults.salvaged_cpu_seconds >= 0.0);
    // Rolled-back remainders are bounded by one interval per eviction.
    assert!(
        out.faults.reexecuted_cpu_seconds
            <= (out.faults.interstitial_retries * 30 * u64::from(STREAM_CPUS)) as f64
    );
}

#[test]
fn suspend_resume_neither_reexecutes_nor_pays_overhead() {
    let out = replay(35, Some(RecoveryPolicy::SuspendResume));
    assert!(out.faults.interstitial_resumes > 0, "spec must resume jobs");
    assert_eq!(out.faults.reexecuted_cpu_seconds, 0.0);
    assert_eq!(out.faults.checkpoint_overhead_cpu_seconds, 0.0);
    assert_eq!(out.faults.checkpoints_taken, 0);
    assert!(out.faults.salvaged_cpu_seconds > 0.0);
}

#[test]
fn interstitial_waste_frontier_suspend_ckpt_kill() {
    // The claim the recovery subsystem exists to make measurable: on the
    // same fault timeline, suspend-resume wastes strictly less
    // interstitial work than kill-restart, with checkpointing between.
    let kill = replay(36, Some(RecoveryPolicy::KillRestart))
        .faults
        .interstitial_wasted_cpu_seconds;
    let ckpt30 = replay(36, Some(ckpt(30)))
        .faults
        .interstitial_wasted_cpu_seconds;
    let susp = replay(36, Some(RecoveryPolicy::SuspendResume))
        .faults
        .interstitial_wasted_cpu_seconds;
    assert!(
        susp < kill && susp <= ckpt30 && ckpt30 <= kill,
        "frontier violated: kill={kill} ckpt={ckpt30} suspend={susp}"
    );
}
