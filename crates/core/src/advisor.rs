//! Interstitial-project advisor — the paper's §5 guidelines, executable.
//!
//! The paper closes with "a number of characteristics … needed to specify a
//! successful interstitial computing project": the job size must fit well
//! inside the machine's typical spare capacity (breakage in space), the job
//! runtime bounds the typical native delay and the loss to "breakage in
//! time" (no checkpoint/restart), and the expected makespan follows the
//! §4.2 formula. [`advise`] turns a (machine, project, tolerance) triple
//! into those checks plus a recommendation.

use crate::project::InterstitialProject;
use crate::theory;
use machine::MachineConfig;
use simkit::time::SimDuration;

/// Severity of an advisory finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Fine as specified.
    Ok,
    /// Works, but measurably sub-optimal.
    Warning,
    /// The project will fit poorly or impact native users beyond tolerance.
    Problem,
}

/// One advisory finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// How serious it is.
    pub severity: Severity,
    /// Short machine-readable tag (`breakage`, `native-delay`, …).
    pub tag: &'static str,
    /// Human explanation.
    pub message: String,
}

/// The advisor's full report.
#[derive(Clone, Debug)]
pub struct Advice {
    /// Individual findings, worst first.
    pub findings: Vec<Finding>,
    /// Expected makespan from the paper's fitted formula, with breakage.
    pub expected_makespan: SimDuration,
    /// Space-breakage factor for this job size on this machine.
    pub breakage: f64,
    /// Number of interstitial jobs that fit the average spare capacity.
    pub concurrent_jobs: u64,
}

impl Advice {
    /// The worst severity across findings ([`Severity::Ok`] if none).
    pub fn verdict(&self) -> Severity {
        self.findings
            .iter()
            .map(|f| f.severity)
            .max()
            .unwrap_or(Severity::Ok)
    }

    /// Render as a short text report.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "expected makespan ≈ {:.1} h (breakage ×{:.3}, {} job(s) fit the average gap)\n",
            self.expected_makespan.as_hours(),
            self.breakage,
            self.concurrent_jobs
        );
        for f in &self.findings {
            out.push_str(&format!("[{:?}] {}: {}\n", f.severity, f.tag, f.message));
        }
        out
    }
}

/// Produce §5-style guidance for running `project` on `machine`, where
/// `native_delay_tolerance` is the largest typical (median) extra wait the
/// facility will accept for its native jobs.
pub fn advise(
    machine: &MachineConfig,
    project: &InterstitialProject,
    native_delay_tolerance: SimDuration,
) -> Advice {
    let mut findings = Vec::new();
    let spare = machine.mean_free_cpus();
    let per_job = project.cpus_per_job as f64;
    let runtime = project.runtime_on(machine);
    let breakage = theory::breakage_factor(machine, project.cpus_per_job);
    let concurrent = (spare / per_job).floor() as u64;

    // §5 criterion 1: CPUs per job must sit well inside the average gap.
    if concurrent == 0 {
        findings.push(Finding {
            severity: Severity::Problem,
            tag: "job-size",
            message: format!(
                "a {}-CPU job does not fit the machine's average spare capacity \
                 ({spare:.0} CPUs); it will only run in rare deep valleys",
                project.cpus_per_job
            ),
        });
    } else if breakage > 1.15 {
        findings.push(Finding {
            severity: Severity::Warning,
            tag: "breakage",
            message: format!(
                "only {concurrent} job(s) fit the average {spare:.0} spare CPUs; \
                 {:.0}% of scavengeable capacity is lost to breakage — consider \
                 smaller jobs",
                (breakage - 1.0) * 100.0
            ),
        });
    }

    // §5 criterion 2: the interstitial runtime bounds the typical native
    // delay (§4.3.2.1) — keep it within the facility's tolerance.
    if runtime > native_delay_tolerance {
        findings.push(Finding {
            severity: Severity::Problem,
            tag: "native-delay",
            message: format!(
                "per-job runtime {runtime} exceeds the native-delay tolerance \
                 {native_delay_tolerance}; shorten the jobs (the typical native \
                 wait shift is bounded by one interstitial runtime)"
            ),
        });
    } else if runtime * 2 > native_delay_tolerance {
        findings.push(Finding {
            severity: Severity::Warning,
            tag: "native-delay",
            message: format!(
                "per-job runtime {runtime} is within a factor two of the \
                 native-delay tolerance {native_delay_tolerance}; delay cascades \
                 will push some natives past it"
            ),
        });
    }

    // Very short jobs: scheduling overhead amortization (a practical §5
    // point — each submission costs the queueing system a cycle).
    if runtime < SimDuration::from_secs(30) {
        findings.push(Finding {
            severity: Severity::Warning,
            tag: "job-too-short",
            message: format!(
                "per-job runtime {runtime} is so short that per-job dispatch \
                 overhead will dominate; batch more work per job"
            ),
        });
    }

    // Utilization headroom: at ≥90% native utilization there is little to
    // harvest (Table 7's lesson).
    if machine.target_utilization > 0.9 {
        findings.push(Finding {
            severity: Severity::Warning,
            tag: "headroom",
            message: format!(
                "native utilization is already {:.0}%; expect modest gains and a \
                 long makespan (Blue Pacific regime)",
                machine.target_utilization * 100.0
            ),
        });
    }

    let expected = theory::paper_fitted_makespan_secs(project, machine)
        * if breakage.is_finite() { breakage } else { 1.0 };
    findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
    Advice {
        findings,
        expected_makespan: SimDuration::from_secs_f64(expected),
        breakage,
        concurrent_jobs: concurrent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::config::{blue_mountain, blue_pacific, ross};

    #[test]
    fn clean_project_on_roomy_machine_is_ok() {
        // 32-CPU × 458 s jobs on Blue Mountain: the paper's workhorse case.
        let p = InterstitialProject::per_paper(10_000, 32, 120.0);
        let a = advise(&blue_mountain(), &p, SimDuration::from_mins(30));
        assert_eq!(a.verdict(), Severity::Ok, "{}", a.to_text());
        assert_eq!(a.concurrent_jobs, 30);
        assert!((a.breakage - 1.020).abs() < 0.005);
    }

    #[test]
    fn oversized_jobs_flagged_as_problem() {
        // 128-CPU jobs on Blue Pacific (≈86 spare CPUs): never fit.
        let p = InterstitialProject::per_paper(100, 128, 120.0);
        let a = advise(&blue_pacific(), &p, SimDuration::from_hours(1));
        assert_eq!(a.verdict(), Severity::Problem);
        assert!(a.findings.iter().any(|f| f.tag == "job-size"));
        assert_eq!(a.concurrent_jobs, 0);
    }

    #[test]
    fn high_breakage_warns() {
        // 32-CPU jobs on Blue Pacific: 2.69 slots → ×1.346 breakage.
        let p = InterstitialProject::per_paper(1_000, 32, 120.0);
        let a = advise(&blue_pacific(), &p, SimDuration::from_hours(1));
        assert!(a.findings.iter().any(|f| f.tag == "breakage"));
        assert!(a.verdict() >= Severity::Warning);
    }

    #[test]
    fn long_jobs_violate_delay_tolerance() {
        // 960 s @1GHz → 1633 s on Ross; tolerance 10 min.
        let p = InterstitialProject::per_paper(1_000, 32, 960.0);
        let a = advise(&ross(), &p, SimDuration::from_mins(10));
        let f = a
            .findings
            .iter()
            .find(|f| f.tag == "native-delay")
            .expect("delay finding");
        assert_eq!(f.severity, Severity::Problem);
    }

    #[test]
    fn near_tolerance_runtime_warns() {
        // 204 s on Ross with 300 s tolerance: within 2×.
        let p = InterstitialProject::per_paper(1_000, 32, 120.0);
        let a = advise(&ross(), &p, SimDuration::from_secs(300));
        let f = a.findings.iter().find(|f| f.tag == "native-delay").unwrap();
        assert_eq!(f.severity, Severity::Warning);
    }

    #[test]
    fn tiny_jobs_warn_about_overhead() {
        let p = InterstitialProject::per_paper(1_000_000, 1, 5.0);
        let a = advise(&ross(), &p, SimDuration::from_hours(1));
        assert!(a.findings.iter().any(|f| f.tag == "job-too-short"));
    }

    #[test]
    fn saturated_machine_warns_about_headroom() {
        let p = InterstitialProject::per_paper(1_000, 8, 120.0);
        let a = advise(&blue_pacific(), &p, SimDuration::from_hours(1));
        assert!(a.findings.iter().any(|f| f.tag == "headroom"));
    }

    #[test]
    fn expected_makespan_includes_breakage() {
        let p = InterstitialProject::per_paper(2_000, 32, 120.0);
        let bp = advise(&blue_pacific(), &p, SimDuration::from_hours(1));
        let plain = theory::paper_fitted_makespan_secs(&p, &blue_pacific());
        assert!(bp.expected_makespan.as_secs_f64() > plain * 1.3);
    }

    #[test]
    fn findings_sorted_worst_first() {
        let p = InterstitialProject::per_paper(100, 128, 10.0);
        let a = advise(&blue_pacific(), &p, SimDuration::from_secs(20));
        for w in a.findings.windows(2) {
            assert!(w[0].severity >= w[1].severity);
        }
        let text = a.to_text();
        assert!(text.contains("expected makespan"));
        assert!(text.contains("[Problem]"));
    }
}
