//! Empirical job-shape sweeps.
//!
//! The advisor ([`crate::advisor`]) answers from closed-form theory; this
//! module answers the same question empirically: run the continual
//! interstitial simulation for each candidate job shape and measure what it
//! actually harvests and what it actually costs the natives. Shapes run in
//! parallel across cores.

use crate::driver::SimBuilder;
use crate::experiment::parallel_map;
use crate::policy::{InterstitialMode, InterstitialPolicy};
use crate::project::InterstitialProject;
use machine::MachineConfig;
use simkit::stats::{median, sorted};
use simkit::time::SimDuration;
use workload::Job;

/// One candidate interstitial job shape.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Shape {
    /// CPUs per job.
    pub cpus: u32,
    /// Runtime in seconds at 1 GHz.
    pub secs_at_1ghz: f64,
}

/// Measured outcome of running one shape continually over the native log.
#[derive(Clone, Copy, Debug)]
pub struct ShapeOutcome {
    /// The shape measured.
    pub shape: Shape,
    /// Interstitial jobs completed within the log.
    pub jobs: u64,
    /// Peta-cycles harvested.
    pub harvested_peta_cycles: f64,
    /// Overall machine utilization achieved.
    pub overall_utilization: f64,
    /// Median native wait, seconds.
    pub native_median_wait: f64,
}

/// Run every shape against the same native log and machine (in parallel)
/// and report what each harvests and costs.
pub fn shape_sweep(
    machine: &MachineConfig,
    natives: &[Job],
    shapes: &[Shape],
    policy: InterstitialPolicy,
) -> Vec<ShapeOutcome> {
    parallel_map(shapes.to_vec(), |shape| {
        let project = InterstitialProject::per_paper(u64::MAX / 2, shape.cpus, shape.secs_at_1ghz);
        let out = SimBuilder::new(machine.clone())
            .natives(natives.to_vec())
            .interstitial(project, InterstitialMode::Continual, policy)
            .build()
            .run();
        let dur: SimDuration = project.runtime_on(machine);
        let harvested =
            machine.cycles(shape.cpus, dur) * out.interstitial_completed() as f64 / 1e15;
        let waits = sorted(
            out.natives()
                .map(|c| c.wait().as_secs_f64())
                .collect::<Vec<_>>(),
        );
        ShapeOutcome {
            shape,
            jobs: out.interstitial_completed(),
            harvested_peta_cycles: harvested,
            overall_utilization: out.overall_utilization(),
            native_median_wait: median(&waits).unwrap_or(0.0),
        }
    })
}

/// The outcome harvesting the most cycles while keeping the median native
/// wait within `tolerance` — `None` if no shape qualifies.
pub fn best_within_tolerance(
    outcomes: &[ShapeOutcome],
    tolerance: SimDuration,
) -> Option<ShapeOutcome> {
    outcomes
        .iter()
        .filter(|o| o.native_median_wait <= tolerance.as_secs_f64())
        .max_by(|a, b| a.harvested_peta_cycles.total_cmp(&b.harvested_peta_cycles))
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::traces::native_trace;

    fn ross_small() -> (MachineConfig, Vec<Job>) {
        let cfg = machine::config::ross();
        let natives = native_trace(&cfg, 3);
        (cfg, natives)
    }

    #[test]
    fn sweep_measures_every_shape() {
        let (cfg, natives) = ross_small();
        let shapes = [
            Shape {
                cpus: 8,
                secs_at_1ghz: 120.0,
            },
            Shape {
                cpus: 32,
                secs_at_1ghz: 120.0,
            },
            Shape {
                cpus: 32,
                secs_at_1ghz: 960.0,
            },
        ];
        let outcomes = shape_sweep(&cfg, &natives, &shapes, InterstitialPolicy::default());
        assert_eq!(outcomes.len(), 3);
        for (o, s) in outcomes.iter().zip(&shapes) {
            assert_eq!(o.shape, *s, "order preserved");
            assert!(o.jobs > 0);
            assert!(o.harvested_peta_cycles > 0.0);
            assert!(o.overall_utilization > 0.6);
        }
        // Equal-cycle shapes harvest comparable totals; the 8× longer job
        // yields ~8× fewer jobs.
        let ratio = outcomes[1].jobs as f64 / outcomes[2].jobs as f64;
        assert!((5.0..12.0).contains(&ratio), "{ratio}");
    }

    #[test]
    fn best_within_tolerance_picks_max_harvest() {
        let outcomes = [
            ShapeOutcome {
                shape: Shape {
                    cpus: 8,
                    secs_at_1ghz: 120.0,
                },
                jobs: 10,
                harvested_peta_cycles: 5.0,
                overall_utilization: 0.9,
                native_median_wait: 10.0,
            },
            ShapeOutcome {
                shape: Shape {
                    cpus: 32,
                    secs_at_1ghz: 120.0,
                },
                jobs: 10,
                harvested_peta_cycles: 9.0,
                overall_utilization: 0.95,
                native_median_wait: 50.0,
            },
            ShapeOutcome {
                shape: Shape {
                    cpus: 32,
                    secs_at_1ghz: 960.0,
                },
                jobs: 10,
                harvested_peta_cycles: 12.0,
                overall_utilization: 0.97,
                native_median_wait: 900.0,
            },
        ];
        let best = best_within_tolerance(&outcomes, SimDuration::from_secs(100)).unwrap();
        assert_eq!(best.shape.cpus, 32);
        assert_eq!(best.harvested_peta_cycles, 9.0);
        // Tight tolerance: only the first qualifies.
        let strict = best_within_tolerance(&outcomes, SimDuration::from_secs(20)).unwrap();
        assert_eq!(strict.shape.cpus, 8);
        // Impossible tolerance: none.
        assert!(best_within_tolerance(&outcomes, SimDuration::from_secs(1)).is_none());
    }
}
