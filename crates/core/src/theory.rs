//! §4.2's closed-form theory.
//!
//! * Ideal makespan on a constant-utilization machine:
//!   `Makespan = P / (N·C·(1−U))` — project cycles over spare cycle rate.
//! * The paper's empirical fit adds an offset and a slope:
//!   `Makespan(sec) = 5256 + 1.16 · P/(N·C·(1−U))`, good to ±17%.
//! * **Breakage in space**: with `n`-CPU interstitial jobs only
//!   `⌊N(1−U)/n⌋` of them fit in the average free capacity, wasting the
//!   fractional remainder. The multiplicative makespan correction is
//!   `(N(1−U)/n) / ⌊N(1−U)/n⌋`.

use crate::project::InterstitialProject;
use machine::MachineConfig;
use simkit::stats::{linear_fit, LinearFit};

/// Ideal (no-breakage, constant-utilization) makespan in seconds:
/// `P / (N·C·(1−U))` with `C` in Hz.
pub fn ideal_makespan_secs(project: &InterstitialProject, machine: &MachineConfig) -> f64 {
    let spare_rate =
        machine.cpus as f64 * machine.clock_ghz * 1e9 * (1.0 - machine.target_utilization);
    project.cycles() / spare_rate
}

/// The paper's fitted predictor (§4.2): `5256 + 1.16 · ideal` seconds.
pub fn paper_fitted_makespan_secs(project: &InterstitialProject, machine: &MachineConfig) -> f64 {
    5256.0 + 1.16 * ideal_makespan_secs(project, machine)
}

/// Breakage-in-space correction factor for `n`-CPU interstitial jobs on a
/// machine with `N(1−U)` average spare CPUs. Returns ∞ when not even one
/// job fits on average.
pub fn breakage_factor(machine: &MachineConfig, cpus_per_job: u32) -> f64 {
    let spare = machine.mean_free_cpus();
    let per_job = cpus_per_job as f64;
    let fit = (spare / per_job).floor();
    if fit < 1.0 {
        f64::INFINITY
    } else {
        (spare / per_job) / fit
    }
}

/// Average CPUs wasted by breakage — `n/2` in expectation (§4.2).
pub fn expected_breakage_cpus(cpus_per_job: u32) -> f64 {
    cpus_per_job as f64 / 2.0
}

/// Fit `measured` makespans (seconds) against the ideal predictor, exactly
/// as Figure 2 does: x = `P/(N·C·(1−U))`, y = measured. Returns the
/// `(offset, slope)` fit — the paper got `(5256, 1.16)`.
pub fn fit_measured(points: &[(f64, f64)]) -> Option<LinearFit> {
    linear_fit(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::config::{blue_mountain, blue_pacific, ross};

    #[test]
    fn breakage_matches_papers_worked_numbers() {
        // §4.2: Ross 16.55/16 = 1.035; Blue Mountain 30.59/30 = 1.020;
        // Blue Pacific 2.69/2 = 1.346 — all for 32-CPU jobs.
        assert!((breakage_factor(&ross(), 32) - 1.035).abs() < 0.002);
        assert!((breakage_factor(&blue_mountain(), 32) - 1.020).abs() < 0.002);
        assert!((breakage_factor(&blue_pacific(), 32) - 1.346).abs() < 0.003);
    }

    #[test]
    fn one_cpu_jobs_have_negligible_breakage() {
        for m in [ross(), blue_mountain(), blue_pacific()] {
            let b = breakage_factor(&m, 1);
            assert!((1.0..1.005).contains(&b), "{}: {b}", m.name);
        }
    }

    #[test]
    fn breakage_is_infinite_when_job_exceeds_spare() {
        // Blue Pacific has ≈86 spare CPUs; a 100-CPU job never fits on
        // average.
        assert!(breakage_factor(&blue_pacific(), 100).is_infinite());
    }

    #[test]
    fn ideal_makespan_scales_linearly_in_project_size() {
        let m = blue_mountain();
        let p1 = InterstitialProject::from_kjobs(2.0, 32, 120.0);
        let p4 = InterstitialProject::from_kjobs(8.0, 32, 120.0);
        let a = ideal_makespan_secs(&p1, &m);
        let b = ideal_makespan_secs(&p4, &m);
        assert!((b / a - 4.0).abs() < 1e-9);
    }

    #[test]
    fn ideal_makespan_magnitudes_match_table2() {
        // 7.7 Pc on Blue Mountain: 7.68e15 / (4662·0.262e9·0.21) ≈ 8.3 h.
        // Table 2 measures ≈ 13.5 h (the fit's slope+offset explain the
        // gap); the ideal value must land below the measured one but within
        // a small factor.
        let m = blue_mountain();
        let p = InterstitialProject::from_kjobs(2.0, 32, 120.0);
        let hours = ideal_makespan_secs(&p, &m) / 3600.0;
        assert!(hours > 6.0 && hours < 14.0, "got {hours}h");
        // Blue Pacific is far slower at equal P: 7.68e15/(926·0.369e9·0.093)
        // ≈ 67 h (table: 56.8–61.6 h measured).
        let bp_hours = ideal_makespan_secs(&p, &blue_pacific()) / 3600.0;
        assert!(bp_hours > 4.0 * hours, "BP {bp_hours}h vs BM {hours}h");
    }

    #[test]
    fn paper_fit_exceeds_ideal() {
        let m = ross();
        let p = InterstitialProject::from_kjobs(64.0, 1, 120.0);
        assert!(paper_fitted_makespan_secs(&p, &m) > ideal_makespan_secs(&p, &m));
        // Offset dominates for tiny projects.
        let tiny = InterstitialProject::per_paper(1, 1, 120.0);
        assert!((paper_fitted_makespan_secs(&tiny, &m) - 5256.0).abs() < 10.0);
    }

    #[test]
    fn expected_breakage_is_half_job_size() {
        assert_eq!(expected_breakage_cpus(32), 16.0);
        assert_eq!(expected_breakage_cpus(1), 0.5);
    }

    #[test]
    fn fit_recovers_known_relation() {
        // y = 5000 + 1.2 x, exactly.
        let pts: Vec<(f64, f64)> = (1..20)
            .map(|i| {
                let x = i as f64 * 10_000.0;
                (x, 5_000.0 + 1.2 * x)
            })
            .collect();
        let f = fit_measured(&pts).unwrap();
        assert!((f.intercept - 5_000.0).abs() < 1e-6);
        assert!((f.slope - 1.2).abs() < 1e-9);
    }
}
