//! # interstitial — utilizing spare cycles on supercomputers
//!
//! Core library of the reproduction of Kleban & Clearwater, *"Interstitial
//! Computing: Utilizing Spare Cycles on Supercomputers"* (IEEE CLUSTER
//! 2003).
//!
//! Interstitial computing fills the utilization gaps of a space-shared,
//! non-preemptive supercomputer with a stream of many small, identical,
//! bottom-priority jobs (a parameter sweep, say) while bounding the impact
//! on the machine's native workload. The submission rule is the paper's
//! Figure 1: after every native job that can run (head-of-queue or
//! backfill) has been dispatched,
//!
//! ```text
//! nInterstitialJobs = floor(nodesAvailable / interstitialJobSize);
//! if (jobsInQueue == 0)                      submit(nInterstitialJobs);
//! else if (backFillWallTime > interstitialRuntime)
//!                                            submit(nInterstitialJobs);
//! ```
//!
//! Modules:
//! * [`project`] — [`InterstitialProject`]: job count × CPUs/job × runtime
//!   (specified in seconds at 1 GHz), measured in peta-cycles.
//! * [`policy`] — submission knobs: continual vs. fixed project, optional
//!   utilization cap (§4.3.2.2).
//! * [`driver`] — the discrete-event simulator (our BIRMinator): native log
//!   replay through a `sched` personality plus interstitial submission.
//! * [`omniscient`] — §4.1's perfect-knowledge packing: interstitial jobs
//!   placed into the native-only free-capacity profile, provably without
//!   effect on native jobs.
//! * [`experiment`] — replication harness: random-start sampling, the
//!   continual-run window-extraction method of §4.3.1, parallel fan-out.
//! * [`theory`] — §4.2's closed-form makespan and breakage-in-space
//!   corrections.
//! * [`report`] — [`SimOutput`] and free-capacity profile construction.
//! * [`advisor`] — the §5 guidelines as an executable advisory report.
//! * [`sweep`] — empirical job-shape sweeps (the advisor's measured
//!   counterpart).
//!
//! ## Quick start
//!
//! ```
//! use interstitial::prelude::*;
//!
//! let machine = machine::config::blue_mountain();
//! let natives = workload::traces::native_trace(&machine, 42);
//! let project = InterstitialProject::per_paper(2_000, 32, 120.0);
//! let sim = SimBuilder::new(machine)
//!     .natives(natives)
//!     .interstitial(project, InterstitialMode::Continual, InterstitialPolicy::default())
//!     .build();
//! let out = sim.run();
//! assert!(out.interstitial_completed() > 0);
//! ```

#![warn(missing_docs)]

pub mod advisor;
pub mod driver;
pub mod experiment;
pub mod omniscient;
pub mod policy;
pub mod project;
pub mod report;
pub mod sweep;
pub mod theory;

pub use driver::{SimBuilder, Simulator};
pub use policy::{InterstitialMode, InterstitialPolicy, RetryPolicy};
pub use project::InterstitialProject;
pub use report::SimOutput;
pub use simkit::QueueKind;

/// Convenient glob import for examples and tests.
pub mod prelude {
    pub use crate::driver::{SimBuilder, Simulator};
    pub use crate::policy::{InterstitialMode, InterstitialPolicy, RetryPolicy};
    pub use crate::project::InterstitialProject;
    pub use crate::report::SimOutput;
    pub use simkit::QueueKind;
}
