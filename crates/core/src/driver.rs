//! The discrete-event simulation driver — our stand-in for BIRMinator.
//!
//! Replays a native job log through a [`sched::Scheduler`] personality on a
//! [`machine`] model, optionally submitting interstitial jobs per the
//! paper's Figure 1 algorithm:
//!
//! 1. Every event (submission, completion, outage boundary, project start)
//!    triggers a scheduling cycle — "the algorithm is run every time the
//!    system checks for new jobs".
//! 2. The cycle first dispatches every native job that can run, from the
//!    head of the queue or via backfill.
//! 3. Then `floor(nodesAvailable / interstitialJobSize)` interstitial jobs
//!    are started **iff** the native queue is empty, or the blocked head's
//!    reservation (`backFillWallTime`) lies beyond the interstitial jobs'
//!    completion — so, *on the scheduler's own information*, they cannot
//!    delay it. Bad user estimates make that information wrong, which is
//!    exactly the §4.3 effect this simulator exists to measure.
//!
//! Interstitial jobs run at effectively bottom priority: they never enter
//! the native queue, are placed only into CPUs no dispatchable native job
//! could take, and their (exactly known — zero variance) runtimes are used
//! as their estimates.

use crate::policy::{
    InterstitialMode, InterstitialPolicy, Preemption, RecoveryPolicy, RetryPolicy,
    CHECKPOINT_OVERHEAD_S,
};
use crate::project::InterstitialProject;
use crate::report::SimOutput;
use machine::{CpuPool, FaultModel, MachineConfig, OutageSchedule, RunningJob, RunningSet};
use obs::telemetry::AnnotationKind;
use obs::{EventKind, Obs, SloSpec, SloWatchdog, StartKind};
use sched::Scheduler;
use simkit::event::EventQueue;
use simkit::queue::{FutureEventList, QueueKind};
use simkit::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::sync::Arc;
use workload::{CompletedJob, Job, JobClass};

/// Interstitial job ids live far above any native id.
const INTERSTITIAL_ID_BASE: u64 = 1 << 40;

/// Fragmentation of the projected free capacity at `now`, in permille:
/// the share of free CPU·time over the next 24 h (per the running set's
/// estimate-based free profile) sitting in gaps too short for a one-hour
/// single-CPU probe — the `analysis` interstice census folded to one
/// telemetry scalar. 0 when nothing is free or everything is harvestable.
fn frag_permille(running: &RunningSet, now: SimTime, free_now: u32) -> u64 {
    let profile = running.free_profile(now, free_now, now + SimDuration::from_hours(24));
    let (harvest, total) =
        analysis::interstices::harvestable_cpu_seconds(&profile, 1, SimDuration::from_hours(1));
    if total <= 0.0 {
        return 0;
    }
    let frac = (1.0 - harvest / total).clamp(0.0, 1.0);
    (frac * 1000.0).round() as u64
}

/// Safety valve against event storms (a healthy full-scale run is ~2M).
const MAX_EVENTS: u64 = 200_000_000;

#[derive(Clone, Copy, Debug)]
enum Ev {
    /// A native job (by index into the trace) is submitted.
    Arrive(u32),
    /// A running job finishes.
    Finish(u64),
    /// Machine goes down / comes back. Payload: is the machine up after
    /// this event?
    Outage(bool),
    /// A node (by index into the fault model) fails, removing its CPUs
    /// from service and crashing tenants the remaining capacity cannot
    /// hold.
    NodeDown(u32),
    /// A failed node (by index) is repaired and rejoins the pool.
    NodeUp(u32),
    /// A fault-killed interstitial job's retry backoff expired; the job
    /// may restart at the next opportunity.
    Retry(u64),
    /// Forces a scheduling cycle (simulation start, project start).
    Kick,
}

/// Builder for [`Simulator`].
/// One interstitial job stream: a project, its mode and its policy.
pub type InterstitialStream = (InterstitialProject, InterstitialMode, InterstitialPolicy);

/// Builder for [`Simulator`]: machine + native log + optional interstitial
/// streams, outages and scheduler override.
pub struct SimBuilder {
    machine: MachineConfig,
    natives: Arc<Vec<Job>>,
    scheduler: Option<Scheduler>,
    faults: FaultModel,
    retry: RetryPolicy,
    recovery: RecoveryPolicy,
    streams: Vec<InterstitialStream>,
    horizon_override: Option<SimTime>,
    periodic_cycle: Option<SimDuration>,
    feedback: Option<(SimDuration, u64)>,
    observer: Obs,
    queue: QueueKind,
    slo: Option<SloSpec>,
}

impl SimBuilder {
    /// Start building a simulation of `machine`.
    pub fn new(machine: MachineConfig) -> Self {
        SimBuilder {
            machine,
            natives: Arc::new(Vec::new()),
            scheduler: None,
            faults: FaultModel::none(),
            retry: RetryPolicy::default(),
            recovery: RecoveryPolicy::default(),
            streams: Vec::new(),
            horizon_override: None,
            periodic_cycle: None,
            feedback: None,
            observer: Obs::disabled(),
            queue: QueueKind::default(),
            slo: None,
        }
    }

    /// Choose the future-event-list implementation (default: the binary
    /// heap). The calendar queue trades the heap's O(log n) for O(1)
    /// amortized scheduling; the run's output is bit-identical either way.
    pub fn event_queue(mut self, kind: QueueKind) -> Self {
        self.queue = kind;
        self
    }

    /// The native job log to replay. Jobs larger than the machine are
    /// rejected at build time.
    pub fn natives(mut self, jobs: Vec<Job>) -> Self {
        self.natives = Arc::new(jobs);
        self
    }

    /// The native job log as a shared handle. Callers running the same
    /// trace through many configurations (baseline vs interstitial,
    /// replications) share one allocation instead of cloning the whole
    /// log per run.
    pub fn natives_arc(mut self, jobs: Arc<Vec<Job>>) -> Self {
        self.natives = jobs;
        self
    }

    /// Attach an observability bundle: its trace sink, metrics registry and
    /// phase profiler collect during [`Simulator::run`] and come back in
    /// [`SimOutput::obs`]. Default: [`Obs::disabled`] — all hooks no-op.
    pub fn observer(mut self, observer: Obs) -> Self {
        self.observer = observer;
        self
    }

    /// Override the scheduler personality (default: the machine's Table 1
    /// queueing system).
    pub fn scheduler(mut self, s: Scheduler) -> Self {
        self.scheduler = Some(s);
        self
    }

    /// Add whole-machine outage windows (the paper's §2 model; shorthand
    /// for a [`FaultModel`] with no node failures).
    pub fn outages(mut self, o: OutageSchedule) -> Self {
        self.faults = self.faults.with_outages(o);
        self
    }

    /// Attach a full fault model: whole-machine outages plus per-node
    /// failure/repair schedules. Node failures remove their CPUs from
    /// service and crash tenants the remaining capacity cannot hold; with
    /// [`FaultModel::none`] the simulation is bit-for-bit the perfect
    /// machine.
    pub fn faults(mut self, f: FaultModel) -> Self {
        self.faults = f;
        self
    }

    /// Retry policy for fault-killed interstitial jobs (default: 60 s base
    /// delay doubling to a 1 h cap, 5 attempts).
    pub fn retry(mut self, r: RetryPolicy) -> Self {
        self.retry = r;
        self
    }

    /// Recovery policy for evicted interstitial jobs (default:
    /// [`RecoveryPolicy::KillRestart`], the legacy path — bit-identical
    /// traces). Checkpoint and suspend-resume credit evicted progress to a
    /// per-job ledger so victims re-enter with only their remaining work.
    pub fn recovery(mut self, r: RecoveryPolicy) -> Self {
        self.recovery = r;
        self
    }

    /// Add an interstitial job stream. May be called repeatedly: multiple
    /// projects then compete for the spare cycles, served round-robin
    /// (streams are distinguished in the output by the interstitial jobs'
    /// `user` field, which carries the stream index).
    pub fn interstitial(
        mut self,
        project: InterstitialProject,
        mode: InterstitialMode,
        policy: InterstitialPolicy,
    ) -> Self {
        self.streams.push((project, mode, policy));
        self
    }

    /// Load SLO rules for the online watchdog. Only effective when the
    /// observer carries an enabled telemetry bus — the watchdog reads the
    /// bus's sampled signal values at each cadence tick, recording
    /// breach/clear transitions as schema-v4 trace events and telemetry
    /// annotations. Without rules (the default) the trace stream is
    /// byte-identical to a run with no watchdog at all.
    pub fn slo(mut self, spec: SloSpec) -> Self {
        self.slo = Some(spec);
        self
    }

    /// Override the log horizon (default: the machine's Table 1 log length).
    pub fn horizon(mut self, h: SimTime) -> Self {
        self.horizon_override = Some(h);
        self
    }

    /// Run a scheduling cycle every `interval` in addition to the
    /// event-driven cycles — the paper's "or at given time intervals"
    /// clause. Only needed when dispatch opportunities can open without an
    /// event, e.g. a time-of-day window admitting a waiting long job on an
    /// otherwise quiet machine.
    pub fn periodic_cycle(mut self, interval: SimDuration) -> Self {
        assert!(!interval.is_zero());
        self.periodic_cycle = Some(interval);
        self
    }

    /// Closed-loop native submission (extension). Open-loop trace replay —
    /// the paper's method and the default here — submits jobs at their
    /// logged instants regardless of system state, which is known to
    /// overstate congestion feedback. With this knob each user's next job
    /// is instead submitted at `max(logged instant, previous finish +
    /// Exp(mean_think))`, preserving job shapes and per-user order while
    /// letting the workload react to delays.
    pub fn closed_loop(mut self, mean_think: SimDuration, seed: u64) -> Self {
        self.feedback = Some((mean_think, seed));
        self
    }

    /// Finalize into a runnable [`Simulator`].
    pub fn build(self) -> Simulator {
        let horizon = self
            .horizon_override
            .unwrap_or_else(|| self.machine.log_horizon());
        let scheduler = self
            .scheduler
            .unwrap_or_else(|| Scheduler::for_machine(&self.machine));
        let max = self.machine.cpus;
        // Shared logs are the common case; only a log containing oversized
        // jobs pays for a filtered copy.
        let natives = if self.natives.iter().any(|j| j.cpus > max) {
            Arc::new(
                self.natives
                    .iter()
                    .filter(|j| j.cpus <= max)
                    .copied()
                    .collect(),
            )
        } else {
            self.natives
        };
        Simulator {
            machine: self.machine,
            natives,
            scheduler,
            faults: self.faults,
            retry: self.retry,
            recovery: self.recovery,
            streams: self.streams,
            horizon,
            periodic_cycle: self.periodic_cycle,
            feedback: self.feedback,
            obs: self.observer,
            queue: self.queue,
            slo: self.slo,
        }
    }
}

/// A fully configured simulation, consumed by [`Simulator::run`].
pub struct Simulator {
    machine: MachineConfig,
    natives: Arc<Vec<Job>>,
    scheduler: Scheduler,
    faults: FaultModel,
    retry: RetryPolicy,
    recovery: RecoveryPolicy,
    streams: Vec<InterstitialStream>,
    horizon: SimTime,
    periodic_cycle: Option<SimDuration>,
    feedback: Option<(SimDuration, u64)>,
    obs: Obs,
    queue: QueueKind,
    slo: Option<SloSpec>,
}

/// A checkpointed interstitial job awaiting resumption.
struct Suspended {
    job: Job,
    first_start: SimTime,
    remaining: SimDuration,
}

/// A fault-killed interstitial job waiting out its retry backoff.
///
/// Under kill-restart `remaining == job.runtime` and `first_start` is
/// `None`, reproducing the legacy restart-from-scratch path exactly; the
/// checkpoint/suspend policies carry the credited remainder and the
/// original wallclock anchor instead.
struct PendingRetry {
    job: Job,
    remaining: SimDuration,
    first_start: Option<SimTime>,
}

struct RunState {
    pool: CpuPool,
    running: RunningSet,
    /// Payload of running jobs (the RunningSet keeps only scheduling facts).
    /// All RunState maps are `BTreeMap`: the closed-loop seeding and any
    /// future iteration must visit entries in a fixed order or replays
    /// diverge (simlint R1).
    live: BTreeMap<u64, Job>,
    completed: Vec<CompletedJob>,
    /// Interstitial jobs started so far, per stream.
    ij_started: Vec<u64>,
    /// Round-robin pointer over streams for fair scavenging.
    rr_next: usize,
    next_ij_id: u64,
    machine_up: bool,
    /// Count of stale (preemption-voided) finish events per job id. A
    /// resumed job keeps its id, so a plain tombstone set would let the
    /// stale event complete it early; counting consumes exactly the stale
    /// ones (they always precede the live one, since resumption only ever
    /// pushes the true end later).
    void_events: BTreeMap<u64, u32>,
    /// Checkpointed interstitial jobs (FIFO resume order).
    suspended: Vec<Suspended>,
    /// First-start instants of checkpointed jobs currently running again.
    resume_meta: BTreeMap<u64, SimTime>,
    killed: u64,
    wasted_cpu_seconds: f64,
    /// Fault/recovery accounting (node boundaries, kills, retries).
    faults: machine::FaultStats,
    /// Fault kills per job id — the `attempt` stamped on requeue/retry
    /// events, and the counter the retry policy's give-up test reads.
    retry_attempts: BTreeMap<u64, u32>,
    /// Fault-killed interstitial jobs waiting out their backoff.
    retry_pending: BTreeMap<u64, PendingRetry>,
    /// Backoff expired; restart at the next opportunity.
    retry_ready: Vec<PendingRetry>,
    /// Credited progress per evicted interstitial job (empty under
    /// kill-restart — the ledger is what the recovery policies add).
    ledger: machine::ProgressLedger,
    /// Closed-loop mode: per-user queues of not-yet-submitted native trace
    /// indexes, and the think-time sampler.
    user_pending: BTreeMap<u32, std::collections::VecDeque<u32>>,
    think: Option<(simkit::dist::Exp, simkit::rng::Rng)>,
    /// Rolling P² estimate of the native P99 queue wait — the telemetry
    /// `native_wait_p99_s` signal. Observed at native finishes only when
    /// the bus is enabled, so the default path stays untouched.
    native_wait_p99: obs::P2,
    /// Cumulative work totals at the previous telemetry tick, for the
    /// per-tick delta signals: events, starts, candidates, segments.
    telemetry_prev: [u64; 4],
    /// Online SLO evaluator fed at each telemetry tick.
    watchdog: SloWatchdog,
}

impl Simulator {
    /// Execute the simulation to completion (all submitted jobs finished)
    /// and return the job log.
    ///
    /// The event queue implementation is the builder's
    /// [`event_queue`](SimBuilder::event_queue) choice; both kinds pop in
    /// identical `(time, seq)` order, so the output is bit-for-bit the same
    /// either way (pinned by `crates/core/tests/differential_replay.rs`).
    pub fn run(self) -> SimOutput {
        let cap = self.natives.len() * 2 + 16;
        match self.queue {
            QueueKind::Heap => self.run_with_queue(EventQueue::with_capacity(cap)),
            QueueKind::Calendar => self.run_with_queue(simkit::CalendarQueue::with_capacity(cap)),
        }
    }

    /// [`run`](Simulator::run) against a concrete future-event list.
    fn run_with_queue<Q: FutureEventList<Ev>>(mut self, mut q: Q) -> SimOutput {
        // Open the run's allocation window (inert unless obs was built with
        // the alloc-count feature); closed just before SimOutput assembly.
        let mem_mark = obs::alloc::mark();
        self.obs
            .trace
            .set_machine(self.machine.name, self.machine.cpus);
        self.obs
            .telemetry
            .set_machine(self.machine.name, self.machine.cpus);
        let mut st = RunState {
            pool: CpuPool::new(self.machine.cpus),
            running: RunningSet::new(),
            live: BTreeMap::new(),
            completed: Vec::with_capacity(self.natives.len()),
            ij_started: vec![0; self.streams.len()],
            rr_next: 0,
            next_ij_id: INTERSTITIAL_ID_BASE,
            machine_up: !self.faults.machine_outages().is_down(SimTime::ZERO),
            void_events: BTreeMap::new(),
            suspended: Vec::new(),
            resume_meta: BTreeMap::new(),
            killed: 0,
            wasted_cpu_seconds: 0.0,
            faults: machine::FaultStats::default(),
            retry_attempts: BTreeMap::new(),
            retry_pending: BTreeMap::new(),
            retry_ready: Vec::new(),
            ledger: machine::ProgressLedger::new(),
            user_pending: BTreeMap::new(),
            think: self.feedback.map(|(mean, seed)| {
                (
                    simkit::dist::Exp::with_mean(mean.as_secs_f64().max(1.0)),
                    simkit::rng::Rng::new(seed),
                )
            }),
            native_wait_p99: obs::P2::new(0.99),
            telemetry_prev: [0; 4],
            // Every --slo metric resolves against DRIVER_SIGNALS (pinned by
            // an obs test), so construction cannot fail here; a rule naming
            // an unsampled signal degrades to no watchdog rather than a
            // panic. The watchdog only runs when the bus ticks.
            watchdog: match (&self.slo, self.obs.telemetry.is_enabled()) {
                (Some(spec), true) => {
                    SloWatchdog::new(spec, self.obs.telemetry.signals()).unwrap_or_default()
                }
                _ => SloWatchdog::none(),
            },
        };

        // Seed events: native arrivals, outage boundaries, project start.
        if self.feedback.is_some() {
            // Closed loop: only each user's first job enters at its logged
            // instant; the rest are released by completions.
            for (i, j) in self.natives.iter().enumerate() {
                st.user_pending
                    .entry(j.user)
                    .or_default()
                    .push_back(i as u32);
            }
            for queue in st.user_pending.values_mut() {
                let first = queue.pop_front().expect("non-empty by construction");
                q.schedule(self.natives[first as usize].submit, Ev::Arrive(first));
            }
        } else {
            for (i, j) in self.natives.iter().enumerate() {
                q.schedule(j.submit, Ev::Arrive(i as u32));
            }
        }
        for &(down, up) in self.faults.machine_outages().windows() {
            q.schedule(down, Ev::Outage(false));
            q.schedule(up, Ev::Outage(true));
        }
        for (i, node) in self.faults.nodes().iter().enumerate() {
            for &(down, up) in node.schedule.windows() {
                q.schedule(down, Ev::NodeDown(i as u32));
                q.schedule(up, Ev::NodeUp(i as u32));
            }
        }
        for &(_, mode, _) in &self.streams {
            match mode {
                InterstitialMode::Project { start } => q.schedule(start, Ev::Kick),
                InterstitialMode::Continual => q.schedule(SimTime::ZERO, Ev::Kick),
            }
        }
        if let Some(interval) = self.periodic_cycle {
            let mut t = SimTime::ZERO + interval;
            while t < self.horizon {
                q.schedule(t, Ev::Kick);
                t += interval;
            }
        }

        let mut steps = 0u64;
        while let Some((now, ev)) = q.pop() {
            // Flush any cadence ticks due before this event: samples record
            // the left-limit state at their instant, keeping trace time
            // monotone when the watchdog stamps breach events at tick times.
            self.flush_telemetry(now, &mut st, steps);
            let rec = self.obs.recorder.begin();
            let pump = self.obs.profiler.begin();
            self.handle(now, ev, &mut st, &mut q);
            steps += 1;
            // Coalesce every event at this instant into one scheduling pass.
            while q.peek_time() == Some(now) {
                let (_, ev) = q.pop().expect("peeked event");
                self.handle(now, ev, &mut st, &mut q);
                steps += 1;
            }
            self.obs.profiler.end("event-pump", pump);
            assert!(steps < MAX_EVENTS, "event storm: {steps} events");
            self.cycle(now, &mut st, &mut q);
            if rec.is_some() {
                // Flight-record the pass: the recorder diffs these cumulative
                // totals against the previous pass itself.
                let sc = self.scheduler.counters();
                let totals = obs::recorder::CycleTotals {
                    events: steps,
                    starts: sc.inorder_starts + sc.backfill_starts,
                    candidates: sc.backfill_candidates_scanned,
                    segments: sc.profile_segments_walked,
                };
                let ns = obs::recorder::PhaseNanos {
                    pump: self.obs.profiler.total_ns("event-pump"),
                    order: self.obs.profiler.total_ns("order-queue"),
                    profile: self.obs.profiler.total_ns("free-profile"),
                    backfill: self.obs.profiler.total_ns("backfill"),
                };
                let depth = self.scheduler.queue_len() as u64;
                self.obs.recorder.end_cycle(rec, now, depth, totals, ns);
            }
        }

        debug_assert!(st.running.is_empty(), "jobs still running at drain");
        debug_assert_eq!(st.pool.in_use(), 0);
        debug_assert!(st.void_events.is_empty(), "unconsumed tombstones");
        debug_assert!(st.retry_pending.is_empty(), "unfired retry releases");
        // Retries that never found room before the event queue ran dry are
        // abandoned work — including anything the recovery policy had
        // salvaged for them at earlier evictions. Same for evicted jobs
        // still parked in the suspended queue.
        for p in &st.retry_ready {
            if let Some(l) = st.ledger.take(p.job.id) {
                let sunk = p.job.cpus as f64 * l.done.as_secs_f64();
                st.faults.salvaged_cpu_seconds -= sunk;
                st.faults.fault_wasted_cpu_seconds += sunk;
                st.faults.interstitial_wasted_cpu_seconds += sunk;
            }
        }
        for s in &st.suspended {
            if let Some(l) = st.ledger.take(s.job.id) {
                let sunk = s.job.cpus as f64 * l.done.as_secs_f64();
                st.faults.salvaged_cpu_seconds -= sunk;
                st.faults.fault_wasted_cpu_seconds += sunk;
                st.faults.interstitial_wasted_cpu_seconds += sunk;
            }
        }
        st.faults.interstitial_given_up += st.retry_ready.len() as u64;
        st.completed.sort_by_key(|c| (c.finish, c.job.id));
        self.obs.metrics.inc("engine.events", steps);
        self.obs.metrics.gauge_set(
            "engine.end_time_s",
            i64::try_from(q.now().as_secs()).unwrap_or(i64::MAX),
        );
        // Fold the always-on raw counts (event pump, queue high-water mark,
        // scheduler scan work, fault churn) into the deterministic work
        // counters. One-shot at end of run: the hot loop pays only the
        // trivial integer adds the sources already perform.
        self.obs
            .work
            .record_engine(steps, q.scheduled_total(), q.peak_len() as u64);
        let sc = self.scheduler.counters();
        self.obs.work.record_sched(
            sc.cycles,
            sc.inorder_starts,
            sc.backfill_starts,
            sc.backfill_candidates_scanned,
            sc.profile_segments_walked,
        );
        self.obs
            .work
            .record_churn(st.faults.native_requeues, st.faults.interstitial_retries);
        // Recovery counters stay untouched under kill-restart so frozen
        // perf baselines keep comparing field-for-field (missing keys in
        // old files parse as zero).
        if self.recovery != RecoveryPolicy::KillRestart {
            self.obs.work.record_recovery(
                st.faults.checkpoints_taken,
                st.faults.salvaged_cpu_seconds.max(0.0) as u64,
                st.faults.reexecuted_cpu_seconds.max(0.0) as u64,
            );
        }
        self.obs.mem = obs::alloc::since(&mem_mark);
        SimOutput {
            machine: self.machine.clone(),
            horizon: self.horizon,
            completed: st.completed,
            interstitial_started: st.ij_started.iter().sum(),
            native_submitted: self.natives.len() as u64,
            interstitial_killed: st.killed,
            wasted_cpu_seconds: st.wasted_cpu_seconds,
            sim_end: q.now(),
            fault_model: self.faults.clone(),
            faults: st.faults,
            obs: self.obs,
        }
    }

    fn handle(
        &mut self,
        now: SimTime,
        ev: Ev,
        st: &mut RunState,
        q: &mut impl FutureEventList<Ev>,
    ) {
        match ev {
            Ev::Arrive(idx) => {
                let mut job = self.natives[idx as usize];
                // In closed-loop mode the arrival may have been deferred;
                // the wait clock starts at the actual submission instant.
                job.submit = now;
                self.obs.trace.record(
                    now,
                    EventKind::Submit {
                        job: job.id,
                        cpus: job.cpus,
                        estimate_s: job.estimate.as_secs(),
                        interstitial: false,
                    },
                );
                self.obs.metrics.inc("jobs.submitted.native", 1);
                self.scheduler.submit(job);
            }
            Ev::Finish(id) => {
                if let Some(n) = st.void_events.get_mut(&id) {
                    // Job was preempted; this finish event is stale.
                    *n -= 1;
                    if *n == 0 {
                        st.void_events.remove(&id);
                    }
                    return;
                }
                let rj = st.running.remove(id);
                st.pool.release(rj.cpus);
                let job = st.live.remove(&id).expect("live payload");
                self.scheduler.charge_finish(now, &job);
                let record = match st.resume_meta.remove(&id) {
                    // A resumed checkpointed job: wallclock spans the
                    // suspension(s).
                    Some(first_start) => CompletedJob::with_finish(job, first_start, now),
                    None => CompletedJob::new(job, rj.start),
                };
                let interstitial = job.class.is_interstitial();
                self.obs.trace.record(
                    now,
                    EventKind::Finish {
                        job: id,
                        cpus: rj.cpus,
                        wait_s: record.wait().as_secs(),
                        interstitial,
                    },
                );
                if interstitial {
                    self.obs.metrics.inc("jobs.finished.interstitial", 1);
                    // A recovered job's credited progress is realized; drop
                    // the ledger entry (no-op under kill-restart — empty map).
                    st.ledger.take(id);
                } else {
                    self.obs.metrics.inc("jobs.finished.native", 1);
                    self.obs
                        .metrics
                        .observe("wait.native_s", record.wait().as_secs());
                    if self.obs.telemetry.is_enabled() {
                        st.native_wait_p99.observe(record.wait().as_secs() as f64);
                    }
                }
                st.completed.push(record);
                // Closed loop: this completion releases the user's next job.
                if !job.class.is_interstitial() {
                    if let Some((dist, rng)) = st.think.as_mut() {
                        if let Some(queue) = st.user_pending.get_mut(&job.user) {
                            if let Some(next) = queue.pop_front() {
                                use simkit::dist::Sample;
                                let think = SimDuration::from_secs_f64(dist.sample(rng));
                                let logged = self.natives[next as usize].submit;
                                q.schedule(logged.max(now + think), Ev::Arrive(next));
                            }
                        }
                    }
                }
            }
            Ev::Outage(up) => {
                st.machine_up = up;
                self.obs.trace.record(now, EventKind::Outage { up });
                self.obs.metrics.inc("outages.boundaries", 1);
                // Fault overlay for the telemetry dashboard (no-op when
                // the bus is disabled).
                let kind = if up {
                    AnnotationKind::MachineUp
                } else {
                    AnnotationKind::MachineDown
                };
                self.obs.telemetry.annotate(now.as_secs(), kind, "", 0, 0);
            }
            Ev::NodeDown(node) => self.fail_node(now, node, st, q),
            Ev::NodeUp(node) => {
                let cpus = self.faults.nodes()[node as usize].cpus;
                st.faults.node_repairs += 1;
                st.pool.bring_online(cpus);
                self.obs.trace.record(now, EventKind::NodeUp { node, cpus });
                self.obs.metrics.inc("faults.node_up", 1);
            }
            Ev::Retry(id) => {
                if let Some(job) = st.retry_pending.remove(&id) {
                    st.retry_ready.push(job);
                }
            }
            Ev::Kick => {}
        }
    }

    /// A node failed: its CPUs leave service and, when occupancy exceeds
    /// the remaining capacity, tenants are crashed to cover the shortfall.
    /// The pool is liquid (jobs are not pinned to nodes), so a failing node
    /// first claims idle CPUs; only the deficit kills jobs — youngest
    /// interstitial first (the cheapest loss), then youngest native.
    fn fail_node(
        &mut self,
        now: SimTime,
        node: u32,
        st: &mut RunState,
        q: &mut impl FutureEventList<Ev>,
    ) {
        let cpus = self.faults.nodes()[node as usize].cpus;
        st.faults.node_failures += 1;
        self.obs
            .trace
            .record(now, EventKind::NodeDown { node, cpus });
        self.obs.metrics.inc("faults.node_down", 1);
        let deficit = cpus.saturating_sub(st.pool.free());
        if deficit > 0 {
            let mut victims: Vec<(bool, SimTime, u64, u32)> = st
                .running
                .iter()
                .map(|r| (!r.interstitial, r.start, r.id, r.cpus))
                .collect();
            victims.sort_by_key(|&(native, start, id, _)| (native, std::cmp::Reverse(start), id));
            let mut reclaimed = 0u32;
            for (_, _, id, jcpus) in victims {
                if reclaimed >= deficit {
                    break;
                }
                self.fault_kill(now, node, id, st, q);
                reclaimed += jcpus;
            }
        }
        let taken = st.pool.take_offline(cpus);
        debug_assert_eq!(taken, cpus, "node capacity not reclaimed before offlining");
    }

    /// Crash one running job for `node`'s failure. Native victims are
    /// requeued at the head of the native queue with their original submit
    /// instant (the wait clock spans the failure). Interstitial victims
    /// re-enter under the retry policy's capped exponential backoff; what
    /// they carry back is the recovery policy's call — nothing
    /// (kill-restart), progress up to the last completed checkpoint
    /// (checkpoint), or everything (suspend-resume) — until the attempt
    /// budget or the horizon gives out. The uncredited slice of the attempt
    /// is wasted.
    fn fault_kill(
        &mut self,
        now: SimTime,
        node: u32,
        id: u64,
        st: &mut RunState,
        q: &mut impl FutureEventList<Ev>,
    ) {
        let rj = st.running.remove(id);
        st.pool.release(rj.cpus);
        *st.void_events.entry(id).or_insert(0) += 1;
        let job = st.live.remove(&id).expect("live payload");
        let interstitial = job.class.is_interstitial();
        if !interstitial {
            st.faults.fault_wasted_cpu_seconds += rj.cpus as f64 * (now - rj.start).as_secs_f64();
        }
        st.faults.kills.push(machine::KilledJob {
            job: id,
            cpus: rj.cpus,
            runtime_s: job.runtime.as_secs(),
            interstitial,
        });
        self.obs.trace.record(
            now,
            EventKind::JobFailed {
                job: id,
                cpus: rj.cpus,
                node,
                interstitial,
            },
        );
        self.obs.metrics.inc("faults.job_killed", 1);
        let attempts = {
            let a = st.retry_attempts.entry(id).or_insert(0);
            *a += 1;
            *a
        };
        if interstitial {
            let first_start = st.resume_meta.remove(&id).unwrap_or(rj.start);
            let done = st.ledger.done_for(id);
            let elapsed = now - rj.start;
            // Total credited progress after this eviction, per policy;
            // kill-restart credits nothing, so remaining == job.runtime and
            // every figure below collapses to the legacy arithmetic.
            let credited = self.recovery.credited(done, elapsed);
            let remaining = job.runtime.saturating_sub(credited);
            let release = now + self.retry.backoff(attempts);
            if self.retry.gives_up_after(attempts) || release + remaining > self.horizon {
                // Abandoned: this attempt's work, plus anything salvaged at
                // earlier evictions, is all waste after all.
                st.faults.fault_wasted_cpu_seconds += rj.cpus as f64 * elapsed.as_secs_f64();
                st.faults.interstitial_wasted_cpu_seconds += rj.cpus as f64 * elapsed.as_secs_f64();
                if let Some(p) = st.ledger.take(id) {
                    let sunk = rj.cpus as f64 * p.done.as_secs_f64();
                    st.faults.salvaged_cpu_seconds -= sunk;
                    st.faults.fault_wasted_cpu_seconds += sunk;
                    st.faults.interstitial_wasted_cpu_seconds += sunk;
                }
                st.faults.interstitial_given_up += 1;
                self.obs.metrics.inc("faults.retry_given_up", 1);
            } else {
                let salvaged = credited.saturating_sub(done);
                let lost = elapsed.saturating_sub(salvaged);
                st.faults.fault_wasted_cpu_seconds += rj.cpus as f64 * lost.as_secs_f64();
                st.faults.interstitial_wasted_cpu_seconds += rj.cpus as f64 * lost.as_secs_f64();
                st.faults.salvaged_cpu_seconds += rj.cpus as f64 * salvaged.as_secs_f64();
                if self.recovery != RecoveryPolicy::KillRestart {
                    st.faults.reexecuted_cpu_seconds += rj.cpus as f64 * lost.as_secs_f64();
                }
                let ckpts = self.recovery.checkpoints_in(done, elapsed);
                st.faults.checkpoints_taken += ckpts;
                st.faults.checkpoint_overhead_cpu_seconds +=
                    rj.cpus as f64 * (ckpts * CHECKPOINT_OVERHEAD_S) as f64;
                if !credited.is_zero() {
                    st.ledger.credit(id, credited, first_start);
                }
                match self.recovery {
                    RecoveryPolicy::KillRestart => {}
                    RecoveryPolicy::Checkpoint { .. } => {
                        self.obs.trace.record(
                            now,
                            EventKind::JobCheckpointed {
                                job: id,
                                checkpoints: u32::try_from(ckpts).unwrap_or(u32::MAX),
                                salvaged_s: credited.as_secs(),
                                lost_s: (done + elapsed).saturating_sub(credited).as_secs(),
                            },
                        );
                        self.obs.metrics.inc("recovery.checkpoint_evictions", 1);
                    }
                    RecoveryPolicy::SuspendResume => {
                        self.obs.trace.record(
                            now,
                            EventKind::JobSuspended {
                                job: id,
                                remaining_s: remaining.as_secs(),
                            },
                        );
                        self.obs.metrics.inc("recovery.suspensions", 1);
                    }
                }
                st.faults.interstitial_retries += 1;
                st.retry_pending.insert(
                    id,
                    PendingRetry {
                        job,
                        remaining,
                        first_start: if credited.is_zero() {
                            None
                        } else {
                            Some(first_start)
                        },
                    },
                );
                q.schedule(release, Ev::Retry(id));
                self.obs.trace.record(
                    now,
                    EventKind::JobRequeued {
                        job: id,
                        attempt: attempts,
                    },
                );
                self.obs.metrics.inc("faults.retry_scheduled", 1);
            }
        } else {
            st.faults.native_requeues += 1;
            self.scheduler.requeue_front(job);
            self.obs.trace.record(
                now,
                EventKind::JobRequeued {
                    job: id,
                    attempt: attempts,
                },
            );
            self.obs.metrics.inc("faults.native_requeued", 1);
        }
    }

    /// One scheduling pass: (extension) preempt interstitial jobs blocking
    /// the native head, then natives, then the Figure 1 interstitial
    /// submission. With the `check-invariants` feature (on in test builds)
    /// CPU conservation and the meta-backfill no-delay guarantee are
    /// asserted around the interstitial placement; the calls are empty
    /// inline stubs otherwise.
    fn cycle(&mut self, now: SimTime, st: &mut RunState, q: &mut impl FutureEventList<Ev>) {
        let span = self.obs.profiler.begin();
        self.obs.trace.advance_cycle();
        if st.machine_up {
            self.preempt_for_head(now, st);
        }
        let plan = self.scheduler.cycle_observed(
            now,
            st.pool.free(),
            &st.running,
            st.machine_up,
            &mut self.obs,
        );
        // The planner emits all in-order dispatches before any backfill
        // (the head only blocks once, and stays blocked for the scan).
        let inorder = plan.starts.len() - plan.backfilled as usize;
        for (i, job) in plan.starts.into_iter().enumerate() {
            let kind = if i < inorder {
                StartKind::InOrder
            } else {
                StartKind::Backfill
            };
            Self::start_job(now, job, st, q, false, kind, &mut self.obs);
        }
        self.check_conservation(now, st);
        if st.machine_up {
            // The no-delay guarantee only binds non-preempting streams (a
            // preempting stream may block the head on purpose — the next
            // cycle reclaims the CPUs), and the relaxed `>=`-with-rounding
            // guard admits jobs ending up to 1 s past the reservation.
            let no_delay_binds = !self.streams.is_empty()
                && self
                    .streams
                    .iter()
                    .all(|&(_, _, p)| p.preemption == Preemption::None);
            let slack = if self
                .streams
                .iter()
                .any(|&(_, _, p)| !p.strict_backfill_guard)
            {
                SimDuration::from_secs(1)
            } else {
                SimDuration::ZERO
            };
            let before = self.scheduler.head_reservation();
            self.submit_interstitial(now, st, q);
            if no_delay_binds {
                sched::invariants::check_no_delay(
                    now,
                    &mut self.scheduler,
                    st.pool.free(),
                    &st.running,
                    before,
                    slack,
                );
            }
            self.check_conservation(now, st);
        }
        self.obs.profiler.end("schedule-cycle", span);
    }

    /// Record every telemetry tick due at or before `now`, sampling the
    /// current (left-limit) state, then feed the sampled values to the SLO
    /// watchdog. One predictable branch when the bus is disabled or no
    /// tick is due — the default path stays zero-cost.
    fn flush_telemetry(&mut self, now: SimTime, st: &mut RunState, steps: u64) {
        while let Some(t) = self.obs.telemetry.pending_tick(now) {
            let native = st.running.native_cpus_in_use();
            let busy = st.running.cpus_in_use();
            let free = st.pool.free();
            let in_service = st.pool.total() - st.pool.offline();
            let util = if in_service == 0 {
                0
            } else {
                u64::from(busy) * 1000 / u64::from(in_service)
            };
            let p99 = match st.native_wait_p99.estimate() {
                Some(x) if x > 0.0 => x as u64,
                _ => 0,
            };
            let sc = self.scheduler.counters();
            let totals = [
                steps,
                sc.inorder_starts + sc.backfill_starts,
                sc.backfill_candidates_scanned,
                sc.profile_segments_walked,
            ];
            let tick = SimTime::from_secs(t);
            let values = [
                u64::from(native),
                u64::from(busy - native),
                u64::from(free),
                u64::from(in_service),
                util,
                self.scheduler.queue_len() as u64,
                self.scheduler.queued_demand_cpu_s(),
                frag_permille(&st.running, tick, free),
                st.running.len() as u64,
                p99,
                totals[0] - st.telemetry_prev[0],
                totals[1] - st.telemetry_prev[1],
                totals[2] - st.telemetry_prev[2],
                totals[3] - st.telemetry_prev[3],
            ];
            st.telemetry_prev = totals;
            self.obs.telemetry.record_tick(t, &values);
            for tr in st.watchdog.evaluate(&values) {
                let (kind, ann) = if tr.breached {
                    (
                        EventKind::SloBreach {
                            rule: tr.rule,
                            metric: tr.metric,
                            value: tr.value,
                            limit: tr.limit,
                        },
                        AnnotationKind::Breach,
                    )
                } else {
                    (
                        EventKind::SloClear {
                            rule: tr.rule,
                            metric: tr.metric,
                            value: tr.value,
                            limit: tr.limit,
                        },
                        AnnotationKind::Clear,
                    )
                };
                self.obs.trace.record(tick, kind);
                self.obs
                    .telemetry
                    .annotate(t, ann, tr.metric, tr.value, tr.limit);
            }
        }
    }

    /// CPU-conservation and degraded-capacity invariants (no-ops without
    /// `check-invariants`). Capacity is cross-checked against the fault
    /// model's own timeline, not the pool's offline counter, so a missed
    /// offline debit is caught rather than absorbed.
    fn check_conservation(&self, now: SimTime, st: &RunState) {
        sched::invariants::check_conservation(
            now,
            &st.running,
            st.pool.in_use(),
            st.pool.free(),
            st.pool.offline(),
            st.pool.total(),
        );
        sched::invariants::check_capacity(
            now,
            st.pool.in_use(),
            self.faults.available_cpus(now, st.pool.total()),
        );
    }

    /// Breakage-in-time extension: if the native queue head could start
    /// right now but for CPUs held by interstitial jobs, reclaim them
    /// (kill or checkpoint per policy). The paper's model never does this.
    fn preempt_for_head(&mut self, now: SimTime, st: &mut RunState) {
        if !self
            .streams
            .iter()
            .any(|&(_, _, p)| p.preemption != Preemption::None)
        {
            return;
        }
        let Some(head) = self.scheduler.head_job(now) else {
            return;
        };
        if !self.scheduler.window.may_start(&head, now) {
            return;
        }
        let free = st.pool.free();
        if head.cpus <= free {
            return; // head starts on its own this cycle
        }
        let deficit = head.cpus - free;
        // Reclaimable capacity: running interstitial jobs belonging to a
        // preemptible stream, youngest first (kill loses the least work;
        // checkpoint order is immaterial but kept identical for
        // determinism). A job's stream index travels in its `user` field.
        let stream_of = |user: u32| user as usize;
        let mut victims: Vec<(SimTime, u64, u32)> = st
            .running
            .iter()
            .filter(|r| r.interstitial)
            .filter(|r| {
                let job = &st.live[&r.id];
                self.streams[stream_of(job.user)].2.preemption != Preemption::None
            })
            .map(|r| (r.start, r.id, r.cpus))
            .collect();
        let reclaimable: u32 = victims.iter().map(|&(_, _, c)| c).sum();
        if reclaimable < deficit {
            return; // preemption cannot unblock the head
        }
        victims.sort_by_key(|&(start, id, _)| (std::cmp::Reverse(start), id));
        let mut reclaimed = 0u32;
        for (_, id, cpus) in victims {
            if reclaimed >= deficit {
                break;
            }
            let rj = st.running.remove(id);
            st.pool.release(rj.cpus);
            *st.void_events.entry(id).or_insert(0) += 1;
            let job = st.live.remove(&id).expect("live payload");
            let stream = stream_of(job.user);
            match self.streams[stream].2.preemption {
                Preemption::Kill if self.recovery == RecoveryPolicy::KillRestart => {
                    st.killed += 1;
                    let worked = (now - rj.start).as_secs_f64();
                    st.wasted_cpu_seconds += rj.cpus as f64 * worked;
                    // Kill restores the job budget: the work must be redone.
                    st.ij_started[stream] -= 1;
                    self.obs.trace.record(
                        now,
                        EventKind::Preempt {
                            job: id,
                            cpus,
                            kind: obs::PreemptKind::Kill,
                        },
                    );
                    self.obs.metrics.inc("preempt.killed", 1);
                }
                Preemption::Kill => {
                    // A recovery policy turns the kill into an eviction:
                    // credited progress survives in the ledger and the job
                    // waits in the suspended queue holding only its
                    // remainder (and its stream budget — it is not redone).
                    let first_start = st.resume_meta.remove(&id).unwrap_or(rj.start);
                    let done = st.ledger.done_for(id);
                    let elapsed = now - rj.start;
                    let credited = self.recovery.credited(done, elapsed);
                    let remaining = job.runtime.saturating_sub(credited);
                    let salvaged = credited.saturating_sub(done);
                    let lost = elapsed.saturating_sub(salvaged);
                    st.wasted_cpu_seconds += rj.cpus as f64 * lost.as_secs_f64();
                    st.faults.salvaged_cpu_seconds += rj.cpus as f64 * salvaged.as_secs_f64();
                    st.faults.reexecuted_cpu_seconds += rj.cpus as f64 * lost.as_secs_f64();
                    let ckpts = self.recovery.checkpoints_in(done, elapsed);
                    st.faults.checkpoints_taken += ckpts;
                    st.faults.checkpoint_overhead_cpu_seconds +=
                        rj.cpus as f64 * (ckpts * CHECKPOINT_OVERHEAD_S) as f64;
                    if !credited.is_zero() {
                        st.ledger.credit(id, credited, first_start);
                    }
                    st.suspended.push(Suspended {
                        job,
                        first_start,
                        remaining,
                    });
                    self.obs.trace.record(
                        now,
                        EventKind::Preempt {
                            job: id,
                            cpus,
                            kind: obs::PreemptKind::Checkpoint,
                        },
                    );
                    match self.recovery {
                        RecoveryPolicy::Checkpoint { .. } => {
                            self.obs.trace.record(
                                now,
                                EventKind::JobCheckpointed {
                                    job: id,
                                    checkpoints: u32::try_from(ckpts).unwrap_or(u32::MAX),
                                    salvaged_s: credited.as_secs(),
                                    lost_s: (done + elapsed).saturating_sub(credited).as_secs(),
                                },
                            );
                            self.obs.metrics.inc("recovery.checkpoint_evictions", 1);
                        }
                        _ => {
                            self.obs.trace.record(
                                now,
                                EventKind::JobSuspended {
                                    job: id,
                                    remaining_s: remaining.as_secs(),
                                },
                            );
                            self.obs.metrics.inc("recovery.suspensions", 1);
                        }
                    }
                    self.obs.metrics.inc("preempt.checkpointed", 1);
                }
                Preemption::Checkpoint => {
                    let first_start = st.resume_meta.remove(&id).unwrap_or(rj.start);
                    st.suspended.push(Suspended {
                        job,
                        first_start,
                        remaining: rj.actual_end - now,
                    });
                    self.obs.trace.record(
                        now,
                        EventKind::Preempt {
                            job: id,
                            cpus,
                            kind: obs::PreemptKind::Checkpoint,
                        },
                    );
                    self.obs.metrics.inc("preempt.checkpointed", 1);
                }
                Preemption::None => unreachable!("victims are preemptible"),
            }
            reclaimed += cpus;
        }
    }

    fn start_job(
        now: SimTime,
        job: Job,
        st: &mut RunState,
        q: &mut impl FutureEventList<Ev>,
        exact: bool,
        kind: StartKind,
        observer: &mut Obs,
    ) {
        st.pool
            .allocate(job.cpus)
            .expect("dispatch plan oversubscribed the pool");
        let actual_end = now + job.runtime;
        let estimated_end = if exact {
            actual_end
        } else {
            now + job.planning_estimate()
        };
        st.running.insert(RunningJob {
            id: job.id,
            cpus: job.cpus,
            start: now,
            actual_end,
            estimated_end,
            interstitial: job.class.is_interstitial(),
        });
        st.live.insert(job.id, job);
        observer.trace.record(
            now,
            EventKind::Start {
                job: job.id,
                cpus: job.cpus,
                kind,
            },
        );
        observer.metrics.inc(
            match kind {
                StartKind::InOrder => "jobs.started.inorder",
                StartKind::Backfill => "jobs.started.backfill",
                StartKind::Interstitial => "jobs.started.interstitial",
                StartKind::Resume => "jobs.started.resumed",
            },
            1,
        );
        q.schedule(actual_end, Ev::Finish(job.id));
    }

    /// Is `stream` allowed to start one job of duration `dur` right now?
    /// Implements the Figure 1 guard (relaxed under preemption: a blocking
    /// job can always be reclaimed, so scavenging may run whenever CPUs are
    /// idle).
    fn stream_guard_ok(&self, now: SimTime, policy: &InterstitialPolicy, dur: SimDuration) -> bool {
        if policy.preemption != Preemption::None {
            return true;
        }
        if self.scheduler.queue_is_empty() {
            return true;
        }
        match self.scheduler.head_reservation() {
            Some(res) => {
                if policy.strict_backfill_guard {
                    res.start >= now + dur
                } else {
                    res.start + SimDuration::from_secs(1) >= now + dur
                }
            }
            // Non-empty queue without a placeable head: stay out.
            None => false,
        }
    }

    fn submit_interstitial(
        &mut self,
        now: SimTime,
        st: &mut RunState,
        q: &mut impl FutureEventList<Ev>,
    ) {
        if self.streams.is_empty() {
            return;
        }

        // Resume checkpointed jobs first — they are already inside their
        // stream's started budget and carry only their remaining work.
        while let Some(susp) = st.suspended.first() {
            let policy = &self.streams[susp.job.user as usize].2;
            if !st.pool.can_fit(susp.job.cpus)
                || policy.cap_allowance(st.pool.in_use(), st.pool.total(), susp.job.cpus) == 0
            {
                break;
            }
            let susp = st.suspended.remove(0);
            let id = susp.job.id;
            st.pool
                .allocate(susp.job.cpus)
                .expect("checked can_fit above");
            let actual_end = now + susp.remaining;
            st.running.insert(machine::RunningJob {
                id,
                cpus: susp.job.cpus,
                start: now,
                actual_end,
                estimated_end: actual_end,
                interstitial: true,
            });
            st.resume_meta.insert(id, susp.first_start);
            self.obs.trace.record(
                now,
                EventKind::Start {
                    job: id,
                    cpus: susp.job.cpus,
                    kind: StartKind::Resume,
                },
            );
            self.obs.metrics.inc("jobs.started.resumed", 1);
            if self.recovery != RecoveryPolicy::KillRestart {
                st.faults.interstitial_resumes += 1;
                self.obs.trace.record(
                    now,
                    EventKind::JobResumed {
                        job: id,
                        remaining_s: susp.remaining.as_secs(),
                    },
                );
            }
            st.live.insert(id, susp.job);
            q.schedule(actual_end, Ev::Finish(id));
        }

        // Fault victims whose backoff expired restart before fresh
        // submissions: their loss is sunk cost and they already hold stream
        // budget. The Figure 1 guard still applies — a retry must not delay
        // the native head any more than a fresh job may.
        if !st.retry_ready.is_empty() {
            let ready = std::mem::take(&mut st.retry_ready);
            for retry in ready {
                let PendingRetry {
                    job,
                    remaining,
                    first_start,
                } = retry;
                let (_, _, policy) = self.streams[job.user as usize];
                if now + remaining > self.horizon {
                    // Too late even for the credited remainder: whatever was
                    // salvaged at earlier evictions is waste after all.
                    if let Some(p) = st.ledger.take(job.id) {
                        let sunk = job.cpus as f64 * p.done.as_secs_f64();
                        st.faults.salvaged_cpu_seconds -= sunk;
                        st.faults.fault_wasted_cpu_seconds += sunk;
                        st.faults.interstitial_wasted_cpu_seconds += sunk;
                    }
                    st.faults.interstitial_given_up += 1;
                    self.obs.metrics.inc("faults.retry_given_up", 1);
                } else if st.pool.can_fit(job.cpus)
                    && policy.cap_allowance(st.pool.in_use(), st.pool.total(), job.cpus) != 0
                    && self.stream_guard_ok(now, &policy, remaining)
                {
                    self.obs.metrics.inc("faults.retry_started", 1);
                    match first_start {
                        // Kill-restart: from scratch (remaining == runtime).
                        None => Self::start_job(
                            now,
                            job,
                            st,
                            q,
                            true,
                            StartKind::Interstitial,
                            &mut self.obs,
                        ),
                        // Credited restart: only the remainder runs, and the
                        // completed record's wallclock spans back to the
                        // first start.
                        Some(fs) => {
                            let id = job.id;
                            st.pool.allocate(job.cpus).expect("checked can_fit above");
                            let actual_end = now + remaining;
                            st.running.insert(machine::RunningJob {
                                id,
                                cpus: job.cpus,
                                start: now,
                                actual_end,
                                estimated_end: actual_end,
                                interstitial: true,
                            });
                            st.resume_meta.insert(id, fs);
                            st.faults.interstitial_resumes += 1;
                            self.obs.trace.record(
                                now,
                                EventKind::Start {
                                    job: id,
                                    cpus: job.cpus,
                                    kind: StartKind::Resume,
                                },
                            );
                            self.obs.trace.record(
                                now,
                                EventKind::JobResumed {
                                    job: id,
                                    remaining_s: remaining.as_secs(),
                                },
                            );
                            self.obs.metrics.inc("jobs.started.resumed", 1);
                            st.live.insert(id, job);
                            q.schedule(actual_end, Ev::Finish(id));
                        }
                    }
                } else {
                    st.retry_ready.push(PendingRetry {
                        job,
                        remaining,
                        first_start,
                    });
                }
            }
        }

        // Per-stream eligibility this cycle: (index, cpus, dur, budget).
        let mut live: Vec<(usize, u32, SimDuration, u64)> = Vec::new();
        for (i, &(project, mode, policy)) in self.streams.iter().enumerate() {
            let dur = project.runtime_on(&self.machine);
            let remaining = match mode {
                InterstitialMode::Continual => {
                    // Jobs must finish inside the analyzed log window.
                    if now + dur > self.horizon {
                        continue;
                    }
                    project.jobs.saturating_sub(st.ij_started[i])
                }
                InterstitialMode::Project { start } => {
                    if now < start {
                        continue;
                    }
                    project.jobs.saturating_sub(st.ij_started[i])
                }
            };
            if remaining == 0 || !self.stream_guard_ok(now, &policy, dur) {
                continue;
            }
            live.push((i, project.cpus_per_job, dur, remaining));
        }
        if live.is_empty() {
            return;
        }

        // Round-robin one job at a time across the eligible streams so
        // concurrent projects share the interstices fairly.
        let mut budgets: Vec<u64> = live.iter().map(|&(_, _, _, b)| b).collect();
        let mut cursor = st.rr_next % live.len();
        let mut stuck = 0usize;
        while stuck < live.len() {
            let (i, cpus, dur, _) = live[cursor];
            let policy = &self.streams[i].2;
            if budgets[cursor] == 0
                || !st.pool.can_fit(cpus)
                || policy.cap_allowance(st.pool.in_use(), st.pool.total(), cpus) == 0
            {
                stuck += 1;
                cursor = (cursor + 1) % live.len();
                continue;
            }
            stuck = 0;
            budgets[cursor] -= 1;
            let id = st.next_ij_id;
            st.next_ij_id += 1;
            st.ij_started[i] += 1;
            let job = Job {
                id,
                class: JobClass::Interstitial,
                // The stream index rides in `user` so outputs can be split
                // per project.
                user: i as u32,
                group: u32::MAX,
                submit: now,
                cpus,
                runtime: dur,
                estimate: dur, // zero-variance runtimes, exactly known (§4)
            };
            self.obs.trace.record(
                now,
                EventKind::Submit {
                    job: id,
                    cpus,
                    estimate_s: dur.as_secs(),
                    interstitial: true,
                },
            );
            self.obs.metrics.inc("jobs.submitted.interstitial", 1);
            Self::start_job(
                now,
                job,
                st,
                q,
                true,
                StartKind::Interstitial,
                &mut self.obs,
            );
            cursor = (cursor + 1) % live.len();
        }
        st.rr_next = (st.rr_next + 1) % live.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::config::ross;

    fn tiny_machine() -> MachineConfig {
        let mut m = ross();
        m.cpus = 64;
        m.clock_ghz = 1.0;
        m
    }

    fn native(id: u64, submit: u64, cpus: u32, runtime: u64, estimate: u64) -> Job {
        Job {
            id,
            class: JobClass::Native,
            user: id as u32 % 5,
            group: id as u32 % 2,
            submit: SimTime::from_secs(submit),
            cpus,
            runtime: SimDuration::from_secs(runtime),
            estimate: SimDuration::from_secs(estimate),
        }
    }

    #[test]
    fn native_only_replay_completes_everything() {
        let jobs = vec![
            native(1, 0, 32, 1000, 1200),
            native(2, 10, 32, 500, 600),
            native(3, 20, 64, 300, 400),
        ];
        let out = SimBuilder::new(tiny_machine())
            .natives(jobs)
            .horizon(SimTime::from_secs(10_000))
            .build()
            .run();
        assert_eq!(out.native_completed(), 3);
        assert_eq!(out.interstitial_completed(), 0);
        // Jobs 1+2 run immediately side by side; job 3 (whole machine)
        // waits for both.
        let c3 = out.natives().find(|c| c.job.id == 3).unwrap();
        assert_eq!(c3.start, SimTime::from_secs(1000));
    }

    #[test]
    fn backfill_happens_in_replay() {
        // Head job blocks (needs whole machine), tiny job backfills.
        let jobs = vec![
            native(1, 0, 64, 1000, 1000),
            native(2, 10, 64, 500, 500),
            native(3, 20, 16, 400, 400),
        ];
        let out = SimBuilder::new(tiny_machine())
            .natives(jobs)
            .horizon(SimTime::from_secs(10_000))
            .build()
            .run();
        let c3 = out.natives().find(|c| c.job.id == 3).unwrap();
        // Job 3 fits alongside job... nothing: machine is full [0,1000).
        // It backfills at t=1000? No: job 2 (64 cpus) is reserved at 1000.
        // Job 3 (16 cpus, 400 s est) would delay it, so it runs after job 2
        // under EASY? At t=1000 job2 starts (whole machine to 1500); job 3
        // starts at 1500.
        assert_eq!(c3.start, SimTime::from_secs(1500));
    }

    #[test]
    fn continual_interstitial_fills_idle_machine() {
        let out = SimBuilder::new(tiny_machine())
            .natives(vec![native(1, 5_000, 64, 1_000, 1_200)])
            .horizon(SimTime::from_secs(20_000))
            .interstitial(
                InterstitialProject::per_paper(1_000_000, 16, 100.0),
                InterstitialMode::Continual,
                InterstitialPolicy::default(),
            )
            .build()
            .run();
        assert!(
            out.interstitial_completed() > 100,
            "machine should be packed"
        );
        // The native job must still complete.
        assert_eq!(out.native_completed(), 1);
        // Interstitial jobs all completed before the horizon.
        for c in out.interstitials() {
            assert!(c.finish <= SimTime::from_secs(20_000));
        }
        // With 100-second interstitial jobs across the whole idle machine,
        // overall utilization should be near 1.
        assert!(
            out.overall_utilization() > 0.9,
            "{}",
            out.overall_utilization()
        );
    }

    #[test]
    fn interstitial_delays_native_by_at_most_job_runtime_here() {
        // Machine idle: interstitial fills it at t=0 with 100 s jobs. A
        // native job arriving at t=50 (whole machine) must wait for the
        // interstitial batch to clear — ≤ one interstitial runtime.
        let out = SimBuilder::new(tiny_machine())
            .natives(vec![native(1, 50, 64, 500, 600)])
            .horizon(SimTime::from_secs(10_000))
            .interstitial(
                InterstitialProject::per_paper(1_000_000, 16, 100.0),
                InterstitialMode::Continual,
                InterstitialPolicy::default(),
            )
            .build()
            .run();
        let c1 = out.natives().next().unwrap();
        let wait = c1.wait().as_secs();
        assert!(wait > 0, "native had to wait for interstitials");
        assert!(wait <= 100, "wait {wait} exceeds one interstitial runtime");
    }

    #[test]
    fn project_mode_submits_exactly_n_jobs() {
        let project = InterstitialProject::per_paper(10, 16, 100.0);
        let out = SimBuilder::new(tiny_machine())
            .natives(vec![])
            .horizon(SimTime::from_secs(50_000))
            .interstitial(
                project,
                InterstitialMode::Project {
                    start: SimTime::from_secs(1_000),
                },
                InterstitialPolicy::default(),
            )
            .build()
            .run();
        assert_eq!(out.interstitial_completed(), 10);
        for c in out.interstitials() {
            assert!(c.start >= SimTime::from_secs(1_000));
        }
        // 10 jobs × 16 CPUs: 4 fit at once (64 CPUs) → three waves:
        // 4 @1000, 4 @1100, 2 @1200; last finish at 1300.
        let last = out.interstitials().map(|c| c.finish).max().unwrap();
        assert_eq!(last, SimTime::from_secs(1_300));
    }

    #[test]
    fn utilization_cap_limits_interstitial() {
        // Empty machine, cap 0.5: at most 2 × 16-CPU jobs (32/64) at once.
        let out = SimBuilder::new(tiny_machine())
            .natives(vec![])
            .horizon(SimTime::from_secs(5_000))
            .interstitial(
                InterstitialProject::per_paper(1_000_000, 16, 100.0),
                InterstitialMode::Continual,
                InterstitialPolicy::capped(0.5),
            )
            .build()
            .run();
        assert!(out.interstitial_completed() > 0);
        let u = out.utilization_by(false, true);
        assert!(u < 0.51, "capped utilization {u}");
        assert!(u > 0.4, "cap budget should be used, got {u}");
    }

    #[test]
    fn figure1_guard_blocks_when_head_imminent() {
        // Native head will free up at t=1000 (estimate matches runtime).
        // Interstitial jobs last 2000 s — starting one would (per the
        // estimates) delay the queued whole-machine job, so none may start.
        let jobs = vec![
            native(1, 0, 64, 1000, 1000), // runs [0,1000)
            native(2, 10, 64, 500, 500),  // queued; reserved at t=1000
        ];
        let out = SimBuilder::new(tiny_machine())
            .natives(jobs)
            .horizon(SimTime::from_secs(30_000))
            .interstitial(
                InterstitialProject::per_paper(1_000_000, 16, 2_000.0),
                InterstitialMode::Continual,
                InterstitialPolicy::default(),
            )
            .build()
            .run();
        // Native 2 must start exactly at t=1000, undelayed.
        let c2 = out.natives().find(|c| c.job.id == 2).unwrap();
        assert_eq!(c2.start, SimTime::from_secs(1000));
        // Interstitials only flow after the queue clears (t=1500).
        let earliest_ij = out.interstitials().map(|c| c.start).min().unwrap();
        assert!(earliest_ij >= SimTime::from_secs(1500));
    }

    #[test]
    fn bad_estimates_let_interstitial_delay_natives() {
        // Native 1 estimates 10000 s but actually runs 500 s. While it
        // runs, the queue is empty, so interstitials fill the rest. Native 2
        // arrives and — thanks to the wrong estimate — can be pushed back by
        // running interstitial jobs, though never by more than one
        // interstitial runtime beyond the *actual* availability.
        let jobs = vec![native(1, 0, 32, 500, 10_000), native(2, 100, 64, 300, 400)];
        let out = SimBuilder::new(tiny_machine())
            .natives(jobs)
            .horizon(SimTime::from_secs(30_000))
            .interstitial(
                InterstitialProject::per_paper(1_000_000, 32, 800.0),
                InterstitialMode::Continual,
                InterstitialPolicy::default(),
            )
            .build()
            .run();
        let c2 = out.natives().find(|c| c.job.id == 2).unwrap();
        // Without interstitial, job 2 would start at t=500. With it, the
        // interstitial slab started at t=0 holds 32 CPUs until t=800.
        assert_eq!(c2.start, SimTime::from_secs(800));
    }

    #[test]
    fn outage_blocks_all_starts() {
        let outages =
            OutageSchedule::from_windows(vec![(SimTime::from_secs(0), SimTime::from_secs(1_000))]);
        let out = SimBuilder::new(tiny_machine())
            .natives(vec![native(1, 100, 8, 200, 300)])
            .horizon(SimTime::from_secs(10_000))
            .outages(outages)
            .interstitial(
                InterstitialProject::per_paper(1_000_000, 16, 100.0),
                InterstitialMode::Continual,
                InterstitialPolicy::default(),
            )
            .build()
            .run();
        let c1 = out.natives().next().unwrap();
        assert_eq!(c1.start, SimTime::from_secs(1_000), "waits out the outage");
        let earliest_ij = out.interstitials().map(|c| c.start).min().unwrap();
        assert!(earliest_ij >= SimTime::from_secs(1_000));
    }

    #[test]
    fn oversized_natives_are_rejected_at_build() {
        let out = SimBuilder::new(tiny_machine())
            .natives(vec![
                native(1, 0, 1_000, 100, 100),
                native(2, 0, 8, 100, 100),
            ])
            .horizon(SimTime::from_secs(1_000))
            .build()
            .run();
        assert_eq!(out.native_submitted, 1);
        assert_eq!(out.native_completed(), 1);
    }

    #[test]
    fn continual_stops_at_horizon() {
        let out = SimBuilder::new(tiny_machine())
            .natives(vec![])
            .horizon(SimTime::from_secs(1_000))
            .interstitial(
                InterstitialProject::per_paper(1_000_000, 64, 300.0),
                InterstitialMode::Continual,
                InterstitialPolicy::default(),
            )
            .build()
            .run();
        // 300-second jobs, last allowed start at t=700: waves at 0, 300,
        // 600 → 3 jobs.
        assert_eq!(out.interstitial_completed(), 3);
        assert!(out.sim_end <= SimTime::from_secs(1_000));
    }

    #[test]
    fn kill_preemption_unblocks_native_head_immediately() {
        use crate::policy::Preemption;
        // Interstitial jobs fill the idle machine with LONG jobs; a native
        // whole-machine job arrives at t=50. Under Kill preemption it starts
        // at t=50 instead of waiting out the interstitial runtime.
        let out = SimBuilder::new(tiny_machine())
            .natives(vec![native(1, 50, 64, 500, 600)])
            .horizon(SimTime::from_secs(10_000))
            .interstitial(
                InterstitialProject::per_paper(1_000_000, 16, 5_000.0),
                InterstitialMode::Continual,
                InterstitialPolicy::preempting(Preemption::Kill),
            )
            .build()
            .run();
        let c1 = out.natives().next().unwrap();
        assert_eq!(c1.start, SimTime::from_secs(50), "no wait under preemption");
        assert_eq!(out.interstitial_killed, 4, "whole slab reclaimed");
        // 4 jobs × 16 CPUs × 50 s of lost work.
        assert!((out.wasted_cpu_seconds - 4.0 * 16.0 * 50.0).abs() < 1e-9);
    }

    #[test]
    fn checkpoint_preemption_resumes_and_loses_nothing() {
        use crate::policy::Preemption;
        // Same scenario, Checkpoint flavor: the interstitial jobs suspend at
        // t=50 and resume when the native finishes at t=550; each still
        // delivers its full 5000 s of work.
        let out = SimBuilder::new(tiny_machine())
            .natives(vec![native(1, 50, 64, 500, 600)])
            .horizon(SimTime::from_secs(50_000))
            .interstitial(
                InterstitialProject::per_paper(4, 16, 5_000.0),
                InterstitialMode::Continual,
                InterstitialPolicy::preempting(Preemption::Checkpoint),
            )
            .build()
            .run();
        assert_eq!(out.interstitial_killed, 0);
        assert_eq!(out.wasted_cpu_seconds, 0.0);
        assert_eq!(out.interstitial_completed(), 4);
        for c in out.interstitials() {
            // Started at 0, suspended [50, 550), finished at 5500: the
            // wallclock exceeds the nominal runtime by the suspension.
            assert_eq!(c.start, SimTime::ZERO);
            assert_eq!(c.finish, SimTime::from_secs(5_500));
            assert_eq!(c.job.runtime, SimDuration::from_secs(5_000));
        }
        // The native ran on time.
        assert_eq!(out.natives().next().unwrap().start, SimTime::from_secs(50));
    }

    #[test]
    fn checkpoint_survives_repeated_preemption() {
        use crate::policy::Preemption;
        // Two natives force two suspensions of the same interstitial job.
        let out = SimBuilder::new(tiny_machine())
            .natives(vec![
                native(1, 100, 64, 200, 200),
                native(2, 1_000, 64, 200, 200),
            ])
            .horizon(SimTime::from_secs(50_000))
            .interstitial(
                InterstitialProject::per_paper(1, 16, 3_000.0),
                InterstitialMode::Continual,
                InterstitialPolicy::preempting(Preemption::Checkpoint),
            )
            .build()
            .run();
        assert_eq!(out.interstitial_completed(), 1);
        let c = out.interstitials().next().unwrap();
        // Work segments: [0,100) + [300,1000) + [1200, …): 100+700 done,
        // 2200 remaining → finish at 1200+2200 = 3400.
        assert_eq!(c.start, SimTime::ZERO);
        assert_eq!(c.finish, SimTime::from_secs(3_400));
        // Both natives undelayed.
        for n in out.natives() {
            assert_eq!(n.wait(), SimDuration::ZERO);
        }
    }

    #[test]
    fn preemption_relaxes_figure1_guard() {
        use crate::policy::Preemption;
        // Queue head imminent (reservation at t=1000): the paper's guard
        // blocks interstitial submission; with Checkpoint preemption the
        // stream flows immediately.
        let jobs = Arc::new(vec![
            native(1, 0, 64, 1000, 1000),
            native(2, 10, 64, 500, 500),
        ]);
        let paper = SimBuilder::new(tiny_machine())
            .natives_arc(Arc::clone(&jobs))
            .horizon(SimTime::from_secs(30_000))
            .interstitial(
                InterstitialProject::per_paper(1_000_000, 16, 2_000.0),
                InterstitialMode::Continual,
                InterstitialPolicy::default(),
            )
            .build()
            .run();
        let preempt = SimBuilder::new(tiny_machine())
            .natives_arc(jobs)
            .horizon(SimTime::from_secs(30_000))
            .interstitial(
                InterstitialProject::per_paper(1_000_000, 16, 2_000.0),
                InterstitialMode::Continual,
                InterstitialPolicy::preempting(Preemption::Checkpoint),
            )
            .build()
            .run();
        assert!(
            preempt.interstitial_completed() >= paper.interstitial_completed(),
            "preemption must scavenge at least as much"
        );
        // Native 2 still starts at t=1000 in both worlds.
        for out in [&paper, &preempt] {
            let c2 = out.natives().find(|c| c.job.id == 2).unwrap();
            assert_eq!(c2.start, SimTime::from_secs(1000));
        }
    }

    #[test]
    fn periodic_cycle_wakes_the_time_of_day_window() {
        use sched::{BackfillPolicy, DispatchWindow, PriorityPolicy, Scheduler};
        // A long job (10 h estimate) submitted at noon on an otherwise
        // dead-quiet machine whose scheduler only starts long jobs at
        // night. Without periodic cycles no event fires at 17:00, so the
        // job starts only when something else happens; with an hourly tick
        // it starts right when the window opens.
        let mut long = native(1, 12 * 3600, 8, 3_600, 10 * 3_600);
        long.estimate = SimDuration::from_hours(10);
        let scheduler = || {
            Scheduler::new(
                PriorityPolicy::Fcfs,
                BackfillPolicy::Easy,
                DispatchWindow::blue_pacific(),
                SimDuration::from_hours(24),
            )
        };
        let horizon = SimTime::from_days(2);
        let with_tick = SimBuilder::new(tiny_machine())
            .natives(vec![long])
            .scheduler(scheduler())
            .horizon(horizon)
            .periodic_cycle(SimDuration::from_hours(1))
            .build()
            .run();
        let c = with_tick.natives().next().unwrap();
        assert_eq!(
            c.start,
            SimTime::from_secs(17 * 3600),
            "starts at the window opening"
        );
    }

    #[test]
    fn closed_loop_serializes_per_user_jobs() {
        // One user, three jobs logged at t = 0, 10, 20, each running 100 s
        // on the whole machine. Open loop: all queue at once. Closed loop:
        // each is only submitted after the previous finishes (+ think).
        let jobs: Arc<Vec<Job>> = Arc::new(
            (0..3)
                .map(|i| {
                    let mut j = native(i + 1, i * 10, 64, 100, 100);
                    j.user = 1; // one user owns the whole sequence
                    j
                })
                .collect(),
        );
        let open = SimBuilder::new(tiny_machine())
            .natives_arc(Arc::clone(&jobs))
            .horizon(SimTime::from_secs(100_000))
            .build()
            .run();
        let closed = SimBuilder::new(tiny_machine())
            .natives_arc(jobs)
            .horizon(SimTime::from_secs(100_000))
            .closed_loop(SimDuration::from_secs(60), 9)
            .build()
            .run();
        assert_eq!(open.native_completed(), 3);
        assert_eq!(closed.native_completed(), 3);
        // Open loop: job 3 waits ~180 s. Closed loop: each job is submitted
        // after the previous finish, so nobody waits.
        let open_waits: f64 = open.natives().map(|c| c.wait().as_secs_f64()).sum();
        let closed_waits: f64 = closed.natives().map(|c| c.wait().as_secs_f64()).sum();
        assert!(open_waits > 200.0, "{open_waits}");
        assert_eq!(closed_waits, 0.0);
        // Per-user order preserved and think time separates them.
        let mut starts: Vec<(u64, u64)> = closed
            .natives()
            .map(|c| (c.job.id, c.start.as_secs()))
            .collect();
        starts.sort_unstable();
        assert!(starts[1].1 >= starts[0].1 + 100);
        assert!(starts[2].1 >= starts[1].1 + 100);
    }

    #[test]
    fn closed_loop_is_deterministic_and_respects_logged_floors() {
        let jobs: Arc<Vec<Job>> = Arc::new(
            (0..30)
                .map(|i| native(i + 1, i * 1_000, 8, 50, 60))
                .collect(),
        );
        let run = || {
            SimBuilder::new(tiny_machine())
                .natives_arc(Arc::clone(&jobs))
                .horizon(SimTime::from_secs(200_000))
                .closed_loop(SimDuration::from_secs(30), 4)
                .build()
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.completed.len(), b.completed.len());
        for (x, y) in a.completed.iter().zip(&b.completed) {
            assert_eq!((x.job.id, x.start), (y.job.id, y.start));
        }
        // No job is ever submitted before its logged instant.
        for c in a.natives() {
            let logged = jobs.iter().find(|j| j.id == c.job.id).unwrap().submit;
            assert!(c.job.submit >= logged);
        }
    }

    #[test]
    fn two_streams_share_cycles_round_robin() {
        // Two continual streams with identical shapes on an idle machine:
        // round-robin must split the harvested jobs almost exactly in half.
        let out = SimBuilder::new(tiny_machine())
            .natives(vec![])
            .horizon(SimTime::from_secs(20_000))
            .interstitial(
                InterstitialProject::per_paper(u64::MAX / 2, 16, 100.0),
                InterstitialMode::Continual,
                InterstitialPolicy::default(),
            )
            .interstitial(
                InterstitialProject::per_paper(u64::MAX / 2, 16, 100.0),
                InterstitialMode::Continual,
                InterstitialPolicy::default(),
            )
            .build()
            .run();
        let a = out.interstitials_of_stream(0).count() as f64;
        let b = out.interstitials_of_stream(1).count() as f64;
        assert!(a > 0.0 && b > 0.0);
        assert!((a - b).abs() / (a + b) < 0.05, "unfair split: {a} vs {b}");
        assert_eq!(
            out.interstitial_completed(),
            (a + b) as u64,
            "streams partition the interstitial population"
        );
    }

    #[test]
    fn streams_with_different_shapes_coexist() {
        // A fat stream (32-CPU) and a thin one (8-CPU) with distinct
        // runtimes; the thin one also fits leftover space the fat one
        // cannot use (64 − 32 = 32 → 4 × 8).
        let out = SimBuilder::new(tiny_machine())
            .natives(vec![native(1, 5_000, 64, 500, 600)])
            .horizon(SimTime::from_secs(30_000))
            .interstitial(
                InterstitialProject::per_paper(u64::MAX / 2, 32, 200.0),
                InterstitialMode::Continual,
                InterstitialPolicy::default(),
            )
            .interstitial(
                InterstitialProject::per_paper(u64::MAX / 2, 8, 50.0),
                InterstitialMode::Continual,
                InterstitialPolicy::default(),
            )
            .build()
            .run();
        assert!(out.interstitials_of_stream(0).count() > 0);
        assert!(out.interstitials_of_stream(1).count() > 0);
        // The native still completes on schedule-ish (both streams obey the
        // guard; its wait is bounded by the longer interstitial runtime).
        let n = out.natives().next().unwrap();
        assert!(n.wait().as_secs() <= 200);
        // Full machine still achieved.
        assert!(out.overall_utilization() > 0.9);
    }

    #[test]
    fn project_stream_plus_continual_background() {
        // A finite 20-job project competes against an endless background
        // stream; the project must still complete exactly its 20 jobs.
        let out = SimBuilder::new(tiny_machine())
            .natives(vec![])
            .horizon(SimTime::from_secs(50_000))
            .interstitial(
                InterstitialProject::per_paper(20, 16, 100.0),
                InterstitialMode::Project {
                    start: SimTime::from_secs(1_000),
                },
                InterstitialPolicy::default(),
            )
            .interstitial(
                InterstitialProject::per_paper(u64::MAX / 2, 16, 100.0),
                InterstitialMode::Continual,
                InterstitialPolicy::default(),
            )
            .build()
            .run();
        assert_eq!(out.interstitials_of_stream(0).count(), 20);
        assert!(out.interstitials_of_stream(1).count() > 100);
        // Round-robin means the project finishes in ~2x the solo time
        // (2 slots of 4 concurrent jobs each): 20 jobs / 2 per wave = 10
        // waves -> well within ~1300 s after start, not starved behind the
        // background stream.
        let last = out
            .interstitials_of_stream(0)
            .map(|c| c.finish)
            .max()
            .unwrap();
        assert!(
            last <= SimTime::from_secs(1_000 + 1_300),
            "project starved: finished at {last:?}"
        );
    }

    #[test]
    fn deterministic_output() {
        let jobs: Arc<Vec<Job>> = Arc::new(
            (0..50)
                .map(|i| native(i + 1, i * 97, 1 << (i % 6), 200 + i * 13, 400 + i * 13))
                .collect(),
        );
        let run = || {
            SimBuilder::new(tiny_machine())
                .natives_arc(Arc::clone(&jobs))
                .horizon(SimTime::from_secs(100_000))
                .interstitial(
                    InterstitialProject::per_paper(100_000, 8, 150.0),
                    InterstitialMode::Continual,
                    InterstitialPolicy::default(),
                )
                .build()
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.completed.len(), b.completed.len());
        for (x, y) in a.completed.iter().zip(b.completed.iter()) {
            assert_eq!(x.job.id, y.job.id);
            assert_eq!(x.start, y.start);
            assert_eq!(x.finish, y.finish);
        }
    }

    #[test]
    fn disabled_tracing_is_allocation_free() {
        // The default (no observer) run must never touch the trace buffer:
        // zero events, zero heap growth — the "zero-cost when disabled"
        // contract future perf PRs lean on.
        let jobs: Vec<Job> = (0..40)
            .map(|i| native(i + 1, i * 50, 1 << (i % 5), 100 + i * 7, 150 + i * 7))
            .collect();
        let out = SimBuilder::new(tiny_machine())
            .natives(jobs)
            .horizon(SimTime::from_secs(50_000))
            .interstitial(
                InterstitialProject::per_paper(10_000, 8, 120.0),
                InterstitialMode::Continual,
                InterstitialPolicy::default(),
            )
            .build()
            .run();
        assert!(out.native_completed() > 0 && out.interstitial_completed() > 0);
        assert_eq!(out.obs.trace.recorded(), 0);
        assert_eq!(out.obs.trace.heap_allocations(), 0);
        assert!(!out.obs.is_active());
        assert!(out.obs.run_report().metrics.counters.is_empty());
    }

    #[test]
    fn observer_captures_full_event_stream() {
        use obs::{EventKind, Obs};
        let jobs = Arc::new(vec![
            native(1, 0, 64, 1000, 1000), // runs immediately
            native(2, 10, 64, 500, 500),  // blocked head, reserved at 1000
            native(3, 20, 16, 400, 400),  // backfill candidate
        ]);
        let run = || {
            SimBuilder::new(tiny_machine())
                .natives_arc(Arc::clone(&jobs))
                .horizon(SimTime::from_secs(30_000))
                .interstitial(
                    InterstitialProject::per_paper(100, 16, 100.0),
                    InterstitialMode::Continual,
                    InterstitialPolicy::default(),
                )
                .observer(Obs::enabled())
                .build()
                .run()
        };
        let out = run();
        let evs = out.obs.trace.events();
        let count = |f: &dyn Fn(&EventKind) -> bool| evs.iter().filter(|e| f(&e.kind)).count();
        assert_eq!(
            count(&|k| matches!(
                k,
                EventKind::Submit {
                    interstitial: false,
                    ..
                }
            )),
            3
        );
        assert_eq!(
            count(&|k| matches!(
                k,
                EventKind::Finish {
                    interstitial: false,
                    ..
                }
            )),
            3
        );
        assert!(
            count(&|k| matches!(
                k,
                EventKind::Start {
                    kind: StartKind::Interstitial,
                    ..
                }
            )) > 0
        );
        // Events arrive in nondecreasing time order with nondecreasing
        // cycle ids.
        for w in evs.windows(2) {
            assert!(w[0].t <= w[1].t);
            assert!(w[0].cycle <= w[1].cycle);
        }
        // Metrics agree with the output's own accounting.
        assert_eq!(out.obs.metrics.counter("jobs.finished.native"), 3);
        assert_eq!(
            out.obs.metrics.counter("jobs.started.interstitial"),
            out.interstitial_started
        );
        // Same seed, second run: byte-identical trace and metrics.
        let again = run();
        assert_eq!(out.obs.trace.to_jsonl(), again.obs.trace.to_jsonl());
        assert_eq!(
            out.obs.run_report().to_json_deterministic(),
            again.obs.run_report().to_json_deterministic()
        );
    }

    #[test]
    fn work_counters_populate_and_replay_bitwise() {
        use obs::Obs;
        let jobs = Arc::new(vec![
            native(1, 0, 64, 1000, 1000), // runs immediately
            native(2, 10, 64, 500, 500),  // blocked head, reserved at 1000
            native(3, 20, 16, 400, 400),  // backfill candidate
        ]);
        let run = || {
            SimBuilder::new(tiny_machine())
                .natives_arc(Arc::clone(&jobs))
                .horizon(SimTime::from_secs(30_000))
                .interstitial(
                    InterstitialProject::per_paper(100, 16, 100.0),
                    InterstitialMode::Continual,
                    InterstitialPolicy::default(),
                )
                .observer(Obs::counting())
                .build()
                .run()
        };
        let out = run();
        let w = out.obs.work;
        assert!(w.is_enabled());
        assert!(w.events_popped > 0);
        assert!(
            w.events_scheduled >= w.events_popped,
            "every pop was scheduled"
        );
        assert!(w.heap_peak_depth > 0);
        assert!(w.sched_cycles > 0);
        // The scheduler counters cover native starts only; interstitial
        // placement happens outside the queue planner.
        assert_eq!(w.inorder_starts + w.backfill_starts, 3);
        assert!(w.backfill_candidates_scanned >= w.sched_cycles.min(3));
        assert!(w.profile_segments_walked > 0);
        assert_eq!(w.requeues, 0, "fault-free run has no churn");
        assert_eq!(w.retries, 0);
        // The counting bundle stays out of the trace buffer entirely.
        assert_eq!(out.obs.trace.recorded(), 0);
        assert_eq!(out.obs.trace.heap_allocations(), 0);
        // Same seed, second run: bitwise-identical counters.
        let again = run();
        assert_eq!(w, again.obs.work);
        assert_eq!(w.to_json(), again.obs.work.to_json());
    }

    #[test]
    fn node_failure_kills_the_native_and_requeues_it_at_the_head() {
        use machine::{FaultModel, NodeFaults, OutageSchedule};
        // One node owns the whole 64-CPU machine and dies over [100, 200).
        // The running native is crashed at t=100, requeued, and restarts
        // the moment the node is repaired; its wait clock spans the outage.
        let faults = FaultModel::none().with_nodes(vec![NodeFaults {
            cpus: 64,
            schedule: OutageSchedule::from_windows(vec![(
                SimTime::from_secs(100),
                SimTime::from_secs(200),
            )]),
        }]);
        let out = SimBuilder::new(tiny_machine())
            .natives(vec![native(1, 0, 64, 500, 600)])
            .horizon(SimTime::from_secs(10_000))
            .faults(faults)
            .build()
            .run();
        let c = out.natives().next().unwrap();
        assert_eq!(c.start, SimTime::from_secs(200), "restarts at repair");
        assert_eq!(c.finish, SimTime::from_secs(700), "full rerun from scratch");
        assert_eq!(
            c.wait(),
            SimDuration::from_secs(200),
            "wait spans the failure"
        );
        assert_eq!(out.faults.node_failures, 1);
        assert_eq!(out.faults.node_repairs, 1);
        assert_eq!(out.faults.native_requeues, 1);
        assert_eq!(out.faults.total_kills(), 1);
        assert!(!out.faults.kills[0].interstitial);
        // 64 CPUs × 100 s of progress discarded.
        assert!((out.faults.fault_wasted_cpu_seconds - 6_400.0).abs() < 1e-9);
    }

    #[test]
    fn node_failure_sacrifices_interstitial_before_native() {
        use machine::{FaultModel, NodeFaults, OutageSchedule};
        // Native holds 32 CPUs [0,1000); two 16-CPU interstitial jobs fill
        // the rest. A 16-CPU node dies at t=50 with zero idle CPUs: the
        // youngest interstitial job is crashed, the native is untouched,
        // and the victim retries (from scratch) once capacity frees up.
        let faults = FaultModel::none().with_nodes(vec![NodeFaults {
            cpus: 16,
            schedule: OutageSchedule::from_windows(vec![(
                SimTime::from_secs(50),
                SimTime::from_secs(20_000),
            )]),
        }]);
        let out = SimBuilder::new(tiny_machine())
            .natives(vec![native(1, 0, 32, 1_000, 1_200)])
            .horizon(SimTime::from_secs(20_000))
            .faults(faults)
            .interstitial(
                InterstitialProject::per_paper(2, 16, 600.0),
                InterstitialMode::Continual,
                InterstitialPolicy::default(),
            )
            .build()
            .run();
        // The native never noticed the failure.
        let n = out.natives().next().unwrap();
        assert_eq!(n.start, SimTime::ZERO);
        assert_eq!(n.finish, SimTime::from_secs(1_000));
        assert_eq!(out.faults.total_kills(), 1);
        assert!(out.faults.kills[0].interstitial);
        assert_eq!(out.faults.native_requeues, 0);
        assert_eq!(out.faults.interstitial_retries, 1);
        // Both interstitial jobs still complete: the survivor finishes at
        // t=600, freeing the CPUs the victim (backoff expired at t=110)
        // restarts on — a fresh 600 s run ending at 1200.
        assert_eq!(out.interstitial_completed(), 2);
        let last = out.interstitials().map(|c| c.finish).max().unwrap();
        assert_eq!(last, SimTime::from_secs(1_200));
        assert!((out.faults.fault_wasted_cpu_seconds - 16.0 * 50.0).abs() < 1e-9);
    }

    #[test]
    fn retry_exhaustion_abandons_the_job() {
        use crate::policy::RetryPolicy;
        use machine::{FaultModel, NodeFaults, OutageSchedule};
        // A node covering the whole machine fails twice; a 2-attempt budget
        // means the second kill abandons the job for good.
        let faults = FaultModel::none().with_nodes(vec![NodeFaults {
            cpus: 64,
            schedule: OutageSchedule::from_windows(vec![
                (SimTime::from_secs(10), SimTime::from_secs(20)),
                (SimTime::from_secs(100), SimTime::from_secs(110)),
            ]),
        }]);
        let out = SimBuilder::new(tiny_machine())
            .natives(vec![])
            .horizon(SimTime::from_secs(5_000))
            .faults(faults)
            .retry(RetryPolicy {
                base_delay: SimDuration::from_secs(5),
                max_delay: SimDuration::from_secs(5),
                max_attempts: 2,
            })
            .interstitial(
                InterstitialProject::per_paper(1, 64, 1_000.0),
                InterstitialMode::Continual,
                InterstitialPolicy::default(),
            )
            .build()
            .run();
        assert_eq!(out.interstitial_started, 1);
        assert_eq!(out.interstitial_completed(), 0, "both runs were crashed");
        assert_eq!(out.faults.interstitial_retries, 1);
        assert_eq!(out.faults.interstitial_given_up, 1);
        assert_eq!(out.faults.total_kills(), 2);
    }

    #[test]
    fn fault_runs_are_deterministic_and_stamp_schema_v2() {
        use machine::{FaultModel, FaultSpec};
        use obs::Obs;
        let spec = FaultSpec::parse("mtbf=2000,mttr=300,nodes=8,seed=11").unwrap();
        let horizon = SimTime::from_secs(50_000);
        let jobs: Arc<Vec<Job>> = Arc::new(
            (0..40)
                .map(|i| native(i + 1, i * 300, 1 << (i % 6), 400 + i * 11, 600 + i * 11))
                .collect(),
        );
        let run = || {
            SimBuilder::new(tiny_machine())
                .natives_arc(Arc::clone(&jobs))
                .horizon(horizon)
                .faults(FaultModel::synthesize(&spec, 64, horizon))
                .interstitial(
                    InterstitialProject::per_paper(100_000, 8, 150.0),
                    InterstitialMode::Continual,
                    InterstitialPolicy::default(),
                )
                .observer(Obs::enabled())
                .build()
                .run()
        };
        let a = run();
        let b = run();
        assert!(a.faults.node_failures > 0, "spec should inject failures");
        assert_eq!(a.obs.trace.to_jsonl(), b.obs.trace.to_jsonl());
        assert_eq!(a.faults.native_requeues, b.faults.native_requeues);
        assert_eq!(a.faults.interstitial_retries, b.faults.interstitial_retries);
        assert_eq!(
            a.faults.interstitial_given_up,
            b.faults.interstitial_given_up
        );
        assert_eq!(a.faults.total_kills(), b.faults.total_kills());
        assert!(
            a.obs.trace.to_jsonl().starts_with("{\"schema\":2"),
            "fault events upgrade the header"
        );
        // Every native still completes, however battered the machine.
        assert_eq!(a.native_completed(), 40);
    }

    #[test]
    fn shared_native_log_is_not_copied_at_build() {
        let jobs = Arc::new(vec![native(1, 0, 8, 100, 100)]);
        let sim = SimBuilder::new(tiny_machine())
            .natives_arc(Arc::clone(&jobs))
            .horizon(SimTime::from_secs(1_000))
            .build();
        // No oversized jobs → the builder must reuse the shared allocation.
        assert_eq!(Arc::strong_count(&jobs), 2);
        drop(sim);
        // An oversized job forces (only then) a filtered private copy.
        let jobs = Arc::new(vec![native(1, 0, 8, 100, 100), native(2, 0, 10_000, 5, 5)]);
        let sim = SimBuilder::new(tiny_machine())
            .natives_arc(Arc::clone(&jobs))
            .horizon(SimTime::from_secs(1_000))
            .build();
        assert_eq!(Arc::strong_count(&jobs), 1);
        assert_eq!(sim.run().native_submitted, 1);
    }

    #[test]
    fn telemetry_samples_on_cadence_without_perturbing_the_run() {
        use obs::telemetry::{TelemetryBus, DRIVER_SIGNALS};
        let jobs: Arc<Vec<Job>> = Arc::new(
            (0..40)
                .map(|i| native(i + 1, i * 50, 1 << (i % 5), 100 + i * 7, 150 + i * 7))
                .collect(),
        );
        let run = |telemetry: bool| {
            let mut o = Obs::enabled();
            if telemetry {
                o.telemetry = TelemetryBus::enabled(120, DRIVER_SIGNALS);
            }
            SimBuilder::new(tiny_machine())
                .natives_arc(Arc::clone(&jobs))
                .horizon(SimTime::from_secs(50_000))
                .interstitial(
                    InterstitialProject::per_paper(10_000, 8, 120.0),
                    InterstitialMode::Continual,
                    InterstitialPolicy::default(),
                )
                .observer(o)
                .build()
                .run()
        };
        let plain = run(false);
        let sampled = run(true);
        // Telemetry is a pure observer: same completions, byte-identical
        // trace, identical deterministic work counters.
        assert_eq!(plain.completed.len(), sampled.completed.len());
        for (x, y) in plain.completed.iter().zip(sampled.completed.iter()) {
            assert_eq!((x.job.id, x.start, x.finish), (y.job.id, y.start, y.finish));
        }
        assert_eq!(plain.obs.trace.to_jsonl(), sampled.obs.trace.to_jsonl());
        assert_eq!(
            format!("{:?}", plain.obs.work),
            format!("{:?}", sampled.obs.work)
        );
        // The bus sampled the whole run on the cadence grid.
        let bus = &sampled.obs.telemetry;
        assert!(!bus.is_empty());
        assert_eq!(bus.ticks()[0], 0);
        assert!(bus
            .ticks()
            .iter()
            .all(|t| t % bus.effective_cadence_s() == 0));
        let util = bus.values("util_permille").unwrap();
        assert!(util.iter().all(|&u| u <= 1000));
        assert!(util.iter().any(|&u| u > 0), "machine was busy at some tick");
        let frag = bus.values("frag_permille").unwrap();
        assert!(frag.iter().all(|&f| f <= 1000));
        // Per-tick event deltas total the run's event count at the last
        // retained resolution (no decimation here: budget far above ticks).
        assert_eq!(bus.decimations(), 0);
        // Same seed, same config → byte-identical export.
        assert_eq!(bus.to_jsonl(), run(true).obs.telemetry.to_jsonl());
        // Plain bus stayed disabled and recorded nothing.
        assert!(plain.obs.telemetry.is_empty());
        assert_eq!(plain.obs.telemetry.to_jsonl(), "");
    }

    #[test]
    fn slo_watchdog_stamps_v4_breach_and_clear_events() {
        use obs::telemetry::{TelemetryBus, DRIVER_SIGNALS};
        // 64-CPU machine: job 2 queues behind job 1 from t=10 to t=1000,
        // so a 60 s cadence catches queue_depth > 0, breaching
        // `queue_depth<=0`; once job 2 starts the queue drains and the
        // rule clears.
        let jobs = Arc::new(vec![
            native(1, 0, 64, 1000, 1000),
            native(2, 10, 64, 500, 500),
        ]);
        let run = |slo: Option<&str>| {
            let mut o = Obs::enabled();
            o.telemetry = TelemetryBus::enabled(60, DRIVER_SIGNALS);
            let mut b = SimBuilder::new(tiny_machine())
                .natives_arc(Arc::clone(&jobs))
                .horizon(SimTime::from_secs(30_000))
                .observer(o);
            if let Some(s) = slo {
                b = b.slo(SloSpec::parse(s).unwrap());
            }
            b.build().run()
        };
        let out = run(Some("queue_depth<=0"));
        let evs = out.obs.trace.events();
        let breach = evs
            .iter()
            .find(|e| matches!(e.kind, EventKind::SloBreach { .. }))
            .expect("a breach fired");
        assert!(matches!(
            breach.kind,
            EventKind::SloBreach {
                rule: 0,
                metric: "queue_depth",
                limit: 0,
                ..
            }
        ));
        let clear = evs
            .iter()
            .find(|e| matches!(e.kind, EventKind::SloClear { .. }))
            .expect("the rule cleared after the queue drained");
        assert!(breach.t < clear.t);
        assert_eq!(out.obs.trace.schema_version(), 4, "SLO events stamp v4");
        // The bus carries matching annotations for the dashboard.
        let anns = out.obs.telemetry.annotations();
        assert!(anns
            .iter()
            .any(|a| a.kind == AnnotationKind::Breach && a.label == "queue_depth"));
        assert!(anns.iter().any(|a| a.kind == AnnotationKind::Clear));
        // Trace time stayed monotone with tick-stamped events interleaved.
        assert!(evs.windows(2).all(|w| w[0].t <= w[1].t));
        // Without --slo the same run stamps the smallest schema.
        let plain = run(None);
        assert_eq!(plain.obs.trace.schema_version(), 1);
        assert!(plain.obs.telemetry.annotations().is_empty());
    }
}
