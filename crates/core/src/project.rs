//! Interstitial projects.
//!
//! "We define an interstitial project as consisting of a fixed number of
//! identical jobs that in turn consist of a fixed number of CPUs and a fixed
//! run time" (§3). Runtimes are specified in **seconds at 1 GHz** and
//! normalized to each machine's clock, so a project represents the same
//! amount of *work* everywhere; project size is quoted in peta-cycles
//! (10¹⁵ clock ticks).

use machine::MachineConfig;
use simkit::time::SimDuration;

/// One peta-cycle = 10¹⁵ clock ticks (the paper's project-size unit).
pub const PETA: f64 = 1e15;

/// An interstitial project: `jobs × cpus_per_job × runtime@1GHz`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InterstitialProject {
    /// Number of identical jobs in the project.
    pub jobs: u64,
    /// CPUs per job (the paper sweeps 1–32).
    pub cpus_per_job: u32,
    /// Per-job runtime in seconds at 1 GHz (the paper uses 120 and 960).
    pub runtime_at_1ghz: f64,
}

impl InterstitialProject {
    /// Construct a project. `jobs` is given in plain units (the paper's
    /// tables quote kJobs; multiply by 1000 yourself or use
    /// [`InterstitialProject::from_kjobs`]).
    pub fn per_paper(jobs: u64, cpus_per_job: u32, runtime_at_1ghz: f64) -> Self {
        assert!(jobs > 0 && cpus_per_job > 0 && runtime_at_1ghz > 0.0);
        InterstitialProject {
            jobs,
            cpus_per_job,
            runtime_at_1ghz,
        }
    }

    /// Construct from the tables' kJobs unit.
    pub fn from_kjobs(kjobs: f64, cpus_per_job: u32, runtime_at_1ghz: f64) -> Self {
        Self::per_paper(
            (kjobs * 1000.0).round() as u64,
            cpus_per_job,
            runtime_at_1ghz,
        )
    }

    /// Total project size in cycles: `jobs × cpus × runtime@1GHz × 10⁹`.
    pub fn cycles(&self) -> f64 {
        self.jobs as f64 * self.cpus_per_job as f64 * self.runtime_at_1ghz * 1e9
    }

    /// Project size in peta-cycles, the tables' unit.
    pub fn peta_cycles(&self) -> f64 {
        self.cycles() / PETA
    }

    /// Per-job wallclock on `machine` (runtime normalized by clock speed).
    pub fn runtime_on(&self, machine: &MachineConfig) -> SimDuration {
        machine.normalize_runtime(self.runtime_at_1ghz)
    }

    /// The Table 2 project grid: {7.7, 30.1, 123} peta-cycles × {1, 32}
    /// CPUs/job, all with 120 s @1 GHz jobs, as `(label, project)` pairs.
    pub fn table2_grid() -> Vec<(&'static str, InterstitialProject)> {
        vec![
            ("7.7 Pc, 64k × 1cpu", Self::from_kjobs(64.0, 1, 120.0)),
            ("7.7 Pc, 2k × 32cpu", Self::from_kjobs(2.0, 32, 120.0)),
            ("30.1 Pc, 256k × 1cpu", Self::from_kjobs(256.0, 1, 120.0)),
            ("30.1 Pc, 8k × 32cpu", Self::from_kjobs(8.0, 32, 120.0)),
            ("123 Pc, 1024k × 1cpu", Self::from_kjobs(1024.0, 1, 120.0)),
            ("123 Pc, 32k × 32cpu", Self::from_kjobs(32.0, 32, 120.0)),
        ]
    }

    /// The Table 4 project grid (project size, kJobs, CPUs, runtime@1GHz).
    pub fn table4_grid() -> Vec<(&'static str, InterstitialProject)> {
        vec![
            (
                "7.7 Pc, 2k × 32cpu × 120s",
                Self::from_kjobs(2.0, 32, 120.0),
            ),
            (
                "7.7 Pc, 0.25k × 32cpu × 960s",
                Self::from_kjobs(0.25, 32, 960.0),
            ),
            ("7.7 Pc, 8k × 8cpu × 120s", Self::from_kjobs(8.0, 8, 120.0)),
            ("7.7 Pc, 1k × 8cpu × 960s", Self::from_kjobs(1.0, 8, 960.0)),
            (
                "123 Pc, 32k × 32cpu × 120s",
                Self::from_kjobs(32.0, 32, 120.0),
            ),
            (
                "123 Pc, 4k × 32cpu × 960s",
                Self::from_kjobs(4.0, 32, 960.0),
            ),
            (
                "123 Pc, 128k × 8cpu × 120s",
                Self::from_kjobs(128.0, 8, 120.0),
            ),
            (
                "123 Pc, 16k × 8cpu × 960s",
                Self::from_kjobs(16.0, 8, 960.0),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::config::{blue_mountain, blue_pacific, ross};

    #[test]
    fn peta_cycle_accounting_matches_table2() {
        // 64k jobs × 1 CPU × 120 s@1GHz = 7.68e15 ≈ the table's 7.7.
        let p = InterstitialProject::from_kjobs(64.0, 1, 120.0);
        assert!((p.peta_cycles() - 7.68).abs() < 0.01);
        // 2k × 32 × 120 is the same project size.
        let q = InterstitialProject::from_kjobs(2.0, 32, 120.0);
        assert!((q.peta_cycles() - p.peta_cycles()).abs() < 1e-9);
        // 1024k × 1 × 120 ≈ 123.
        let r = InterstitialProject::from_kjobs(1024.0, 1, 120.0);
        assert!((r.peta_cycles() - 122.88).abs() < 0.01);
    }

    #[test]
    fn table_grids_have_consistent_sizes() {
        let grid = InterstitialProject::table2_grid();
        assert_eq!(grid.len(), 6);
        // Pairs share project size.
        for pair in grid.chunks(2) {
            assert!((pair[0].1.peta_cycles() - pair[1].1.peta_cycles()).abs() < 0.01);
        }
        let t4 = InterstitialProject::table4_grid();
        assert_eq!(t4.len(), 8);
        for (label, p) in &t4[..4] {
            assert!((p.peta_cycles() - 7.68).abs() < 0.01, "{label}");
        }
        for (label, p) in &t4[4..] {
            assert!((p.peta_cycles() - 122.88).abs() < 0.01, "{label}");
        }
    }

    #[test]
    fn runtime_normalization_per_machine() {
        let p = InterstitialProject::per_paper(1000, 32, 120.0);
        assert_eq!(p.runtime_on(&blue_mountain()).as_secs(), 458);
        assert_eq!(p.runtime_on(&blue_pacific()).as_secs(), 325);
        assert_eq!(p.runtime_on(&ross()).as_secs(), 204);
    }

    #[test]
    fn from_kjobs_rounds() {
        assert_eq!(InterstitialProject::from_kjobs(0.25, 8, 960.0).jobs, 250);
        assert_eq!(InterstitialProject::from_kjobs(64.0, 1, 120.0).jobs, 64_000);
    }

    #[test]
    #[should_panic]
    fn zero_jobs_rejected() {
        InterstitialProject::per_paper(0, 1, 120.0);
    }
}
