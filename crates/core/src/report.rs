//! Simulation output.
//!
//! [`SimOutput`] is the analogue of "the job log returned from the
//! BIRMinator simulations": the machine description plus every completed
//! job's submit/start/finish record, split into native and interstitial
//! populations. The free-capacity profile built here feeds §4.1's
//! omniscient packing.

use machine::{FaultModel, FaultStats, MachineConfig};
use simkit::series::StepFunction;
use simkit::time::SimTime;
use workload::CompletedJob;

/// Everything a simulation run produces.
#[derive(Clone, Debug)]
pub struct SimOutput {
    /// The simulated machine.
    pub machine: MachineConfig,
    /// The native log horizon (end of the analyzed window).
    pub horizon: SimTime,
    /// Every job that completed, in finish order.
    pub completed: Vec<CompletedJob>,
    /// Distinct interstitial jobs started (equals completions under the
    /// paper's fault-free non-preemptive model; with preemption or node
    /// faults, killed-and-abandoned jobs make it an upper bound).
    pub interstitial_started: u64,
    /// Native jobs submitted into the simulation.
    pub native_submitted: u64,
    /// Interstitial jobs killed by preemption (extension; always 0 under
    /// the paper's non-preemptive model).
    pub interstitial_killed: u64,
    /// CPU·seconds of interstitial work discarded by kill-preemption,
    /// clipped to the log window.
    pub wasted_cpu_seconds: f64,
    /// Instant the last event was processed.
    pub sim_end: SimTime,
    /// The fault model the run was driven by ([`FaultModel::none`] unless
    /// configured via [`crate::driver::SimBuilder::faults`]).
    pub fault_model: FaultModel,
    /// Fault/recovery accounting: node boundaries processed, jobs killed,
    /// requeues/retries/give-ups and the CPU·seconds they wasted.
    pub faults: FaultStats,
    /// The observability bundle that rode along (disabled and empty unless
    /// the run was built with [`crate::driver::SimBuilder::observer`]).
    pub obs: obs::Obs,
}

impl SimOutput {
    /// Completed native jobs.
    pub fn natives(&self) -> impl Iterator<Item = &CompletedJob> {
        self.completed
            .iter()
            .filter(|c| !c.job.class.is_interstitial())
    }

    /// Completed interstitial jobs.
    pub fn interstitials(&self) -> impl Iterator<Item = &CompletedJob> {
        self.completed
            .iter()
            .filter(|c| c.job.class.is_interstitial())
    }

    /// Completed interstitial jobs of one stream (multi-project runs tag
    /// each interstitial job's `user` field with its stream index).
    pub fn interstitials_of_stream(&self, stream: u32) -> impl Iterator<Item = &CompletedJob> {
        self.interstitials().filter(move |c| c.job.user == stream)
    }

    /// Number of completed native jobs.
    pub fn native_completed(&self) -> u64 {
        self.natives().count() as u64
    }

    /// Number of completed interstitial jobs.
    pub fn interstitial_completed(&self) -> u64 {
        self.interstitials().count() as u64
    }

    /// Native jobs that *finished within the log window* — the paper's
    /// throughput comparison ("the number of native jobs making it through
    /// in the same time as the original total native job makespan").
    pub fn native_throughput_in_window(&self) -> u64 {
        self.natives().filter(|c| c.finish <= self.horizon).count() as u64
    }

    /// Machine utilization over `[0, horizon)` by the given job classes:
    /// busy CPU·seconds (clipped to the window) over `N × horizon`.
    pub fn utilization_by(&self, include_native: bool, include_interstitial: bool) -> f64 {
        let t_end = self.horizon;
        let mut busy = 0.0;
        for c in &self.completed {
            let inter = c.job.class.is_interstitial();
            if (inter && !include_interstitial) || (!inter && !include_native) {
                continue;
            }
            let lo = c.start.min(t_end);
            let hi = c.finish.min(t_end);
            // A checkpointed job's record spans its suspensions; the CPUs
            // were only busy for the job's actual runtime.
            let span = (hi - lo).as_secs_f64().min(c.job.runtime.as_secs_f64());
            busy += c.job.cpus as f64 * span;
        }
        busy / (self.machine.cpus as f64 * t_end.as_secs() as f64)
    }

    /// Overall utilization (native + interstitial) over the log window.
    pub fn overall_utilization(&self) -> f64 {
        self.utilization_by(true, true)
    }

    /// Native-only utilization over the log window.
    pub fn native_utilization(&self) -> f64 {
        self.utilization_by(true, false)
    }

    /// Fraction of the machine-window spent on interstitial work that was
    /// later killed (waste). [`SimOutput::overall_utilization`] counts only
    /// completed work; busy-machine fraction = overall + wasted.
    pub fn wasted_utilization(&self) -> f64 {
        self.wasted_cpu_seconds / (self.machine.cpus as f64 * self.horizon.as_secs() as f64)
    }

    /// Free-capacity step function over `[0, extend × horizon)` from the
    /// *native* jobs' realized schedules. Beyond the log end the native busy
    /// pattern is tiled periodically — a steady-state continuation so
    /// omniscient projects whose makespan exceeds the remaining log (e.g.
    /// Blue Pacific's 1000-hour projects in a 1500-hour log) keep packing
    /// against a realistic load instead of an artificially empty machine.
    pub fn native_free_profile(&self, extend: u32) -> StepFunction {
        let extend = extend.max(1);
        let span = self.horizon.as_secs();
        let full = SimTime::from_secs(span * extend as u64);
        let mut f = StepFunction::constant(full, i64::from(self.machine.cpus));
        for c in self.natives() {
            let cpus = i64::from(c.job.cpus);
            for k in 0..extend as u64 {
                let off = k * span;
                // Clip each tiled copy to the tile so the pattern repeats
                // exactly (a job spanning the log end is truncated, matching
                // how utilization statistics clip).
                let lo = (c.start.as_secs().min(span) + off).min(full.as_secs());
                let hi = (c.finish.as_secs().min(span) + off).min(full.as_secs());
                if hi > lo {
                    f.range_add(SimTime::from_secs(lo), SimTime::from_secs(hi), -cpus);
                }
            }
        }
        f.coalesce();
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::config::ross;
    use simkit::time::SimDuration;
    use workload::{Job, JobClass};

    fn completed(class: JobClass, cpus: u32, submit: u64, start: u64, run: u64) -> CompletedJob {
        CompletedJob::new(
            Job {
                id: submit + start, // unique enough for tests
                class,
                user: 0,
                group: 0,
                submit: SimTime::from_secs(submit),
                cpus,
                runtime: SimDuration::from_secs(run),
                estimate: SimDuration::from_secs(run),
            },
            SimTime::from_secs(start),
        )
    }

    fn tiny_output() -> SimOutput {
        let mut m = ross();
        m.cpus = 10;
        SimOutput {
            machine: m,
            horizon: SimTime::from_secs(1_000),
            completed: vec![
                completed(JobClass::Native, 4, 0, 0, 500),
                completed(JobClass::Native, 2, 100, 500, 500),
                completed(JobClass::Interstitial, 3, 200, 200, 100),
            ],
            interstitial_started: 1,
            native_submitted: 2,
            interstitial_killed: 0,
            wasted_cpu_seconds: 0.0,
            sim_end: SimTime::from_secs(1_000),
            fault_model: FaultModel::none(),
            faults: FaultStats::default(),
            obs: obs::Obs::disabled(),
        }
    }

    #[test]
    fn class_split_counts() {
        let o = tiny_output();
        assert_eq!(o.native_completed(), 2);
        assert_eq!(o.interstitial_completed(), 1);
        assert_eq!(o.native_throughput_in_window(), 2);
    }

    #[test]
    fn utilization_accounting() {
        let o = tiny_output();
        // Native busy: 4×500 + 2×500 = 3000 cpu·s over 10×1000.
        assert!((o.native_utilization() - 0.3).abs() < 1e-12);
        // Interstitial adds 3×100.
        assert!((o.overall_utilization() - 0.33).abs() < 1e-12);
        assert!((o.utilization_by(false, true) - 0.03).abs() < 1e-12);
    }

    #[test]
    fn utilization_clips_to_window() {
        let mut o = tiny_output();
        // A native job running past the horizon only counts the in-window
        // part.
        o.completed
            .push(completed(JobClass::Native, 10, 900, 900, 10_000));
        let with_overhang = o.native_utilization();
        // Extra busy: 10 × 100 (clipped) = 1000 cpu·s → +0.1.
        assert!((with_overhang - 0.4).abs() < 1e-12);
    }

    #[test]
    fn free_profile_subtracts_native_only() {
        let o = tiny_output();
        let f = o.native_free_profile(1);
        // [0,500): 10−4 = 6 (interstitial not subtracted).
        assert_eq!(f.value_at(SimTime::from_secs(250)), 6);
        // [500,1000): 10−2 = 8.
        assert_eq!(f.value_at(SimTime::from_secs(750)), 8);
    }

    #[test]
    fn free_profile_tiles_periodically() {
        let o = tiny_output();
        let f = o.native_free_profile(3);
        assert_eq!(f.horizon(), SimTime::from_secs(3_000));
        for k in 0..3u64 {
            assert_eq!(
                f.value_at(SimTime::from_secs(k * 1000 + 250)),
                6,
                "tile {k}"
            );
            assert_eq!(f.value_at(SimTime::from_secs(k * 1000 + 750)), 8);
        }
    }

    #[test]
    fn free_profile_truncates_overhanging_jobs_per_tile() {
        let mut o = tiny_output();
        o.completed
            .push(completed(JobClass::Native, 1, 900, 900, 10_000));
        let f = o.native_free_profile(2);
        // In each tile, the overhanging job occupies only [900, 1000),
        // alongside the 2-CPU job: 10 − 2 − 1 = 7.
        assert_eq!(f.value_at(SimTime::from_secs(950)), 7);
        assert_eq!(f.value_at(SimTime::from_secs(1950)), 7);
        assert_eq!(f.value_at(SimTime::from_secs(1050)), 6); // tile 1 repeats tile 0's [0,500) pattern
    }
}
