//! Replication harness.
//!
//! The paper's numbers are averages over repeated drops of a project into
//! the job stream "at random times" (Table 2: 20 runs; Table 4/Figure 3:
//! 500 window samples from a continual run). This module provides:
//!
//! * [`native_baseline`] — the native-only replay a machine's other numbers
//!   hang off.
//! * [`omniscient_makespans`] — §4.1: pack the project into the baseline's
//!   free profile at random start times.
//! * [`window_makespans`] — §4.3.1's shortcut: run *one* continual
//!   interstitial simulation, then for a random `t₁` find the `t₂` at which
//!   `N` more interstitial jobs have completed; the makespan is `t₂ − t₁`.
//! * [`parallel_map`] — scoped-thread fan-out used to run replications on
//!   all cores (determinism is preserved because every replication derives
//!   its randomness from its own index).

use crate::driver::SimBuilder;
use crate::omniscient;
use crate::policy::{InterstitialMode, InterstitialPolicy};
use crate::project::InterstitialProject;
use crate::report::SimOutput;
use machine::MachineConfig;
use simkit::rng::Rng;
use simkit::stats::OnlineStats;
use simkit::time::SimTime;
use workload::traces;

/// Run items through `f` on all available cores, preserving order.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    if n_threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut slots: Vec<Option<R>> = items.iter().map(|_| None).collect();
    let jobs: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let queue = std::sync::Mutex::new(jobs);
    let slots_ref = std::sync::Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|| loop {
                let item = queue.lock().expect("queue poisoned").pop();
                match item {
                    Some((i, t)) => {
                        let r = f(t);
                        slots_ref.lock().expect("slots poisoned")[i] = Some(r);
                    }
                    None => break,
                }
            });
        }
    });
    slots.into_iter().map(|s| s.expect("slot filled")).collect()
}

/// Simulate the machine's native log with no interstitial jobs.
pub fn native_baseline(machine: &MachineConfig, trace_seed: u64) -> SimOutput {
    let natives = traces::native_trace(machine, trace_seed);
    SimBuilder::new(machine.clone())
        .natives(natives)
        .build()
        .run()
}

/// §4.1: omniscient makespans (hours) of `project` dropped at `reps` random
/// start times within the baseline's log. `None` entries are drops that
/// could not finish within `extend × log` (the paper's "n/a, makespan ≥ log
/// time"). Runs replications in parallel.
pub fn omniscient_makespans(
    baseline: &SimOutput,
    project: &InterstitialProject,
    reps: u32,
    seed: u64,
    extend: u32,
) -> Vec<Option<f64>> {
    let profile = baseline.native_free_profile(extend);
    let horizon = baseline.horizon.as_secs();
    let machine = baseline.machine.clone();
    let starts: Vec<SimTime> = {
        let mut rng = Rng::new(seed);
        (0..reps)
            .map(|_| SimTime::from_secs(rng.below(horizon)))
            .collect()
    };
    parallel_map(starts, |start| {
        omniscient::pack(profile.clone(), project, &machine, start).map(|r| r.makespan().as_hours())
    })
}

/// Run a continual interstitial simulation over the machine's native log.
pub fn continual_run(
    machine: &MachineConfig,
    trace_seed: u64,
    project: &InterstitialProject,
    policy: InterstitialPolicy,
) -> SimOutput {
    let natives = traces::native_trace(machine, trace_seed);
    SimBuilder::new(machine.clone())
        .natives(natives)
        .interstitial(*project, InterstitialMode::Continual, policy)
        .build()
        .run()
}

/// §4.3.1's window extraction: sample `samples` random start instants and
/// read off the makespan of an `n_jobs`-job project from the continual
/// run's interstitial completion log. `None` where fewer than `n_jobs`
/// completions remain after the start ("makespan ≥ log time").
pub fn window_makespans(
    continual: &SimOutput,
    n_jobs: u64,
    samples: u32,
    seed: u64,
) -> Vec<Option<f64>> {
    let finishes: Vec<SimTime> = {
        let mut f: Vec<SimTime> = continual.interstitials().map(|c| c.finish).collect();
        f.sort_unstable();
        f
    };
    let mut rng = Rng::new(seed);
    let horizon = continual.horizon.as_secs();
    (0..samples)
        .map(|_| {
            let t1 = SimTime::from_secs(rng.below(horizon));
            let idx = finishes.partition_point(|&f| f <= t1);
            let need = idx + n_jobs as usize - 1;
            finishes.get(need).map(|&t2| (t2 - t1).as_hours())
        })
        .collect()
}

/// Mean ± sample standard deviation over the successful replications, with
/// the failure count ("n/a" drops).
#[derive(Clone, Debug)]
pub struct ReplicationSummary {
    /// Statistics over the successful makespans (hours).
    pub stats: OnlineStats,
    /// Replications that could not finish within the observation window.
    pub failed: u32,
}

impl ReplicationSummary {
    /// Summarize a replication vector.
    pub fn from(makespans: &[Option<f64>]) -> Self {
        let mut stats = OnlineStats::new();
        let mut failed = 0;
        for m in makespans {
            match m {
                Some(v) => stats.push(*v),
                None => failed += 1,
            }
        }
        ReplicationSummary { stats, failed }
    }

    /// `mean ± std` formatted like the paper's tables (hours).
    pub fn formatted(&self) -> String {
        if self.stats.count() == 0 {
            return "n/a*".to_string();
        }
        format!("{:.1} ± {:.1}", self.stats.mean(), self.stats.std_dev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::config::ross;
    use simkit::time::SimDuration;
    use workload::{CompletedJob, Job, JobClass};

    #[test]
    fn parallel_map_preserves_order_and_values() {
        let out = parallel_map((0..1000u64).collect(), |x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
        // Empty and singleton inputs.
        assert!(parallel_map(Vec::<u64>::new(), |x| x).is_empty());
        assert_eq!(parallel_map(vec![7], |x| x + 1), vec![8]);
    }

    fn synthetic_continual(horizon_s: u64, jobs: u64, gap: u64) -> SimOutput {
        // Interstitial completions at gap, 2·gap, … for window tests.
        let mut m = ross();
        m.cpus = 10;
        let completed: Vec<CompletedJob> = (0..jobs)
            .map(|i| {
                let start = SimTime::from_secs(i * gap);
                CompletedJob::new(
                    Job {
                        id: i,
                        class: JobClass::Interstitial,
                        user: 0,
                        group: 0,
                        submit: start,
                        cpus: 1,
                        runtime: SimDuration::from_secs(gap),
                        estimate: SimDuration::from_secs(gap),
                    },
                    start,
                )
            })
            .collect();
        SimOutput {
            machine: m,
            horizon: SimTime::from_secs(horizon_s),
            completed,
            interstitial_started: jobs,
            native_submitted: 0,
            interstitial_killed: 0,
            wasted_cpu_seconds: 0.0,
            sim_end: SimTime::from_secs(horizon_s),
            fault_model: machine::FaultModel::none(),
            faults: machine::FaultStats::default(),
            obs: obs::Obs::disabled(),
        }
    }

    #[test]
    fn window_makespans_read_off_completions() {
        // Completions at 100, 200, …, 10_000 (100 jobs).
        let out = synthetic_continual(10_000, 100, 100);
        let ms = window_makespans(&out, 5, 200, 1);
        for m in ms.iter().flatten() {
            // A 5-job window spans (4, 5] completion gaps = (400, 500] s.
            let secs = m * 3600.0;
            assert!(secs > 400.0 - 1e-6 && secs <= 500.0 + 1e-6, "got {secs}");
        }
        // Starts near the log end must fail (not enough completions left).
        let fails = ms.iter().filter(|m| m.is_none()).count();
        assert!(fails > 0, "some windows must run off the log");
    }

    #[test]
    fn window_makespans_all_fail_when_project_exceeds_log() {
        let out = synthetic_continual(10_000, 100, 100);
        let ms = window_makespans(&out, 1_000, 50, 2);
        assert!(ms.iter().all(|m| m.is_none()));
        let s = ReplicationSummary::from(&ms);
        assert_eq!(s.failed, 50);
        assert_eq!(s.formatted(), "n/a*");
    }

    #[test]
    fn replication_summary_statistics() {
        let ms = vec![Some(10.0), Some(14.0), None, Some(12.0)];
        let s = ReplicationSummary::from(&ms);
        assert_eq!(s.failed, 1);
        assert_eq!(s.stats.count(), 3);
        assert!((s.stats.mean() - 12.0).abs() < 1e-12);
        assert!(s.formatted().starts_with("12.0 ±"));
    }

    #[test]
    fn omniscient_makespans_on_a_small_machine() {
        // Tiny native-only baseline: machine 16 CPUs over 2000 s with one
        // 8-CPU native job on [0, 1000).
        let mut m = ross();
        m.cpus = 16;
        m.clock_ghz = 1.0;
        let native = Job {
            id: 1,
            class: JobClass::Native,
            user: 0,
            group: 0,
            submit: SimTime::ZERO,
            cpus: 8,
            runtime: SimDuration::from_secs(1000),
            estimate: SimDuration::from_secs(1000),
        };
        let baseline = SimBuilder::new(m)
            .natives(vec![native])
            .horizon(SimTime::from_secs(2000))
            .build()
            .run();
        let project = InterstitialProject::per_paper(4, 8, 100.0);
        let ms = omniscient_makespans(&baseline, &project, 16, 3, 4);
        assert_eq!(ms.len(), 16);
        // Every drop fits somewhere in the (tiled) 8000-second profile.
        let ok = ms.iter().flatten().count();
        assert!(ok > 0);
        for m in ms.iter().flatten() {
            // 4 × 8-CPU jobs: 1–2 waves of 100 s depending on the start →
            // makespan between 100 s and, worst case, a dip-crossing ~1200 s.
            let secs = m * 3600.0;
            assert!((100.0 - 1e-6..=1300.0).contains(&secs), "{secs}");
        }
    }

    #[test]
    fn determinism_of_replication_seeds() {
        let out = synthetic_continual(10_000, 100, 100);
        let a = window_makespans(&out, 5, 100, 9);
        let b = window_makespans(&out, 5, 100, 9);
        assert_eq!(a, b);
    }
}
