//! Omniscient interstitial packing (§4.1).
//!
//! Table 2 assumes "the interstitial jobs are submitted with omniscience
//! about when the native jobs will be run and when they will finish", so
//! that "all native jobs run exactly in the same order and time as they did
//! without interstitial jobs". That is equivalent to *packing* the project
//! into the free-capacity profile of a native-only run: interstitial jobs
//! may occupy only CPUs the realized native schedule provably leaves idle
//! for their whole duration.
//!
//! Jobs in a project are identical, so packing proceeds in batches: find the
//! earliest instant where at least one job fits, start as many as the
//! window's minimum free capacity allows, subtract them from the profile,
//! repeat.

use crate::project::InterstitialProject;
use machine::MachineConfig;
use simkit::series::StepFunction;
use simkit::time::{SimDuration, SimTime};

/// Result of packing a project.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PackResult {
    /// Instant the project was dropped in.
    pub start: SimTime,
    /// Instant the last job finished.
    pub finish: SimTime,
    /// Number of distinct start batches used.
    pub batches: u64,
}

impl PackResult {
    /// Project makespan (finish − start).
    pub fn makespan(&self) -> SimDuration {
        self.finish - self.start
    }
}

/// Pack `project` into `free` (a native free-capacity profile, typically
/// from [`crate::report::SimOutput::native_free_profile`]) starting at
/// `start`. Returns `None` if the project cannot finish within the
/// profile's horizon — the paper's "makespan ≥ log time" case.
///
/// The profile is consumed by value; pass a clone to keep the original.
pub fn pack(
    mut free: StepFunction,
    project: &InterstitialProject,
    machine: &MachineConfig,
    start: SimTime,
) -> Option<PackResult> {
    let size = i64::from(project.cpus_per_job);
    let dur = project.runtime_on(machine);
    assert!(
        !dur.is_zero(),
        "interstitial jobs must have positive length"
    );
    let mut remaining = project.jobs;
    let mut cursor = start;
    let mut batches = 0u64;
    let mut last_finish = start;

    while remaining > 0 {
        let slot = free.find_slot(cursor, size, dur)?;
        let min_free = free
            .min_over(slot, slot + dur)
            .expect("found slot implies non-empty window");
        debug_assert!(min_free >= size);
        let fit = (min_free / size) as u64;
        let n = fit.min(remaining);
        free.range_add(slot, slot + dur, -(n as i64 * size));
        remaining -= n;
        batches += 1;
        last_finish = last_finish.max(slot + dur);
        // No further job fits at `slot` (we took the window max), so the
        // next opportunity is strictly later: either more native capacity
        // or this batch's own completion at slot + dur.
        cursor = slot + SimDuration::from_secs(1);
    }
    Some(PackResult {
        start,
        finish: last_finish,
        batches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::config::ross;

    fn machine_1ghz(cpus: u32) -> MachineConfig {
        let mut m = ross();
        m.cpus = cpus;
        m.clock_ghz = 1.0;
        m
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn packs_empty_machine_in_waves() {
        let m = machine_1ghz(100);
        let free = StepFunction::constant(t(100_000), 100);
        // 25 jobs × 10 CPUs × 100 s: 10 fit at once → 3 waves (10, 10, 5).
        let p = InterstitialProject::per_paper(25, 10, 100.0);
        let r = pack(free, &p, &m, t(0)).unwrap();
        assert_eq!(r.batches, 3);
        assert_eq!(r.finish, t(300));
        assert_eq!(r.makespan(), SimDuration::from_secs(300));
    }

    #[test]
    fn respects_native_busy_periods() {
        let m = machine_1ghz(100);
        let mut free = StepFunction::constant(t(100_000), 100);
        // Natives hold 95 CPUs during [0, 1000): only one 10-CPU job-slot
        // worth of space... 5 CPUs < 10, so nothing fits until t=1000.
        free.range_add(t(0), t(1000), -95);
        let p = InterstitialProject::per_paper(10, 10, 100.0);
        let r = pack(free, &p, &m, t(0)).unwrap();
        assert_eq!(r.finish, t(1100), "all ten fit in one wave at t=1000");
        assert_eq!(r.batches, 1);
    }

    #[test]
    fn straddles_capacity_dips() {
        let m = machine_1ghz(50);
        let mut free = StepFunction::constant(t(10_000), 50);
        // A dip to 5 free CPUs on [100, 200): a 10-CPU 150-second job
        // started at t=0 would overlap it, so the first feasible start for
        // full occupancy is t=200; but 0 jobs fit in [0,150)? min over
        // [0,150) = 5 → no. Packing must find t=200.
        free.range_add(t(100), t(200), -45);
        let p = InterstitialProject::per_paper(5, 10, 150.0);
        let r = pack(free, &p, &m, t(0)).unwrap();
        assert_eq!(r.finish, t(350));
        assert_eq!(r.batches, 1);
    }

    #[test]
    fn project_start_offsets_packing() {
        let m = machine_1ghz(10);
        let free = StepFunction::constant(t(10_000), 10);
        let p = InterstitialProject::per_paper(1, 10, 100.0);
        let r = pack(free, &p, &m, t(500)).unwrap();
        assert_eq!(r.start, t(500));
        assert_eq!(r.finish, t(600));
    }

    #[test]
    fn too_large_project_returns_none() {
        let m = machine_1ghz(10);
        let free = StepFunction::constant(t(1_000), 10);
        // 100 × 10-CPU × 100 s needs 100 sequential waves = 10 000 s —
        // far past the 1 000 s horizon.
        let p = InterstitialProject::per_paper(100, 10, 100.0);
        assert!(pack(free.clone(), &p, &m, t(0)).is_none());
        // 10 jobs exactly fit from t=0 but not from t=500.
        let p10 = InterstitialProject::per_paper(10, 10, 100.0);
        assert!(pack(free.clone(), &p10, &m, t(500)).is_none());
        let r = pack(free, &p10, &m, t(0)).unwrap();
        assert_eq!(r.finish, t(1_000));
    }

    #[test]
    fn job_wider_than_free_capacity_is_unplaceable() {
        let m = machine_1ghz(10);
        let mut free = StepFunction::constant(t(1_000), 10);
        free.range_add(t(0), t(1_000), -5); // only 5 ever free
        let p = InterstitialProject::per_paper(1, 8, 10.0);
        assert!(pack(free, &p, &m, t(0)).is_none());
    }

    #[test]
    fn normalizes_runtime_by_clock() {
        let mut m = machine_1ghz(10);
        m.clock_ghz = 0.5; // 100 s @1 GHz → 200 s here
        let free = StepFunction::constant(t(10_000), 10);
        let p = InterstitialProject::per_paper(1, 10, 100.0);
        let r = pack(free, &p, &m, t(0)).unwrap();
        assert_eq!(r.finish, t(200));
    }

    #[test]
    fn breakage_wastes_fractional_slots() {
        let m = machine_1ghz(90);
        let free = StepFunction::constant(t(100_000), 90);
        // 32-CPU jobs: only 2 fit in 90 CPUs (breakage: 26 CPUs wasted).
        let p = InterstitialProject::per_paper(6, 32, 100.0);
        let r = pack(free, &p, &m, t(0)).unwrap();
        // Waves of 2 → 3 waves → 300 s.
        assert_eq!(r.finish, t(300));
        // The same work as 1-CPU jobs (192 jobs) packs with no breakage:
        // 90 per wave → 3 waves of 90+90+12... still 300 s; use a finer
        // comparison: 180 one-CPU jobs fit in 2 waves.
        let p1 = InterstitialProject::per_paper(180, 1, 100.0);
        let r1 = pack(StepFunction::constant(t(100_000), 90), &p1, &m, t(0)).unwrap();
        assert_eq!(r1.finish, t(200));
    }
}
