//! Interstitial submission knobs.

use simkit::time::{SimDuration, SimTime};

/// When interstitial jobs flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InterstitialMode {
    /// Submit continuously from time zero until the end of the native log —
    /// §4.3.2's "continual interstitial computing". The project's `jobs`
    /// field is an upper bound (set it high for unlimited).
    Continual,
    /// A single project dropped into the job stream at `start`; exactly
    /// `project.jobs` jobs are submitted, then the stream stops (§4.1/§4.3.1
    /// "short-term projects").
    Project {
        /// Instant the project enters the system.
        start: SimTime,
    },
}

/// What happens to running interstitial jobs when a native job needs their
/// CPUs — the paper's "breakage in time" extension point ("there is also a
/// 'breakage in time' because there is no checkpoint/restart for the
/// jobs", §4.2). The paper simulates only [`Preemption::None`]; the other
/// two variants quantify what checkpoint/restart would have bought.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Preemption {
    /// Non-preemptive (the paper's model): once started, an interstitial
    /// job runs to completion even if a native job is waiting.
    #[default]
    None,
    /// Kill interstitial jobs when the native queue head needs their CPUs;
    /// the partial work is lost (counted as waste).
    Kill,
    /// Checkpoint interstitial jobs when preempted and resume them later
    /// from where they stopped (idealized: zero checkpoint overhead).
    Checkpoint,
}

/// How aggressively interstitial jobs are submitted.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InterstitialPolicy {
    /// §4.3.2.2: submit only while the *resulting* machine utilization
    /// (native + interstitial) stays below this fraction. `None` = no cap
    /// (maximal interstitial computing).
    pub utilization_cap: Option<f64>,
    /// Require `backFillWallTime > now + runtime` strictly (Figure 1). When
    /// false, equality is allowed; kept as a knob for the sensitivity
    /// ablation.
    pub strict_backfill_guard: bool,
    /// Breakage-in-time handling (extension; the paper uses `None`).
    pub preemption: Preemption,
}

impl Default for InterstitialPolicy {
    fn default() -> Self {
        InterstitialPolicy {
            utilization_cap: None,
            strict_backfill_guard: true,
            preemption: Preemption::None,
        }
    }
}

impl InterstitialPolicy {
    /// The §4.3.2.2 capped policy.
    pub fn capped(cap: f64) -> Self {
        assert!((0.0..=1.0).contains(&cap));
        InterstitialPolicy {
            utilization_cap: Some(cap),
            ..Self::default()
        }
    }

    /// A preempting policy (extension — see [`Preemption`]).
    pub fn preempting(preemption: Preemption) -> Self {
        InterstitialPolicy {
            preemption,
            ..Self::default()
        }
    }

    /// Maximum interstitial jobs of `cpus_per_job` CPUs that may start right
    /// now without lifting utilization to or past the cap, given `in_use`
    /// busy CPUs out of `total`.
    pub fn cap_allowance(&self, in_use: u32, total: u32, cpus_per_job: u32) -> u64 {
        match self.utilization_cap {
            None => u64::MAX,
            Some(cap) => {
                let budget = cap * total as f64 - in_use as f64;
                if budget <= 0.0 {
                    0
                } else {
                    (budget / cpus_per_job as f64).floor() as u64
                }
            }
        }
    }
}

/// Retry handling for interstitial jobs killed by node failures.
///
/// Fault victims are retried with capped exponential backoff: attempt `k`
/// (1-based) is released `min(base_delay × 2^(k−1), max_delay)` after the
/// kill, until `max_attempts` kills exhaust the budget and the job is
/// abandoned. The schedule is a pure function of the policy — no random
/// jitter — so identical seeds replay identical retry timelines
/// (Dubenskaya & Polyakov's cheap-retry premise for background streams).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base_delay: SimDuration,
    /// Ceiling on the backoff growth.
    pub max_delay: SimDuration,
    /// Fault kills a job may absorb before it is abandoned.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_delay: SimDuration::from_secs(60),
            max_delay: SimDuration::from_secs(3600),
            max_attempts: 5,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry `attempt` (1-based): capped exponential,
    /// saturating rather than overflowing for absurd attempt counts.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let base = self.base_delay.as_secs().max(1);
        let factor = 1u64
            .checked_shl(attempt.saturating_sub(1))
            .unwrap_or(u64::MAX);
        let delay = base.saturating_mul(factor);
        SimDuration::from_secs(delay.min(self.max_delay.as_secs().max(base)))
    }

    /// True when a job killed `attempts` times should be abandoned instead
    /// of retried.
    pub fn gives_up_after(&self, attempts: u32) -> bool {
        attempts >= self.max_attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_uncapped() {
        let p = InterstitialPolicy::default();
        assert_eq!(p.utilization_cap, None);
        assert_eq!(p.cap_allowance(0, 100, 32), u64::MAX);
    }

    #[test]
    fn cap_allowance_counts_jobs() {
        let p = InterstitialPolicy::capped(0.9);
        // Budget: 0.9·1000 − 800 = 100 CPUs → 3 × 32-CPU jobs.
        assert_eq!(p.cap_allowance(800, 1000, 32), 3);
        // Exactly at cap → zero.
        assert_eq!(p.cap_allowance(900, 1000, 32), 0);
        // Above cap → zero (not underflow).
        assert_eq!(p.cap_allowance(950, 1000, 32), 0);
        // 1-CPU jobs use the budget fully.
        assert_eq!(p.cap_allowance(800, 1000, 1), 100);
    }

    #[test]
    #[should_panic]
    fn cap_must_be_a_fraction() {
        InterstitialPolicy::capped(1.5);
    }

    #[test]
    fn preemption_defaults_to_paper_model() {
        assert_eq!(InterstitialPolicy::default().preemption, Preemption::None);
        let p = InterstitialPolicy::preempting(Preemption::Checkpoint);
        assert_eq!(p.preemption, Preemption::Checkpoint);
        assert_eq!(p.utilization_cap, None, "other knobs keep defaults");
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let r = RetryPolicy {
            base_delay: SimDuration::from_secs(30),
            max_delay: SimDuration::from_secs(200),
            max_attempts: 4,
        };
        assert_eq!(r.backoff(1), SimDuration::from_secs(30));
        assert_eq!(r.backoff(2), SimDuration::from_secs(60));
        assert_eq!(r.backoff(3), SimDuration::from_secs(120));
        assert_eq!(r.backoff(4), SimDuration::from_secs(200), "capped");
        assert_eq!(r.backoff(100), SimDuration::from_secs(200), "no overflow");
        assert!(!r.gives_up_after(3));
        assert!(r.gives_up_after(4));
        assert!(r.gives_up_after(5));
    }

    #[test]
    fn backoff_is_a_pure_function() {
        // No hidden state: every call with the same attempt yields the same
        // delay, across policy copies.
        let r = RetryPolicy::default();
        let s = r;
        for attempt in 1..50 {
            assert_eq!(r.backoff(attempt), s.backoff(attempt));
        }
        // Monotone non-decreasing up to the cap.
        for attempt in 1..49 {
            assert!(r.backoff(attempt + 1) >= r.backoff(attempt));
        }
    }

    #[test]
    fn degenerate_backoff_stays_positive() {
        let r = RetryPolicy {
            base_delay: SimDuration::ZERO,
            max_delay: SimDuration::ZERO,
            max_attempts: 1,
        };
        // A zero-delay policy still schedules retries strictly later.
        assert_eq!(r.backoff(1), SimDuration::from_secs(1));
    }

    #[test]
    fn mode_variants() {
        let m = InterstitialMode::Project {
            start: SimTime::from_hours(5),
        };
        assert_ne!(m, InterstitialMode::Continual);
    }
}
