//! Interstitial submission knobs.

use simkit::time::{SimDuration, SimTime};

/// When interstitial jobs flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InterstitialMode {
    /// Submit continuously from time zero until the end of the native log —
    /// §4.3.2's "continual interstitial computing". The project's `jobs`
    /// field is an upper bound (set it high for unlimited).
    Continual,
    /// A single project dropped into the job stream at `start`; exactly
    /// `project.jobs` jobs are submitted, then the stream stops (§4.1/§4.3.1
    /// "short-term projects").
    Project {
        /// Instant the project enters the system.
        start: SimTime,
    },
}

/// What happens to running interstitial jobs when a native job needs their
/// CPUs — the paper's "breakage in time" extension point ("there is also a
/// 'breakage in time' because there is no checkpoint/restart for the
/// jobs", §4.2). The paper simulates only [`Preemption::None`]; the other
/// two variants quantify what checkpoint/restart would have bought.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Preemption {
    /// Non-preemptive (the paper's model): once started, an interstitial
    /// job runs to completion even if a native job is waiting.
    #[default]
    None,
    /// Kill interstitial jobs when the native queue head needs their CPUs;
    /// the partial work is lost (counted as waste).
    Kill,
    /// Checkpoint interstitial jobs when preempted and resume them later
    /// from where they stopped (idealized: zero checkpoint overhead).
    Checkpoint,
}

/// How aggressively interstitial jobs are submitted.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InterstitialPolicy {
    /// §4.3.2.2: submit only while the *resulting* machine utilization
    /// (native + interstitial) stays below this fraction. `None` = no cap
    /// (maximal interstitial computing).
    pub utilization_cap: Option<f64>,
    /// Require `backFillWallTime > now + runtime` strictly (Figure 1). When
    /// false, equality is allowed; kept as a knob for the sensitivity
    /// ablation.
    pub strict_backfill_guard: bool,
    /// Breakage-in-time handling (extension; the paper uses `None`).
    pub preemption: Preemption,
}

impl Default for InterstitialPolicy {
    fn default() -> Self {
        InterstitialPolicy {
            utilization_cap: None,
            strict_backfill_guard: true,
            preemption: Preemption::None,
        }
    }
}

impl InterstitialPolicy {
    /// The §4.3.2.2 capped policy.
    pub fn capped(cap: f64) -> Self {
        assert!((0.0..=1.0).contains(&cap));
        InterstitialPolicy {
            utilization_cap: Some(cap),
            ..Self::default()
        }
    }

    /// A preempting policy (extension — see [`Preemption`]).
    pub fn preempting(preemption: Preemption) -> Self {
        InterstitialPolicy {
            preemption,
            ..Self::default()
        }
    }

    /// Maximum interstitial jobs of `cpus_per_job` CPUs that may start right
    /// now without lifting utilization to or past the cap, given `in_use`
    /// busy CPUs out of `total`.
    pub fn cap_allowance(&self, in_use: u32, total: u32, cpus_per_job: u32) -> u64 {
        match self.utilization_cap {
            None => u64::MAX,
            Some(cap) => {
                let budget = cap * total as f64 - in_use as f64;
                if budget <= 0.0 {
                    0
                } else {
                    (budget / cpus_per_job as f64).floor() as u64
                }
            }
        }
    }
}

/// Retry handling for interstitial jobs killed by node failures.
///
/// Fault victims are retried with capped exponential backoff: attempt `k`
/// (1-based) is released `min(base_delay × 2^(k−1), max_delay)` after the
/// kill, until `max_attempts` kills exhaust the budget and the job is
/// abandoned. The schedule is a pure function of the policy — no random
/// jitter — so identical seeds replay identical retry timelines
/// (Dubenskaya & Polyakov's cheap-retry premise for background streams).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base_delay: SimDuration,
    /// Ceiling on the backoff growth.
    pub max_delay: SimDuration,
    /// Fault kills a job may absorb before it is abandoned.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_delay: SimDuration::from_secs(60),
            max_delay: SimDuration::from_secs(3600),
            max_attempts: 5,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry `attempt` (1-based): capped exponential,
    /// saturating rather than overflowing for absurd attempt counts.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let base = self.base_delay.as_secs().max(1);
        let factor = 1u64
            .checked_shl(attempt.saturating_sub(1))
            .unwrap_or(u64::MAX);
        let delay = base.saturating_mul(factor);
        SimDuration::from_secs(delay.min(self.max_delay.as_secs().max(base)))
    }

    /// True when a job killed `attempts` times should be abandoned instead
    /// of retried.
    pub fn gives_up_after(&self, attempts: u32) -> bool {
        attempts >= self.max_attempts
    }
}

/// CPU-seconds of overhead a job pays per completed checkpoint, per CPU.
///
/// A fixed, small figure (state serialization to the parallel filesystem)
/// keeps the checkpoint timeline a pure function of `(progress, interval)`;
/// the resilience report surfaces the accumulated overhead separately from
/// re-executed work so the policy frontier stays readable.
pub const CHECKPOINT_OVERHEAD_S: u64 = 10;

/// What an interstitial job salvages when a node failure (or a kill-mode
/// preemption) evicts it mid-run — the recovery half of the paper's
/// "breakage in time" extension point, following Dubenskaya & Polyakov's
/// observation that low-priority background streams become economical
/// exactly when suspend/resume replaces kill/restart.
///
/// [`RecoveryPolicy::KillRestart`] is the default and reproduces the legacy
/// path bit-for-bit: victims restart from scratch and traces stay schema
/// v2. The other two policies credit progress to a per-job ledger and emit
/// the schema-v3 events (`job_checkpointed` / `job_suspended` /
/// `job_resumed`). Native jobs are out of scope — they always requeue whole.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Evicted jobs lose all progress and retry from scratch (legacy path).
    #[default]
    KillRestart,
    /// Jobs checkpoint every `interval` of *work completed*; an evicted job
    /// loses only the progress past its last completed checkpoint and pays
    /// [`CHECKPOINT_OVERHEAD_S`] CPU·s per CPU per checkpoint taken.
    Checkpoint {
        /// Work completed between consecutive checkpoints. Must be > 0.
        interval: SimDuration,
    },
    /// Eviction freezes the job instantly (container suspend); it resumes
    /// later with all completed work intact and zero overhead.
    SuspendResume,
}

impl RecoveryPolicy {
    /// Parse the `--recovery` CLI argument: `kill`, `ckpt=SECONDS`, or
    /// `suspend`.
    pub fn parse(text: &str) -> Result<RecoveryPolicy, String> {
        match text {
            "kill" => Ok(RecoveryPolicy::KillRestart),
            "suspend" => Ok(RecoveryPolicy::SuspendResume),
            other => {
                match other.strip_prefix("ckpt=") {
                    Some(secs) => {
                        let secs: u64 = secs.parse().map_err(|_| {
                        format!("--recovery: ckpt wants an integer interval in seconds, got {secs:?}")
                    })?;
                        if secs == 0 {
                            return Err(
                                "--recovery: ckpt interval must be positive seconds".to_string()
                            );
                        }
                        Ok(RecoveryPolicy::Checkpoint {
                            interval: SimDuration::from_secs(secs),
                        })
                    }
                    None => Err(format!(
                        "--recovery: unknown policy {other:?} (use kill, ckpt=SECONDS, suspend)"
                    )),
                }
            }
        }
    }

    /// Work credited to a job that had `done` completed before this attempt
    /// and ran `elapsed` more before eviction. Kill-restart credits nothing,
    /// suspend-resume credits everything, checkpointing rounds the *total*
    /// progress down to the last completed checkpoint boundary.
    pub fn credited(&self, done: SimDuration, elapsed: SimDuration) -> SimDuration {
        match self {
            RecoveryPolicy::KillRestart => SimDuration::ZERO,
            RecoveryPolicy::SuspendResume => done + elapsed,
            RecoveryPolicy::Checkpoint { interval } => {
                let i = interval.as_secs().max(1);
                let total = done.as_secs() + elapsed.as_secs();
                SimDuration::from_secs((total / i) * i)
            }
        }
    }

    /// Checkpoints completed during an attempt that advanced total progress
    /// from `done` to `done + elapsed` — the boundaries crossed, each paying
    /// [`CHECKPOINT_OVERHEAD_S`] per CPU.
    pub fn checkpoints_in(&self, done: SimDuration, elapsed: SimDuration) -> u64 {
        match self {
            RecoveryPolicy::Checkpoint { interval } => {
                let i = interval.as_secs().max(1);
                (done.as_secs() + elapsed.as_secs()) / i - done.as_secs() / i
            }
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_uncapped() {
        let p = InterstitialPolicy::default();
        assert_eq!(p.utilization_cap, None);
        assert_eq!(p.cap_allowance(0, 100, 32), u64::MAX);
    }

    #[test]
    fn cap_allowance_counts_jobs() {
        let p = InterstitialPolicy::capped(0.9);
        // Budget: 0.9·1000 − 800 = 100 CPUs → 3 × 32-CPU jobs.
        assert_eq!(p.cap_allowance(800, 1000, 32), 3);
        // Exactly at cap → zero.
        assert_eq!(p.cap_allowance(900, 1000, 32), 0);
        // Above cap → zero (not underflow).
        assert_eq!(p.cap_allowance(950, 1000, 32), 0);
        // 1-CPU jobs use the budget fully.
        assert_eq!(p.cap_allowance(800, 1000, 1), 100);
    }

    #[test]
    #[should_panic]
    fn cap_must_be_a_fraction() {
        InterstitialPolicy::capped(1.5);
    }

    #[test]
    fn preemption_defaults_to_paper_model() {
        assert_eq!(InterstitialPolicy::default().preemption, Preemption::None);
        let p = InterstitialPolicy::preempting(Preemption::Checkpoint);
        assert_eq!(p.preemption, Preemption::Checkpoint);
        assert_eq!(p.utilization_cap, None, "other knobs keep defaults");
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let r = RetryPolicy {
            base_delay: SimDuration::from_secs(30),
            max_delay: SimDuration::from_secs(200),
            max_attempts: 4,
        };
        assert_eq!(r.backoff(1), SimDuration::from_secs(30));
        assert_eq!(r.backoff(2), SimDuration::from_secs(60));
        assert_eq!(r.backoff(3), SimDuration::from_secs(120));
        assert_eq!(r.backoff(4), SimDuration::from_secs(200), "capped");
        assert_eq!(r.backoff(100), SimDuration::from_secs(200), "no overflow");
        assert!(!r.gives_up_after(3));
        assert!(r.gives_up_after(4));
        assert!(r.gives_up_after(5));
    }

    #[test]
    fn backoff_is_a_pure_function() {
        // No hidden state: every call with the same attempt yields the same
        // delay, across policy copies.
        let r = RetryPolicy::default();
        let s = r;
        for attempt in 1..50 {
            assert_eq!(r.backoff(attempt), s.backoff(attempt));
        }
        // Monotone non-decreasing up to the cap.
        for attempt in 1..49 {
            assert!(r.backoff(attempt + 1) >= r.backoff(attempt));
        }
    }

    #[test]
    fn degenerate_backoff_stays_positive() {
        let r = RetryPolicy {
            base_delay: SimDuration::ZERO,
            max_delay: SimDuration::ZERO,
            max_attempts: 1,
        };
        // A zero-delay policy still schedules retries strictly later.
        assert_eq!(r.backoff(1), SimDuration::from_secs(1));
    }

    #[test]
    fn mode_variants() {
        let m = InterstitialMode::Project {
            start: SimTime::from_hours(5),
        };
        assert_ne!(m, InterstitialMode::Continual);
    }

    #[test]
    fn recovery_parses_the_three_policies() {
        assert_eq!(
            RecoveryPolicy::parse("kill").unwrap(),
            RecoveryPolicy::KillRestart
        );
        assert_eq!(
            RecoveryPolicy::parse("suspend").unwrap(),
            RecoveryPolicy::SuspendResume
        );
        assert_eq!(
            RecoveryPolicy::parse("ckpt=300").unwrap(),
            RecoveryPolicy::Checkpoint {
                interval: SimDuration::from_secs(300)
            }
        );
    }

    #[test]
    fn recovery_parse_errors_name_the_offender() {
        let err = RecoveryPolicy::parse("restart").unwrap_err();
        assert!(err.contains("\"restart\""), "{err}");
        assert!(err.contains("kill, ckpt=SECONDS, suspend"), "{err}");
        let err = RecoveryPolicy::parse("ckpt=abc").unwrap_err();
        assert!(err.contains("\"abc\""), "{err}");
        let err = RecoveryPolicy::parse("ckpt=0").unwrap_err();
        assert!(err.contains("positive"), "{err}");
    }

    #[test]
    fn recovery_credit_arithmetic() {
        let kill = RecoveryPolicy::KillRestart;
        let suspend = RecoveryPolicy::SuspendResume;
        let ckpt = RecoveryPolicy::Checkpoint {
            interval: SimDuration::from_secs(100),
        };
        let d = SimDuration::from_secs;
        // Kill credits nothing, ever.
        assert_eq!(kill.credited(d(250), d(99)), SimDuration::ZERO);
        assert_eq!(kill.checkpoints_in(d(250), d(99)), 0);
        // Suspend credits everything.
        assert_eq!(suspend.credited(d(250), d(99)), d(349));
        assert_eq!(suspend.checkpoints_in(d(250), d(99)), 0);
        // Checkpoint rounds total progress down to the last boundary and
        // counts only the boundaries this attempt crossed.
        assert_eq!(ckpt.credited(SimDuration::ZERO, d(99)), SimDuration::ZERO);
        assert_eq!(ckpt.credited(SimDuration::ZERO, d(100)), d(100));
        assert_eq!(ckpt.credited(d(250), d(99)), d(300));
        assert_eq!(ckpt.checkpoints_in(d(250), d(99)), 1, "250→349 crosses 300");
        assert_eq!(ckpt.checkpoints_in(d(0), d(350)), 3);
        assert_eq!(ckpt.checkpoints_in(d(300), d(50)), 0);
    }

    /// Satellite property test: across 1k seeded random configs, the backoff
    /// sequence is monotone non-decreasing, never exceeds the configured cap,
    /// and the driver's give-up predicate abandons every job by the horizon.
    #[test]
    fn retry_policy_properties_hold_across_random_configs() {
        let mut rng = simkit::rng::Rng::new(0xC0FFEE);
        for case in 0..1000u64 {
            let r = RetryPolicy {
                base_delay: SimDuration::from_secs(rng.range_u64(0, 7200)),
                max_delay: SimDuration::from_secs(rng.range_u64(0, 100_000)),
                max_attempts: rng.range_u64(1, 64) as u32,
            };
            let cap = r.max_delay.as_secs().max(r.base_delay.as_secs().max(1));
            let horizon = SimTime::from_secs(rng.range_u64(1000, 10_000_000));
            let runtime = SimDuration::from_secs(rng.range_u64(1, 100_000));
            let mut prev = SimDuration::ZERO;
            for attempt in 1..=r.max_attempts.min(80) {
                let b = r.backoff(attempt);
                assert!(b >= prev, "case {case}: backoff not monotone at {attempt}");
                assert!(
                    b.as_secs() <= cap,
                    "case {case}: backoff {b:?} exceeds cap {cap}"
                );
                prev = b;
            }
            // Replay the driver's retry loop: each kill bumps the attempt
            // count and schedules a release `backoff` later; the job is
            // abandoned when the attempt budget is spent or the retried run
            // could no longer finish inside the horizon. Killing at the
            // latest possible instant (the release itself) is the adversarial
            // schedule — if give-up triggers there, it triggers everywhere.
            let mut now = SimTime::ZERO;
            let mut attempts = 0u32;
            let mut retries = 0u32;
            loop {
                attempts += 1;
                let release = now + r.backoff(attempts);
                if r.gives_up_after(attempts) || release + runtime > horizon {
                    break;
                }
                retries += 1;
                assert!(
                    release + runtime <= horizon,
                    "case {case}: retry admitted past the horizon"
                );
                now = release;
                assert!(
                    retries <= r.max_attempts,
                    "case {case}: retry budget leaked"
                );
            }
            assert!(attempts <= r.max_attempts, "case {case}: gave up late");
            assert!(
                now + runtime <= horizon || retries == 0,
                "case {case}: last admitted retry overruns the horizon"
            );
        }
    }
}
