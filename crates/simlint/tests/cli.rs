//! End-to-end tests of the simlint binary: exit codes, the JSON
//! diagnostics surface and the call-graph artifact — the exact interface
//! the CI lint step depends on.

use std::process::Command;

fn simlint(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_simlint"))
        .args(args)
        .output()
        .expect("spawn simlint")
}

#[test]
fn workspace_is_clean_under_deny_stale() {
    let out = simlint(&["--deny-stale"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "simlint failed:\n{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no violations"), "{stdout}");
    assert!(stdout.contains("proven pure"), "{stdout}");
}

#[test]
fn json_mode_emits_schema_one() {
    let out = simlint(&["--format", "json", "--deny-stale"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.starts_with("{\"schema\":1,\"files_scanned\":"),
        "{stdout}"
    );
    assert!(stdout.contains("\"violations\":[]"), "{stdout}");
    assert!(stdout.contains("\"unused_allows\":[]"), "{stdout}");
    assert!(stdout.contains("\"graph\":{\"functions\":"), "{stdout}");
}

#[test]
fn emit_graph_writes_the_artifact() {
    let path = std::env::temp_dir().join(format!("simlint-cg-{}.json", std::process::id()));
    let out = simlint(&["--emit-graph", path.to_str().expect("utf8 temp path")]);
    assert!(out.status.success());
    let graph = std::fs::read_to_string(&path).expect("artifact written");
    let _ = std::fs::remove_file(&path);
    assert!(graph.starts_with("{\"schema\":1,\"roots\":["), "{graph}");
    assert!(graph.contains("sched::Scheduler::cycle"), "{graph}");
    assert!(graph.contains("\"reachable\":true"), "{graph}");
}

#[test]
fn unknown_flags_and_bad_roots_exit_two() {
    let out = simlint(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
    let out = simlint(&["--root", "/nonexistent/simlint-test-root"]);
    assert_eq!(out.status.code(), Some(2));
}
