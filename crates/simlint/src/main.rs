//! CLI entry point: `cargo run -p simlint [lint] [--root PATH]
//! [--format text|json] [--deny-stale] [--emit-graph PATH]`.
//!
//! Exit codes: 0 = clean, 1 = violations found (or, under `--deny-stale`,
//! stale allowlist entries), 2 = internal error (unreadable files,
//! malformed simlint.toml).

use simlint::graph::push_json_str;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: Option<PathBuf>,
    json: bool,
    deny_stale: bool,
    emit_graph: Option<PathBuf>,
}

fn main() -> ExitCode {
    let mut opts = Options {
        root: None,
        json: false,
        deny_stale: false,
        emit_graph: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // `cargo xtask lint` forwards a `lint` subcommand; accept it.
            "lint" => {}
            "--root" => match args.next() {
                Some(p) => opts.root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("simlint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                other => {
                    eprintln!("simlint: --format needs `text` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--deny-stale" => opts.deny_stale = true,
            "--emit-graph" => match args.next() {
                Some(p) => opts.emit_graph = Some(PathBuf::from(p)),
                None => {
                    eprintln!("simlint: --emit-graph needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "simlint: static analysis for determinism & scheduler invariants\n\
                     usage: cargo run -p simlint [lint] [--root PATH] [--format text|json]\n\
                     \u{20}                          [--deny-stale] [--emit-graph PATH]\n\
                     rules: R1 hash collections in sim state, R2 wall-clock reads,\n\
                     \u{20}      R3 f64 time conversion outside simkit::time, R4 unwrap/expect,\n\
                     \u{20}      R5 shared-mutable-state hazards, R6 entropy-seeded RNG,\n\
                     \u{20}      R7 order-sensitive f64 accumulation, R8 hot-path purity\n\
                     \u{20}      (call-graph reachability from Scheduler::cycle / engine loop)\n\
                     flags: --format json     machine-readable diagnostics (schema 1)\n\
                     \u{20}      --deny-stale     stale simlint.toml entries fail the run\n\
                     \u{20}      --emit-graph P   write the annotated call graph to P\n\
                     allowlist: simlint.toml at the workspace root"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("simlint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = opts.root.clone().unwrap_or_else(simlint::workspace_root);

    let report = match simlint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: error: {e}");
            return ExitCode::from(2);
        }
    };

    if report.files_scanned == 0 {
        // A clean verdict over zero files is a misconfiguration (wrong
        // --root, moved sources), not a pass.
        eprintln!(
            "simlint: error: no source files found under {}",
            root.display()
        );
        return ExitCode::from(2);
    }

    if let Some(path) = &opts.emit_graph {
        let json = report.graph.to_json(&report.roots, &report.reachable);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("simlint: error: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let stale_fails = opts.deny_stale && !report.unused_allows.is_empty();
    let failed = !report.violations.is_empty() || stale_fails;

    if opts.json {
        println!("{}", diagnostics_json(&report, opts.deny_stale));
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    for a in &report.unused_allows {
        let verdict = if opts.deny_stale { "error" } else { "warning" };
        eprintln!(
            "simlint: {verdict}: stale allowlist entry ({} @ {} contains {:?}) — prune it",
            a.rule, a.path, a.contains
        );
    }
    for v in &report.violations {
        eprintln!("{v}");
    }
    if failed {
        eprintln!(
            "simlint: {} violation(s), {} stale allow(s) in {} files checked",
            report.violations.len(),
            report.unused_allows.len(),
            report.files_scanned
        );
        return ExitCode::FAILURE;
    }
    println!(
        "simlint: {} files checked, no violations ({} hot-path fns proven pure)",
        report.files_scanned,
        report.reachable.len()
    );
    ExitCode::SUCCESS
}

/// Schema-stable machine-readable diagnostics (schema 1): field order is
/// fixed, integers and strings only, violations sorted by (path, line,
/// rule) as produced by the linter.
fn diagnostics_json(report: &simlint::Report, deny_stale: bool) -> String {
    let mut out = String::from("{\"schema\":1");
    let _ = std::fmt::Write::write_fmt(
        &mut out,
        format_args!(",\"files_scanned\":{}", report.files_scanned),
    );
    out.push_str(",\"deny_stale\":");
    out.push_str(if deny_stale { "true" } else { "false" });
    out.push_str(",\"violations\":[");
    for (k, v) in report.violations.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str("{\"rule\":");
        push_json_str(&mut out, v.rule);
        out.push_str(",\"path\":");
        push_json_str(&mut out, &v.path);
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!(",\"line\":{}", v.line));
        out.push_str(",\"message\":");
        push_json_str(&mut out, &v.message);
        out.push_str(",\"excerpt\":");
        push_json_str(&mut out, &v.excerpt);
        out.push('}');
    }
    out.push_str("],\"unused_allows\":[");
    for (k, a) in report.unused_allows.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str("{\"rule\":");
        push_json_str(&mut out, &a.rule);
        out.push_str(",\"path\":");
        push_json_str(&mut out, &a.path);
        out.push_str(",\"contains\":");
        push_json_str(&mut out, &a.contains);
        out.push('}');
    }
    out.push_str("],\"graph\":{");
    let _ = std::fmt::Write::write_fmt(
        &mut out,
        format_args!(
            "\"functions\":{},\"roots\":{},\"reachable\":{}",
            report.graph.nodes.len(),
            report.roots.len(),
            report.reachable.len()
        ),
    );
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The JSON diagnostics are an interface: CI artifacts and tooling
    /// parse them, so the schema marker, top-level key order and the
    /// per-violation key set are pinned here.
    #[test]
    fn diagnostics_json_schema_is_stable() {
        let report = simlint::lint_workspace(&simlint::workspace_root()).unwrap();
        let j = diagnostics_json(&report, true);
        assert!(j.starts_with("{\"schema\":1,\"files_scanned\":"), "{j}");
        for key in [
            "\"deny_stale\":true",
            "\"violations\":[",
            "\"unused_allows\":[",
            "\"graph\":{\"functions\":",
            "\"roots\":",
            "\"reachable\":",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert!(j.ends_with("}}"), "{j}");
        // Deterministic: same report, same bytes.
        assert_eq!(j, diagnostics_json(&report, true));
    }
}
