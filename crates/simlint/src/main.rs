//! CLI entry point: `cargo run -p simlint [lint] [--root PATH]`.
//!
//! Exit codes: 0 = clean, 1 = violations found, 2 = internal error
//! (unreadable files, malformed simlint.toml).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // `cargo xtask lint` forwards a `lint` subcommand; accept it.
            "lint" => {}
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("simlint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "simlint: static analysis for determinism & scheduler invariants\n\
                     usage: cargo run -p simlint [lint] [--root PATH]\n\
                     rules: R1 hash collections in sim state, R2 wall-clock reads,\n\
                     \u{20}      R3 f64 time conversion outside simkit::time, R4 unwrap/expect\n\
                     allowlist: simlint.toml at the workspace root"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("simlint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(simlint::workspace_root);

    let report = match simlint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: error: {e}");
            return ExitCode::from(2);
        }
    };

    if report.files_scanned == 0 {
        // A clean verdict over zero files is a misconfiguration (wrong
        // --root, moved sources), not a pass.
        eprintln!(
            "simlint: error: no source files found under {}",
            root.display()
        );
        return ExitCode::from(2);
    }
    for a in &report.unused_allows {
        eprintln!(
            "simlint: warning: stale allowlist entry ({} @ {} contains {:?}) — prune it",
            a.rule, a.path, a.contains
        );
    }
    if report.violations.is_empty() {
        println!(
            "simlint: {} files checked, no violations",
            report.files_scanned
        );
        return ExitCode::SUCCESS;
    }
    for v in &report.violations {
        eprintln!("{v}");
    }
    eprintln!(
        "simlint: {} violation(s) in {} files checked",
        report.violations.len(),
        report.files_scanned
    );
    ExitCode::FAILURE
}
