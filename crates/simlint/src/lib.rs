//! simlint — workspace-wide static analysis enforcing the determinism and
//! scheduler invariants this simulator depends on.
//!
//! Eight rule families (see DESIGN.md "Determinism & invariants" for the
//! full rationale):
//!
//! * **R1** — no `HashMap`/`HashSet` in simulation crates: random iteration
//!   order breaks bit-for-bit replay.
//! * **R2** — no wall-clock reads (`SystemTime::now`, `Instant::now`,
//!   `thread_rng`) outside `crates/bench`.
//! * **R3** — no `from_secs_f64` time conversion outside `simkit::time`.
//! * **R4** — no `unwrap()`/`expect()` in library-crate non-test code.
//! * **R5** — no shared-mutable-state hazards (`static mut`, `RefCell`/
//!   `Cell`/`Rc`, `unsafe`) in simulation crates: `!Send`/`!Sync` state
//!   blocks the parallel fleet fan-out.
//! * **R6** — RNG discipline: no entropy-seeded generator construction
//!   (`from_entropy`, `OsRng`, `RandomState`, …) anywhere; entropy enters
//!   only as the explicit `u64` seed.
//! * **R7** — no order-sensitive f64 accumulation (`.sum::<f64>()`,
//!   `fold(0.0`) in sim crates: parallel ensemble merges reorder partial
//!   sums.
//! * **R8** — semantic purity: every function reachable from
//!   `Scheduler::cycle` or the simkit engine loop (over an approximate
//!   item-level call graph, see [`graph`]) must be free of wall-clock, IO
//!   and entropy calls.
//!
//! Binaries (`crates/*/src/bin`) and the `examples/` tree are scanned
//! under a relaxed rule set (R1/R5 only). Audited exceptions live in
//! `simlint.toml` at the repo root; every entry must state a reason. Run
//! as `cargo run -p simlint` (or `cargo xtask lint`); add `--format json`
//! for machine-readable diagnostics, `--deny-stale` to fail on unused
//! allowlist entries, and `--emit-graph PATH` for the call-graph artifact.

pub mod allow;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod rules;

pub use allow::Allow;
pub use rules::{classify, lint_source, FileClass, Violation};

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// One workspace source file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceFile {
    /// Repo-relative forward-slash path.
    pub path: String,
    /// How the rules treat it.
    pub class: FileClass,
}

/// The outcome of linting a workspace.
pub struct Report {
    /// Violations not covered by the allowlist, sorted by path then line.
    pub violations: Vec<Violation>,
    /// Allowlist entries that suppressed nothing (stale — worth pruning).
    pub unused_allows: Vec<Allow>,
    /// Number of source files scanned.
    pub files_scanned: usize,
    /// The workspace call graph over determinism-crate library code.
    pub graph: graph::CallGraph,
    /// Node indices of the R8 purity roots found in the graph.
    pub roots: Vec<usize>,
    /// Node indices reachable from the roots.
    pub reachable: BTreeSet<usize>,
}

/// Locate the workspace root from the simlint crate's own manifest dir.
pub fn workspace_root() -> PathBuf {
    let manifest = env!("CARGO_MANIFEST_DIR");
    Path::new(manifest)
        .ancestors()
        .nth(2)
        .unwrap_or_else(|| Path::new("."))
        .to_path_buf()
}

/// All `.rs` files under `crates/*/src` (including `src/bin`), the root
/// `src/`, and the root `examples/` tree, sorted by path, each classified
/// per [`rules::classify`]. `tests/` and `benches/` directories remain out
/// of scope: they are test code.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            walk_rs(&member.join("src"), root, &mut paths)?;
        }
    }
    walk_rs(&root.join("src"), root, &mut paths)?;
    walk_rs(&root.join("examples"), root, &mut paths)?;
    paths.sort();
    Ok(paths
        .into_iter()
        .map(|path| {
            let class = rules::classify(&path);
            SourceFile { path, class }
        })
        .collect())
}

fn walk_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Lint every workspace source file, applying the `simlint.toml` allowlist
/// if present at `root`. Runs the per-line rules (R1–R7) per file, then
/// the R8 purity pass over the cross-crate call graph.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let allow_path = root.join("simlint.toml");
    let allows = if allow_path.is_file() {
        let text = std::fs::read_to_string(&allow_path)
            .map_err(|e| format!("reading {}: {e}", allow_path.display()))?;
        allow::parse(&text)?
    } else {
        Vec::new()
    };

    let files = collect_sources(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut raw_violations = Vec::new();
    let mut graph_sources = Vec::new();
    // Original source lines of graph files, for R8 excerpts.
    let mut source_lines: std::collections::BTreeMap<String, Vec<String>> =
        std::collections::BTreeMap::new();
    for f in &files {
        let src = std::fs::read_to_string(root.join(&f.path))
            .map_err(|e| format!("reading {}: {e}", f.path))?;
        raw_violations.extend(rules::lint_source(&f.path, &src));
        // The purity graph covers determinism-crate library code only:
        // that is where the engine/scheduler hot path lives.
        let krate = rules::crate_of(&f.path);
        if f.class == FileClass::Lib && rules::DETERMINISM_CRATES.contains(&krate) {
            let cleaned = lexer::analyze(&src);
            graph_sources.push(graph::GraphSource {
                path: f.path.clone(),
                krate: krate.to_string(),
                functions: items::parse(&cleaned).functions,
            });
            source_lines.insert(f.path.clone(), src.lines().map(str::to_string).collect());
        }
    }

    // R8 — semantic purity over the call graph.
    let g = graph::CallGraph::build(&graph_sources);
    let roots = g.find_roots(graph::PURITY_ROOTS);
    let (parent, reachable) = g.reach(&roots);
    for &i in &reachable {
        let nd = &g.nodes[i];
        for (token, line, category) in &nd.impure {
            let excerpt = source_lines
                .get(&nd.file)
                .and_then(|lines| lines.get(line.saturating_sub(1)))
                .map(|l| l.trim().to_string())
                .unwrap_or_default();
            raw_violations.push(Violation {
                rule: "R8",
                path: nd.file.clone(),
                line: *line,
                message: format!(
                    "impure {category} call ({token}) on the deterministic hot path: \
                     {} — every function reachable from the engine/scheduler loop \
                     must be a pure function of simulation state",
                    g.chain(&parent, i)
                ),
                excerpt,
            });
        }
    }
    raw_violations
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));

    let mut violations = Vec::new();
    let mut used = vec![false; allows.len()];
    for v in raw_violations {
        let suppressed = allows.iter().enumerate().any(|(i, a)| {
            let hit = a.rule == v.rule && a.path == v.path && v.excerpt.contains(&a.contains);
            if hit {
                used[i] = true;
            }
            hit
        });
        if !suppressed {
            violations.push(v);
        }
    }
    let unused_allows = allows
        .into_iter()
        .zip(used)
        .filter(|(_, u)| !u)
        .map(|(a, _)| a)
        .collect();
    Ok(Report {
        violations,
        unused_allows,
        files_scanned: files.len(),
        graph: g,
        roots,
        reachable,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_contains_manifest() {
        let root = workspace_root();
        assert!(root.join("Cargo.toml").is_file(), "{}", root.display());
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn collects_own_sources() {
        let root = workspace_root();
        let files = collect_sources(&root).unwrap();
        let path_of = |p: &str| files.iter().find(|f| f.path == p);
        assert!(path_of("crates/simlint/src/lib.rs").is_some());
        assert!(path_of("crates/sched/src/scheduler.rs").is_some());
        // Integration tests are out of scope.
        assert!(files.iter().all(|f| !f.path.contains("/tests/")));
        // Deterministic order.
        let mut sorted = files.clone();
        sorted.sort_by(|a, b| a.path.cmp(&b.path));
        assert_eq!(files, sorted);
    }

    #[test]
    fn binaries_and_examples_are_scanned_with_relaxed_class() {
        let root = workspace_root();
        let files = collect_sources(&root).unwrap();
        let perf = files
            .iter()
            .find(|f| f.path == "crates/bench/src/bin/perf.rs")
            .expect("bench binaries are in scope");
        assert_eq!(perf.class, FileClass::Bin);
        let ex = files
            .iter()
            .find(|f| f.path == "examples/quickstart.rs")
            .expect("examples are in scope");
        assert_eq!(ex.class, FileClass::Example);
        let lib = files
            .iter()
            .find(|f| f.path == "crates/sched/src/scheduler.rs")
            .unwrap();
        assert_eq!(lib.class, FileClass::Lib);
    }

    /// The tentpole acceptance check: the real workspace lints clean with
    /// the committed allowlist, and the allowlist carries no dead entries.
    #[test]
    fn workspace_is_clean() {
        let report = lint_workspace(&workspace_root()).unwrap();
        assert!(
            report.violations.is_empty(),
            "workspace has lint violations:\n{}",
            report
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(
            report.unused_allows.is_empty(),
            "stale simlint.toml entries: {:?}",
            report.unused_allows
        );
        assert!(report.files_scanned > 50, "suspiciously few files scanned");
    }

    /// The R8 pass is only meaningful if the roots actually resolve and
    /// pull in a substantial slice of the engine/scheduler hot path.
    #[test]
    fn purity_roots_resolve_and_reach_the_hot_path() {
        let report = lint_workspace(&workspace_root()).unwrap();
        assert!(
            report.roots.len() >= 4,
            "expected Scheduler::cycle/cycle_observed + engine run/run_probed, got {:?}",
            report
                .roots
                .iter()
                .map(|&r| report.graph.nodes[r].id.clone())
                .collect::<Vec<_>>()
        );
        assert!(
            report.reachable.len() >= 20,
            "suspiciously small reachable set ({}): did call resolution break?",
            report.reachable.len()
        );
        // The hot path crosses crates: sched planning and machine state
        // must both be in the reachable set.
        let crates_reached: std::collections::BTreeSet<&str> = report
            .reachable
            .iter()
            .map(|&i| report.graph.nodes[i].krate.as_str())
            .collect();
        for k in ["sched", "machine", "simkit"] {
            assert!(
                crates_reached.contains(k),
                "{k} not reached: {crates_reached:?}"
            );
        }
    }
}
