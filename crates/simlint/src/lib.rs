//! simlint — workspace-wide static analysis enforcing the determinism and
//! scheduler invariants this simulator depends on.
//!
//! Four rules (see DESIGN.md "Determinism & invariants" for the full
//! rationale):
//!
//! * **R1** — no `HashMap`/`HashSet` in simulation crates: random iteration
//!   order breaks bit-for-bit replay.
//! * **R2** — no wall-clock reads (`SystemTime::now`, `Instant::now`,
//!   `thread_rng`) outside `crates/bench`.
//! * **R3** — no `from_secs_f64` time conversion outside `simkit::time`.
//! * **R4** — no `unwrap()`/`expect()` in library-crate non-test code.
//!
//! Audited exceptions live in `simlint.toml` at the repo root; every entry
//! must state a reason. Run as `cargo run -p simlint` (or `cargo xtask
//! lint` via the cargo alias).

pub mod allow;
pub mod lexer;
pub mod rules;

pub use allow::Allow;
pub use rules::{lint_source, Violation};

use std::path::{Path, PathBuf};

/// The outcome of linting a workspace.
pub struct Report {
    /// Violations not covered by the allowlist, sorted by path then line.
    pub violations: Vec<Violation>,
    /// Allowlist entries that suppressed nothing (stale — worth pruning).
    pub unused_allows: Vec<Allow>,
    /// Number of source files scanned.
    pub files_scanned: usize,
}

/// Locate the workspace root from the simlint crate's own manifest dir.
pub fn workspace_root() -> PathBuf {
    let manifest = env!("CARGO_MANIFEST_DIR");
    Path::new(manifest)
        .ancestors()
        .nth(2)
        .unwrap_or_else(|| Path::new("."))
        .to_path_buf()
}

/// All `.rs` files under `crates/*/src` and the root `src/`, sorted, as
/// repo-relative forward-slash paths. `tests/`, `benches/` and `examples/`
/// directories are intentionally out of scope: they are test code.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            walk_rs(&member.join("src"), root, &mut files)?;
        }
    }
    walk_rs(&root.join("src"), root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Lint every workspace source file, applying the `simlint.toml` allowlist
/// if present at `root`.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let allow_path = root.join("simlint.toml");
    let allows = if allow_path.is_file() {
        let text = std::fs::read_to_string(&allow_path)
            .map_err(|e| format!("reading {}: {e}", allow_path.display()))?;
        allow::parse(&text)?
    } else {
        Vec::new()
    };

    let files = collect_sources(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut violations = Vec::new();
    let mut used = vec![false; allows.len()];
    for rel in &files {
        let src =
            std::fs::read_to_string(root.join(rel)).map_err(|e| format!("reading {rel}: {e}"))?;
        for v in rules::lint_source(rel, &src) {
            let suppressed = allows.iter().enumerate().any(|(i, a)| {
                let hit = a.rule == v.rule && a.path == v.path && v.excerpt.contains(&a.contains);
                if hit {
                    used[i] = true;
                }
                hit
            });
            if !suppressed {
                violations.push(v);
            }
        }
    }
    let unused_allows = allows
        .into_iter()
        .zip(used)
        .filter(|(_, u)| !u)
        .map(|(a, _)| a)
        .collect();
    Ok(Report {
        violations,
        unused_allows,
        files_scanned: files.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_contains_manifest() {
        let root = workspace_root();
        assert!(root.join("Cargo.toml").is_file(), "{}", root.display());
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn collects_own_sources() {
        let root = workspace_root();
        let files = collect_sources(&root).unwrap();
        assert!(files.iter().any(|f| f == "crates/simlint/src/lib.rs"));
        assert!(files.iter().any(|f| f == "crates/sched/src/scheduler.rs"));
        // Integration tests are out of scope.
        assert!(files.iter().all(|f| !f.contains("/tests/")));
        // Deterministic order.
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }

    /// The tentpole acceptance check: the real workspace lints clean with
    /// the committed allowlist, and the allowlist carries no dead entries.
    #[test]
    fn workspace_is_clean() {
        let report = lint_workspace(&workspace_root()).unwrap();
        assert!(
            report.violations.is_empty(),
            "workspace has lint violations:\n{}",
            report
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(
            report.unused_allows.is_empty(),
            "stale simlint.toml entries: {:?}",
            report.unused_allows
        );
        assert!(report.files_scanned > 50, "suspiciously few files scanned");
    }
}
