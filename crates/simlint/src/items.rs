//! A lightweight item parser on top of [`crate::lexer`]: extracts the
//! `mod`/`use`/`fn`/`impl`/`trait` skeleton of a cleaned source file.
//!
//! Like the lexer, this is deliberately not a full parser. The call-graph
//! pass ([`crate::graph`]) only needs to know *which functions exist*,
//! *which type (if any) they hang off*, and *where their bodies are* — all
//! of which falls out of one linear scan with brace matching over text
//! whose comments and literals have already been blanked. Generics, where
//! clauses and attributes are skipped structurally, never interpreted.

use crate::lexer::Cleaned;

/// One extracted function (free function, inherent method, trait method or
/// default trait body).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FnItem {
    /// The function's bare name (`cycle`, `run_probed`).
    pub name: String,
    /// The `Self` type when declared inside `impl Ty` / `impl Tr for Ty` /
    /// `trait Ty` — the last path segment, generics stripped (`Scheduler`).
    pub self_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Body text (cleaned), empty for bodyless trait declarations.
    pub body: String,
    /// 1-based line where the body opens (`{`), equal to `line` for
    /// single-line items; used to map body offsets back to source lines.
    pub body_line: usize,
    /// True when the `fn` keyword sits inside a `#[cfg(test)]`/`#[test]`
    /// region.
    pub is_test: bool,
}

/// One `use` declaration's text (cleaned, braces and all), recorded so the
/// graph can bias bare-name resolution toward imported modules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UseDecl {
    /// The text between `use` and `;`, whitespace-trimmed.
    pub path: String,
    /// 1-based line.
    pub line: usize,
}

/// The item skeleton of one source file.
#[derive(Clone, Debug, Default)]
pub struct FileItems {
    /// Functions in declaration order.
    pub functions: Vec<FnItem>,
    /// `use` declarations in declaration order.
    pub uses: Vec<UseDecl>,
    /// Inline `mod` names declared in this file (both `mod m;` and
    /// `mod m { … }`).
    pub mods: Vec<String>,
}

/// Context kinds the scanner tracks while descending the brace tree.
#[derive(Clone, Debug)]
enum Ctx {
    /// `impl Ty` / `impl Tr for Ty` / `trait Ty`: methods inside get
    /// `self_ty = Ty`.
    TypeScope { ty: String, close_depth: usize },
    /// Any other braced region (mod body, fn body already recorded, enum…).
    Opaque { close_depth: usize },
}

/// A `fn` whose body brace has not opened yet.
struct PendingFn {
    name: String,
    self_ty: Option<String>,
    line: usize,
}

/// Extract the item skeleton from an analyzed file.
pub fn parse(cleaned: &Cleaned) -> FileItems {
    let text = &cleaned.text;
    let b: Vec<char> = text.chars().collect();
    let n = b.len();
    let mut out = FileItems::default();

    // 1-based line number for a char index.
    let mut line_of = Vec::with_capacity(n);
    let mut ln = 1usize;
    for &c in &b {
        line_of.push(ln);
        if c == '\n' {
            ln += 1;
        }
    }
    let line_at = |i: usize| line_of.get(i).copied().unwrap_or(ln);

    let mut depth = 0usize;
    let mut ctxs: Vec<Ctx> = Vec::new();
    // At most one of these is armed between a keyword and its `{`/`;`.
    let mut pending_fn: Option<PendingFn> = None;
    let mut pending_ty: Option<String> = None;

    let mut i = 0usize;
    while i < n {
        let c = b[i];
        if c == '{' {
            depth += 1;
            if let Some(pf) = pending_fn.take() {
                // Capture the body verbatim up to the matching brace.
                let open = i;
                let close = match_brace(&b, open);
                let body: String = b[open + 1..close].iter().collect();
                out.functions.push(FnItem {
                    name: pf.name,
                    self_ty: pf.self_ty,
                    line: pf.line,
                    body,
                    body_line: line_at(open),
                    is_test: cleaned
                        .test_mask
                        .get(pf.line.saturating_sub(1))
                        .copied()
                        .unwrap_or(false),
                });
                // Keep scanning *inside* the body too (nested fns, and the
                // brace bookkeeping stays consistent).
                ctxs.push(Ctx::Opaque { close_depth: depth });
            } else if let Some(ty) = pending_ty.take() {
                ctxs.push(Ctx::TypeScope {
                    ty,
                    close_depth: depth,
                });
            } else {
                ctxs.push(Ctx::Opaque { close_depth: depth });
            }
            i += 1;
            continue;
        }
        if c == '}' {
            if let Some(last) = ctxs.last() {
                let cd = match last {
                    Ctx::TypeScope { close_depth, .. } | Ctx::Opaque { close_depth } => {
                        *close_depth
                    }
                };
                if cd == depth {
                    ctxs.pop();
                }
            }
            depth = depth.saturating_sub(1);
            i += 1;
            continue;
        }
        if c == ';' {
            // `fn f();` (trait declaration) or `impl` that never opened
            // (malformed) — record the bodyless fn, drop the pending type.
            if let Some(pf) = pending_fn.take() {
                out.functions.push(FnItem {
                    name: pf.name,
                    self_ty: pf.self_ty,
                    line: pf.line,
                    body: String::new(),
                    body_line: pf.line,
                    is_test: cleaned
                        .test_mask
                        .get(pf.line.saturating_sub(1))
                        .copied()
                        .unwrap_or(false),
                });
            }
            pending_ty = None;
            i += 1;
            continue;
        }
        if is_ident_start(c) && !prev_is_ident(&b, i) {
            let start = i;
            while i < n && is_ident_char(b[i]) {
                i += 1;
            }
            let word: String = b[start..i].iter().collect();
            match word.as_str() {
                "fn" => {
                    let (name, at) = next_ident(&b, i);
                    if !name.is_empty() {
                        let self_ty = ctxs.iter().rev().find_map(|c| match c {
                            Ctx::TypeScope { ty, .. } => Some(ty.clone()),
                            Ctx::Opaque { .. } => None,
                        });
                        pending_fn = Some(PendingFn {
                            name,
                            self_ty,
                            line: line_at(start),
                        });
                        i = at;
                    }
                }
                "impl" => {
                    // Header runs to the opening `{`; `<`…`>` nesting must
                    // be skipped so `impl Iterator<Item = {…}>`-ish bounds
                    // and `->` arrows don't confuse the type extraction.
                    let (header, at) = read_until_brace(&b, i);
                    pending_ty = impl_self_type(&header);
                    i = at;
                }
                "trait" => {
                    let (name, at) = next_ident(&b, i);
                    if !name.is_empty() {
                        pending_ty = Some(name);
                        i = at;
                    }
                }
                "mod" => {
                    let (name, at) = next_ident(&b, i);
                    if !name.is_empty() {
                        out.mods.push(name);
                        i = at;
                    }
                }
                "use" => {
                    let from = i;
                    let mut j = i;
                    while j < n && b[j] != ';' {
                        j += 1;
                    }
                    let path: String = b[from..j].iter().collect();
                    out.uses.push(UseDecl {
                        path: path.trim().to_string(),
                        line: line_at(start),
                    });
                    i = j;
                }
                _ => {}
            }
            continue;
        }
        i += 1;
    }
    out
}

/// Index of the `}` matching the `{` at `open` (or end of input).
fn match_brace(b: &[char], open: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    b.len()
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && is_ident_char(b[i - 1])
}

/// The next identifier after `from`, skipping whitespace and one optional
/// generic list (for `fn name<…>` the caller reads `name` first, so this
/// only needs leading whitespace). Returns the ident and the index just
/// past it.
fn next_ident(b: &[char], from: usize) -> (String, usize) {
    let mut i = from;
    while i < b.len() && b[i].is_whitespace() {
        i += 1;
    }
    let start = i;
    while i < b.len() && is_ident_char(b[i]) {
        i += 1;
    }
    (b[start..i].iter().collect(), i)
}

/// Collect text from `from` up to the first `{` or `;` outside `<`…`>`
/// nesting. Returns (header, index-of-stop-char).
fn read_until_brace(b: &[char], from: usize) -> (String, usize) {
    let mut i = from;
    let mut angle = 0i64;
    while i < b.len() {
        match b[i] {
            '<' => angle += 1,
            '>' => angle = (angle - 1).max(0),
            '{' | ';' if angle == 0 => break,
            _ => {}
        }
        i += 1;
    }
    (b[from..i].iter().collect(), i)
}

/// The `Self` type of an `impl` header (text between `impl` and `{`): the
/// segment after `for` when present, otherwise the first type; module
/// paths and generic arguments are stripped to the last plain segment.
fn impl_self_type(header: &str) -> Option<String> {
    // Strip a leading generic parameter list `<…>` (angle-nesting aware).
    let h = header.trim();
    let h = if let Some(rest) = h.strip_prefix('<') {
        let mut depth = 1i64;
        let mut cut = rest.len();
        for (k, c) in rest.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = k + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        &rest[cut..]
    } else {
        h
    };
    // `impl Tr for Ty` → the part after the last top-level ` for `.
    let ty_part = match split_top_level_for(h) {
        Some((_, ty)) => ty,
        None => h,
    };
    last_type_segment(ty_part)
}

/// Split `Tr for Ty` at a ` for ` that is outside any `<`…`>` nesting.
fn split_top_level_for(s: &str) -> Option<(&str, &str)> {
    let bytes = s.as_bytes();
    let mut angle = 0i64;
    let mut k = 0usize;
    while k + 5 <= bytes.len() {
        match bytes[k] {
            b'<' => angle += 1,
            b'>' => angle = (angle - 1).max(0),
            b'f' if angle == 0 && s[k..].starts_with("for ") => {
                let before_ok = k == 0
                    || !s[..k]
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_');
                if before_ok {
                    return Some((&s[..k], &s[k + 4..]));
                }
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// `sched::Scheduler<T>` → `Scheduler`; `&mut Foo` → `Foo`; `(A, B)` → None.
fn last_type_segment(s: &str) -> Option<String> {
    let s = s.trim().trim_start_matches(['&', '*']).trim();
    let s = s
        .strip_prefix("mut ")
        .or_else(|| s.strip_prefix("dyn "))
        .unwrap_or(s)
        .trim();
    let base = match s.find('<') {
        Some(k) => &s[..k],
        None => s,
    };
    let seg = base.rsplit("::").next().unwrap_or(base).trim();
    if seg.is_empty() || !seg.chars().next().is_some_and(|c| c.is_alphabetic()) {
        return None;
    }
    if seg.chars().all(|c| c.is_alphanumeric() || c == '_') {
        Some(seg.to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn items(src: &str) -> FileItems {
        parse(&lexer::analyze(src))
    }

    #[test]
    fn free_functions_and_bodies() {
        let src = "fn alpha() { beta(); }\nfn beta() {}\n";
        let it = items(src);
        assert_eq!(it.functions.len(), 2);
        assert_eq!(it.functions[0].name, "alpha");
        assert_eq!(it.functions[0].self_ty, None);
        assert_eq!(it.functions[0].line, 1);
        assert!(it.functions[0].body.contains("beta()"));
        assert_eq!(it.functions[1].name, "beta");
        assert_eq!(it.functions[1].body.trim(), "");
    }

    #[test]
    fn inherent_and_trait_impl_methods_get_self_ty() {
        let src = "struct S;\nimpl S {\n    pub fn make() -> S { S }\n}\n\
                   impl std::fmt::Display for S {\n    fn fmt(&self) -> u8 { 0 }\n}\n";
        let it = items(src);
        let make = it.functions.iter().find(|f| f.name == "make").unwrap();
        assert_eq!(make.self_ty.as_deref(), Some("S"));
        let fmt = it.functions.iter().find(|f| f.name == "fmt").unwrap();
        assert_eq!(fmt.self_ty.as_deref(), Some("S"));
    }

    #[test]
    fn generic_impls_resolve_to_base_type() {
        let src = "impl<T: Clone> Wrapper<T> {\n    fn get(&self) -> &T { &self.0 }\n}\n";
        let it = items(src);
        assert_eq!(it.functions[0].self_ty.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn trait_decls_and_default_bodies() {
        let src = "trait Probe {\n    fn on_event(&mut self);\n    fn on_stop(&mut self) {}\n}\n";
        let it = items(src);
        let decl = it.functions.iter().find(|f| f.name == "on_event").unwrap();
        assert_eq!(decl.self_ty.as_deref(), Some("Probe"));
        assert!(decl.body.is_empty());
    }

    #[test]
    fn nested_fns_inside_bodies_are_found() {
        let src = "fn outer() {\n    fn inner() { x(); }\n    inner();\n}\n";
        let it = items(src);
        let names: Vec<&str> = it.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
        assert_eq!(it.functions[1].line, 2);
    }

    #[test]
    fn test_mask_flows_through() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let it = items(src);
        assert!(!it.functions[0].is_test);
        assert!(it.functions[1].is_test, "{:?}", it.functions[1]);
    }

    #[test]
    fn uses_and_mods_recorded() {
        let src = "use crate::backfill::{self, Plan};\nmod window;\npub mod inner { fn f() {} }\n";
        let it = items(src);
        assert_eq!(it.uses.len(), 1);
        assert!(it.uses[0].path.contains("backfill"));
        assert_eq!(it.mods, ["window", "inner"]);
    }

    #[test]
    fn match_arm_braces_do_not_break_scoping() {
        let src = "impl S {\n    fn a(&self) -> u8 { match 0 { 0 => { 1 } _ => 2 } }\n    fn b(&self) {}\n}\n";
        let it = items(src);
        assert_eq!(it.functions.len(), 2);
        assert_eq!(it.functions[1].self_ty.as_deref(), Some("S"));
    }

    #[test]
    fn impl_header_edge_cases() {
        assert_eq!(impl_self_type(" Scheduler "), Some("Scheduler".into()));
        assert_eq!(
            impl_self_type("<T> sched::Scheduler<T> "),
            Some("Scheduler".into())
        );
        assert_eq!(
            impl_self_type(" Probe for NoProbe "),
            Some("NoProbe".into())
        );
        assert_eq!(
            impl_self_type("<'a> Iterator for Iter<'a> "),
            Some("Iter".into())
        );
        assert_eq!(impl_self_type("<T> From<T> for (A, B) "), None);
    }
}
