//! The `simlint.toml` allowlist: audited exceptions to the lint rules.
//!
//! The file is a flat array-of-tables in a tiny TOML subset (this tool is
//! dependency-free), one entry per exception:
//!
//! ```toml
//! [[allow]]
//! rule = "R4"
//! path = "crates/core/src/driver.rs"
//! contains = ".expect(\"live payload\")"
//! reason = "RunningSet and live are updated in lockstep; absence is a simulator bug."
//! ```
//!
//! An entry suppresses a violation when the rule id matches, `path` equals
//! the repo-relative file path, and the flagged line contains `contains`.
//! Every entry must carry a non-empty `reason`: the point of the file is an
//! audit trail, not a mute button. Unknown keys are errors so typos cannot
//! silently disable an entry.

/// One audited exception.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Allow {
    /// Rule id: "R1" … "R4".
    pub rule: String,
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// Substring of the offending line.
    pub contains: String,
    /// Why this occurrence is sound.
    pub reason: String,
}

/// Parse `simlint.toml` text into allow entries.
pub fn parse(text: &str) -> Result<Vec<Allow>, String> {
    let mut out: Vec<Allow> = Vec::new();
    let mut current: Option<Allow> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(a) = current.take() {
                finish(a, &mut out)?;
            }
            current = Some(Allow::default());
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "simlint.toml:{}: expected key = \"value\"",
                lineno + 1
            ));
        };
        let entry = current
            .as_mut()
            .ok_or_else(|| format!("simlint.toml:{}: key outside [[allow]]", lineno + 1))?;
        let value = unquote(value.trim())
            .ok_or_else(|| format!("simlint.toml:{}: value must be a quoted string", lineno + 1))?;
        match key.trim() {
            "rule" => entry.rule = value,
            "path" => entry.path = value,
            "contains" => entry.contains = value,
            "reason" => entry.reason = value,
            other => {
                return Err(format!(
                    "simlint.toml:{}: unknown key `{other}`",
                    lineno + 1
                ));
            }
        }
    }
    if let Some(a) = current.take() {
        finish(a, &mut out)?;
    }
    Ok(out)
}

fn finish(a: Allow, out: &mut Vec<Allow>) -> Result<(), String> {
    if a.rule.is_empty() || a.path.is_empty() || a.contains.is_empty() {
        return Err(format!(
            "simlint.toml: entry for `{}` must set rule, path and contains",
            if a.path.is_empty() { "?" } else { &a.path }
        ));
    }
    if a.reason.trim().is_empty() {
        return Err(format!(
            "simlint.toml: entry {} @ {} has no reason — allowlisting requires a justification",
            a.rule, a.path
        ));
    }
    out.push(a);
    Ok(())
}

/// Strip surrounding quotes and unescape `\"` and `\\`.
fn unquote(s: &str) -> Option<String> {
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries() {
        let text = r#"
# audited exceptions
[[allow]]
rule = "R4"
path = "crates/core/src/driver.rs"
contains = ".expect(\"live payload\")"
reason = "lockstep maps"

[[allow]]
rule = "R3"
path = "crates/machine/src/outage.rs"
contains = "from_secs_f64"
reason = "sampled gaps"
"#;
        let allows = parse(text).unwrap();
        assert_eq!(allows.len(), 2);
        assert_eq!(allows[0].rule, "R4");
        assert_eq!(allows[0].contains, r#".expect("live payload")"#);
        assert_eq!(allows[1].path, "crates/machine/src/outage.rs");
    }

    #[test]
    fn reason_is_mandatory() {
        let text = "[[allow]]\nrule = \"R1\"\npath = \"x.rs\"\ncontains = \"HashMap\"\n";
        assert!(parse(text).unwrap_err().contains("justification"));
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let text = "[[allow]]\nrule = \"R1\"\npathh = \"x.rs\"\n";
        assert!(parse(text).unwrap_err().contains("unknown key"));
    }

    #[test]
    fn keys_outside_entry_are_rejected() {
        assert!(parse("rule = \"R1\"\n").unwrap_err().contains("outside"));
    }
}
