//! The repo-specific rules. Each rule is a token pattern plus a scope
//! (which crates, which files, test or non-test code); the motivation for
//! every rule is recorded in DESIGN.md "Determinism & invariants".

use crate::lexer;

/// Crates whose code is (or feeds) replayed simulation state. Names are
/// the directory names under `crates/`.
pub const DETERMINISM_CRATES: &[&str] = &[
    "sched", "machine", "simkit", "core", "workload", "analysis", "obs", "tracekit",
];

/// Crates allowed to read the wall clock: the benchmark harness times real
/// execution, and is never part of a simulated replay.
pub const WALLCLOCK_EXEMPT_CRATES: &[&str] = &["bench"];

/// The single file allowed to convert between `f64` seconds and sim time.
pub const TIME_MODULE: &str = "crates/simkit/src/time.rs";

/// Crates whose f64 accumulations must be order-audited (R7): the sim
/// crates whose numbers a parallel fleet runner will fold across threads.
/// `analysis` and `tracekit` sit past the report boundary — their floats
/// are derived from already-final per-run state in a pinned order.
pub const FLOAT_ORDER_CRATES: &[&str] = &["sched", "machine", "simkit", "core", "workload", "obs"];

/// How a source file participates in the rule set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// Library code under `crates/*/src` (minus `src/bin`): full rules.
    Lib,
    /// `crates/*/src/bin/*`: binaries get the relaxed set — R1 and R5
    /// stay (shared-state/ordering bugs in drivers still corrupt runs),
    /// R2/R4 are waived (binaries time and panic freely).
    Bin,
    /// The root `examples/` tree: same relaxed set as binaries.
    Example,
}

/// Classify a repo-relative path.
pub fn classify(rel_path: &str) -> FileClass {
    if rel_path.starts_with("examples/") {
        FileClass::Example
    } else if rel_path.contains("/src/bin/") {
        FileClass::Bin
    } else {
        FileClass::Lib
    }
}

/// One diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Rule id: "R1" … "R8".
    pub rule: &'static str,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What went wrong and why it matters.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.path, self.line, self.rule, self.message, self.excerpt
        )
    }
}

/// Is `needle` present in `hay` as a whole token (not an identifier infix)?
pub fn token_match(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(k) = hay[from..].find(needle) {
        let at = from + k;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = hay[at + needle.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// Crate directory name for a repo-relative path (`crates/<name>/…`), or
/// `"."` for the root package's sources.
pub fn crate_of(rel_path: &str) -> &str {
    let mut parts = rel_path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("."),
        _ => ".",
    }
}

/// Lint one source file. `rel_path` uses forward slashes from the repo
/// root and determines the crate and [`FileClass`]; test regions and
/// literal/comment contents are exempt by construction (see
/// [`crate::lexer`]).
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Violation> {
    let krate = crate_of(rel_path);
    let class = classify(rel_path);
    let cleaned = lexer::analyze(src);
    let mut out = Vec::new();

    let relaxed = matches!(class, FileClass::Bin | FileClass::Example);
    let det = DETERMINISM_CRATES.contains(&krate);
    let wallclock_ok = WALLCLOCK_EXEMPT_CRATES.contains(&krate);
    let is_time_module = rel_path == TIME_MODULE;

    // Which rules apply here. Binaries and examples get the relaxed set:
    // R1 and R5 only — they feed data into replays and fan work out, so
    // ordering and shared-state hazards still matter, but they may time,
    // print and panic freely.
    let r1 = det || relaxed;
    let r2 = !relaxed && !wallclock_ok;
    let r3 = !relaxed && det && !is_time_module;
    let r4 = !relaxed && det;
    let r5 = det || relaxed;
    let r6 = !relaxed;
    let r7 = !relaxed && FLOAT_ORDER_CRATES.contains(&krate);

    for (idx, (line, orig)) in cleaned.text.lines().zip(src.lines()).enumerate() {
        if cleaned.test_mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let lineno = idx + 1;
        let mut push = |rule: &'static str, message: String| {
            out.push(Violation {
                rule,
                path: rel_path.to_string(),
                line: lineno,
                message,
                excerpt: orig.trim().to_string(),
            });
        };

        // R1 — nondeterministic iteration order in simulation state.
        if r1 {
            for ty in ["HashMap", "HashSet"] {
                if token_match(line, ty) {
                    push(
                        "R1",
                        format!(
                            "{ty} in simulation code: iteration order varies per process, \
                             breaking bit-for-bit replay — use BTreeMap/BTreeSet or a \
                             sorted Vec"
                        ),
                    );
                }
            }
        }

        // R2 — wall-clock leakage into simulated time.
        if r2 {
            for pat in [
                "SystemTime::now",
                "Instant::now",
                "thread_rng",
                "rand::random",
            ] {
                if token_match(line, pat) {
                    push(
                        "R2",
                        format!(
                            "{pat} outside the bench harness: simulations must be pure \
                             functions of their seeds and SimTime"
                        ),
                    );
                }
            }
        }

        // R3 — f64→time conversion outside simkit::time.
        if r3 && token_match(line, "from_secs_f64") {
            push(
                "R3",
                "f64→time conversion outside simkit::time: float time arithmetic \
                 drifts across platforms; convert at an audited boundary or stay in \
                 integer seconds"
                    .to_string(),
            );
        }

        // R4 — unchecked panics in library code.
        if r4 {
            if line.contains(".unwrap()") {
                push(
                    "R4",
                    "unwrap() in library code: panics erase the failure context — \
                     return a typed error, or use an invariant-documented expect() \
                     allowlisted in simlint.toml"
                        .to_string(),
                );
            }
            if line.contains(".expect(") {
                push(
                    "R4",
                    "expect() in library code: allowed only for documented invariants \
                     — add a simlint.toml entry stating why it cannot fire"
                        .to_string(),
                );
            }
        }

        // R5 — shared-mutable-state hazards: anything that would make sim
        // state non-Send/Sync (or let two fleet threads alias it) when the
        // ensemble runner fans replays out across cores.
        if r5 {
            if line.contains("static mut") {
                push(
                    "R5",
                    "static mut in simulation code: ambient mutable state is shared \
                     by every fleet thread and breaks replay isolation — thread the \
                     state through explicitly"
                        .to_string(),
                );
            }
            for ty in ["RefCell", "Cell", "UnsafeCell", "Rc"] {
                if token_match(line, ty) {
                    push(
                        "R5",
                        format!(
                            "{ty} in simulation code: !Send/!Sync interior mutability \
                             blocks the parallel fleet fan-out — use plain &mut \
                             threading, or Arc over immutable data"
                        ),
                    );
                }
            }
            if token_match(line, "unsafe") {
                push(
                    "R5",
                    "unsafe in simulation code: manual aliasing/Send/Sync claims are \
                     exactly what the determinism audit cannot check — justify in \
                     simlint.toml or restructure"
                        .to_string(),
                );
            }
        }

        // R6 — RNG discipline: entropy may enter only as the explicit u64
        // seed at the CLI boundary; any in-process entropy source makes a
        // run irreproducible (and RandomState additionally randomizes hash
        // iteration order).
        if r6 {
            for pat in [
                "from_entropy",
                "from_os_rng",
                "OsRng",
                "getrandom",
                "RandomState",
            ] {
                if token_match(line, pat) {
                    push(
                        "R6",
                        format!(
                            "{pat}: entropy-seeded RNG construction outside the seed \
                             boundary — every generator must derive from the run's \
                             explicit u64 seed (simkit::Rng::new/split)"
                        ),
                    );
                }
            }
        }

        // R7 — float accumulation order: parallel ensembles merge partial
        // results, and f64 addition does not commute with reordering. Sum
        // integers (exact at any order) or record the fixed-order argument
        // in simlint.toml.
        if r7 {
            let sum_f64 = token_match(line, "sum::<f64>")
                || (line.contains(".sum()") && line.contains("f64"));
            let fold_f64 = line.contains("fold(0.0") || line.contains("fold(0f64");
            if sum_f64 || fold_f64 {
                push(
                    "R7",
                    "f64 accumulation in a sim crate: result depends on summation \
                     order, which a parallel ensemble merge will vary — accumulate \
                     in integer units, or audit the fixed order in simlint.toml"
                        .to_string(),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn determinism_rules_cover_the_fault_subsystem() {
        // The fault-injection path runs through all of these crates
        // (model synthesis, kill/requeue scheduling, event recording,
        // trace parsing, resilience reporting). Same-seed replay of a
        // faulted run is an acceptance criterion, so none of them may
        // drop out of the determinism lint's scope.
        for krate in ["machine", "sched", "core", "obs", "tracekit", "analysis"] {
            assert!(
                DETERMINISM_CRATES.contains(&krate),
                "{krate} hosts fault-subsystem code and must stay determinism-linted"
            );
        }
    }

    #[test]
    fn determinism_rules_cover_the_work_counter_path() {
        // Work counters are an acceptance artifact: same-seed runs must
        // produce bitwise-identical counters, and `perf compare` diffs
        // them exactly. Every crate that increments or folds them must
        // therefore stay inside the determinism lint's scope — and only
        // `bench` may read the wall clock (the harness times replays; the
        // counted code itself must not).
        for krate in ["simkit", "sched", "core", "obs", "tracekit"] {
            assert!(
                DETERMINISM_CRATES.contains(&krate),
                "{krate} hosts work-counter code and must stay determinism-linted"
            );
        }
        assert_eq!(
            WALLCLOCK_EXEMPT_CRATES,
            ["bench"],
            "R2's wall-clock exemption must stay scoped to the bench harness"
        );
    }

    #[test]
    fn r1_flags_hash_collections_in_sim_crates() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashSet<u32> }\n";
        let v = lint_source("crates/sched/src/x.rs", src);
        assert_eq!(rules_of(&v), ["R1", "R1"]);
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 2);
        // Same source in an exempt crate: clean.
        assert!(lint_source("crates/cli/src/x.rs", src).is_empty());
    }

    #[test]
    fn r1_ignores_comments_strings_and_tests() {
        let src = "// HashMap here\nlet s = \"HashMap\";\n#[cfg(test)]\nmod t { use std::collections::HashMap; }\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn r2_flags_wall_clock_everywhere_but_bench() {
        let src = "let t = std::time::Instant::now();\n";
        assert_eq!(rules_of(&lint_source("crates/cli/src/x.rs", src)), ["R2"]);
        assert_eq!(
            rules_of(&lint_source("crates/simkit/src/x.rs", src)),
            ["R2"]
        );
        assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn r3_flags_float_time_outside_time_module() {
        let src = "let d = SimDuration::from_secs_f64(x);\n";
        assert_eq!(rules_of(&lint_source("crates/core/src/x.rs", src)), ["R3"]);
        assert!(lint_source("crates/simkit/src/time.rs", src).is_empty());
    }

    #[test]
    fn r4_flags_unwrap_and_expect_in_lib_code() {
        let src = "let a = x.unwrap();\nlet b = y.expect(\"msg\");\nlet c = z.unwrap_or(0);\n";
        let v = lint_source("crates/machine/src/x.rs", src);
        assert_eq!(rules_of(&v), ["R4", "R4"]);
        // Binary/bench crates may panic freely.
        assert!(lint_source("crates/cli/src/x.rs", src).is_empty());
        assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn r5_flags_shared_mutable_state_in_sim_crates() {
        let src = "static mut COUNT: u32 = 0;\nlet c = RefCell::new(0);\nlet r = Rc::new(1);\nunsafe { x() }\n";
        let v = lint_source("crates/machine/src/x.rs", src);
        assert_eq!(rules_of(&v), ["R5", "R5", "R5", "R5"]);
        // Non-sim library crates (cli) are outside R5's scope.
        assert!(lint_source("crates/cli/src/x.rs", src).is_empty());
    }

    #[test]
    fn r5_negative_arc_and_lookalike_identifiers() {
        // Arc is the sanctioned sharing primitive; names merely containing
        // Cell/Rc are not hits.
        let src = "let a = Arc::new(1);\nstruct Cellar { rc_count: u32 }\n";
        assert!(lint_source("crates/sched/src/x.rs", src).is_empty());
    }

    #[test]
    fn r6_flags_entropy_seeded_rng_everywhere() {
        let src = "let r = StdRng::from_entropy();\nlet o = OsRng;\nlet h: RandomState = Default::default();\n";
        let v = lint_source("crates/cli/src/x.rs", src);
        assert_eq!(rules_of(&v), ["R6", "R6", "R6"]);
        // Even the bench harness: its wall-clock exemption (R2) does not
        // extend to entropy — timed replays must still be reproducible.
        let v = lint_source("crates/bench/src/x.rs", src);
        assert_eq!(rules_of(&v), ["R6", "R6", "R6"]);
        // Seed-derived construction is the sanctioned path.
        let ok = "let r = Rng::new(seed);\nlet s = rng.split(7);\n";
        assert!(lint_source("crates/simkit/src/x.rs", ok).is_empty());
    }

    #[test]
    fn r7_flags_float_accumulation_in_float_order_crates() {
        let src = "let s: f64 = xs.iter().sum();\nlet t = xs.iter().sum::<f64>();\nlet u = xs.iter().fold(0.0, |a, b| a + b);\n";
        let v = lint_source("crates/workload/src/x.rs", src);
        assert_eq!(rules_of(&v), ["R7", "R7", "R7"]);
        // Integer sums are exact at any merge order: clean.
        let ok = "let n: u64 = xs.iter().sum();\nlet m = xs.iter().sum::<u64>();\n";
        assert!(lint_source("crates/workload/src/x.rs", ok).is_empty());
        // analysis/tracekit sit past the report boundary.
        assert!(lint_source("crates/analysis/src/x.rs", src).is_empty());
        assert!(lint_source("crates/tracekit/src/x.rs", src).is_empty());
    }

    #[test]
    fn binaries_and_examples_get_the_relaxed_rule_set() {
        let src = "let m = HashMap::new();\nlet c = RefCell::new(0);\nlet t = Instant::now();\nlet v = x.unwrap();\nlet s: f64 = xs.iter().sum();\n";
        // R1 and R5 still fire in drivers; R2/R4/R7 are waived there.
        assert_eq!(
            rules_of(&lint_source("crates/sched/src/bin/tool.rs", src)),
            ["R1", "R5"]
        );
        assert_eq!(
            rules_of(&lint_source("examples/demo.rs", src)),
            ["R1", "R5"]
        );
        // The same source as determinism-crate library code: full set.
        assert_eq!(
            rules_of(&lint_source("crates/sched/src/x.rs", src)),
            ["R1", "R5", "R2", "R4", "R7"]
        );
    }

    #[test]
    fn float_order_scope_is_nested_in_determinism_scope() {
        // R7 is a refinement of the determinism audit: every float-order
        // crate must also be determinism-linted, and the two crates past
        // the report boundary are excluded deliberately, not forgotten.
        for krate in FLOAT_ORDER_CRATES {
            assert!(
                DETERMINISM_CRATES.contains(krate),
                "{krate} is R7-scoped but not determinism-linted"
            );
        }
        for krate in ["analysis", "tracekit"] {
            assert!(
                !FLOAT_ORDER_CRATES.contains(&krate),
                "{krate} sits past the report boundary and is exempt from R7"
            );
            assert!(DETERMINISM_CRATES.contains(&krate));
        }
    }

    #[test]
    fn observability_instruments_stay_linted() {
        // The obs crate carries two audited wall-clock/unsafe exceptions
        // (PhaseProfiler, CycleRecorder, CountingAlloc — simlint.toml,
        // DESIGN.md §8/§14). The allows are only honest while the lints
        // still fire on the underlying tokens: if obs ever drops out of
        // the determinism scope, or the token patterns stop matching,
        // the allowlist would silently rot into dead entries guarding
        // nothing. Pin the behavior on representative sources.
        assert!(DETERMINISM_CRATES.contains(&"obs"));
        let clock = "fn begin(&self) -> Option<Instant> {\n    Some(Instant::now())\n}\n";
        assert_eq!(
            rules_of(&lint_source("crates/obs/src/recorder.rs", clock)),
            ["R2"],
            "Instant::now in obs lib code must keep tripping R2"
        );
        let alloc = "unsafe impl GlobalAlloc for CountingAlloc {}\n";
        assert_eq!(
            rules_of(&lint_source("crates/obs/src/alloc.rs", alloc)),
            ["R5"],
            "the unsafe allocator impl in obs must keep tripping R5"
        );
    }

    #[test]
    fn telemetry_module_stays_inside_the_purity_scope() {
        // The telemetry bus's whole contract is sim-time purity: the same
        // seed must export byte-identical series (DESIGN.md §16). That
        // only holds while the module stays in the determinism/R2 scope —
        // a clock sneaking into cadence math must fail the lint, not skew
        // ticks. Unlike profile.rs/recorder.rs, telemetry.rs has no
        // audited wall-clock exception, and this test pins both halves.
        let clock = "impl TelemetryBus {\n    fn skewed(&self) -> u64 {\n        \
                     Instant::now().elapsed().as_secs()\n    }\n}\n";
        assert_eq!(
            rules_of(&lint_source("crates/obs/src/telemetry.rs", clock)),
            ["R2"],
            "wall-clock reads in the telemetry module must keep tripping R2"
        );
        let map = "fn columns() -> HashMap<&'static str, Vec<u64>> {\n    HashMap::new()\n}\n";
        assert_eq!(
            rules_of(&lint_source("crates/obs/src/telemetry.rs", map)),
            ["R1", "R1"],
            "hash-ordered storage in the telemetry module must keep tripping R1"
        );
        // And the workspace allowlist must not quietly grow a telemetry
        // exception: the two existing wall-clock allows are the only ones.
        let allows = crate::allow::parse(include_str!("../../../simlint.toml"))
            .expect("workspace simlint.toml parses");
        assert!(
            allows.iter().all(|a| !a.path.contains("telemetry")),
            "no simlint.toml exception may cover the telemetry module"
        );
    }

    #[test]
    fn token_boundaries_respected() {
        // Identifiers merely containing the pattern are not violations.
        let src = "struct MyHashMapLike;\nfn hash_set_ish() {}\n";
        assert!(lint_source("crates/sched/src/x.rs", src).is_empty());
    }
}
