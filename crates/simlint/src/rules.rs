//! The repo-specific rules. Each rule is a token pattern plus a scope
//! (which crates, which files, test or non-test code); the motivation for
//! every rule is recorded in DESIGN.md "Determinism & invariants".

use crate::lexer;

/// Crates whose code is (or feeds) replayed simulation state. Names are
/// the directory names under `crates/`.
pub const DETERMINISM_CRATES: &[&str] = &[
    "sched", "machine", "simkit", "core", "workload", "analysis", "obs", "tracekit",
];

/// Crates allowed to read the wall clock: the benchmark harness times real
/// execution, and is never part of a simulated replay.
pub const WALLCLOCK_EXEMPT_CRATES: &[&str] = &["bench"];

/// The single file allowed to convert between `f64` seconds and sim time.
pub const TIME_MODULE: &str = "crates/simkit/src/time.rs";

/// One diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Rule id: "R1" … "R4".
    pub rule: &'static str,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What went wrong and why it matters.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.path, self.line, self.rule, self.message, self.excerpt
        )
    }
}

/// Is `needle` present in `hay` as a whole token (not an identifier infix)?
fn token_match(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(k) = hay[from..].find(needle) {
        let at = from + k;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = hay[at + needle.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// Crate directory name for a repo-relative path (`crates/<name>/…`), or
/// `"."` for the root package's sources.
pub fn crate_of(rel_path: &str) -> &str {
    let mut parts = rel_path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("."),
        _ => ".",
    }
}

/// Lint one source file. `rel_path` uses forward slashes from the repo
/// root; test regions and literal/comment contents are exempt by
/// construction (see [`crate::lexer`]).
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Violation> {
    let krate = crate_of(rel_path);
    let cleaned = lexer::analyze(src);
    let mut out = Vec::new();

    let det = DETERMINISM_CRATES.contains(&krate);
    let wallclock_ok = WALLCLOCK_EXEMPT_CRATES.contains(&krate);
    let is_time_module = rel_path == TIME_MODULE;

    for (idx, (line, orig)) in cleaned.text.lines().zip(src.lines()).enumerate() {
        if cleaned.test_mask.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let lineno = idx + 1;
        let mut push = |rule: &'static str, message: String| {
            out.push(Violation {
                rule,
                path: rel_path.to_string(),
                line: lineno,
                message,
                excerpt: orig.trim().to_string(),
            });
        };

        // R1 — nondeterministic iteration order in simulation state.
        if det {
            for ty in ["HashMap", "HashSet"] {
                if token_match(line, ty) {
                    push(
                        "R1",
                        format!(
                            "{ty} in simulation code: iteration order varies per process, \
                             breaking bit-for-bit replay — use BTreeMap/BTreeSet or a \
                             sorted Vec"
                        ),
                    );
                }
            }
        }

        // R2 — wall-clock leakage into simulated time.
        if !wallclock_ok {
            for pat in [
                "SystemTime::now",
                "Instant::now",
                "thread_rng",
                "rand::random",
            ] {
                if token_match(line, pat) {
                    push(
                        "R2",
                        format!(
                            "{pat} outside the bench harness: simulations must be pure \
                             functions of their seeds and SimTime"
                        ),
                    );
                }
            }
        }

        // R3 — f64→time conversion outside simkit::time.
        if det && !is_time_module && token_match(line, "from_secs_f64") {
            push(
                "R3",
                "f64→time conversion outside simkit::time: float time arithmetic \
                 drifts across platforms; convert at an audited boundary or stay in \
                 integer seconds"
                    .to_string(),
            );
        }

        // R4 — unchecked panics in library code.
        if det {
            if line.contains(".unwrap()") {
                push(
                    "R4",
                    "unwrap() in library code: panics erase the failure context — \
                     return a typed error, or use an invariant-documented expect() \
                     allowlisted in simlint.toml"
                        .to_string(),
                );
            }
            if line.contains(".expect(") {
                push(
                    "R4",
                    "expect() in library code: allowed only for documented invariants \
                     — add a simlint.toml entry stating why it cannot fire"
                        .to_string(),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn determinism_rules_cover_the_fault_subsystem() {
        // The fault-injection path runs through all of these crates
        // (model synthesis, kill/requeue scheduling, event recording,
        // trace parsing, resilience reporting). Same-seed replay of a
        // faulted run is an acceptance criterion, so none of them may
        // drop out of the determinism lint's scope.
        for krate in ["machine", "sched", "core", "obs", "tracekit", "analysis"] {
            assert!(
                DETERMINISM_CRATES.contains(&krate),
                "{krate} hosts fault-subsystem code and must stay determinism-linted"
            );
        }
    }

    #[test]
    fn determinism_rules_cover_the_work_counter_path() {
        // Work counters are an acceptance artifact: same-seed runs must
        // produce bitwise-identical counters, and `perf compare` diffs
        // them exactly. Every crate that increments or folds them must
        // therefore stay inside the determinism lint's scope — and only
        // `bench` may read the wall clock (the harness times replays; the
        // counted code itself must not).
        for krate in ["simkit", "sched", "core", "obs", "tracekit"] {
            assert!(
                DETERMINISM_CRATES.contains(&krate),
                "{krate} hosts work-counter code and must stay determinism-linted"
            );
        }
        assert_eq!(
            WALLCLOCK_EXEMPT_CRATES,
            ["bench"],
            "R2's wall-clock exemption must stay scoped to the bench harness"
        );
    }

    #[test]
    fn r1_flags_hash_collections_in_sim_crates() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashSet<u32> }\n";
        let v = lint_source("crates/sched/src/x.rs", src);
        assert_eq!(rules_of(&v), ["R1", "R1"]);
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 2);
        // Same source in an exempt crate: clean.
        assert!(lint_source("crates/cli/src/x.rs", src).is_empty());
    }

    #[test]
    fn r1_ignores_comments_strings_and_tests() {
        let src = "// HashMap here\nlet s = \"HashMap\";\n#[cfg(test)]\nmod t { use std::collections::HashMap; }\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn r2_flags_wall_clock_everywhere_but_bench() {
        let src = "let t = std::time::Instant::now();\n";
        assert_eq!(rules_of(&lint_source("crates/cli/src/x.rs", src)), ["R2"]);
        assert_eq!(
            rules_of(&lint_source("crates/simkit/src/x.rs", src)),
            ["R2"]
        );
        assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn r3_flags_float_time_outside_time_module() {
        let src = "let d = SimDuration::from_secs_f64(x);\n";
        assert_eq!(rules_of(&lint_source("crates/core/src/x.rs", src)), ["R3"]);
        assert!(lint_source("crates/simkit/src/time.rs", src).is_empty());
    }

    #[test]
    fn r4_flags_unwrap_and_expect_in_lib_code() {
        let src = "let a = x.unwrap();\nlet b = y.expect(\"msg\");\nlet c = z.unwrap_or(0);\n";
        let v = lint_source("crates/machine/src/x.rs", src);
        assert_eq!(rules_of(&v), ["R4", "R4"]);
        // Binary/bench crates may panic freely.
        assert!(lint_source("crates/cli/src/x.rs", src).is_empty());
        assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn token_boundaries_respected() {
        // Identifiers merely containing the pattern are not violations.
        let src = "struct MyHashMapLike;\nfn hash_set_ish() {}\n";
        assert!(lint_source("crates/sched/src/x.rs", src).is_empty());
    }
}
