//! A small Rust source "cleaner": blanks out comments and literal contents
//! so the rule passes can match tokens with plain string search, and maps
//! out `#[cfg(test)]` regions so test code can be exempted.
//!
//! This is deliberately not a full parser. The rules simlint enforces are
//! token-shaped (`HashMap`, `Instant::now`, `.unwrap()`), so all the
//! analysis needs is (a) to never match inside a comment, string, char or
//! raw-string literal, and (b) to know which byte ranges belong to test
//! code. Both are computable with a single linear scan plus brace matching
//! — no external syntax crate required (the build container is offline, so
//! `syn` is not an option; see DESIGN.md "Determinism & invariants").

/// A source file after cleaning: `text` has the same length and line
/// structure as the input, but comment bodies and literal contents are
/// replaced with spaces. `test_mask[line]` is true when the line lies
/// inside a `#[cfg(test)]` item or a `#[test]` function.
pub struct Cleaned {
    /// The blanked source (same byte length as the input).
    pub text: String,
    /// Per-line test-region flags, index 0 = line 1.
    pub test_mask: Vec<bool>,
}

/// Blank comments and literal contents, preserving newlines and length.
pub fn clean(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(b.len());
    let n = b.len();
    let mut i = 0;
    // Push `c` or a space-preserving substitute for blanked regions.
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < n {
        let c = b[i];
        // Line comment (// and //! and ///).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 0usize;
            while i < n {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw string: r"..." / r#"..."# / br#"..."# with any # count.
        if (c == 'r' || c == 'b') && !prev_is_ident(&b, i) {
            let mut j = i;
            if b[j] == 'b' && j + 1 < n && b[j + 1] == 'r' {
                j += 1;
            }
            if b[j] == 'r' {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while k < n && b[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && b[k] == '"' {
                    // Emit the opener verbatim-ish (letters kept so token
                    // boundaries stay sane), blank the body.
                    for &ch in &b[i..=k] {
                        out.push(ch);
                    }
                    i = k + 1;
                    while i < n {
                        if b[i] == '"' && closes_raw(&b, i, hashes) {
                            out.push('"');
                            out.extend(std::iter::repeat_n('#', hashes));
                            i += 1 + hashes;
                            break;
                        }
                        out.push(blank(b[i]));
                        i += 1;
                    }
                    continue;
                }
            }
        }
        // Plain or byte string.
        if c == '"' {
            out.push('"');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    out.push(' ');
                    out.push(blank(b[i + 1])); // keep line continuations' newline
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    out.push('"');
                    i += 1;
                    break;
                }
                out.push(blank(b[i]));
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime: 'a' is a literal, 'a (no close) is a
        // lifetime. Escapes ('\n', '\u{..}') are always literals.
        if c == '\'' && i + 1 < n {
            if b[i + 1] == '\\' {
                out.push('\'');
                out.push(' ');
                out.push(' ');
                i += 2;
                while i < n && b[i] != '\'' {
                    out.push(' ');
                    i += 1;
                }
                if i < n {
                    out.push('\'');
                    i += 1;
                }
                continue;
            }
            if i + 2 < n && b[i + 2] == '\'' && b[i + 1] != '\'' {
                out.push('\'');
                out.push(' ');
                out.push('\'');
                i += 3;
                continue;
            }
            // Lifetime or label: keep as-is.
        }
        out.push(c);
        i += 1;
    }
    out.into_iter().collect()
}

fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')
}

/// Does the `"` at `i` close a raw string with `hashes` trailing `#`s?
fn closes_raw(b: &[char], i: usize, hashes: usize) -> bool {
    if i + hashes >= b.len() {
        return i + hashes == b.len() && hashes == 0;
    }
    b[i + 1..=i + hashes].iter().all(|&c| c == '#')
}

/// Compute per-line test flags over *cleaned* text: the body of any item
/// annotated `#[cfg(test)]` or `#[test]`, from the attribute line through
/// the item's closing brace.
pub fn test_mask(cleaned: &str) -> Vec<bool> {
    let line_count = cleaned.lines().count();
    let mut mask = vec![false; line_count];
    // Byte offset of the start of each line.
    let mut line_starts = vec![0usize];
    for (i, c) in cleaned.char_indices() {
        if c == '\n' {
            line_starts.push(i + 1);
        }
    }
    let line_of = |off: usize| line_starts.partition_point(|&s| s <= off) - 1;

    for (pos, _) in cleaned.match_indices("#[") {
        let attr_end = match cleaned[pos..].find(']') {
            Some(k) => pos + k,
            None => continue,
        };
        let attr = &cleaned[pos + 2..attr_end];
        let a = attr.replace(' ', "");
        if a != "cfg(test)" && a != "test" {
            continue;
        }
        // Find the annotated item's opening brace (first '{' at or after
        // the attribute that precedes any ';' — `#[cfg(test)] use x;` has
        // no body and marks only its own line).
        let rest = &cleaned[attr_end..];
        let open_rel = rest.find('{');
        let semi_rel = rest.find(';');
        let open = match (open_rel, semi_rel) {
            (Some(o), Some(s)) if s < o => {
                mask[line_of(pos)] = true;
                continue;
            }
            (Some(o), _) => attr_end + o,
            (None, _) => {
                mask[line_of(pos)] = true;
                continue;
            }
        };
        // Match braces to the item's end.
        let mut depth = 0i64;
        let mut end = cleaned.len();
        for (k, c) in cleaned[open..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + k;
                        break;
                    }
                }
                _ => {}
            }
        }
        let (first, last) = (line_of(pos), line_of(end.min(cleaned.len() - 1)));
        for m in mask.iter_mut().take(last + 1).skip(first) {
            *m = true;
        }
    }
    mask
}

/// Clean `src` and compute its test mask in one call.
pub fn analyze(src: &str) -> Cleaned {
    let text = clean(src);
    let test_mask = test_mask(&text);
    Cleaned { text, test_mask }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = r#"let x = "HashMap"; // HashMap
/* HashMap */ let y = 'H';"#;
        let c = clean(src);
        assert!(!c.contains("HashMap"), "{c}");
        assert_eq!(c.len(), src.len());
        assert_eq!(c.lines().count(), src.lines().count());
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = r##"let s = r#"Instant::now()"#; let t = 1;"##;
        let c = clean(src);
        assert!(!c.contains("Instant::now"), "{c}");
        assert!(c.contains("let t = 1;"));
    }

    #[test]
    fn lifetimes_survive() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let c = clean(src);
        assert_eq!(c, src);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* b */ c */ let z = 9;";
        let c = clean(src);
        assert!(c.contains("let z = 9;"));
        assert!(!c.contains('a') || !c.contains('b'));
    }

    #[test]
    fn escaped_quote_char_literal() {
        let src = r"let q = '\''; let w = '\n'; let s = 3;";
        let c = clean(src);
        assert!(c.contains("let s = 3;"));
    }

    // ---- false-negative regression suite: each construct below once let
    // ---- a forbidden token hide (or leak) past the cleaner in some draft
    // ---- of this lexer; one test per construct keeps them pinned.

    #[test]
    fn byte_strings_are_blanked() {
        let src = r#"let b = b"Instant::now()"; let k = 1;"#;
        let c = clean(src);
        assert!(!c.contains("Instant::now"), "{c}");
        assert!(c.contains("let k = 1;"), "{c}");
    }

    #[test]
    fn raw_byte_strings_are_blanked() {
        let src = r##"let b = br#"thread_rng()"#; let k = 2;"##;
        let c = clean(src);
        assert!(!c.contains("thread_rng"), "{c}");
        assert!(c.contains("let k = 2;"), "{c}");
    }

    #[test]
    fn raw_string_with_fewer_hashes_inside_does_not_close_early() {
        // `"#` inside an `r##"…"##` literal is content, not a terminator; a
        // lexer that closed there would leak `not yet` into scanned text.
        let src = r###"let s = r##"end "# not yet"##; let k = 6;"###;
        let c = clean(src);
        assert!(!c.contains("not yet"), "{c}");
        assert!(c.contains("let k = 6;"), "{c}");
    }

    #[test]
    fn nested_block_comment_hides_tokens_at_every_depth() {
        let src = "/* a /* HashMap */ thread_rng */ let k = 5;";
        let c = clean(src);
        assert!(!c.contains("HashMap"), "{c}");
        assert!(!c.contains("thread_rng"), "{c}");
        assert!(c.contains("let k = 5;"), "{c}");
    }

    #[test]
    fn double_quote_char_literal_does_not_open_a_string() {
        // If '"' were read as a string opener, everything to the next quote
        // (including real code) would be blanked — a mass false negative.
        let src = r#"let c = '"'; let x = opened(); let k = 3;"#;
        let c = clean(src);
        assert!(c.contains("let x = opened(); let k = 3;"), "{c}");
    }

    #[test]
    fn byte_char_literal_double_quote_does_not_open_a_string() {
        let src = r#"let c = b'"'; let x = opened(); let k = 4;"#;
        let c = clean(src);
        assert!(c.contains("let x = opened(); let k = 4;"), "{c}");
    }

    #[test]
    fn brace_char_literals_do_not_skew_brace_matching() {
        // '{' as a char must not look like a block opener, or every brace
        // count downstream (test mask, item parser) shifts by one.
        let src = "let c = '{'; fn f() { let k = 7; }";
        let c = clean(src);
        assert_eq!(c, "let c = ' '; fn f() { let k = 7; }");
    }

    #[test]
    fn double_slash_inside_string_is_not_a_comment() {
        // "http://x" must not swallow the rest of the line as a comment.
        let src = r#"let u = "http://x"; let k = later();"#;
        let c = clean(src);
        assert!(c.contains("let k = later();"), "{c}");
    }

    #[test]
    fn multiline_string_preserves_line_structure() {
        let src = "let s = \"a\nHashMap\nb\";\nlet k = 8;";
        let c = clean(src);
        assert!(!c.contains("HashMap"), "{c}");
        assert_eq!(c.lines().count(), src.lines().count());
        assert!(c.lines().last().unwrap().contains("let k = 8;"), "{c}");
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn tail() {}\n";
        let c = analyze(src);
        assert_eq!(c.test_mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn test_fn_is_masked() {
        let src = "fn a() {}\n#[test]\nfn t() {\n    x();\n}\nfn b() {}\n";
        let c = analyze(src);
        assert_eq!(c.test_mask, vec![false, true, true, true, true, false]);
    }
}
