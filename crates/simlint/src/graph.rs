//! An approximate cross-crate call graph over the item skeletons of
//! [`crate::items`], plus the R8 purity pass that walks it.
//!
//! Resolution is name-based and deliberately over-approximate in the
//! direction that matters for purity checking (more edges → more functions
//! proven pure, never fewer):
//!
//! * `Type::method(…)` resolves to every workspace method named `method`
//!   on a type named `Type`, in any crate.
//! * `self.method(…)` resolves to methods named `method` on the caller's
//!   own `Self` type only.
//! * `recv.method(…)` (unknown receiver) resolves to *every* workspace
//!   method with that name — std methods (`push`, `len`, …) simply have no
//!   workspace target and contribute nothing.
//! * `module::func(…)` and bare `func(…)` resolve to free functions with
//!   that name, preferring the caller's crate for bare calls.
//!
//! Test-masked functions and `bin`/`examples` sources are excluded: the
//! graph models the library hot path the determinism contract covers.

use crate::items::FnItem;
use std::collections::{BTreeMap, BTreeSet};

/// One function node in the workspace graph.
#[derive(Clone, Debug)]
pub struct Node {
    /// Display id: `crate::Type::name` or `crate::name`. Not necessarily
    /// unique (same method name in two impl blocks of one type); edges and
    /// reachability run over indices, ids are for humans and JSON.
    pub id: String,
    /// Crate directory name (`sched`, `simkit`, …).
    pub krate: String,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Bare function name.
    pub name: String,
    /// `Self` type when this is a method.
    pub self_ty: Option<String>,
    /// Outgoing call edges (node indices, sorted, deduplicated).
    pub calls: Vec<usize>,
    /// Impure tokens found in this function's own body:
    /// `(pattern, 1-based source line, category)`.
    pub impure: Vec<(String, usize, &'static str)>,
}

/// The workspace call graph.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// All nodes, sorted by (file, line).
    pub nodes: Vec<Node>,
}

/// An impure pattern the purity pass searches function bodies for.
pub struct ImpurePattern {
    /// The token to search for.
    pub token: &'static str,
    /// Category for the diagnostic: "wall-clock", "entropy" or "io".
    pub category: &'static str,
}

/// What R8 forbids anywhere reachable from the engine/scheduler roots.
/// Tokens are matched against cleaned text (comments/strings blanked), so
/// log messages naming these are fine.
pub const IMPURE_PATTERNS: &[ImpurePattern] = &[
    ImpurePattern {
        token: "Instant::now",
        category: "wall-clock",
    },
    ImpurePattern {
        token: "SystemTime::now",
        category: "wall-clock",
    },
    ImpurePattern {
        token: "thread_rng",
        category: "entropy",
    },
    ImpurePattern {
        token: "from_entropy",
        category: "entropy",
    },
    ImpurePattern {
        token: "OsRng",
        category: "entropy",
    },
    ImpurePattern {
        token: "getrandom",
        category: "entropy",
    },
    ImpurePattern {
        token: "std::fs",
        category: "io",
    },
    ImpurePattern {
        token: "File::open",
        category: "io",
    },
    ImpurePattern {
        token: "File::create",
        category: "io",
    },
    ImpurePattern {
        token: "println!",
        category: "io",
    },
    ImpurePattern {
        token: "eprintln!",
        category: "io",
    },
    ImpurePattern {
        token: "print!",
        category: "io",
    },
    ImpurePattern {
        token: "eprint!",
        category: "io",
    },
    ImpurePattern {
        token: "io::stdout",
        category: "io",
    },
    ImpurePattern {
        token: "io::stderr",
        category: "io",
    },
];

/// A function the purity pass roots at: `(crate, Self type or "", name)`.
pub type Root = (&'static str, &'static str, &'static str);

/// The R8 purity roots: one scheduling cycle and the simkit engine loop.
/// Everything transitively callable from these must be a pure function of
/// simulation state — no wall clock, no IO, no entropy.
pub const PURITY_ROOTS: &[Root] = &[
    ("sched", "Scheduler", "cycle"),
    ("sched", "Scheduler", "cycle_observed"),
    ("simkit", "", "run"),
    ("simkit", "", "run_probed"),
    ("core", "Simulator", "run"),
];

/// Input to [`CallGraph::build`]: one parsed library source file.
pub struct GraphSource {
    /// Repo-relative path.
    pub path: String,
    /// Crate directory name.
    pub krate: String,
    /// Parsed items.
    pub functions: Vec<FnItem>,
}

impl CallGraph {
    /// Build the graph from parsed files (test-masked fns are dropped).
    pub fn build(files: &[GraphSource]) -> CallGraph {
        let mut nodes: Vec<Node> = Vec::new();
        for f in files {
            for func in &f.functions {
                if func.is_test {
                    continue;
                }
                let id = match &func.self_ty {
                    Some(ty) => format!("{}::{}::{}", f.krate, ty, func.name),
                    None => format!("{}::{}", f.krate, func.name),
                };
                nodes.push(Node {
                    id,
                    krate: f.krate.clone(),
                    file: f.path.clone(),
                    line: func.line,
                    name: func.name.clone(),
                    self_ty: func.self_ty.clone(),
                    calls: Vec::new(),
                    impure: scan_impure(&func.body, func.body_line),
                });
            }
        }
        // Name-resolution indices.
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, nd) in nodes.iter().enumerate() {
            match &nd.self_ty {
                Some(ty) => {
                    methods.entry(&nd.name).or_default().push(i);
                    typed.entry((ty.as_str(), &nd.name)).or_default().push(i);
                }
                None => free.entry(&nd.name).or_default().push(i),
            }
        }

        // Map (file, line-order) back to node indices to find each node's
        // body again: rebuild per-file in the same order as construction.
        let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nodes.len()];
        let mut cursor = 0usize;
        for f in files {
            for func in &f.functions {
                if func.is_test {
                    continue;
                }
                let me = cursor;
                cursor += 1;
                for call in call_sites(&func.body) {
                    let targets: Vec<usize> = match &call {
                        CallSite::SelfMethod(name) => match &nodes[me].self_ty {
                            Some(ty) => typed
                                .get(&(ty.as_str(), name.as_str()))
                                .cloned()
                                .unwrap_or_default(),
                            None => Vec::new(),
                        },
                        CallSite::TypedPath(ty, name) => typed
                            .get(&(ty.as_str(), name.as_str()))
                            .cloned()
                            .unwrap_or_default(),
                        CallSite::Method(name) => {
                            methods.get(name.as_str()).cloned().unwrap_or_default()
                        }
                        CallSite::ModPath(_, name) | CallSite::Bare(name) => {
                            let all = free.get(name.as_str()).cloned().unwrap_or_default();
                            // Bare calls prefer same-crate free functions;
                            // fall back to the workspace-wide set (paths
                            // like `backfill::plan` are cross-module but
                            // names are rare enough to stay precise).
                            let same: Vec<usize> = all
                                .iter()
                                .copied()
                                .filter(|&t| nodes[t].krate == nodes[me].krate)
                                .collect();
                            if matches!(&call, CallSite::Bare(_)) && !same.is_empty() {
                                same
                            } else {
                                all
                            }
                        }
                    };
                    for t in targets {
                        if t != me {
                            edges[me].insert(t);
                        }
                    }
                }
            }
        }
        for (i, e) in edges.into_iter().enumerate() {
            nodes[i].calls = e.into_iter().collect();
        }
        CallGraph { nodes }
    }

    /// Node indices matching a root spec.
    pub fn find_roots(&self, roots: &[Root]) -> Vec<usize> {
        let mut out = Vec::new();
        for (krate, ty, name) in roots {
            for (i, nd) in self.nodes.iter().enumerate() {
                let ty_ok = if ty.is_empty() {
                    nd.self_ty.is_none()
                } else {
                    nd.self_ty.as_deref() == Some(*ty)
                };
                if nd.krate == *krate && ty_ok && nd.name == *name {
                    out.push(i);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// BFS over call edges; returns `parent[i]` (usize::MAX for roots and
    /// unreachable nodes) and the reachable set.
    pub fn reach(&self, roots: &[usize]) -> (Vec<usize>, BTreeSet<usize>) {
        let mut parent = vec![usize::MAX; self.nodes.len()];
        let mut seen: BTreeSet<usize> = roots.iter().copied().collect();
        let mut queue: Vec<usize> = roots.to_vec();
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &v in &self.nodes[u].calls {
                if seen.insert(v) {
                    parent[v] = u;
                    queue.push(v);
                }
            }
        }
        (parent, seen)
    }

    /// A human-readable call chain from some root to `target` using BFS
    /// parents: `sched::Scheduler::cycle → … → target`.
    pub fn chain(&self, parent: &[usize], target: usize) -> String {
        let mut ids = vec![self.nodes[target].id.clone()];
        let mut u = target;
        let mut guard = 0;
        while parent[u] != usize::MAX && guard < 64 {
            u = parent[u];
            ids.push(self.nodes[u].id.clone());
            guard += 1;
        }
        ids.reverse();
        ids.join(" → ")
    }

    /// Serialize the graph (with reachability/impurity annotations) as a
    /// deterministic JSON diagnostic artifact.
    pub fn to_json(&self, roots: &[usize], reachable: &BTreeSet<usize>) -> String {
        let mut out = String::from("{\"schema\":1,\"roots\":[");
        for (k, &r) in roots.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            push_json_str(&mut out, &self.nodes[r].id);
        }
        out.push_str("],\"functions\":[");
        for (i, nd) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"id\":");
            push_json_str(&mut out, &nd.id);
            out.push_str(",\"file\":");
            push_json_str(&mut out, &nd.file);
            let _ = std::fmt::Write::write_fmt(&mut out, format_args!(",\"line\":{}", nd.line));
            out.push_str(",\"reachable\":");
            out.push_str(if reachable.contains(&i) {
                "true"
            } else {
                "false"
            });
            out.push_str(",\"impure\":[");
            for (k, (tok, line, cat)) in nd.impure.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str("{\"token\":");
                push_json_str(&mut out, tok);
                let _ = std::fmt::Write::write_fmt(
                    &mut out,
                    format_args!(",\"line\":{line},\"category\":\"{cat}\"}}"),
                );
            }
            out.push_str("],\"calls\":[");
            for (k, &t) in nd.calls.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                push_json_str(&mut out, &self.nodes[t].id);
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (mirrors `obs::json`, which simlint cannot
/// depend on without dragging sim crates into the linter's build graph).
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One syntactic call site in a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallSite {
    /// `self.name(…)`.
    SelfMethod(String),
    /// `recv.name(…)` with an unknown receiver.
    Method(String),
    /// `Type::name(…)` (first segment starts uppercase).
    TypedPath(String, String),
    /// `module::name(…)` (first segment starts lowercase).
    ModPath(String, String),
    /// `name(…)` with no qualifier.
    Bare(String),
}

/// Rust keywords and common constructors that look like calls but are not.
fn is_call_noise(name: &str) -> bool {
    matches!(
        name,
        "if" | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "fn"
            | "Some"
            | "Ok"
            | "Err"
            | "None"
            | "Box"
            | "Vec"
            | "move"
            | "as"
            | "in"
            | "let"
            | "else"
            | "assert"
            | "debug_assert"
    )
}

/// Extract call sites from a (cleaned) function body.
pub fn call_sites(body: &str) -> Vec<CallSite> {
    let b: Vec<char> = body.chars().collect();
    let n = b.len();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < n {
        let c = b[i];
        if !(c.is_alphabetic() || c == '_')
            || (i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_'))
        {
            i += 1;
            continue;
        }
        let start = i;
        while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
            i += 1;
        }
        let name: String = b[start..i].iter().collect();
        // Optional turbofish `::<…>` between name and `(`.
        let mut j = i;
        if j + 2 < n && b[j] == ':' && b[j + 1] == ':' && b[j + 2] == '<' {
            let mut depth = 0i64;
            j += 2;
            while j < n {
                match b[j] {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Skip whitespace before the paren (`name (` is legal).
        let mut k = j;
        while k < n && b[k] == ' ' {
            k += 1;
        }
        if k >= n || b[k] != '(' {
            continue;
        }
        if is_call_noise(&name) {
            continue;
        }
        // Qualifier: what immediately precedes `start`?
        if start >= 1 && b[start - 1] == '.' {
            // Receiver word before the dot.
            let mut r = start - 1;
            while r > 0 && (b[r - 1].is_alphanumeric() || b[r - 1] == '_') {
                r -= 1;
            }
            let recv: String = b[r..start - 1].iter().collect();
            if recv == "self" {
                out.push(CallSite::SelfMethod(name));
            } else {
                out.push(CallSite::Method(name));
            }
            continue;
        }
        if start >= 2 && b[start - 1] == ':' && b[start - 2] == ':' {
            // Path segment before `::` (skip a closing `>` of generics —
            // `Foo::<T>::new` was already consumed as turbofish above, but
            // `Vec<u8>::from` style paths are rare; treat `>` as opaque).
            let mut r = start - 2;
            while r > 0 && (b[r - 1].is_alphanumeric() || b[r - 1] == '_') {
                r -= 1;
            }
            let seg: String = b[r..start - 2].iter().collect();
            if seg.is_empty() {
                out.push(CallSite::Bare(name));
            } else if seg.chars().next().is_some_and(|c| c.is_uppercase()) {
                out.push(CallSite::TypedPath(seg, name));
            } else if seg == "self" || seg == "crate" || seg == "super" {
                out.push(CallSite::Bare(name));
            } else {
                out.push(CallSite::ModPath(seg, name));
            }
            continue;
        }
        if name.chars().next().is_some_and(|c| c.is_uppercase()) {
            // Tuple-struct / enum-variant constructor, not a call.
            continue;
        }
        out.push(CallSite::Bare(name));
    }
    out
}

/// Scan a (cleaned) body for impure tokens; `body_line` is the 1-based
/// source line of the body's opening brace.
fn scan_impure(body: &str, body_line: usize) -> Vec<(String, usize, &'static str)> {
    let mut out = Vec::new();
    for (off, line) in body.lines().enumerate() {
        for p in IMPURE_PATTERNS {
            // Token-boundary matching so `eprintln!` is not also reported
            // as `println!` and `Instant::now` never matches identifiers
            // it merely prefixes.
            if crate::rules::token_match(line, p.token) {
                out.push((p.token.to_string(), body_line + off, p.category));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items;
    use crate::lexer;

    fn graph_of(files: &[(&str, &str, &str)]) -> CallGraph {
        let srcs: Vec<GraphSource> = files
            .iter()
            .map(|(path, krate, src)| GraphSource {
                path: path.to_string(),
                krate: krate.to_string(),
                functions: items::parse(&lexer::analyze(src)).functions,
            })
            .collect();
        CallGraph::build(&srcs)
    }

    #[test]
    fn call_site_extraction_covers_the_forms() {
        let body = "self.order(); plan_on_profile(x); backfill::plan(a); \
                    Scheduler::pbs(); q.push(1); total.sum::<f64>(); Some(3)";
        let sites = call_sites(body);
        assert!(sites.contains(&CallSite::SelfMethod("order".into())));
        assert!(sites.contains(&CallSite::Bare("plan_on_profile".into())));
        assert!(sites.contains(&CallSite::ModPath("backfill".into(), "plan".into())));
        assert!(sites.contains(&CallSite::TypedPath("Scheduler".into(), "pbs".into())));
        assert!(sites.contains(&CallSite::Method("push".into())));
        assert!(sites.contains(&CallSite::Method("sum".into())));
        assert!(!sites
            .iter()
            .any(|s| matches!(s, CallSite::Bare(n) if n == "Some")));
    }

    #[test]
    fn cross_crate_reachability_and_purity() {
        let g = graph_of(&[
            (
                "crates/a/src/lib.rs",
                "a",
                "pub struct Scheduler;\nimpl Scheduler {\n  pub fn cycle(&self) { helper(); }\n}\nfn helper() { b_mod::leaf(); }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "b",
                "pub fn leaf() { let t = Instant::now(); }\npub fn unrelated() {}\n",
            ),
        ]);
        let roots = g.find_roots(&[("a", "Scheduler", "cycle")]);
        assert_eq!(roots.len(), 1);
        let (parent, seen) = g.reach(&roots);
        let leaf = g.nodes.iter().position(|n| n.name == "leaf").unwrap();
        assert!(seen.contains(&leaf), "leaf reachable via helper");
        assert_eq!(g.nodes[leaf].impure.len(), 1);
        assert_eq!(g.nodes[leaf].impure[0].2, "wall-clock");
        let chain = g.chain(&parent, leaf);
        assert!(chain.starts_with("a::Scheduler::cycle"), "{chain}");
        assert!(chain.ends_with("b::leaf"), "{chain}");
        let unrelated = g.nodes.iter().position(|n| n.name == "unrelated").unwrap();
        assert!(!seen.contains(&unrelated));
    }

    #[test]
    fn self_method_resolution_is_type_scoped() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "a",
            "struct A; struct B;\nimpl A { fn go(&self) { self.step(); } fn step(&self) {} }\n\
             impl B { fn step(&self) { println!(\"x\"); } }\n",
        )]);
        let go = g.nodes.iter().position(|n| n.name == "go").unwrap();
        let a_step = g
            .nodes
            .iter()
            .position(|n| n.name == "step" && n.self_ty.as_deref() == Some("A"))
            .unwrap();
        assert_eq!(g.nodes[go].calls, vec![a_step], "B::step not linked");
    }

    #[test]
    fn test_functions_are_excluded() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "a",
            "fn lib() {}\n#[cfg(test)]\nmod tests { fn helper() {} }\n",
        )]);
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(g.nodes[0].name, "lib");
    }

    #[test]
    fn graph_json_is_deterministic_and_annotated() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "a",
            "pub fn run() { leaf(); }\nfn leaf() { println!(\"io\"); }\n",
        )]);
        let roots = g.find_roots(&[("a", "", "run")]);
        let (_, seen) = g.reach(&roots);
        let j1 = g.to_json(&roots, &seen);
        let j2 = g.to_json(&roots, &seen);
        assert_eq!(j1, j2);
        assert!(
            j1.starts_with("{\"schema\":1,\"roots\":[\"a::run\"]"),
            "{j1}"
        );
        assert!(j1.contains("\"impure\":[{\"token\":\"println!\""), "{j1}");
        assert!(j1.contains("\"reachable\":true"));
    }

    #[test]
    fn impure_lines_are_mapped_to_source_lines() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "a",
            "fn f() {\n    let x = 1;\n    let t = SystemTime::now();\n}\n",
        )]);
        assert_eq!(
            g.nodes[0].impure,
            vec![("SystemTime::now".into(), 3, "wall-clock")]
        );
    }

    #[test]
    fn purity_roots_live_in_determinism_crates() {
        // The graph only covers determinism-crate library code, so a root
        // outside that scope could never resolve — catch the drift here
        // rather than as a silently-smaller reachable set.
        for (krate, ty, name) in PURITY_ROOTS {
            assert!(
                crate::rules::DETERMINISM_CRATES.contains(krate),
                "purity root {krate}::{ty}::{name} is outside the determinism scope"
            );
        }
    }
}
