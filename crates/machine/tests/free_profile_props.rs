//! Property tests for [`machine::RunningSet::free_profile`]: under any
//! random running set the projected free-CPU profile starts at the actual
//! free count, only ever steps *upward* (running jobs can only end), and
//! converges to `free_now` plus every job whose projected end falls inside
//! the horizon.

use machine::{RunningJob, RunningSet};
use simkit::rng::Rng;
use simkit::time::{SimDuration, SimTime};

const TOTAL_CPUS: u32 = 1_024;

/// A random running set at `now`, returning `(set, free_now, ends)` where
/// `ends` is each inserted job's `(cpus, estimated_end)`.
fn random_running_set(rng: &mut Rng, now: SimTime) -> (RunningSet, u32, Vec<(u32, SimTime)>) {
    let mut rs = RunningSet::new();
    let mut ends = Vec::new();
    let mut used = 0u32;
    for i in 0..rng.below(40) {
        let cpus = rng.below(64) as u32 + 1;
        if used + cpus > TOTAL_CPUS {
            break;
        }
        used += cpus;
        let start = now - SimDuration::from_secs(rng.below(5_000));
        let actual_end = now + SimDuration::from_secs(rng.below(60_000) + 1);
        // A fifth of the jobs have *overrun* their estimate (estimated end
        // in the past) — free_profile must clamp them to `now + 1`.
        let estimated_end = if rng.chance(0.2) {
            // Clamped to `start`: RunningSet::insert rejects estimates
            // earlier than the job's own start.
            (now - SimDuration::from_secs(rng.below(1_000))).max(start)
        } else {
            now + SimDuration::from_secs(rng.below(60_000))
        };
        rs.insert(RunningJob {
            id: i,
            cpus,
            start,
            actual_end,
            estimated_end,
            interstitial: rng.chance(0.3),
        });
        ends.push((cpus, estimated_end));
    }
    (rs, TOTAL_CPUS - used, ends)
}

#[test]
fn free_profile_is_monotone_under_random_running_sets() {
    for seed in 0..30u64 {
        let mut rng = Rng::new(seed);
        let now = SimTime::from_secs(rng.below(10_000) + 5_000);
        let horizon = now + SimDuration::from_secs(rng.below(50_000) + 1_000);
        let (rs, free_now, ends) = random_running_set(&mut rng, now);
        let f = rs.free_profile(now, free_now, horizon);

        // Starts at the actual free count: nothing for sale that is busy.
        assert_eq!(f.value_at(now), i64::from(free_now), "seed {seed}");

        // Monotone nondecreasing: CPUs are only ever released.
        let mut prev = i64::MIN;
        for (s, e, v) in f.iter_segments() {
            assert!(s < e, "seed {seed}: empty segment");
            assert!(
                v >= prev,
                "seed {seed}: profile steps down ({prev} -> {v} at {s})"
            );
            prev = v;
        }

        // Converges to free_now + every job whose projected (clamped) end
        // lies strictly inside the horizon.
        let next = now + SimDuration::from_secs(1);
        let released: i64 = ends
            .iter()
            .filter(|(_, est)| (*est).max(next) < horizon)
            .map(|(cpus, _)| i64::from(*cpus))
            .sum();
        let last = horizon - SimDuration::from_secs(1);
        assert_eq!(
            f.value_at(last),
            i64::from(free_now) + released,
            "seed {seed}: terminal free count is wrong"
        );

        // Bounded by the machine: never projects more than every CPU free.
        for (_, _, v) in f.iter_segments() {
            assert!(v <= i64::from(TOTAL_CPUS), "seed {seed}");
        }
    }
}

/// The tentpole equivalence, at the property level: for any random running
/// set, the indexed view answers `value_at` identically to the naive
/// `StepFunction` at every sampled instant — including `now` (clamp
/// boundary), `now + 1`, and the last representable instant — for
/// free-capacity levels from fault-degraded zero up.
#[test]
fn indexed_profile_matches_naive_pointwise() {
    for seed in 200..240u64 {
        let mut rng = Rng::new(seed);
        let now = SimTime::from_secs(rng.below(10_000) + 5_000);
        let horizon = now + SimDuration::from_secs(rng.below(50_000) + 1_000);
        let (rs, free_full, _) = random_running_set(&mut rng, now);
        // Fault-driven capacity drops show up here as a reduced (possibly
        // zero) free count; the profiles must agree at every level.
        for free_now in [0, free_full / 2, free_full] {
            let naive = rs.free_profile(now, free_now, horizon);
            let indexed = rs.indexed_profile(now, free_now, horizon);
            let span = horizon.as_secs() - now.as_secs();
            let mut probes = vec![
                now,
                now + SimDuration::from_secs(1),
                horizon - SimDuration::from_secs(1),
            ];
            probes.extend((0..100).map(|_| now + SimDuration::from_secs(rng.below(span))));
            for p in probes {
                assert_eq!(
                    naive.value_at(p),
                    indexed.value_at(p),
                    "seed {seed}, free {free_now}, probe {p:?}"
                );
            }
        }
    }
}

/// `min_over` and `find_slot` agree between the two representations over
/// random query ranges, with and without planner-style overlay deductions
/// (reservations and immediate starts applied as `range_add`s to both).
#[test]
fn indexed_queries_match_naive_under_overlay_deductions() {
    for seed in 300..340u64 {
        let mut rng = Rng::new(seed);
        let now = SimTime::from_secs(10_000);
        let horizon = now + SimDuration::from_secs(rng.below(40_000) + 2_000);
        let (rs, free_now, _) = random_running_set(&mut rng, now);
        let mut naive = rs.free_profile(now, free_now, horizon);
        let mut indexed = rs.indexed_profile(now, free_now, horizon);
        let span = horizon.as_secs() - now.as_secs();
        // Planner-style deductions: a handful of ranged subtractions, as
        // dispatch and reservations would apply them.
        for _ in 0..rng.below(6) {
            let a = now + SimDuration::from_secs(rng.below(span));
            let b = a + SimDuration::from_secs(rng.below(span) + 1);
            let delta = -(rng.below(64) as i64 + 1);
            naive.range_add(a, b.min(horizon), delta);
            indexed.range_add(a, b.min(horizon), delta);
        }
        for q in 0..60u32 {
            let a = now + SimDuration::from_secs(rng.below(span + 10));
            let b = a + SimDuration::from_secs(rng.below(span));
            assert_eq!(
                naive.min_over(a, b),
                indexed.min_over(a, b),
                "seed {seed}, query {q}: min_over({a:?}, {b:?})"
            );
            let need = rng.below(u64::from(TOTAL_CPUS) + 20) as i64;
            let dur = SimDuration::from_secs(rng.below(span + 1_000) + 1);
            assert_eq!(
                naive.find_slot(a, need, dur),
                indexed.find_slot(a, need, dur),
                "seed {seed}, query {q}: find_slot({a:?}, {need}, {dur:?})"
            );
        }
    }
}

/// The index stays correct through arrival/kill churn: after every
/// insert/remove the rebuilt views still agree pointwise and the index's
/// CPU total matches a brute-force recount.
#[test]
fn indexed_profile_survives_insert_remove_churn() {
    for seed in 400..420u64 {
        let mut rng = Rng::new(seed);
        let now = SimTime::from_secs(20_000);
        let horizon = now + SimDuration::from_secs(30_000);
        let (mut rs, mut free_now, _) = random_running_set(&mut rng, now);
        let mut next_id = 10_000u64;
        for step in 0..40u32 {
            // Kill (remove) or arrival (insert), biased to keep churning.
            let ids: Vec<u64> = rs.iter().map(|j| j.id).collect();
            if !ids.is_empty() && rng.chance(0.5) {
                let victim = ids[rng.below(ids.len() as u64) as usize];
                let gone = rs.remove(victim);
                free_now += gone.cpus;
            } else if free_now > 0 {
                let cpus = rng.below(u64::from(free_now)) as u32 + 1;
                let est = if rng.chance(0.25) {
                    now // overrun: estimate already expired
                } else {
                    now + SimDuration::from_secs(rng.below(40_000))
                };
                rs.insert(RunningJob {
                    id: next_id,
                    cpus,
                    start: now - SimDuration::from_secs(10),
                    actual_end: now + SimDuration::from_secs(rng.below(40_000) + 1),
                    estimated_end: est,
                    interstitial: false,
                });
                next_id += 1;
                free_now -= cpus;
            }
            let recount: u64 = rs.iter().map(|j| u64::from(j.cpus)).sum();
            assert_eq!(
                rs.end_index().total_cpus(),
                recount,
                "seed {seed}, step {step}: index total drifted"
            );
            let naive = rs.free_profile(now, free_now, horizon);
            let indexed = rs.indexed_profile(now, free_now, horizon);
            for k in 0..40u64 {
                let p = now + SimDuration::from_secs(k * 750);
                if p >= horizon {
                    break;
                }
                assert_eq!(
                    naive.value_at(p),
                    indexed.value_at(p),
                    "seed {seed}, step {step}, probe {p:?}"
                );
            }
        }
    }
}

#[test]
fn free_profile_value_matches_per_instant_recount() {
    // Pointwise cross-check against a direct recount at sampled instants.
    for seed in 100..110u64 {
        let mut rng = Rng::new(seed);
        let now = SimTime::from_secs(10_000);
        let horizon = now + SimDuration::from_secs(20_000);
        let (rs, free_now, ends) = random_running_set(&mut rng, now);
        let f = rs.free_profile(now, free_now, horizon);
        let next = now + SimDuration::from_secs(1);
        for k in 0..200u64 {
            let probe = now + SimDuration::from_secs(k * 100);
            if probe >= horizon {
                break;
            }
            let expect: i64 = i64::from(free_now)
                + ends
                    .iter()
                    .filter(|(_, est)| (*est).max(next) <= probe)
                    .map(|(cpus, _)| i64::from(*cpus))
                    .sum::<i64>();
            assert_eq!(f.value_at(probe), expect, "seed {seed}, probe {probe}");
        }
    }
}
