//! Property tests for [`machine::RunningSet::free_profile`]: under any
//! random running set the projected free-CPU profile starts at the actual
//! free count, only ever steps *upward* (running jobs can only end), and
//! converges to `free_now` plus every job whose projected end falls inside
//! the horizon.

use machine::{RunningJob, RunningSet};
use simkit::rng::Rng;
use simkit::time::{SimDuration, SimTime};

const TOTAL_CPUS: u32 = 1_024;

/// A random running set at `now`, returning `(set, free_now, ends)` where
/// `ends` is each inserted job's `(cpus, estimated_end)`.
fn random_running_set(rng: &mut Rng, now: SimTime) -> (RunningSet, u32, Vec<(u32, SimTime)>) {
    let mut rs = RunningSet::new();
    let mut ends = Vec::new();
    let mut used = 0u32;
    for i in 0..rng.below(40) {
        let cpus = rng.below(64) as u32 + 1;
        if used + cpus > TOTAL_CPUS {
            break;
        }
        used += cpus;
        let start = now - SimDuration::from_secs(rng.below(5_000));
        let actual_end = now + SimDuration::from_secs(rng.below(60_000) + 1);
        // A fifth of the jobs have *overrun* their estimate (estimated end
        // in the past) — free_profile must clamp them to `now + 1`.
        let estimated_end = if rng.chance(0.2) {
            // Clamped to `start`: RunningSet::insert rejects estimates
            // earlier than the job's own start.
            (now - SimDuration::from_secs(rng.below(1_000))).max(start)
        } else {
            now + SimDuration::from_secs(rng.below(60_000))
        };
        rs.insert(RunningJob {
            id: i,
            cpus,
            start,
            actual_end,
            estimated_end,
            interstitial: rng.chance(0.3),
        });
        ends.push((cpus, estimated_end));
    }
    (rs, TOTAL_CPUS - used, ends)
}

#[test]
fn free_profile_is_monotone_under_random_running_sets() {
    for seed in 0..30u64 {
        let mut rng = Rng::new(seed);
        let now = SimTime::from_secs(rng.below(10_000) + 5_000);
        let horizon = now + SimDuration::from_secs(rng.below(50_000) + 1_000);
        let (rs, free_now, ends) = random_running_set(&mut rng, now);
        let f = rs.free_profile(now, free_now, horizon);

        // Starts at the actual free count: nothing for sale that is busy.
        assert_eq!(f.value_at(now), i64::from(free_now), "seed {seed}");

        // Monotone nondecreasing: CPUs are only ever released.
        let mut prev = i64::MIN;
        for (s, e, v) in f.iter_segments() {
            assert!(s < e, "seed {seed}: empty segment");
            assert!(
                v >= prev,
                "seed {seed}: profile steps down ({prev} -> {v} at {s})"
            );
            prev = v;
        }

        // Converges to free_now + every job whose projected (clamped) end
        // lies strictly inside the horizon.
        let next = now + SimDuration::from_secs(1);
        let released: i64 = ends
            .iter()
            .filter(|(_, est)| (*est).max(next) < horizon)
            .map(|(cpus, _)| i64::from(*cpus))
            .sum();
        let last = horizon - SimDuration::from_secs(1);
        assert_eq!(
            f.value_at(last),
            i64::from(free_now) + released,
            "seed {seed}: terminal free count is wrong"
        );

        // Bounded by the machine: never projects more than every CPU free.
        for (_, _, v) in f.iter_segments() {
            assert!(v <= i64::from(TOTAL_CPUS), "seed {seed}");
        }
    }
}

#[test]
fn free_profile_value_matches_per_instant_recount() {
    // Pointwise cross-check against a direct recount at sampled instants.
    for seed in 100..110u64 {
        let mut rng = Rng::new(seed);
        let now = SimTime::from_secs(10_000);
        let horizon = now + SimDuration::from_secs(20_000);
        let (rs, free_now, ends) = random_running_set(&mut rng, now);
        let f = rs.free_profile(now, free_now, horizon);
        let next = now + SimDuration::from_secs(1);
        for k in 0..200u64 {
            let probe = now + SimDuration::from_secs(k * 100);
            if probe >= horizon {
                break;
            }
            let expect: i64 = i64::from(free_now)
                + ends
                    .iter()
                    .filter(|(_, est)| (*est).max(next) <= probe)
                    .map(|(cpus, _)| i64::from(*cpus))
                    .sum::<i64>();
            assert_eq!(f.value_at(probe), expect, "seed {seed}, probe {probe}");
        }
    }
}
