//! Property tests for `OutageSchedule::from_windows` and the binary-search
//! query paths: merge idempotence, disjointness, `downtime_in` additivity,
//! and agreement between the `partition_point` queries and a brute-force
//! linear reference.

use machine::OutageSchedule;
use simkit::rng::Rng;
use simkit::time::{SimDuration, SimTime};

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

/// A random bag of possibly-overlapping, possibly-empty windows.
fn random_windows(rng: &mut Rng, count: usize, span: u64) -> Vec<(SimTime, SimTime)> {
    (0..count)
        .map(|_| {
            let a = rng.below(span);
            let len = rng.below(span / 4 + 1);
            (t(a), t(a + len))
        })
        .collect()
}

#[test]
fn from_windows_is_idempotent() {
    // Re-normalizing an already-normalized schedule is a fixpoint.
    for seed in 0..50u64 {
        let mut rng = Rng::new(seed);
        let raw = random_windows(&mut rng, 40, 10_000);
        let once = OutageSchedule::from_windows(raw);
        let twice = OutageSchedule::from_windows(once.windows().to_vec());
        assert_eq!(once.windows(), twice.windows(), "seed {seed}");
    }
}

#[test]
fn from_windows_yields_sorted_disjoint_nonempty_windows() {
    for seed in 0..50u64 {
        let mut rng = Rng::new(seed);
        let o = OutageSchedule::from_windows(random_windows(&mut rng, 60, 50_000));
        for &(a, b) in o.windows() {
            assert!(a < b, "empty window survived (seed {seed})");
        }
        for w in o.windows().windows(2) {
            // Strictly separated: touching windows must have been merged.
            assert!(w[0].1 < w[1].0, "overlap or touch (seed {seed}): {w:?}");
        }
    }
}

#[test]
fn membership_is_preserved_by_normalization() {
    // A point is down in the normalized schedule iff it was inside any raw
    // window.
    for seed in 0..20u64 {
        let mut rng = Rng::new(seed);
        let raw = random_windows(&mut rng, 25, 2_000);
        let o = OutageSchedule::from_windows(raw.clone());
        for probe in 0..2_500u64 {
            let p = t(probe);
            let reference = raw.iter().any(|&(a, b)| a <= p && p < b);
            assert_eq!(o.is_down(p), reference, "seed {seed}, t={probe}");
        }
    }
}

#[test]
fn downtime_in_is_additive_over_a_partition() {
    // Splitting [t0, t2) at any midpoint must not change total downtime.
    for seed in 0..30u64 {
        let mut rng = Rng::new(seed);
        let o = OutageSchedule::from_windows(random_windows(&mut rng, 30, 10_000));
        let whole = o.downtime_in(t(0), t(20_000));
        for &mid in &[0u64, 1, 777, 5_000, 9_999, 12_345, 20_000] {
            let left = o.downtime_in(t(0), t(mid));
            let right = o.downtime_in(t(mid), t(20_000));
            assert_eq!(left + right, whole, "seed {seed}, split at {mid}");
        }
        // Many-way partition.
        let mut sum = SimDuration::ZERO;
        for k in 0..40u64 {
            sum += o.downtime_in(t(k * 500), t((k + 1) * 500));
        }
        assert_eq!(sum, whole, "seed {seed}, 40-way partition");
    }
}

#[test]
fn binary_search_queries_agree_with_linear_reference() {
    for seed in 0..20u64 {
        let mut rng = Rng::new(seed);
        let o = OutageSchedule::from_windows(random_windows(&mut rng, 35, 5_000));
        let windows = o.windows();
        for probe in 0..6_500u64 {
            let p = t(probe);
            // Linear reference for next_up: end of the window containing p.
            let ref_up = windows
                .iter()
                .find(|&&(a, b)| a <= p && p < b)
                .map_or(p, |&(_, b)| b);
            assert_eq!(o.next_up(p), ref_up, "next_up seed {seed} t={probe}");
            // Linear reference for next_down (enclosing-window semantics):
            // the start of the window containing p, else the first start at
            // or after p.
            let ref_down = windows
                .iter()
                .find(|&&(a, b)| a <= p && p < b)
                .map(|&(a, _)| a)
                .or_else(|| windows.iter().map(|&(a, _)| a).find(|&a| a >= p));
            assert_eq!(o.next_down(p), ref_down, "next_down seed {seed} t={probe}");
        }
    }
}

#[test]
fn next_down_mid_outage_reports_the_enclosing_window() {
    // The regression the satellite fix targets: probing mid-outage must see
    // the outage we are in, not "nothing coming".
    let o = OutageSchedule::from_windows(vec![(t(100), t(200)), (t(500), t(600))]);
    assert_eq!(o.next_down(t(150)), Some(t(100)));
    assert_eq!(o.next_down(t(550)), Some(t(500)));
    assert!(o.next_down(t(150)).is_some_and(|d| o.is_down(d)));
}
