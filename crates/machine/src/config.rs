//! Machine descriptions, including the three ASCI machines of Table 1.

use simkit::time::{SimDuration, SimTime, DAY};

/// Which production queueing system the machine ran (Table 1, bottom row).
/// The `sched` crate maps each variant to a scheduling personality.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueueSystem {
    /// Portable Batch System (Ross, Sandia): flat fair share — all users
    /// equal — with the most restrictive backfill criteria of the three.
    Pbs,
    /// Load Sharing Facility (Blue Mountain, Los Alamos): hierarchical
    /// group-level fair share.
    Lsf,
    /// Distributed Production Control System (Blue Pacific, Livermore):
    /// user- and group-level fair share plus time-of-day constraints.
    Dpcs,
}

impl QueueSystem {
    /// Human-readable name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            QueueSystem::Pbs => "PBS",
            QueueSystem::Lsf => "LSF",
            QueueSystem::Dpcs => "DPCS",
        }
    }
}

/// Static description of a simulated machine.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Display name ("Ross", "Blue Mountain", "Blue Pacific", …).
    pub name: &'static str,
    /// Operating site, for report headers.
    pub site: &'static str,
    /// Total identical CPUs in the scheduled partition.
    pub cpus: u32,
    /// Per-CPU clock in GHz. Ross mixes 533 MHz and 600 MHz parts; following
    /// the paper we treat the machine as homogeneous at the capacity-weighted
    /// average (0.588 GHz).
    pub clock_ghz: f64,
    /// Queueing system personality.
    pub queue: QueueSystem,
    /// Native utilization delivered over the analyzed log (Table 1).
    pub target_utilization: f64,
    /// Length of the analyzed log in days (Table 1).
    pub log_days: f64,
    /// Native job count in the analyzed log (Table 1).
    pub log_jobs: u32,
}

impl MachineConfig {
    /// Machine capacity in tera-cycles per second: `CPUs × clock`.
    /// (Table 1's "TCycles" row.)
    pub fn tera_cycles(&self) -> f64 {
        self.cpus as f64 * self.clock_ghz / 1_000.0
    }

    /// Length of the analyzed log as simulation time.
    pub fn log_horizon(&self) -> SimTime {
        SimTime::from_secs((self.log_days * DAY as f64).round() as u64)
    }

    /// Normalize a runtime specified in *seconds at 1 GHz* to this machine's
    /// clock — the paper's convention for interstitial jobs ("120 sec @1 GHz
    /// lasts 120/.262 = 458 sec on Blue Mountain").
    pub fn normalize_runtime(&self, secs_at_1ghz: f64) -> SimDuration {
        SimDuration::from_secs_f64(secs_at_1ghz / self.clock_ghz)
    }

    /// Cycles delivered by `cpus` CPUs running for `dur` on this machine.
    pub fn cycles(&self, cpus: u32, dur: SimDuration) -> f64 {
        cpus as f64 * self.clock_ghz * 1e9 * dur.as_secs_f64()
    }

    /// Average number of idle CPUs at the target utilization: `N(1−U)`.
    pub fn mean_free_cpus(&self) -> f64 {
        self.cpus as f64 * (1.0 - self.target_utilization)
    }
}

/// Ross (Sandia National Laboratories): 1436-CPU partition, PBS.
pub fn ross() -> MachineConfig {
    MachineConfig {
        name: "Ross",
        site: "Sandia",
        cpus: 1436,
        // 256 @ 533 MHz + 1180 @ 600 MHz → 0.588 GHz average.
        clock_ghz: 0.588,
        queue: QueueSystem::Pbs,
        target_utilization: 0.631,
        log_days: 40.7,
        log_jobs: 4_423,
    }
}

/// Blue Mountain (Los Alamos): 4662 CPUs, LSF.
pub fn blue_mountain() -> MachineConfig {
    MachineConfig {
        name: "Blue Mountain",
        site: "Los Alamos",
        cpus: 4662,
        clock_ghz: 0.262,
        queue: QueueSystem::Lsf,
        target_utilization: 0.790,
        log_days: 84.2,
        log_jobs: 7_763,
    }
}

/// Blue Pacific (Livermore): 926-CPU large partition, DPCS.
pub fn blue_pacific() -> MachineConfig {
    MachineConfig {
        name: "Blue Pacific",
        site: "Livermore",
        cpus: 926,
        clock_ghz: 0.369,
        queue: QueueSystem::Dpcs,
        target_utilization: 0.907,
        log_days: 63.0,
        log_jobs: 12_761,
    }
}

/// All three Table 1 machines, in the paper's column order.
pub fn all_machines() -> Vec<MachineConfig> {
    vec![ross(), blue_mountain(), blue_pacific()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_tcycles_match_paper() {
        // Table 1: Ross 0.844, Blue Mountain 1.221, Blue Pacific 0.342.
        assert!((ross().tera_cycles() - 0.844).abs() < 0.001);
        assert!((blue_mountain().tera_cycles() - 1.221).abs() < 0.001);
        assert!((blue_pacific().tera_cycles() - 0.342).abs() < 0.001);
    }

    #[test]
    fn normalization_matches_figure3_caption() {
        // Figure 3: 120 s @1 GHz → 458 s and 960 s @1 GHz → 3664 s on
        // Blue Mountain (clock 0.262 GHz).
        let bm = blue_mountain();
        assert_eq!(bm.normalize_runtime(120.0).as_secs(), 458);
        assert_eq!(bm.normalize_runtime(960.0).as_secs(), 3664);
        // Tables 7/8: Blue Pacific 325 s / 2601 s; Ross 204 s / 1633 s.
        let bp = blue_pacific();
        assert_eq!(bp.normalize_runtime(120.0).as_secs(), 325);
        assert_eq!(bp.normalize_runtime(960.0).as_secs(), 2602); // paper prints 2601 (truncation)
        let r = ross();
        assert_eq!(r.normalize_runtime(120.0).as_secs(), 204);
        assert_eq!(r.normalize_runtime(960.0).as_secs(), 1633);
    }

    #[test]
    fn mean_free_cpus_matches_breakage_examples() {
        // §4.2 worked numbers: 1436(1−.631)=529.9, 4662(1−.790)=979.0,
        // 926(1−.907)=86.1 ("about 90 spare CPUs").
        assert!((ross().mean_free_cpus() - 529.9).abs() < 0.2);
        assert!((blue_mountain().mean_free_cpus() - 979.0).abs() < 0.2);
        assert!((blue_pacific().mean_free_cpus() - 86.1).abs() < 0.2);
    }

    #[test]
    fn cycles_accounting() {
        let bm = blue_mountain();
        // One CPU for 1000 s at 0.262 GHz = 2.62e11 cycles.
        let c = bm.cycles(1, SimDuration::from_secs(1000));
        assert!((c - 2.62e11).abs() / 2.62e11 < 1e-12);
        // 32 CPUs double-checks linearity.
        assert!((bm.cycles(32, SimDuration::from_secs(1000)) - 32.0 * c).abs() < 1.0);
    }

    #[test]
    fn log_horizon_days() {
        let r = ross();
        assert_eq!(r.log_horizon().as_secs(), (40.7 * 86_400.0) as u64);
        assert_eq!(blue_pacific().log_horizon(), SimTime::from_days(63));
    }

    #[test]
    fn queue_system_names() {
        assert_eq!(QueueSystem::Pbs.name(), "PBS");
        assert_eq!(QueueSystem::Lsf.name(), "LSF");
        assert_eq!(QueueSystem::Dpcs.name(), "DPCS");
        assert_eq!(all_machines().len(), 3);
    }
}
