//! The set of currently executing jobs.
//!
//! Besides plain membership, this answers the two questions every backfill
//! scheduler (and the interstitial submitter) asks:
//!
//! 1. **Shadow time** — based on *estimated* completion times, when will `k`
//!    CPUs be free? This is the reservation instant for the queue-head job;
//!    the paper's `backFillWallTime`.
//! 2. **Free-capacity profile** — a [`StepFunction`] of projected free CPUs
//!    over time, used by conservative backfill and by omniscient packing.
//!
//! User estimates grossly overrun actual runtimes (§3), so both answers are
//! systematically pessimistic under estimate-based scheduling — which is
//! exactly the effect the paper studies.

use crate::profile::{EndIndex, IndexedFreeProfile};
use simkit::series::StepFunction;
use simkit::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Identifier of a job within a simulation run.
pub type JobId = u64;

/// A job currently occupying CPUs.
#[derive(Clone, Copy, Debug)]
pub struct RunningJob {
    /// Simulation-wide job id.
    pub id: JobId,
    /// CPUs held.
    pub cpus: u32,
    /// Instant the job started.
    pub start: SimTime,
    /// Instant the job will actually finish (known to the simulator, not to
    /// the scheduler).
    pub actual_end: SimTime,
    /// Instant the scheduler believes the job will finish (start + user
    /// estimate). Never earlier than `start`.
    pub estimated_end: SimTime,
    /// True for interstitial jobs, false for native jobs.
    pub interstitial: bool,
}

/// The set of executing jobs, indexed by id.
///
/// Backed by a `BTreeMap` so iteration is in ascending job-id order — the
/// shadow-time and free-profile scans below feed scheduling decisions, and
/// a nondeterministic visit order would make replays diverge (simlint R1).
#[derive(Clone, Debug, Default)]
pub struct RunningSet {
    jobs: BTreeMap<JobId, RunningJob>,
    cpus_in_use: u32,
    /// Sorted index of the jobs' raw estimated end times, maintained on
    /// every insert/remove so [`indexed_profile`](RunningSet::indexed_profile)
    /// answers capacity queries in O(√n) instead of the O(n) rebuild of
    /// [`free_profile`](RunningSet::free_profile).
    end_index: EndIndex,
}

impl RunningSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of running jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if nothing is running.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Total CPUs held by running jobs.
    pub fn cpus_in_use(&self) -> u32 {
        self.cpus_in_use
    }

    /// CPUs held by running *native* jobs only.
    pub fn native_cpus_in_use(&self) -> u32 {
        self.jobs
            .values()
            .filter(|j| !j.interstitial)
            .map(|j| j.cpus)
            .sum()
    }

    /// Insert a newly started job. Panics on duplicate ids (simulator bug).
    pub fn insert(&mut self, job: RunningJob) {
        debug_assert!(job.estimated_end >= job.start);
        debug_assert!(job.actual_end >= job.start);
        self.cpus_in_use += job.cpus;
        self.end_index.insert(job.estimated_end.as_secs(), job.cpus);
        let dup = self.jobs.insert(job.id, job);
        assert!(dup.is_none(), "job {} inserted twice", job.id);
    }

    /// Remove a finished job, returning it. Panics if absent.
    pub fn remove(&mut self, id: JobId) -> RunningJob {
        let job = match self.jobs.remove(&id) {
            Some(j) => j,
            None => panic!("job {id} finished but was not running"),
        };
        self.cpus_in_use -= job.cpus;
        self.end_index.remove(job.estimated_end.as_secs(), job.cpus);
        job
    }

    /// Look up a running job.
    pub fn get(&self, id: JobId) -> Option<&RunningJob> {
        self.jobs.get(&id)
    }

    /// Iterate over running jobs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = &RunningJob> {
        self.jobs.values()
    }

    /// Earliest instant at which at least `need` CPUs are projected free,
    /// given `free_now` currently idle CPUs and the *estimated* ends of the
    /// running jobs. Jobs already past their estimate are treated as ending
    /// at `now` (the scheduler knows they can end any moment but no sooner
    /// than now). Returns `now` if already satisfiable, or `None` if even
    /// draining every running job would not reach `need` (job larger than
    /// the machine / outage in effect).
    pub fn shadow_time(&self, now: SimTime, free_now: u32, need: u32) -> Option<SimTime> {
        if free_now >= need {
            return Some(now);
        }
        // Sort running jobs by effective estimated end.
        let mut ends: Vec<(SimTime, u32)> = self
            .jobs
            .values()
            .map(|j| (j.estimated_end.max(now), j.cpus))
            .collect();
        ends.sort_unstable_by_key(|&(t, _)| t);
        let mut free = free_now;
        for (t, cpus) in ends {
            free += cpus;
            if free >= need {
                return Some(t);
            }
        }
        None
    }

    /// Projected free-CPU profile on `[now, horizon)`: starts at `free_now`
    /// and steps up at each running job's effective estimated end. The
    /// profile is what conservative backfill scans and what the interstitial
    /// submitter uses to guarantee it cannot push back the queue head.
    ///
    /// A job already past its estimate is projected to end at `now + 1` —
    /// strictly in the future — so the profile's value *at* `now` always
    /// equals the actual free count and a dispatcher can never be sold CPUs
    /// that are still occupied.
    pub fn free_profile(&self, now: SimTime, free_now: u32, horizon: SimTime) -> StepFunction {
        assert!(horizon > now, "profile horizon must exceed now");
        let next = now + SimDuration::from_secs(1);
        let mut f = StepFunction::constant(horizon, free_now as i64);
        for j in self.jobs.values() {
            let end = j.estimated_end.max(next);
            if end < horizon {
                f.range_add(end, horizon, j.cpus as i64);
            }
        }
        f
    }

    /// Indexed equivalent of [`free_profile`](RunningSet::free_profile):
    /// a query view over the incrementally-maintained end-time index,
    /// answering the same `value_at`/`min_over`/`find_slot` questions with
    /// identical results (see `crates/machine/src/profile.rs`) without
    /// rebuilding a [`StepFunction`] from every running job.
    pub fn indexed_profile(
        &self,
        now: SimTime,
        free_now: u32,
        horizon: SimTime,
    ) -> IndexedFreeProfile<'_> {
        IndexedFreeProfile::new(&self.end_index, now, free_now, horizon)
    }

    /// Direct access to the end-time index (tests and diagnostics).
    pub fn end_index(&self) -> &EndIndex {
        &self.end_index
    }

    /// Longest remaining *estimated* runtime among running jobs, from `now`.
    pub fn longest_remaining_estimate(&self, now: SimTime) -> SimDuration {
        self.jobs
            .values()
            .map(|j| j.estimated_end.max(now) - now)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn job(id: JobId, cpus: u32, start: u64, actual_end: u64, est_end: u64) -> RunningJob {
        RunningJob {
            id,
            cpus,
            start: t(start),
            actual_end: t(actual_end),
            estimated_end: t(est_end),
            interstitial: false,
        }
    }

    #[test]
    fn insert_remove_accounting() {
        let mut rs = RunningSet::new();
        assert!(rs.is_empty());
        rs.insert(job(1, 10, 0, 100, 200));
        rs.insert(job(2, 5, 0, 50, 60));
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.cpus_in_use(), 15);
        let j = rs.remove(2);
        assert_eq!(j.cpus, 5);
        assert_eq!(rs.cpus_in_use(), 10);
        assert!(rs.get(1).is_some());
        assert!(rs.get(2).is_none());
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn duplicate_insert_panics() {
        let mut rs = RunningSet::new();
        rs.insert(job(7, 1, 0, 10, 10));
        rs.insert(job(7, 1, 0, 10, 10));
    }

    #[test]
    #[should_panic(expected = "was not running")]
    fn removing_absent_panics() {
        let mut rs = RunningSet::new();
        rs.remove(99);
    }

    #[test]
    fn native_vs_interstitial_cpu_split() {
        let mut rs = RunningSet::new();
        rs.insert(job(1, 10, 0, 100, 100));
        rs.insert(RunningJob {
            interstitial: true,
            ..job(2, 32, 0, 100, 100)
        });
        assert_eq!(rs.cpus_in_use(), 42);
        assert_eq!(rs.native_cpus_in_use(), 10);
    }

    #[test]
    fn shadow_time_immediate_when_enough_free() {
        let rs = RunningSet::new();
        assert_eq!(rs.shadow_time(t(50), 8, 8), Some(t(50)));
        assert_eq!(
            rs.shadow_time(t(50), 8, 9),
            None,
            "empty machine can't grow"
        );
    }

    #[test]
    fn shadow_time_accumulates_estimated_ends() {
        let mut rs = RunningSet::new();
        rs.insert(job(1, 4, 0, 80, 100));
        rs.insert(job(2, 4, 0, 150, 200));
        rs.insert(job(3, 4, 0, 250, 300));
        // 2 free now; need 6 → after job 1's *estimated* end (100).
        assert_eq!(rs.shadow_time(t(10), 2, 6), Some(t(100)));
        // Need 10 → after job 2's estimate.
        assert_eq!(rs.shadow_time(t(10), 2, 10), Some(t(200)));
        // Need 14 → all three.
        assert_eq!(rs.shadow_time(t(10), 2, 14), Some(t(300)));
        // Need more than ever becomes free → None.
        assert_eq!(rs.shadow_time(t(10), 2, 15), None);
    }

    #[test]
    fn shadow_time_clamps_overrun_estimates_to_now() {
        let mut rs = RunningSet::new();
        // Estimated end (100) already passed; effective end is `now`.
        rs.insert(job(1, 6, 0, 500, 100));
        assert_eq!(rs.shadow_time(t(200), 0, 6), Some(t(200)));
    }

    #[test]
    fn free_profile_steps_up_at_estimates() {
        let mut rs = RunningSet::new();
        rs.insert(job(1, 3, 0, 80, 100));
        rs.insert(job(2, 5, 0, 150, 200));
        let f = rs.free_profile(t(0), 2, t(1000));
        assert_eq!(f.value_at(t(0)), 2);
        assert_eq!(f.value_at(t(99)), 2);
        assert_eq!(f.value_at(t(100)), 5);
        assert_eq!(f.value_at(t(200)), 10);
        // Ends beyond the horizon simply never appear.
        let g = rs.free_profile(t(0), 2, t(150));
        assert_eq!(g.value_at(t(120)), 5);
    }

    #[test]
    fn free_profile_monotone_nondecreasing() {
        let mut rs = RunningSet::new();
        for i in 0..20 {
            rs.insert(job(i, 2, 0, 50 + i * 10, 60 + i * 10));
        }
        let f = rs.free_profile(t(0), 0, t(2000));
        let vals: Vec<i64> = f.iter_segments().map(|(_, _, v)| v).collect();
        assert!(vals.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*vals.last().unwrap(), 40);
    }

    #[test]
    fn free_profile_never_frees_overrun_jobs_at_now() {
        let mut rs = RunningSet::new();
        // Estimated end long past; job actually still running.
        rs.insert(job(1, 6, 0, 5000, 100));
        let f = rs.free_profile(t(2000), 4, t(10_000));
        assert_eq!(f.value_at(t(2000)), 4, "at `now` only actual free CPUs");
        assert_eq!(f.value_at(t(2001)), 10, "projected to end any moment after");
    }

    #[test]
    fn longest_remaining_estimate() {
        let mut rs = RunningSet::new();
        assert_eq!(rs.longest_remaining_estimate(t(0)), SimDuration::ZERO);
        rs.insert(job(1, 1, 0, 500, 300));
        rs.insert(job(2, 1, 0, 100, 900));
        assert_eq!(
            rs.longest_remaining_estimate(t(100)),
            SimDuration::from_secs(800)
        );
        // All estimates overrun → zero remaining (could end any moment).
        assert_eq!(rs.longest_remaining_estimate(t(1000)), SimDuration::ZERO);
    }
}
