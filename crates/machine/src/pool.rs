//! CPU pool accounting.
//!
//! Jobs on the simulated machines are space-shared: a job owns a fixed number
//! of whole CPUs from start to finish (no time-slicing, no preemption — §3).
//! The pool is therefore just careful counting, but *checked* counting: a
//! double-release or over-allocation is a simulator bug we want to fail loud
//! on, not a statistic we want to silently corrupt.

/// A fixed pool of identical CPUs with checked allocate/release.
#[derive(Clone, Debug)]
pub struct CpuPool {
    total: u32,
    in_use: u32,
    /// CPUs removed from service by an outage (counted separately from job
    /// allocations so releases during an outage stay consistent).
    offline: u32,
}

/// Error returned when an allocation cannot be satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Insufficient {
    /// CPUs requested.
    pub requested: u32,
    /// CPUs actually free at the time of the request.
    pub free: u32,
}

impl std::fmt::Display for Insufficient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "requested {} CPUs but only {} free",
            self.requested, self.free
        )
    }
}

impl std::error::Error for Insufficient {}

impl CpuPool {
    /// A pool of `total` CPUs, all free.
    pub fn new(total: u32) -> Self {
        assert!(total > 0, "a machine needs at least one CPU");
        CpuPool {
            total,
            in_use: 0,
            offline: 0,
        }
    }

    /// Total CPUs in the partition (including any currently offline).
    pub fn total(&self) -> u32 {
        self.total
    }

    /// CPUs currently allocated to running jobs.
    pub fn in_use(&self) -> u32 {
        self.in_use
    }

    /// CPUs currently offline due to an outage.
    pub fn offline(&self) -> u32 {
        self.offline
    }

    /// CPUs available for new allocations right now.
    pub fn free(&self) -> u32 {
        self.total - self.in_use - self.offline
    }

    /// Fraction of the (whole) machine in use by jobs.
    pub fn utilization(&self) -> f64 {
        self.in_use as f64 / self.total as f64
    }

    /// True if a job of `cpus` could start right now.
    pub fn can_fit(&self, cpus: u32) -> bool {
        cpus <= self.free()
    }

    /// Allocate `cpus` CPUs, or report how short we are.
    pub fn allocate(&mut self, cpus: u32) -> Result<(), Insufficient> {
        if cpus > self.free() {
            return Err(Insufficient {
                requested: cpus,
                free: self.free(),
            });
        }
        self.in_use += cpus;
        Ok(())
    }

    /// Release `cpus` CPUs previously allocated. Panics on a double release —
    /// that is always a simulator bug.
    pub fn release(&mut self, cpus: u32) {
        assert!(
            cpus <= self.in_use,
            "releasing {} CPUs but only {} in use",
            cpus,
            self.in_use
        );
        self.in_use -= cpus;
    }

    /// Take `cpus` CPUs out of service (outage start). Only idle CPUs can go
    /// offline — running jobs are never killed in the paper's model, so an
    /// outage that wants more CPUs than are idle takes what it can get; the
    /// returned value is the number actually taken.
    pub fn take_offline(&mut self, cpus: u32) -> u32 {
        let taken = cpus.min(self.free());
        self.offline += taken;
        taken
    }

    /// Return `cpus` CPUs to service (outage end). Panics if more are brought
    /// back than are offline.
    pub fn bring_online(&mut self, cpus: u32) {
        assert!(
            cpus <= self.offline,
            "bringing {} CPUs online but only {} offline",
            cpus,
            self.offline
        );
        self.offline -= cpus;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_pool_is_all_free() {
        let p = CpuPool::new(100);
        assert_eq!(p.total(), 100);
        assert_eq!(p.free(), 100);
        assert_eq!(p.in_use(), 0);
        assert_eq!(p.utilization(), 0.0);
        assert!(p.can_fit(100));
        assert!(!p.can_fit(101));
    }

    #[test]
    fn allocate_release_round_trip() {
        let mut p = CpuPool::new(10);
        p.allocate(4).unwrap();
        assert_eq!(p.free(), 6);
        assert_eq!(p.in_use(), 4);
        assert!((p.utilization() - 0.4).abs() < 1e-12);
        p.allocate(6).unwrap();
        assert_eq!(p.free(), 0);
        assert!((p.utilization() - 1.0).abs() < 1e-12);
        p.release(4);
        p.release(6);
        assert_eq!(p.free(), 10);
    }

    #[test]
    fn over_allocation_reports_shortfall() {
        let mut p = CpuPool::new(8);
        p.allocate(5).unwrap();
        let err = p.allocate(4).unwrap_err();
        assert_eq!(
            err,
            Insufficient {
                requested: 4,
                free: 3
            }
        );
        assert!(err.to_string().contains("requested 4"));
        // Failed allocation must not change state.
        assert_eq!(p.in_use(), 5);
    }

    #[test]
    #[should_panic(expected = "releasing")]
    fn double_release_panics() {
        let mut p = CpuPool::new(8);
        p.allocate(3).unwrap();
        p.release(3);
        p.release(1);
    }

    #[test]
    fn outage_takes_only_idle_cpus() {
        let mut p = CpuPool::new(10);
        p.allocate(7).unwrap();
        // Outage wants the whole machine; only 3 are idle.
        let taken = p.take_offline(10);
        assert_eq!(taken, 3);
        assert_eq!(p.free(), 0);
        assert_eq!(p.offline(), 3);
        // A job finishing during the outage frees CPUs for allocation again.
        p.release(7);
        assert_eq!(p.free(), 7);
        p.bring_online(3);
        assert_eq!(p.free(), 10);
    }

    #[test]
    #[should_panic(expected = "bringing")]
    fn bringing_back_too_many_panics() {
        let mut p = CpuPool::new(4);
        p.take_offline(2);
        p.bring_online(3);
    }

    #[test]
    fn zero_cpu_allocate_is_noop_success() {
        let mut p = CpuPool::new(4);
        p.allocate(0).unwrap();
        assert_eq!(p.free(), 4);
        p.release(0);
    }
}
