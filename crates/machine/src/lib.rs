//! # machine — supercomputer hardware model
//!
//! Models the machines the paper simulates: a fixed pool of identical CPUs
//! (space-shared, non-preemptive allocation), a clock speed used to normalize
//! interstitial job runtimes across machines, and scheduled outage windows.
//!
//! * [`config`] — [`MachineConfig`] plus the three ASCI presets of Table 1
//!   (Ross, Blue Mountain, Blue Pacific).
//! * [`pool`] — [`CpuPool`], checked allocate/release accounting.
//! * [`running`] — [`RunningSet`], the set of executing jobs with actual and
//!   estimated completion times; computes backfill *shadow times* and
//!   free-capacity profiles.
//! * [`profile`] — [`EndIndex`]/[`IndexedFreeProfile`], the incrementally
//!   maintained end-time index behind `RunningSet`'s O(√n) capacity queries.
//! * [`outage`] — [`OutageSchedule`], full-machine downtime windows.
//! * [`fault`] — [`FaultModel`], outages plus per-node failure/repair
//!   processes yielding a time-varying capacity timeline.

//!
//! ```
//! use machine::config::blue_mountain;
//!
//! let bm = blue_mountain();
//! assert_eq!(bm.cpus, 4662);
//! // Runtime normalization: 120 s at 1 GHz takes 458 s at 262 MHz.
//! assert_eq!(bm.normalize_runtime(120.0).as_secs(), 458);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod fault;
pub mod outage;
pub mod pool;
pub mod profile;
pub mod running;

pub use config::{MachineConfig, QueueSystem};
pub use fault::{
    FaultModel, FaultSpec, FaultStats, JobProgress, KilledJob, NodeFaults, ProgressLedger,
};
pub use outage::OutageSchedule;
pub use pool::CpuPool;
pub use profile::{EndIndex, IndexedFreeProfile};
pub use running::{RunningJob, RunningSet};
