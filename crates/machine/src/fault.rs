//! Fault model: whole-machine outages plus per-node failure/repair.
//!
//! The paper's outage story stops at full-machine windows that only block
//! job *starts* ([`OutageSchedule`]). Real ASCI logs also contain partial
//! degradation: individual nodes crash and come back, taking their CPUs out
//! of service and killing whatever ran on them. [`FaultModel`] generalizes
//! the outage schedule into both layers:
//!
//! * **machine outages** — the existing whole-machine windows, unchanged
//!   semantics (no starts while down, running jobs drain);
//! * **node faults** — a set of nodes partitioning the machine's CPUs, each
//!   with its own failure/repair window schedule (typically drawn from
//!   seeded exponential MTBF/MTTR processes). A down node removes its CPUs
//!   from capacity and crashes the jobs occupying them.
//!
//! Everything is deterministic: node schedules are pure functions of the
//! seed (independent [`Rng::split`] streams per node), so the same spec
//! reproduces the same failure timeline bit-for-bit.

use crate::outage::OutageSchedule;
use simkit::rng::Rng;
use simkit::time::{SimDuration, SimTime};

/// One node's share of the machine and its failure/repair timeline.
#[derive(Clone, Debug)]
pub struct NodeFaults {
    /// CPUs this node contributes to the pool.
    pub cpus: u32,
    /// Down windows for this node (sorted, disjoint).
    pub schedule: OutageSchedule,
}

/// Parsed `--faults` specification: `mtbf=SECS,mttr=SECS,nodes=N[,seed=S]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Mean time between failures per node, seconds.
    pub mtbf: SimDuration,
    /// Mean time to repair per node, seconds.
    pub mttr: SimDuration,
    /// Number of equal nodes the machine is partitioned into.
    pub nodes: u32,
    /// Seed for the failure/repair draws.
    pub seed: u64,
}

impl FaultSpec {
    /// Parse a `key=value` comma list. Required keys: `mtbf`, `mttr`,
    /// `nodes` (integer seconds / count); optional `seed` (default 0).
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut mtbf = None;
        let mut mttr = None;
        let mut nodes = None;
        let mut seed = 0u64;
        for part in s.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("--faults: expected key=value, got {part:?}"))?;
            let n: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("--faults: {key} wants an integer, got {value:?}"))?;
            match key.trim() {
                "mtbf" => mtbf = Some(SimDuration::from_secs(n)),
                "mttr" => mttr = Some(SimDuration::from_secs(n)),
                "nodes" => {
                    nodes = Some(
                        u32::try_from(n)
                            .ok()
                            .filter(|&k| k > 0)
                            .ok_or_else(|| format!("--faults: bad node count {value:?}"))?,
                    )
                }
                "seed" => seed = n,
                other => {
                    return Err(format!(
                        "--faults: unknown key {other:?} (use mtbf, mttr, nodes, seed)"
                    ))
                }
            }
        }
        match (mtbf, mttr, nodes) {
            (Some(mtbf), Some(mttr), Some(nodes)) => {
                for (key, value) in [("mtbf", mtbf), ("mttr", mttr)] {
                    if value.is_zero() {
                        return Err(format!(
                            "--faults: {key} must be positive seconds, got {key}=0 in {s:?}"
                        ));
                    }
                }
                Ok(FaultSpec {
                    mtbf,
                    mttr,
                    nodes,
                    seed,
                })
            }
            _ => {
                let missing: Vec<&str> = [
                    ("mtbf", mtbf.is_none()),
                    ("mttr", mttr.is_none()),
                    ("nodes", nodes.is_none()),
                ]
                .iter()
                .filter(|(_, absent)| *absent)
                .map(|(key, _)| *key)
                .collect();
                Err(format!(
                    "--faults: missing required key(s) {} in {s:?} \
                     (mtbf=, mttr= and nodes= are all required)",
                    missing.join(", ")
                ))
            }
        }
    }
}

/// Whole-machine outages plus per-node failure/repair processes.
#[derive(Clone, Debug, Default)]
pub struct FaultModel {
    outages: OutageSchedule,
    nodes: Vec<NodeFaults>,
}

impl FaultModel {
    /// A perfect machine: no outages, no node failures. Simulations built
    /// with this model behave bit-for-bit like the pre-fault-model code.
    pub fn none() -> Self {
        Self::default()
    }

    /// Wrap an existing whole-machine outage schedule (no node faults).
    pub fn from_outages(outages: OutageSchedule) -> Self {
        FaultModel {
            outages,
            nodes: Vec::new(),
        }
    }

    /// Replace the whole-machine outage schedule, keeping node faults.
    pub fn with_outages(mut self, outages: OutageSchedule) -> Self {
        self.outages = outages;
        self
    }

    /// Attach explicit per-node schedules.
    pub fn with_nodes(mut self, nodes: Vec<NodeFaults>) -> Self {
        self.nodes = nodes;
        self
    }

    /// Synthesize per-node failure/repair schedules from a spec: the
    /// machine's `total_cpus` are split evenly across `spec.nodes` nodes
    /// (remainder spread over the first nodes), and each node alternates
    /// Exp(`mtbf`) uptime with Exp(`mttr`) downtime over `[0, horizon)`,
    /// drawn from an independent per-node stream of `spec.seed`.
    pub fn synthesize(spec: &FaultSpec, total_cpus: u32, horizon: SimTime) -> Self {
        use simkit::dist::{Exp, Sample};
        let n = spec.nodes.min(total_cpus).max(1);
        let base = total_cpus / n;
        let extra = total_cpus % n;
        let up = Exp::with_mean(spec.mtbf.as_secs_f64().max(1.0));
        let down = Exp::with_mean(spec.mttr.as_secs_f64().max(1.0));
        let root = Rng::new(spec.seed);
        let mut nodes = Vec::with_capacity(n as usize);
        for i in 0..n {
            let cpus = base + u32::from(i < extra);
            let mut rng = root.split(u64::from(i));
            let mut windows = Vec::new();
            let mut t = SimTime::ZERO + SimDuration::from_secs_f64(up.sample(&mut rng));
            while t < horizon {
                let end = (t + SimDuration::from_secs_f64(down.sample(&mut rng))).min(horizon);
                windows.push((t, end));
                t = end + SimDuration::from_secs_f64(up.sample(&mut rng));
            }
            nodes.push(NodeFaults {
                cpus,
                schedule: OutageSchedule::from_windows(windows),
            });
        }
        FaultModel {
            outages: OutageSchedule::none(),
            nodes,
        }
    }

    /// The whole-machine outage schedule.
    pub fn machine_outages(&self) -> &OutageSchedule {
        &self.outages
    }

    /// The per-node failure schedules.
    pub fn nodes(&self) -> &[NodeFaults] {
        &self.nodes
    }

    /// True when the model injects nothing (the perfect machine).
    pub fn is_none(&self) -> bool {
        self.outages.windows().is_empty()
            && self.nodes.iter().all(|n| n.schedule.windows().is_empty())
    }

    /// CPUs held by nodes that are down at `t`.
    pub fn down_cpus(&self, t: SimTime) -> u32 {
        self.nodes
            .iter()
            .filter(|n| n.schedule.is_down(t))
            .map(|n| n.cpus)
            .sum()
    }

    /// The time-varying capacity: CPUs in service at `t` out of
    /// `total_cpus`. Whole-machine outages are *not* subtracted here — they
    /// gate job starts, matching the paper's drain semantics — only failed
    /// nodes reduce capacity.
    pub fn available_cpus(&self, t: SimTime, total_cpus: u32) -> u32 {
        total_cpus.saturating_sub(self.down_cpus(t))
    }

    /// The capacity timeline over `[0, horizon)` as step segments
    /// `(start, available_cpus)`, starting at `t = 0` and changing at every
    /// node failure/repair boundary. Adjacent equal-capacity segments are
    /// merged.
    pub fn capacity_profile(&self, total_cpus: u32, horizon: SimTime) -> Vec<(SimTime, u32)> {
        let mut edges: Vec<SimTime> = vec![SimTime::ZERO];
        for n in &self.nodes {
            for &(a, b) in n.schedule.windows() {
                if a < horizon {
                    edges.push(a);
                }
                if b < horizon {
                    edges.push(b);
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let mut out: Vec<(SimTime, u32)> = Vec::with_capacity(edges.len());
        for t in edges {
            let avail = self.available_cpus(t, total_cpus);
            match out.last() {
                Some(&(_, prev)) if prev == avail => {}
                _ => out.push((t, avail)),
            }
        }
        out
    }
}

/// Credited progress for one interstitial job across evictions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobProgress {
    /// Work completed and credited so far (checkpointed or suspended).
    pub done: SimDuration,
    /// When the job first started executing (wallclock anchor for wait
    /// and turnaround accounting across interruptions).
    pub first_start: SimTime,
    /// Evictions survived so far with credited progress.
    pub interruptions: u32,
}

/// Per-job progress ledger for the checkpoint and suspend-resume recovery
/// policies.
///
/// The ledger is the recovery subsystem's source of truth for "how much of
/// this job already ran": the driver credits progress on every eviction and
/// consumes the entry when the job finally completes or is abandoned. Under
/// kill-restart the ledger stays empty, which is what keeps the legacy path
/// bit-identical. BTreeMap keyed by job id — deterministic iteration, per
/// simlint R1.
#[derive(Clone, Debug, Default)]
pub struct ProgressLedger {
    entries: std::collections::BTreeMap<u64, JobProgress>,
}

impl ProgressLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Credited progress for `job`, zero if never evicted with credit.
    pub fn done_for(&self, job: u64) -> SimDuration {
        self.entries
            .get(&job)
            .map(|p| p.done)
            .unwrap_or(SimDuration::ZERO)
    }

    /// The full entry for `job`, if any.
    pub fn get(&self, job: u64) -> Option<&JobProgress> {
        self.entries.get(&job)
    }

    /// Credit `done` total progress to `job` (replaces any prior credit —
    /// the caller passes the new cumulative figure). `first_start` is kept
    /// from the first credit.
    pub fn credit(&mut self, job: u64, done: SimDuration, first_start: SimTime) {
        self.entries
            .entry(job)
            .and_modify(|p| {
                p.done = done;
                p.interruptions += 1;
            })
            .or_insert(JobProgress {
                done,
                first_start,
                interruptions: 1,
            });
    }

    /// Remove and return the entry for `job` (at completion or abandonment).
    pub fn take(&mut self, job: u64) -> Option<JobProgress> {
        self.entries.remove(&job)
    }

    /// Number of jobs with credited progress.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no job has credited progress.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One fault-induced job kill, recorded for survival analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KilledJob {
    /// Job id.
    pub job: u64,
    /// CPUs the job held.
    pub cpus: u32,
    /// The job's nominal (full) runtime, seconds.
    pub runtime_s: u64,
    /// True for interstitial jobs.
    pub interstitial: bool,
}

/// Cumulative fault/recovery accounting for one simulation run.
#[derive(Clone, Debug, Default)]
pub struct FaultStats {
    /// Node-down boundaries processed.
    pub node_failures: u64,
    /// Node-up boundaries processed.
    pub node_repairs: u64,
    /// Native jobs killed by node failures (each is requeued at the head).
    pub native_requeues: u64,
    /// Interstitial jobs killed by node failures and rescheduled under the
    /// retry policy.
    pub interstitial_retries: u64,
    /// Interstitial jobs abandoned: retry budget exhausted, or no room left
    /// before the horizon.
    pub interstitial_given_up: u64,
    /// CPU·seconds of partial work discarded by fault kills (both classes).
    /// Under checkpoint/suspend recovery only the *uncredited* remainder
    /// lands here; salvaged progress moves to `salvaged_cpu_seconds`.
    pub fault_wasted_cpu_seconds: f64,
    /// The interstitial-class subset of [`fault_wasted_cpu_seconds`]
    /// (eviction losses plus salvage reversed when a victim gives up).
    /// Native requeue waste dominates the combined figure and is identical
    /// across recovery policies, so policy comparisons read this one.
    ///
    /// [`fault_wasted_cpu_seconds`]: FaultStats::fault_wasted_cpu_seconds
    pub interstitial_wasted_cpu_seconds: f64,
    /// CPU·seconds of evicted interstitial progress carried across a
    /// resume instead of being discarded (zero under kill-restart).
    pub salvaged_cpu_seconds: f64,
    /// CPU·seconds lost past the last checkpoint by evicted-but-retried
    /// interstitial jobs — work that will be executed twice. A subset of
    /// the waste figures; zero under kill-restart (whose losses land
    /// wholly in `fault_wasted_cpu_seconds`) and under suspend-resume
    /// (which loses nothing).
    pub reexecuted_cpu_seconds: f64,
    /// CPU·seconds spent writing checkpoints (the fixed per-checkpoint
    /// overhead × CPUs; zero unless `--recovery ckpt=I`).
    pub checkpoint_overhead_cpu_seconds: f64,
    /// Checkpoints completed by interstitial jobs.
    pub checkpoints_taken: u64,
    /// Evicted interstitial jobs that later restarted with credited
    /// progress (`job_resumed` events).
    pub interstitial_resumes: u64,
    /// Every fault kill, for survival-probability analysis.
    pub kills: Vec<KilledJob>,
}

impl FaultStats {
    /// Total fault kills across both job classes.
    pub fn total_kills(&self) -> u64 {
        self.kills.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn spec_parsing_round_trips() {
        let spec = FaultSpec::parse("mtbf=36000,mttr=7200,nodes=16").unwrap();
        assert_eq!(spec.mtbf, SimDuration::from_secs(36_000));
        assert_eq!(spec.mttr, SimDuration::from_secs(7_200));
        assert_eq!(spec.nodes, 16);
        assert_eq!(spec.seed, 0);
        let spec = FaultSpec::parse("mtbf=100,mttr=10,nodes=4,seed=7").unwrap();
        assert_eq!(spec.seed, 7);
    }

    #[test]
    fn spec_parsing_rejects_garbage() {
        assert!(FaultSpec::parse("mtbf=100").is_err(), "missing keys");
        assert!(FaultSpec::parse("mtbf=x,mttr=1,nodes=2").is_err());
        assert!(FaultSpec::parse("mtbf=1,mttr=1,nodes=0").is_err());
        assert!(FaultSpec::parse("mtbf=0,mttr=1,nodes=2").is_err());
        assert!(FaultSpec::parse("mtbf=1,mttr=1,nodes=2,bogus=3").is_err());
        assert!(FaultSpec::parse("mtbf 1").is_err(), "no equals sign");
    }

    #[test]
    fn spec_parse_errors_name_the_offending_part() {
        // Every malformed form must point at the exact key/value at fault,
        // not just fail — operators paste these specs into job scripts.
        let err = FaultSpec::parse("mtbf 1").unwrap_err();
        assert!(err.contains("expected key=value"), "{err}");
        assert!(err.contains("\"mtbf 1\""), "{err}");

        let err = FaultSpec::parse("mtbf=x,mttr=1,nodes=2").unwrap_err();
        assert!(err.contains("mtbf wants an integer"), "{err}");
        assert!(err.contains("\"x\""), "{err}");

        let err = FaultSpec::parse("mtbf=1,mttr=1,nodes=0").unwrap_err();
        assert!(err.contains("bad node count"), "{err}");
        assert!(err.contains("\"0\""), "{err}");

        let err = FaultSpec::parse("mtbf=1,mttr=1,nodes=2,bogus=3").unwrap_err();
        assert!(err.contains("unknown key \"bogus\""), "{err}");

        let err = FaultSpec::parse("mtbf=100").unwrap_err();
        assert!(err.contains("missing required key(s) mttr, nodes"), "{err}");
        assert!(err.contains("\"mtbf=100\""), "{err}");

        let err = FaultSpec::parse("nodes=4").unwrap_err();
        assert!(err.contains("missing required key(s) mtbf, mttr"), "{err}");

        let err = FaultSpec::parse("").unwrap_err();
        assert!(
            err.contains("missing required key(s) mtbf, mttr, nodes"),
            "{err}"
        );

        let err = FaultSpec::parse("mtbf=0,mttr=1,nodes=2").unwrap_err();
        assert!(err.contains("mtbf must be positive seconds"), "{err}");
        assert!(err.contains("mtbf=0"), "{err}");

        let err = FaultSpec::parse("mtbf=1,mttr=0,nodes=2").unwrap_err();
        assert!(err.contains("mttr must be positive seconds"), "{err}");
    }

    #[test]
    fn progress_ledger_credits_and_consumes() {
        let mut ledger = ProgressLedger::new();
        assert!(ledger.is_empty());
        assert_eq!(ledger.done_for(7), SimDuration::ZERO);
        ledger.credit(7, SimDuration::from_secs(300), t(1000));
        ledger.credit(9, SimDuration::from_secs(50), t(2000));
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger.done_for(7), SimDuration::from_secs(300));
        // A second eviction replaces the cumulative figure but keeps the
        // original wallclock anchor.
        ledger.credit(7, SimDuration::from_secs(450), t(5000));
        let p = ledger.get(7).unwrap();
        assert_eq!(p.done, SimDuration::from_secs(450));
        assert_eq!(p.first_start, t(1000), "first start survives re-credit");
        assert_eq!(p.interruptions, 2);
        let taken = ledger.take(7).unwrap();
        assert_eq!(taken.done, SimDuration::from_secs(450));
        assert!(ledger.take(7).is_none(), "consumed");
        assert_eq!(ledger.len(), 1);
    }

    #[test]
    fn none_is_a_perfect_machine() {
        let f = FaultModel::none();
        assert!(f.is_none());
        assert_eq!(f.available_cpus(t(123), 64), 64);
        assert_eq!(f.down_cpus(t(0)), 0);
        assert_eq!(f.capacity_profile(64, t(1_000)), vec![(t(0), 64)]);
    }

    #[test]
    fn node_partition_covers_the_machine() {
        let spec = FaultSpec::parse("mtbf=36000,mttr=3600,nodes=10,seed=3").unwrap();
        let f = FaultModel::synthesize(&spec, 64, SimTime::from_days(10));
        let total: u32 = f.nodes().iter().map(|n| n.cpus).sum();
        assert_eq!(total, 64);
        assert_eq!(f.nodes().len(), 10);
        // 64 = 6*10 + 4: the first four nodes take the remainder.
        assert_eq!(f.nodes()[0].cpus, 7);
        assert_eq!(f.nodes()[4].cpus, 6);
    }

    #[test]
    fn more_nodes_than_cpus_clamps() {
        let spec = FaultSpec::parse("mtbf=1000,mttr=100,nodes=99,seed=1").unwrap();
        let f = FaultModel::synthesize(&spec, 8, t(100_000));
        assert_eq!(f.nodes().len(), 8);
        assert!(f.nodes().iter().all(|n| n.cpus == 1));
    }

    #[test]
    fn synthesis_is_deterministic_per_seed() {
        let spec = FaultSpec::parse("mtbf=36000,mttr=3600,nodes=8,seed=42").unwrap();
        let horizon = SimTime::from_days(40);
        let a = FaultModel::synthesize(&spec, 64, horizon);
        let b = FaultModel::synthesize(&spec, 64, horizon);
        for (x, y) in a.nodes().iter().zip(b.nodes()) {
            assert_eq!(x.schedule.windows(), y.schedule.windows());
        }
        // A different seed must produce a different timeline.
        let mut other = spec;
        other.seed = 43;
        let c = FaultModel::synthesize(&other, 64, horizon);
        assert!(a
            .nodes()
            .iter()
            .zip(c.nodes())
            .any(|(x, y)| x.schedule.windows() != y.schedule.windows()));
    }

    #[test]
    fn capacity_tracks_node_windows() {
        let f = FaultModel::none().with_nodes(vec![
            NodeFaults {
                cpus: 16,
                schedule: OutageSchedule::from_windows(vec![(t(100), t(200))]),
            },
            NodeFaults {
                cpus: 48,
                schedule: OutageSchedule::from_windows(vec![(t(150), t(300))]),
            },
        ]);
        assert_eq!(f.available_cpus(t(0), 64), 64);
        assert_eq!(f.available_cpus(t(120), 64), 48);
        assert_eq!(f.available_cpus(t(160), 64), 0);
        assert_eq!(f.available_cpus(t(250), 64), 16);
        assert_eq!(f.available_cpus(t(300), 64), 64);
        assert_eq!(
            f.capacity_profile(64, t(1_000)),
            vec![
                (t(0), 64),
                (t(100), 48),
                (t(150), 0),
                (t(200), 16),
                (t(300), 64),
            ]
        );
        assert!(!f.is_none());
    }

    #[test]
    fn machine_outages_do_not_reduce_capacity() {
        let f = FaultModel::from_outages(OutageSchedule::from_windows(vec![(t(0), t(100))]));
        assert_eq!(f.available_cpus(t(50), 64), 64, "outages gate starts only");
        assert!(!f.is_none());
        assert!(f.machine_outages().is_down(t(50)));
    }
}
