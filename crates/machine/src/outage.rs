//! Machine outage windows.
//!
//! The paper's Figure 4 caption notes utilization sits "essentially at 100%
//! except for outages" under continual interstitial computing — real logs
//! contain full-machine downtime. We model outages as whole-machine windows:
//! no job may *start* during an outage and (consistent with the paper's
//! non-preemptive model) running jobs are allowed to drain.

use simkit::rng::Rng;
use simkit::time::{SimDuration, SimTime};

/// A set of non-overlapping, time-sorted outage windows `[start, end)`.
#[derive(Clone, Debug, Default)]
pub struct OutageSchedule {
    windows: Vec<(SimTime, SimTime)>,
}

impl OutageSchedule {
    /// No outages.
    pub fn none() -> Self {
        Self::default()
    }

    /// Build from explicit windows; overlapping or touching windows are
    /// merged, empty ones dropped.
    pub fn from_windows(mut windows: Vec<(SimTime, SimTime)>) -> Self {
        windows.retain(|&(a, b)| b > a);
        windows.sort_unstable_by_key(|&(a, _)| a);
        let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(windows.len());
        for (a, b) in windows {
            match merged.last_mut() {
                Some(last) if a <= last.1 => last.1 = last.1.max(b),
                _ => merged.push((a, b)),
            }
        }
        OutageSchedule { windows: merged }
    }

    /// Draw a random schedule: outages arrive Poisson with mean spacing
    /// `mean_gap`, each lasting `mean_len` on average (exponential), clipped
    /// to `[0, horizon)`. This mirrors the sporadic day-scale outages visible
    /// in the paper's Figure 4 utilization traces.
    pub fn random(
        rng: &mut Rng,
        horizon: SimTime,
        mean_gap: SimDuration,
        mean_len: SimDuration,
    ) -> Self {
        use simkit::dist::{Exp, Sample};
        let gap = Exp::with_mean(mean_gap.as_secs_f64().max(1.0));
        let len = Exp::with_mean(mean_len.as_secs_f64().max(1.0));
        let mut windows = Vec::new();
        let mut t = SimTime::ZERO + SimDuration::from_secs_f64(gap.sample(rng));
        while t < horizon {
            let end = (t + SimDuration::from_secs_f64(len.sample(rng))).min(horizon);
            windows.push((t, end));
            t = end + SimDuration::from_secs_f64(gap.sample(rng));
        }
        Self::from_windows(windows)
    }

    /// The outage windows, sorted and disjoint.
    pub fn windows(&self) -> &[(SimTime, SimTime)] {
        &self.windows
    }

    /// Index of the last window starting at or before `t`, if any. Because
    /// the windows are sorted and disjoint, this is the only candidate that
    /// can contain `t` — every query below is one binary search.
    #[inline]
    fn candidate(&self, t: SimTime) -> Option<usize> {
        self.windows
            .partition_point(|&(a, _)| a <= t)
            .checked_sub(1)
    }

    /// True if the machine is down at `t`.
    pub fn is_down(&self, t: SimTime) -> bool {
        self.candidate(t).is_some_and(|i| t < self.windows[i].1)
    }

    /// If `t` falls inside an outage, the instant it ends; otherwise `t`.
    pub fn next_up(&self, t: SimTime) -> SimTime {
        match self.candidate(t) {
            Some(i) if t < self.windows[i].1 => self.windows[i].1,
            _ => t,
        }
    }

    /// Start of the outage covering `t`, or of the first one after it —
    /// schedulers use this to avoid starting a job that an imminent outage
    /// would forbid. When `t` is already inside a window the *enclosing*
    /// window's start is returned (≤ `t`), so callers probing mid-outage see
    /// the outage they are in rather than "nothing coming".
    pub fn next_down(&self, t: SimTime) -> Option<SimTime> {
        let after = self.windows.partition_point(|&(a, _)| a <= t);
        if let Some(i) = after.checked_sub(1) {
            if t < self.windows[i].1 {
                return Some(self.windows[i].0);
            }
        }
        self.windows.get(after).map(|&(a, _)| a)
    }

    /// Total downtime seconds overlapping `[t0, t1)`.
    pub fn downtime_in(&self, t0: SimTime, t1: SimTime) -> SimDuration {
        let mut total = 0u64;
        for &(a, b) in &self.windows {
            let lo = a.max(t0);
            let hi = b.min(t1);
            if hi > lo {
                total += (hi - lo).as_secs();
            }
        }
        SimDuration::from_secs(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn empty_schedule_is_always_up() {
        let o = OutageSchedule::none();
        assert!(!o.is_down(t(0)));
        assert_eq!(o.next_up(t(5)), t(5));
        assert_eq!(o.next_down(t(5)), None);
        assert_eq!(o.downtime_in(t(0), t(100)), SimDuration::ZERO);
    }

    #[test]
    fn membership_and_boundaries() {
        let o = OutageSchedule::from_windows(vec![(t(10), t(20))]);
        assert!(!o.is_down(t(9)));
        assert!(o.is_down(t(10)), "start inclusive");
        assert!(o.is_down(t(19)));
        assert!(!o.is_down(t(20)), "end exclusive");
        assert_eq!(o.next_up(t(15)), t(20));
        assert_eq!(o.next_down(t(0)), Some(t(10)));
        assert_eq!(o.next_down(t(10)), Some(t(10)));
        assert_eq!(
            o.next_down(t(11)),
            Some(t(10)),
            "inside the window, the enclosing start is returned"
        );
        assert_eq!(o.next_down(t(20)), None, "past the last window");
    }

    #[test]
    fn next_down_between_windows() {
        let o = OutageSchedule::from_windows(vec![(t(10), t(20)), (t(40), t(60))]);
        assert_eq!(o.next_down(t(25)), Some(t(40)));
        assert_eq!(o.next_down(t(45)), Some(t(40)), "enclosing second window");
        assert_eq!(o.next_down(t(60)), None);
        assert!(o.is_down(t(45)) && !o.is_down(t(25)));
        assert_eq!(o.next_up(t(45)), t(60));
        assert_eq!(o.next_up(t(25)), t(25));
    }

    #[test]
    fn merging_overlaps_and_dropping_empties() {
        let o = OutageSchedule::from_windows(vec![
            (t(30), t(40)),
            (t(10), t(20)),
            (t(15), t(35)), // bridges the other two
            (t(50), t(50)), // empty, dropped
        ]);
        assert_eq!(o.windows(), &[(t(10), t(40))]);
    }

    #[test]
    fn touching_windows_merge() {
        let o = OutageSchedule::from_windows(vec![(t(10), t(20)), (t(20), t(30))]);
        assert_eq!(o.windows(), &[(t(10), t(30))]);
    }

    #[test]
    fn downtime_overlap_accounting() {
        let o = OutageSchedule::from_windows(vec![(t(10), t(20)), (t(40), t(60))]);
        assert_eq!(o.downtime_in(t(0), t(100)), SimDuration::from_secs(30));
        assert_eq!(o.downtime_in(t(15), t(45)), SimDuration::from_secs(10));
        assert_eq!(o.downtime_in(t(20), t(40)), SimDuration::ZERO);
    }

    #[test]
    fn random_schedule_is_sane() {
        let mut rng = Rng::new(42);
        let horizon = SimTime::from_days(30);
        let o = OutageSchedule::random(
            &mut rng,
            horizon,
            SimDuration::from_days(5),
            SimDuration::from_hours(8),
        );
        // Windows sorted, disjoint, inside the horizon.
        for w in o.windows().windows(2) {
            assert!(w[0].1 <= w[1].0);
        }
        for &(a, b) in o.windows() {
            assert!(a < b && b <= horizon);
        }
        // ~6 outages expected; allow broad slack but demand at least one.
        assert!(!o.windows().is_empty());
        assert!(o.windows().len() < 30);
        // Determinism.
        let mut rng2 = Rng::new(42);
        let o2 = OutageSchedule::random(
            &mut rng2,
            horizon,
            SimDuration::from_days(5),
            SimDuration::from_hours(8),
        );
        assert_eq!(o.windows(), o2.windows());
    }
}
