//! Indexed free-capacity profile: the sub-linear replacement for rebuilding
//! a [`StepFunction`] from every running job on every scheduling cycle.
//!
//! # Layout
//!
//! [`EndIndex`] is a sqrt-decomposed sorted multiset of the running jobs'
//! *raw* estimated end times, aggregated per distinct second and grouped
//! into blocks of ~[`BLOCK_TARGET`] entries with a cached per-block CPU sum.
//! [`RunningSet::insert`]/[`RunningSet::remove`](crate::RunningSet::remove)
//! maintain it incrementally, so the two queries the backfill planner needs
//! are O(√n) instead of the O(n) profile rebuild:
//!
//! * `prefix(t)` — total CPUs whose estimated end is ≤ `t`, i.e. how many
//!   CPUs the running set will have released by `t`;
//! * `first_reaching(c)` — the earliest end time by which cumulative
//!   released CPUs reach `c` (the shadow-time primitive).
//!
//! [`IndexedFreeProfile`] is the planner-facing view: the *base* function
//! `free_now + prefix(t)` (with the same overrun clamp as
//! [`RunningSet::free_profile`](crate::RunningSet::free_profile) — jobs past
//! their estimate release at `now + 1`, never at `now`) plus a small
//! [`StepFunction`] *overlay* holding only the planner's own in-cycle
//! deductions (immediate starts and reservations). Queries walk overlay
//! pieces — a handful per cycle — and answer the base part in O(√n) via the
//! index, exploiting that the base is monotone non-decreasing: its minimum
//! over any piece sits at the left edge, and within a piece the qualifying
//! instants of a slot search form a suffix found by `first_reaching`.
//!
//! # Equivalence contract
//!
//! For every instant `t` in `[0, horizon)` and every sequence of
//! `range_add` deductions, `IndexedFreeProfile` answers `value_at`,
//! `min_over` and `find_slot` *identically* to the naive
//! `free_profile(now, free_now, horizon)` StepFunction with the same
//! deductions applied — edge cases included (empty windows, zero durations,
//! windows clipped by the horizon). `crates/machine/tests/free_profile_props.rs`
//! and `crates/sched/tests/differential.rs` enforce this pointwise and
//! end-to-end; golden traces stay byte-identical because of it.

use simkit::series::StepFunction;
use simkit::time::{SimDuration, SimTime};

/// Target entries per block; blocks split at twice this.
const BLOCK_TARGET: usize = 64;

/// One sqrt-decomposition block: distinct end-seconds in ascending order,
/// each with the total CPUs released at that second, plus the block sum.
#[derive(Clone, Debug)]
struct Block {
    /// `(end_second, total CPUs estimated to end then)`, ascending, no zeros.
    ends: Vec<(u64, u64)>,
    /// Sum of the CPU counts in `ends`.
    sum: u64,
}

impl Block {
    /// Largest end-second stored in this block (blocks are never empty).
    fn last_end(&self) -> u64 {
        match self.ends.last() {
            Some(&(e, _)) => e,
            None => 0,
        }
    }
}

/// Incrementally-maintained index over the running jobs' estimated end
/// times. See the module docs for the layout and complexity.
#[derive(Clone, Debug, Default)]
pub struct EndIndex {
    /// Blocks in ascending end-second order; every block non-empty.
    blocks: Vec<Block>,
    /// Total CPUs across all entries.
    total: u64,
}

impl EndIndex {
    /// Number of distinct end-seconds currently indexed.
    pub fn distinct_ends(&self) -> usize {
        self.blocks.iter().map(|b| b.ends.len()).sum()
    }

    /// Total CPUs across all indexed entries.
    pub fn total_cpus(&self) -> u64 {
        self.total
    }

    /// Record `cpus` CPUs releasing at `end_s`.
    pub fn insert(&mut self, end_s: u64, cpus: u32) {
        let cpus = u64::from(cpus);
        self.total += cpus;
        if cpus == 0 {
            return;
        }
        if self.blocks.is_empty() {
            self.blocks.push(Block {
                ends: vec![(end_s, cpus)],
                sum: cpus,
            });
            return;
        }
        // First block whose range can hold `end_s`; past-the-end goes last.
        let bi = self
            .blocks
            .partition_point(|b| b.last_end() < end_s)
            .min(self.blocks.len() - 1);
        let block = &mut self.blocks[bi];
        match block.ends.binary_search_by_key(&end_s, |&(e, _)| e) {
            Ok(i) => block.ends[i].1 += cpus,
            Err(i) => block.ends.insert(i, (end_s, cpus)),
        }
        block.sum += cpus;
        if block.ends.len() > 2 * BLOCK_TARGET {
            let tail = block.ends.split_off(BLOCK_TARGET);
            let tail_sum: u64 = tail.iter().map(|&(_, c)| c).sum();
            block.sum -= tail_sum;
            self.blocks.insert(
                bi + 1,
                Block {
                    ends: tail,
                    sum: tail_sum,
                },
            );
        }
    }

    /// Remove `cpus` CPUs previously inserted at `end_s`. Panics if the
    /// entry is absent (insert/remove must pair up — a simulator bug).
    pub fn remove(&mut self, end_s: u64, cpus: u32) {
        let cpus = u64::from(cpus);
        self.total -= cpus;
        if cpus == 0 {
            return;
        }
        let bi = self.blocks.partition_point(|b| b.last_end() < end_s);
        assert!(
            bi < self.blocks.len(),
            "end index: no entry at second {end_s}"
        );
        let block = &mut self.blocks[bi];
        match block.ends.binary_search_by_key(&end_s, |&(e, _)| e) {
            Ok(i) => {
                assert!(
                    block.ends[i].1 >= cpus,
                    "end index: removing more CPUs than present at {end_s}"
                );
                block.ends[i].1 -= cpus;
                block.sum -= cpus;
                if block.ends[i].1 == 0 {
                    block.ends.remove(i);
                }
                if block.ends.is_empty() {
                    self.blocks.remove(bi);
                }
            }
            Err(_) => panic!("end index: no entry at second {end_s}"),
        }
    }

    /// Total CPUs with end-second ≤ `t`.
    pub fn prefix(&self, t: u64) -> u64 {
        let bi = self.blocks.partition_point(|b| b.last_end() <= t);
        let mut acc: u64 = self.blocks[..bi].iter().map(|b| b.sum).sum();
        if let Some(block) = self.blocks.get(bi) {
            let j = block.ends.partition_point(|&(e, _)| e <= t);
            acc += block.ends[..j].iter().map(|&(_, c)| c).sum::<u64>();
        }
        acc
    }

    /// Smallest end-second `e` with `prefix(e) >= target` (`target ≥ 1`), or
    /// `None` if even the full release never reaches `target`.
    pub fn first_reaching(&self, target: u64) -> Option<u64> {
        if target == 0 || self.total < target {
            return if target == 0 { Some(0) } else { None };
        }
        let mut acc = 0u64;
        for block in &self.blocks {
            if acc + block.sum < target {
                acc += block.sum;
                continue;
            }
            for &(e, c) in &block.ends {
                acc += c;
                if acc >= target {
                    return Some(e);
                }
            }
        }
        None
    }
}

/// Planner-facing free-capacity view over an [`EndIndex`]: base function
/// `free_now` (+ released CPUs from `now + 1` on) plus a [`StepFunction`]
/// overlay of in-cycle deductions. Pointwise identical to the naive
/// [`RunningSet::free_profile`](crate::RunningSet::free_profile) — see the
/// module docs for the contract.
#[derive(Clone, Debug)]
pub struct IndexedFreeProfile<'a> {
    index: &'a EndIndex,
    free_now: i64,
    /// `now + 1`: the instant overrun jobs are projected to release.
    next_s: u64,
    horizon_s: u64,
    overlay: StepFunction,
}

impl<'a> IndexedFreeProfile<'a> {
    /// Build a view for one planning cycle. `horizon` must exceed `now`
    /// (same precondition as the naive profile).
    pub fn new(index: &'a EndIndex, now: SimTime, free_now: u32, horizon: SimTime) -> Self {
        assert!(horizon > now, "profile horizon must exceed now");
        IndexedFreeProfile {
            index,
            free_now: i64::from(free_now),
            next_s: now.as_secs() + 1,
            horizon_s: horizon.as_secs(),
            overlay: StepFunction::constant(horizon, 0),
        }
    }

    /// Segments in the overlay — the only profile this view *builds*. The
    /// base timeline is answered by the shared [`EndIndex`] and never
    /// materialized, so this (∝ plan size, not running-set size) is the
    /// indexed counterpart of the naive path's per-cycle
    /// `segment_count()` tally.
    pub fn segment_count(&self) -> usize {
        self.overlay.segment_count()
    }

    /// Base (deduction-free) value at an in-domain second.
    fn base(&self, t_s: u64) -> i64 {
        debug_assert!(t_s < self.horizon_s);
        if t_s < self.next_s {
            self.free_now
        } else {
            self.free_now + self.index.prefix(t_s) as i64
        }
    }

    /// Value at instant `t` (clamped into the domain), deductions included.
    pub fn value_at(&self, t: SimTime) -> i64 {
        let t_s = t.as_secs().min(self.horizon_s - 1);
        self.base(t_s) + self.overlay.value_at(t)
    }

    /// Minimum value on `[t0, t1)` (clamped). `None` for an empty window.
    /// The base is monotone non-decreasing, so per overlay piece the minimum
    /// sits at the piece's left edge.
    pub fn min_over(&mut self, t0: SimTime, t1: SimTime) -> Option<i64> {
        let a = t0.as_secs().min(self.horizon_s);
        let b = t1.as_secs().min(self.horizon_s);
        if a >= b {
            return None;
        }
        let mut best: Option<i64> = None;
        for (s, e, v) in self.overlay.iter_segments() {
            let (s, e) = (s.as_secs(), e.as_secs());
            if e <= a {
                continue;
            }
            if s >= b {
                break;
            }
            let m = self.base(s.max(a)) + v;
            best = Some(match best {
                Some(cur) => cur.min(m),
                None => m,
            });
        }
        best
    }

    /// Subtract-or-add `delta` on `[t0, t1)` — the planner recording an
    /// immediate start or a reservation. Goes into the overlay only.
    pub fn range_add(&mut self, t0: SimTime, t1: SimTime, delta: i64) {
        self.overlay.range_add(t0, t1, delta);
    }

    /// Earliest `t >= from` with value ≥ `need` on all of `[t, t + dur)`,
    /// the window fitting before the horizon — same contract (and edge
    /// cases) as [`StepFunction::find_slot`].
    ///
    /// Within one overlay piece the combined function is base + constant,
    /// hence monotone: the qualifying instants form a suffix of the piece
    /// whose start `first_reaching` locates directly. Runs of qualification
    /// are stitched across pieces exactly as the naive segment walk does.
    pub fn find_slot(&mut self, from: SimTime, need: i64, dur: SimDuration) -> Option<SimTime> {
        let d = dur.as_secs();
        if d == 0 {
            return (from.as_secs() < self.horizon_s).then_some(from);
        }
        if d > self.horizon_s {
            return None;
        }
        let start0 = from.as_secs();
        if start0 + d > self.horizon_s {
            return None;
        }
        let mut found: Option<u64> = None;
        let mut run_start: Option<u64> = None;
        for (s, e, v) in self.overlay.iter_segments() {
            let (s, e) = (s.as_secs(), e.as_secs());
            if e <= start0 {
                continue;
            }
            let l = s.max(start0);
            // Earliest qualifying instant in [l, e), if any: need
            // base(t) >= need - v, i.e. prefix(t) >= need - v - free_now
            // (and t >= next_s unless free_now alone suffices).
            let qualify_from = if self.base(l) >= need - v {
                Some(l)
            } else {
                let target = need - v - self.free_now;
                if target <= 0 {
                    // base(l) >= free_now >= need - v contradicts the branch;
                    // unreachable, but harmless.
                    Some(l)
                } else {
                    match self.index.first_reaching(target as u64) {
                        Some(end) => {
                            let q = end.max(self.next_s).max(l);
                            if q < e {
                                Some(q)
                            } else {
                                None
                            }
                        }
                        None => None,
                    }
                }
            };
            match qualify_from {
                Some(q) => {
                    if q > l || run_start.is_none() {
                        // Run broken at l (or none yet): starts at q.
                        run_start = Some(q);
                    }
                    if let Some(rs) = run_start {
                        if e - rs >= d {
                            found = Some(rs);
                            break;
                        }
                    }
                }
                None => run_start = None,
            }
        }
        // The last overlay piece ends exactly at the horizon, so a run
        // reaching the horizon was already length-checked in the loop.
        found.map(SimTime::from_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn index_prefix_and_first_reaching() {
        let mut ix = EndIndex::default();
        ix.insert(100, 3);
        ix.insert(200, 5);
        ix.insert(100, 2); // aggregates at the same second
        assert_eq!(ix.total_cpus(), 10);
        assert_eq!(ix.distinct_ends(), 2);
        assert_eq!(ix.prefix(99), 0);
        assert_eq!(ix.prefix(100), 5);
        assert_eq!(ix.prefix(199), 5);
        assert_eq!(ix.prefix(200), 10);
        assert_eq!(ix.first_reaching(1), Some(100));
        assert_eq!(ix.first_reaching(5), Some(100));
        assert_eq!(ix.first_reaching(6), Some(200));
        assert_eq!(ix.first_reaching(10), Some(200));
        assert_eq!(ix.first_reaching(11), None);
        ix.remove(100, 2);
        assert_eq!(ix.prefix(100), 3);
        ix.remove(100, 3);
        assert_eq!(ix.distinct_ends(), 1);
        assert_eq!(ix.first_reaching(1), Some(200));
    }

    #[test]
    fn index_blocks_split_and_stay_sorted() {
        let mut ix = EndIndex::default();
        // Enough distinct ends to force several block splits, inserted in a
        // scrambled order.
        for i in 0..500u64 {
            let e = (i * 7919) % 10_000;
            ix.insert(e, 1);
        }
        assert_eq!(ix.total_cpus(), 500);
        // prefix must agree with a brute-force recount at many probes.
        let ends: Vec<u64> = (0..500u64).map(|i| (i * 7919) % 10_000).collect();
        for probe in (0..10_000).step_by(97) {
            let brute = ends.iter().filter(|&&e| e <= probe).count() as u64;
            assert_eq!(ix.prefix(probe), brute, "probe {probe}");
        }
        for target in [1u64, 17, 250, 499, 500] {
            let brute = {
                let mut sorted = ends.clone();
                sorted.sort_unstable();
                sorted.get(target as usize - 1).copied()
            };
            assert_eq!(ix.first_reaching(target), brute, "target {target}");
        }
        // Remove everything again, in a different scrambled order.
        for i in (0..500u64).rev() {
            let e = (i * 7919) % 10_000;
            ix.remove(e, 1);
        }
        assert_eq!(ix.total_cpus(), 0);
        assert_eq!(ix.distinct_ends(), 0);
    }

    #[test]
    #[should_panic(expected = "no entry")]
    fn index_remove_of_absent_end_panics() {
        let mut ix = EndIndex::default();
        ix.insert(50, 2);
        ix.remove(51, 2);
    }

    #[test]
    fn indexed_view_matches_hand_profile() {
        let mut ix = EndIndex::default();
        ix.insert(100, 3); // releases at 100
        ix.insert(200, 5); // releases at 200
        let mut view = IndexedFreeProfile::new(&ix, t(0), 2, t(1000));
        assert_eq!(view.value_at(t(0)), 2);
        assert_eq!(view.value_at(t(99)), 2);
        assert_eq!(view.value_at(t(100)), 5);
        assert_eq!(view.value_at(t(200)), 10);
        assert_eq!(view.value_at(t(5000)), 10, "clamped to horizon");
        assert_eq!(view.min_over(t(0), t(1000)), Some(2));
        assert_eq!(view.min_over(t(150), t(250)), Some(5));
        assert_eq!(view.min_over(t(10), t(10)), None);
        assert_eq!(
            view.find_slot(t(0), 5, SimDuration::from_secs(10)),
            Some(t(100))
        );
        assert_eq!(
            view.find_slot(t(0), 10, SimDuration::from_secs(10)),
            Some(t(200))
        );
        assert_eq!(view.find_slot(t(0), 11, SimDuration::from_secs(10)), None);
        assert_eq!(view.segment_count(), 1, "no deductions: overlay is flat");
        view.range_add(t(0), t(50), -3);
        assert!(view.segment_count() > 1, "deductions add overlay segments");
    }

    #[test]
    fn overrun_jobs_release_strictly_after_now() {
        let mut ix = EndIndex::default();
        ix.insert(100, 6); // estimate long past `now`
        let view = IndexedFreeProfile::new(&ix, t(2000), 4, t(10_000));
        assert_eq!(view.value_at(t(2000)), 4, "at now: only actually-free CPUs");
        assert_eq!(view.value_at(t(2001)), 10, "released any moment after");
    }

    #[test]
    fn overlay_deductions_compose_with_base() {
        let mut ix = EndIndex::default();
        ix.insert(100, 4);
        let mut view = IndexedFreeProfile::new(&ix, t(0), 4, t(1000));
        // Start a 3-CPU job now for 50 s.
        view.range_add(t(0), t(50), -3);
        assert_eq!(view.value_at(t(0)), 1);
        assert_eq!(view.value_at(t(50)), 4);
        assert_eq!(view.min_over(t(0), t(100)), Some(1));
        // A 4-CPU/60 s request must wait for the deduction to clear.
        assert_eq!(
            view.find_slot(t(0), 4, SimDuration::from_secs(60)),
            Some(t(50))
        );
        // An 8-CPU request needs the release at 100 as well.
        assert_eq!(
            view.find_slot(t(0), 8, SimDuration::from_secs(60)),
            Some(t(100))
        );
    }

    #[test]
    fn find_slot_edge_cases_match_stepfunction() {
        let ix = EndIndex::default();
        let mut view = IndexedFreeProfile::new(&ix, t(0), 5, t(100));
        let d = SimDuration::from_secs;
        assert_eq!(view.find_slot(t(0), 5, d(100)), Some(t(0)));
        assert_eq!(view.find_slot(t(1), 5, d(100)), None, "overruns horizon");
        assert_eq!(view.find_slot(t(0), 6, d(10)), None, "never enough");
        assert_eq!(view.find_slot(t(0), 5, d(101)), None, "longer than domain");
        assert_eq!(
            view.find_slot(t(42), 99, d(0)),
            Some(t(42)),
            "zero duration"
        );
        assert_eq!(view.find_slot(t(100), 1, d(0)), None, "outside domain");
    }
}
