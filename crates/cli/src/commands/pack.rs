//! `interstitial pack` — omniscient project makespan (the Table 2 method):
//! pack the project into the machine's realized free-capacity profile at
//! random start times.

use crate::args::{machine_by_name, shape_spec, ArgError, Args};
use interstitial::experiment::{native_baseline, omniscient_makespans, ReplicationSummary};
use interstitial::{theory, InterstitialProject};

/// Run omniscient packing replications.
pub fn run(args: &Args) -> Result<String, ArgError> {
    args.check_flags(&["machine", "jobs", "shape", "reps", "seed"])?;
    let machine = machine_by_name(
        args.get("machine")
            .ok_or_else(|| ArgError("missing required flag --machine".into()))?,
    )?;
    let jobs: u64 = args.require("jobs")?;
    let (cpus, secs) = shape_spec(
        args.get("shape")
            .ok_or_else(|| ArgError("missing required flag --shape".into()))?,
    )?;
    let reps: u32 = args.get_or("reps", 20)?;
    if jobs == 0 || reps == 0 {
        return Err(ArgError("--jobs and --reps must be positive".into()));
    }
    let seed: u64 = args.get_or("seed", 42)?;

    let project = InterstitialProject::per_paper(jobs, cpus, secs);
    let baseline = native_baseline(&machine, seed);
    let makespans = omniscient_makespans(&baseline, &project, reps, seed ^ 0xABCD, 5);
    let summary = ReplicationSummary::from(&makespans);
    let ideal = theory::ideal_makespan_secs(&project, &machine) / 3_600.0;
    let fitted = theory::paper_fitted_makespan_secs(&project, &machine) / 3_600.0;
    Ok(format!(
        "project: {jobs} × {cpus} CPUs × {secs} s@1GHz = {:.2} peta-cycles on {}\n\
         omniscient makespan over {reps} random drops: {} h ({} off-log)\n\
         theory: ideal {ideal:.1} h, paper-fitted {fitted:.1} h, breakage ×{:.3}\n",
        project.peta_cycles(),
        machine.name,
        summary.formatted(),
        summary.failed,
        theory::breakage_factor(&machine, cpus),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn packs_a_small_project() {
        let out = run(&parse(&[
            "pack",
            "--machine",
            "ross",
            "--jobs",
            "500",
            "--shape",
            "32x120",
            "--reps",
            "4",
        ]))
        .unwrap();
        assert!(out.contains("omniscient makespan"), "{out}");
        assert!(out.contains("breakage"), "{out}");
    }

    #[test]
    fn rejects_zero_reps() {
        assert!(run(&parse(&[
            "pack",
            "--machine",
            "ross",
            "--jobs",
            "10",
            "--shape",
            "32x120",
            "--reps",
            "0",
        ]))
        .is_err());
    }
}
