//! `interstitial sweep` — empirically compare interstitial job shapes on a
//! machine and recommend the best within a native-delay tolerance.

use crate::args::{machine_by_name, shape_spec, ArgError, Args};
use analysis::tables::fmt_k;
use analysis::Table;
use interstitial::sweep::{best_within_tolerance, shape_sweep, Shape};
use interstitial::InterstitialPolicy;
use simkit::time::SimDuration;
use workload::traces::native_trace;

/// Run the sweep. Shapes come from repeated `--shape` values or a default
/// grid.
pub fn run(args: &Args) -> Result<String, ArgError> {
    args.check_flags(&["machine", "seed", "shape", "tolerance", "cap"])?;
    let machine = machine_by_name(
        args.get("machine")
            .ok_or_else(|| ArgError("missing required flag --machine".into()))?,
    )?;
    let natives = native_trace(&machine, args.get_or("seed", 1)?);
    let tolerance = SimDuration::from_mins(args.get_or("tolerance", 15u64)?);
    let policy = match args.get("cap") {
        Some(c) => {
            let cap: f64 = c
                .parse()
                .map_err(|_| ArgError(format!("bad --cap {c:?}")))?;
            InterstitialPolicy::capped(cap)
        }
        None => InterstitialPolicy::default(),
    };
    // A single --shape narrows the sweep; default is the paper's grid.
    let shapes: Vec<Shape> = match args.get("shape") {
        Some(spec) => {
            let (cpus, secs) = shape_spec(spec)?;
            vec![Shape {
                cpus,
                secs_at_1ghz: secs,
            }]
        }
        None => [
            (1u32, 120.0f64),
            (8, 120.0),
            (32, 120.0),
            (8, 960.0),
            (32, 960.0),
        ]
        .iter()
        .map(|&(cpus, secs)| Shape {
            cpus,
            secs_at_1ghz: secs,
        })
        .collect(),
    };

    let outcomes = shape_sweep(&machine, &natives, &shapes, policy);
    let mut t = Table::new(
        format!(
            "shape sweep — {} (tolerance {} min on the median native wait)",
            machine.name,
            tolerance.as_secs() / 60
        ),
        &[
            "shape",
            "jobs harvested",
            "peta-cycles",
            "overall util",
            "native median wait (s)",
        ],
    );
    for o in &outcomes {
        t.row(&[
            format!("{}x{}", o.shape.cpus, o.shape.secs_at_1ghz),
            o.jobs.to_string(),
            format!("{:.1}", o.harvested_peta_cycles),
            format!("{:.3}", o.overall_utilization),
            fmt_k(o.native_median_wait),
        ]);
    }
    let mut out = t.to_text();
    match best_within_tolerance(&outcomes, tolerance) {
        Some(best) => out.push_str(&format!(
            "\nrecommendation: {}x{} — {:.1} peta-cycles harvested, median native wait {} s\n",
            best.shape.cpus,
            best.shape.secs_at_1ghz,
            best.harvested_peta_cycles,
            fmt_k(best.native_median_wait)
        )),
        None => out.push_str("\nno shape keeps the median native wait within tolerance\n"),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn single_shape_sweep() {
        let out = run(&parse(&[
            "sweep",
            "--machine",
            "ross",
            "--shape",
            "32x120",
            "--seed",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("shape sweep"), "{out}");
        assert!(out.contains("32x120"), "{out}");
    }

    #[test]
    fn requires_machine() {
        assert!(run(&parse(&["sweep"])).is_err());
    }
}
