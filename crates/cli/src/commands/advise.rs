//! `interstitial advise` — §5-guideline pre-flight for a proposed project.

use crate::args::{machine_by_name, shape_spec, ArgError, Args};
use interstitial::advisor::advise;
use interstitial::InterstitialProject;
use simkit::time::SimDuration;

/// Run the advisor.
pub fn run(args: &Args) -> Result<String, ArgError> {
    args.check_flags(&["machine", "jobs", "shape", "tolerance"])?;
    let machine = machine_by_name(
        args.get("machine")
            .ok_or_else(|| ArgError("missing required flag --machine".into()))?,
    )?;
    let jobs: u64 = args.require("jobs")?;
    if jobs == 0 {
        return Err(ArgError("--jobs must be positive".into()));
    }
    let (cpus, secs) = shape_spec(
        args.get("shape")
            .ok_or_else(|| ArgError("missing required flag --shape".into()))?,
    )?;
    let tolerance = SimDuration::from_mins(args.get_or("tolerance", 15u64)?);
    let project = InterstitialProject::per_paper(jobs, cpus, secs);
    let advice = advise(&machine, &project, tolerance);
    Ok(format!(
        "project: {jobs} × {cpus} CPUs × {secs} s@1GHz = {:.2} peta-cycles on {}\nverdict: {:?}\n{}",
        project.peta_cycles(),
        machine.name,
        advice.verdict(),
        advice.to_text()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn clean_project_says_ok() {
        let out = run(&parse(&[
            "advise",
            "--machine",
            "bm",
            "--jobs",
            "1000",
            "--shape",
            "32x120",
            "--tolerance",
            "30",
        ]))
        .unwrap();
        assert!(out.contains("verdict: Ok"), "{out}");
        assert!(out.contains("expected makespan"));
    }

    #[test]
    fn oversized_project_says_problem() {
        let out = run(&parse(&[
            "advise",
            "--machine",
            "bp",
            "--jobs",
            "10",
            "--shape",
            "512x120",
        ]))
        .unwrap();
        assert!(out.contains("verdict: Problem"), "{out}");
        assert!(out.contains("job-size"));
    }

    #[test]
    fn validation_errors() {
        assert!(run(&parse(&["advise", "--machine", "bm"])).is_err());
        assert!(run(&parse(&[
            "advise",
            "--machine",
            "bm",
            "--jobs",
            "0",
            "--shape",
            "32x120"
        ]))
        .is_err());
    }
}
