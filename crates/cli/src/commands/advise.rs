//! `interstitial advise` — §5-guideline pre-flight for a proposed project.

use crate::args::{machine_by_name, shape_spec, ArgError, Args};
use interstitial::advisor::{advise, Severity};
use interstitial::prelude::SimBuilder;
use interstitial::InterstitialProject;
use obs::Obs;
use simkit::time::SimDuration;

/// Native-trace prefix replayed when `--trace`/`--metrics` ask for
/// observability artifacts: enough to exercise the scheduler without
/// turning a pre-flight check into a full-log simulation.
const PREFLIGHT_JOBS: usize = 500;

/// Run the advisor.
pub fn run(args: &Args) -> Result<String, ArgError> {
    args.check_flags(&[
        "machine",
        "jobs",
        "shape",
        "tolerance",
        "seed",
        "trace",
        "metrics",
    ])?;
    let machine = machine_by_name(
        args.get("machine")
            .ok_or_else(|| ArgError("missing required flag --machine".into()))?,
    )?;
    let jobs: u64 = args.require("jobs")?;
    if jobs == 0 {
        return Err(ArgError("--jobs must be positive".into()));
    }
    let (cpus, secs) = shape_spec(
        args.get("shape")
            .ok_or_else(|| ArgError("missing required flag --shape".into()))?,
    )?;
    let tolerance = SimDuration::from_mins(args.get_or("tolerance", 15u64)?);
    let project = InterstitialProject::per_paper(jobs, cpus, secs);
    let advice = advise(&machine, &project, tolerance);
    let mut out = format!(
        "project: {jobs} × {cpus} CPUs × {secs} s@1GHz = {:.2} peta-cycles on {}\nverdict: {:?}\n{}",
        project.peta_cycles(),
        machine.name,
        advice.verdict(),
        advice.to_text()
    );

    // Observability artifacts: a short observed replay of the machine's
    // calibrated native trace, plus the advisory findings as gauges.
    if args.get("trace").is_some() || args.get("metrics").is_some() {
        let mut natives = workload::traces::native_trace(&machine, args.get_or("seed", 1)?);
        natives.truncate(PREFLIGHT_JOBS);
        let replay = SimBuilder::new(machine.clone())
            .natives(natives)
            .observer(Obs::enabled())
            .build()
            .run();
        if let Some(path) = args.get("trace") {
            std::fs::write(path, replay.obs.trace.to_jsonl())
                .map_err(|e| ArgError(format!("writing {path}: {e}")))?;
            out.push_str(&format!(
                "wrote {} pre-flight trace events to {path}\n",
                replay.obs.trace.recorded()
            ));
        }
        if let Some(path) = args.get("metrics") {
            let mut bundle = replay.obs.clone();
            let reg = &mut bundle.metrics;
            analysis::metrics::NativeImpact::of(&replay.completed).export(reg);
            reg.gauge_set(
                "advise.expected_makespan_s",
                i64::try_from(advice.expected_makespan.as_secs()).unwrap_or(i64::MAX),
            );
            reg.gauge_set(
                "advise.breakage_milli",
                (advice.breakage * 1000.0).round() as i64,
            );
            reg.gauge_set(
                "advise.concurrent_jobs",
                i64::try_from(advice.concurrent_jobs).unwrap_or(i64::MAX),
            );
            reg.gauge_set(
                "advise.verdict",
                match advice.verdict() {
                    Severity::Ok => 0,
                    Severity::Warning => 1,
                    Severity::Problem => 2,
                },
            );
            reg.inc("advise.findings", advice.findings.len() as u64);
            std::fs::write(path, bundle.run_report().to_json())
                .map_err(|e| ArgError(format!("writing {path}: {e}")))?;
            out.push_str(&format!("wrote pre-flight metrics snapshot to {path}\n"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn clean_project_says_ok() {
        let out = run(&parse(&[
            "advise",
            "--machine",
            "bm",
            "--jobs",
            "1000",
            "--shape",
            "32x120",
            "--tolerance",
            "30",
        ]))
        .unwrap();
        assert!(out.contains("verdict: Ok"), "{out}");
        assert!(out.contains("expected makespan"));
    }

    #[test]
    fn oversized_project_says_problem() {
        let out = run(&parse(&[
            "advise",
            "--machine",
            "bp",
            "--jobs",
            "10",
            "--shape",
            "512x120",
        ]))
        .unwrap();
        assert!(out.contains("verdict: Problem"), "{out}");
        assert!(out.contains("job-size"));
    }

    #[test]
    fn preflight_artifacts_are_written() {
        let dir = std::env::temp_dir().join("interstitial-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("advise.jsonl");
        let metrics = dir.join("advise.json");
        let out = run(&parse(&[
            "advise",
            "--machine",
            "bm",
            "--jobs",
            "1000",
            "--shape",
            "32x120",
            "--tolerance",
            "30",
            "--trace",
            trace.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("pre-flight trace events"), "{out}");
        assert!(out.contains("pre-flight metrics snapshot"), "{out}");
        let jsonl = std::fs::read_to_string(&trace).unwrap();
        assert!(jsonl.lines().count() > 0);
        assert!(jsonl.contains("\"ev\":\"submit\""));
        let report = std::fs::read_to_string(&metrics).unwrap();
        assert!(report.contains("\"advise.verdict\":0"), "{report}");
        assert!(report.contains("\"advise.concurrent_jobs\":30"));
        assert!(report.contains("\"impact.all.count\""));
        let _ = std::fs::remove_file(trace);
        let _ = std::fs::remove_file(metrics);
    }

    #[test]
    fn validation_errors() {
        assert!(run(&parse(&["advise", "--machine", "bm"])).is_err());
        assert!(run(&parse(&[
            "advise",
            "--machine",
            "bm",
            "--jobs",
            "0",
            "--shape",
            "32x120"
        ]))
        .is_err());
    }
}
