//! `interstitial stats FILE.swf` — marginal statistics of a job log.

use crate::args::{ArgError, Args};
use workload::stats::TraceStats;
use workload::swf;

/// Summarize the log's marginals.
pub fn run(args: &Args) -> Result<String, ArgError> {
    args.check_flags(&[])?;
    let path = args
        .positional
        .first()
        .ok_or_else(|| ArgError("usage: interstitial stats FILE.swf".into()))?;
    let text =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("reading {path}: {e}")))?;
    let jobs = swf::parse(&text, true).map_err(|e| ArgError(e.to_string()))?;
    if jobs.is_empty() {
        return Err(ArgError(format!("{path}: no usable jobs")));
    }
    let s = TraceStats::of(&jobs);
    Ok(format!("{path}:\n{}", s.to_text()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::traces::native_trace;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn stats_of_generated_log() {
        let dir = std::env::temp_dir().join("interstitial-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stats.swf");
        let jobs = native_trace(&machine::config::blue_mountain(), 4);
        std::fs::write(&path, swf::emit(&jobs, "t")).unwrap();
        let out = run(&parse(&["stats", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("jobs: "), "{out}");
        assert!(out.contains("arrival dispersion"), "{out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = run(&parse(&["stats", "/nonexistent/x.swf"])).unwrap_err();
        assert!(err.0.contains("reading"));
    }

    #[test]
    fn missing_path_is_usage_error() {
        assert!(run(&parse(&["stats"])).is_err());
    }
}
