//! Subcommand implementations. Each returns the text to print, so tests can
//! drive commands without spawning processes.

pub mod advise;
pub mod generate;
pub mod machines;
pub mod pack;
pub mod perf;
pub mod report;
pub mod simulate;
pub mod stats;
pub mod sweep;
pub mod trace;

use crate::args::{ArgError, Args};

/// Dispatch a parsed command line to its implementation.
pub fn run(args: &Args) -> Result<String, ArgError> {
    match args.command.as_str() {
        "machines" => machines::run(args),
        "generate" => generate::run(args),
        "stats" => stats::run(args),
        "simulate" => simulate::run(args),
        "advise" => advise::run(args),
        "pack" => pack::run(args),
        "sweep" => sweep::run(args),
        "trace" => trace::run(args),
        "report" => report::run(args),
        "perf" => perf::run(args),
        "help" | "--help" | "-h" => Ok(help()),
        other => Err(ArgError(format!(
            "unknown command {other:?} (try `interstitial help`)"
        ))),
    }
}

/// The top-level usage text.
pub fn help() -> String {
    "\
interstitial — spare-cycle scavenging simulator (CLUSTER 2003 reproduction)

USAGE: interstitial <command> [args]

COMMANDS
  machines                         list the built-in ASCI machine presets
  generate  --machine M [--seed N] [--out FILE]
                                   synthesize a native job log (SWF)
  stats     FILE.swf               marginal statistics of a log
  simulate  --machine M [FILE.swf | --seed N]
            [--shape CPUSxSECS] [--mode continual|project:SECS]
            [--cap F] [--preempt kill|checkpoint] [--seed N] [--out FILE]
            [--faults mtbf=S,mttr=S,nodes=N[,seed=K]] [--resilience FILE]
            [--record-cycles FILE.jsonl]
            [--telemetry FILE.jsonl [--cadence SECS] [--slo RULES]]
                                   replay a log, optionally with an
                                   interstitial stream and injected node
                                   failures; print the impact (and, with
                                   faults, the resilience panel).
                                   --record-cycles dumps the per-cycle
                                   flight recorder for `perf hotspots`.
                                   --telemetry samples an in-sim time
                                   series each cadence tick; --slo (e.g.
                                   native_p99_wait<=3600,util>=0.85) adds
                                   a breach/clear watchdog
  advise    --machine M --jobs N --shape CPUSxSECS [--tolerance MIN]
                                   pre-flight a project against the paper's
                                   §5 guidelines
  pack      --machine M --jobs N --shape CPUSxSECS [--reps R] [--seed N]
                                   omniscient makespan (Table 2 method)
  sweep     --machine M [--shape CPUSxSECS] [--tolerance MIN] [--cap F]
                                   empirically compare job shapes and
                                   recommend the best within tolerance
  trace     summarize FILE.jsonl [--cpus N]
                                   single-pass counts, utilization and P²
                                   wait percentiles of a trace
  trace     attribute FILE.jsonl [--cpus N] [--top K]
                                   causal wait attribution: saturated /
                                   interference / fair-share / window
  trace     timeline FILE.jsonl [--cpus N] [--width W]
                                   ASCII occupancy heatmap + interstice
                                   census
  trace     diff BASE.jsonl WITH.jsonl [--top K]
                                   per-job wait deltas between a native-only
                                   and a with-interstitial run (same seed)
  report    TELEMETRY.jsonl [--html FILE]
                                   render a --telemetry export: per-signal
                                   sparklines, SLO breach windows and
                                   outage overlays; --html writes a
                                   self-contained SVG dashboard
  perf      compare OLD.json NEW.json [--wall-tol-pct P]
                                   diff two `bench --bin perf` baselines:
                                   counters exactly, wall within P% (default
                                   25); exits nonzero on regression
  perf      show FILE.json         pretty-print one perf baseline
  perf      hotspots CYCLES.jsonl [--top N]
                                   attribute cost from a --record-cycles
                                   dump: phase flame bars, P50/P99/max
                                   per-cycle cost, exact top-N worst
                                   cycles with their sim-times

Machines: ross | bluemountain | bluepacific | CPUSxGHZ (custom).
Shapes are CPUs × seconds-at-1GHz, e.g. 32x120.
"
    .to_string()
}
