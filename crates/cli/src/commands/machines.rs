//! `interstitial machines` — list the built-in presets.

use crate::args::{ArgError, Args};
use analysis::Table;
use machine::config::all_machines;

/// Render the Table 1 machine roster.
pub fn run(args: &Args) -> Result<String, ArgError> {
    args.check_flags(&[])?;
    let mut t = Table::new(
        "Built-in machines (ASCI, Table 1 of the paper)",
        &[
            "name",
            "site",
            "CPUs",
            "clock GHz",
            "TCycles",
            "native util",
            "log days",
            "log jobs",
            "queue",
        ],
    );
    for m in all_machines() {
        t.row(&[
            m.name.to_string(),
            m.site.to_string(),
            m.cpus.to_string(),
            format!("{:.3}", m.clock_ghz),
            format!("{:.3}", m.tera_cycles()),
            format!("{:.3}", m.target_utilization),
            format!("{:.1}", m.log_days),
            m.log_jobs.to_string(),
            m.queue.name().to_string(),
        ]);
    }
    Ok(t.to_text())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_all_three_machines() {
        let args = Args::parse(["machines".to_string()]).unwrap();
        let out = run(&args).unwrap();
        for name in [
            "Ross",
            "Blue Mountain",
            "Blue Pacific",
            "PBS",
            "LSF",
            "DPCS",
        ] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }

    #[test]
    fn rejects_stray_flags() {
        let args = Args::parse(["machines".to_string(), "--wat".to_string()]).unwrap();
        assert!(run(&args).is_err());
    }
}
