//! `interstitial generate` — synthesize a calibrated native log as SWF.

use crate::args::{machine_by_name, ArgError, Args};
use workload::swf;
use workload::traces::native_trace;

/// Generate a trace; write to `--out` or return it inline.
pub fn run(args: &Args) -> Result<String, ArgError> {
    args.check_flags(&["machine", "seed", "out"])?;
    let machine = machine_by_name(
        args.get("machine")
            .ok_or_else(|| ArgError("missing required flag --machine".into()))?,
    )?;
    let seed: u64 = args.get_or("seed", 1)?;
    let jobs = native_trace(&machine, seed);
    let header = format!(
        "synthetic log for {} ({} CPUs @ {} GHz), seed {seed}\ncalibrated to the CLUSTER 2003 Table 1 marginals",
        machine.name, machine.cpus, machine.clock_ghz
    );
    let text = swf::emit(&jobs, &header);
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| ArgError(format!("writing {path}: {e}")))?;
            Ok(format!("wrote {} jobs to {path}\n", jobs.len()))
        }
        None => Ok(text),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn generates_parseable_swf_inline() {
        let out = run(&parse(&["generate", "--machine", "ross", "--seed", "3"])).unwrap();
        let jobs = swf::parse(&out, false).unwrap();
        assert!(jobs.len() > 4_000, "got {}", jobs.len());
    }

    #[test]
    fn same_seed_same_log() {
        let a = run(&parse(&["generate", "--machine", "bp", "--seed", "9"])).unwrap();
        let b = run(&parse(&["generate", "--machine", "bp", "--seed", "9"])).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn writes_to_file() {
        let dir = std::env::temp_dir().join("interstitial-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gen.swf");
        let msg = run(&parse(&[
            "generate",
            "--machine",
            "ross",
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(msg.contains("wrote"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(swf::parse(&text, false).unwrap().len() > 4_000);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn requires_machine() {
        assert!(run(&parse(&["generate"])).is_err());
    }
}
