//! `interstitial trace <summarize|attribute|timeline|diff>` — analytics
//! over JSONL trace files written by `simulate --trace` (schema in
//! `crates/obs/SCHEMA.md`).
//!
//! All four analyzers stream events through `tracekit` folds; `summarize`
//! in particular never buffers the stream, so it handles traces of any
//! length in flat memory.

use crate::args::{ArgError, Args};
use analysis::metrics::WaitStats;
use analysis::tables::fmt_k;
use std::path::Path;
use tracekit::reader::TraceReader;
use tracekit::{
    diff, AttributionReport, Attributor, OutcomeCollector, ReadStats, Summarizer, TimelineBuilder,
    TraceDiff, TraceMeta, TraceSummary, CATEGORIES,
};

const USAGE: &str = "usage: interstitial trace <summarize|attribute|timeline|diff> \
                     FILE.jsonl [FILE2.jsonl] [--cpus N] [--width W]";

/// Dispatch the `trace` subcommand family.
pub fn run(args: &Args) -> Result<String, ArgError> {
    let sub = args.positional.first().ok_or(ArgError(USAGE.into()))?;
    match sub.as_str() {
        "summarize" => summarize(args),
        "attribute" => attribute(args),
        "timeline" => timeline(args),
        "diff" => run_diff(args),
        other => Err(ArgError(format!(
            "unknown trace subcommand {other:?} ({USAGE})"
        ))),
    }
}

/// The trace path at `positional[idx]` (after the subcommand name).
fn path_arg(args: &Args, idx: usize, what: &str) -> Result<String, ArgError> {
    args.positional
        .get(idx + 1)
        .cloned()
        .ok_or_else(|| ArgError(format!("missing {what} trace path ({USAGE})")))
}

/// Open a trace, mapping reader errors to CLI errors.
fn open(path: &str) -> Result<TraceReader<std::io::BufReader<std::fs::File>>, ArgError> {
    tracekit::open_path(Path::new(path)).map_err(|e| ArgError(format!("{path}: {e}")))
}

/// Reject a stream that carried no events at all: summarizing or
/// attributing nothing would print a panel of zeros that looks like a
/// healthy idle run. Say which degenerate shape the file had instead.
fn require_events(path: &str, meta: &TraceMeta, stats: &ReadStats) -> Result<(), ArgError> {
    if stats.events > 0 {
        return Ok(());
    }
    // A validated header leaves meta.schema nonzero; an empty file never
    // sets it (and is not "headerless", which means line 1 was an event).
    let shape = if stats.corrupt > 0 {
        "every line was corrupt"
    } else if meta.schema != 0 {
        "the file is header-only"
    } else {
        "the file is empty"
    };
    Err(ArgError(format!("{path}: no trace events ({shape})")))
}

/// Machine size: `--cpus` wins, else the trace header.
fn resolve_cpus(args: &Args, meta: &TraceMeta) -> Result<Option<u32>, ArgError> {
    match args.get("cpus") {
        Some(v) => v
            .parse::<u32>()
            .map(Some)
            .map_err(|_| ArgError(format!("--cpus: cannot parse {v:?}"))),
        None => Ok(meta.cpus),
    }
}

/// Shared provenance lines: where the trace came from and how clean it was.
fn provenance(path: &str, meta: &TraceMeta, stats: &ReadStats) -> String {
    let mut out = format!("trace: {path}\n");
    match (&meta.machine, meta.cpus) {
        (Some(name), Some(cpus)) => out.push_str(&format!("machine: {name} ({cpus} cpus)\n")),
        (Some(name), None) => out.push_str(&format!("machine: {name}\n")),
        _ if meta.headerless => out.push_str("machine: unknown (headerless legacy trace)\n"),
        _ => out.push_str("machine: unstamped header\n"),
    }
    out.push_str(&format!(
        "events: {} parsed, {} corrupt line(s) skipped\n",
        stats.events, stats.corrupt
    ));
    for (lineno, msg) in &stats.first_errors {
        out.push_str(&format!("  line {lineno}: {msg}\n"));
    }
    out
}

fn summarize(args: &Args) -> Result<String, ArgError> {
    args.check_flags(&["cpus"])?;
    let path = path_arg(args, 0, "input")?;
    let mut r = open(&path)?;
    let cpus = resolve_cpus(args, r.meta())?;
    let mut s = Summarizer::new(cpus);
    r.for_each(|ev| s.observe(ev))
        .map_err(|e| ArgError(format!("{path}: {e}")))?;
    let meta = r.meta().clone();
    let stats = r.stats().clone();
    require_events(&path, &meta, &stats)?;
    let sum = s.finish();
    Ok(format!(
        "{}{}",
        provenance(&path, &meta, &stats),
        render_summary(&sum)
    ))
}

fn render_summary(s: &TraceSummary) -> String {
    let mut out = format!(
        "span: {:.1} h, {} events, {} scheduling cycles\n\
         submits: {} native, {} interstitial\n\
         starts: {} in-order, {} backfill, {} interstitial, {} resume\n\
         finishes: {} native, {} interstitial\n\
         preempts: {} kill, {} checkpoint; outages: {} ({} s down)\n",
        s.span_s() as f64 / 3600.0,
        s.events,
        s.sched_cycles,
        s.native_submits,
        s.inter_submits,
        s.starts_inorder,
        s.starts_backfill,
        s.starts_interstitial,
        s.starts_resume,
        s.native_finishes,
        s.inter_finishes,
        s.preempt_kills,
        s.preempt_checkpoints,
        s.outages,
        s.downtime_s,
    );
    if s.node_failures + s.node_repairs + s.fault_kills + s.fault_requeues > 0 {
        out.push_str(&format!(
            "faults: {} node down / {} up, {} jobs killed, {} requeues ({} cpu·s offline)\n",
            s.node_failures,
            s.node_repairs,
            s.fault_kills,
            s.fault_requeues,
            fmt_k(s.offline_cpu_s as f64),
        ));
    }
    out.push_str(&format!(
        "cpu·s delivered: {} native, {} interstitial\n",
        fmt_k(s.native_cpu_s as f64),
        fmt_k(s.inter_cpu_s as f64)
    ));
    match (s.native_utilization(), s.inter_utilization()) {
        (Some(n), Some(i)) => out.push_str(&format!(
            "utilization of {} cpus: {:.1}% native + {:.1}% interstitial = {:.1}%\n",
            s.total_cpus.unwrap_or(0),
            100.0 * n,
            100.0 * i,
            100.0 * (n + i)
        )),
        _ => out.push_str("utilization: machine size unknown (pass --cpus)\n"),
    }
    if let Some((min, p50, p90, p99, max)) = s.native_wait.snapshot() {
        out.push_str(&format!(
            "native wait s (P²): min {min:.0}, p50 {p50:.0}, p90 {p90:.0}, p99 {p99:.0}, max {max:.0}\n"
        ));
    }
    if let Some((_, p50, p90, p99, _)) = s.native_ef.snapshot() {
        out.push_str(&format!(
            "native expansion factor (P²): p50 {p50:.2}, p90 {p90:.2}, p99 {p99:.2}\n"
        ));
    }
    out.push_str(&format!(
        "peak live jobs: {} (streaming memory proxy); inconsistencies: {}\n",
        s.peak_tracked_jobs, s.inconsistencies
    ));
    out
}

fn attribute(args: &Args) -> Result<String, ArgError> {
    args.check_flags(&["cpus", "top"])?;
    let path = path_arg(args, 0, "input")?;
    let mut r = open(&path)?;
    let cpus = resolve_cpus(args, r.meta())?.ok_or_else(|| {
        ArgError(
            "attribution needs the machine size: the trace header carries none, pass --cpus N"
                .into(),
        )
    })?;
    let top: usize = args.get_or("top", 5)?;
    let mut a = Attributor::new(cpus);
    r.for_each(|ev| a.observe(ev))
        .map_err(|e| ArgError(format!("{path}: {e}")))?;
    let meta = r.meta().clone();
    let stats = r.stats().clone();
    require_events(&path, &meta, &stats)?;
    let report = a.finish();
    Ok(format!(
        "{}{}",
        provenance(&path, &meta, &stats),
        render_attribution(&report, top)
    ))
}

fn render_attribution(r: &AttributionReport, top: usize) -> String {
    let total = r.total_wait_s();
    let mut out = format!(
        "native jobs attributed: {} ({} start(s) lacked a submit)\n\
         total queue wait: {} cpu-blind s\n",
        r.jobs.len(),
        r.unmatched_starts,
        fmt_k(total as f64)
    );
    out.push_str("wait by cause:\n");
    for cat in CATEGORIES {
        let secs = r.totals[cat.index()];
        out.push_str(&format!(
            "  {:<26} {:>10} s  {:5.1}%\n",
            cat.label(),
            secs,
            100.0 * r.fraction(cat)
        ));
    }
    let mut worst: Vec<_> = r.jobs.iter().filter(|j| j.wait().as_secs() > 0).collect();
    worst.sort_by(|a, b| b.wait().cmp(&a.wait()).then(a.id.cmp(&b.id)));
    if !worst.is_empty() {
        out.push_str(&format!("{} longest waits:\n", top.min(worst.len())));
        for j in worst.iter().take(top) {
            let dominant = CATEGORIES
                .into_iter()
                .max_by_key(|c| j.seconds[c.index()])
                .map(|c| c.label())
                .unwrap_or("-");
            out.push_str(&format!(
                "  job {:>6} ({:>5} cpus) waited {:>8} s — mostly {}\n",
                j.id,
                j.cpus,
                j.wait().as_secs(),
                dominant
            ));
        }
    }
    if r.inconsistencies > 0 {
        out.push_str(&format!(
            "warning: {} lifecycle inconsistencies in the stream\n",
            r.inconsistencies
        ));
    }
    out
}

fn timeline(args: &Args) -> Result<String, ArgError> {
    args.check_flags(&["cpus", "width"])?;
    let path = path_arg(args, 0, "input")?;
    let mut r = open(&path)?;
    let cpus = resolve_cpus(args, r.meta())?;
    let width: usize = args.get_or("width", 72)?;
    if width == 0 {
        return Err(ArgError("--width must be positive".into()));
    }
    let mut b = TimelineBuilder::new();
    r.for_each(|ev| b.observe(ev))
        .map_err(|e| ArgError(format!("{path}: {e}")))?;
    let meta = r.meta().clone();
    let stats = r.stats().clone();
    let tl = b.finish(cpus);
    Ok(format!(
        "{}{}",
        provenance(&path, &meta, &stats),
        tl.render(width)
    ))
}

fn run_diff(args: &Args) -> Result<String, ArgError> {
    args.check_flags(&["top"])?;
    let base_path = path_arg(args, 0, "baseline")?;
    let with_path = path_arg(args, 1, "comparison")?;
    let top: usize = args.get_or("top", 5)?;
    let collect = |path: &str| -> Result<(TraceMeta, ReadStats, tracekit::Outcomes), ArgError> {
        let mut r = open(path)?;
        let mut c = OutcomeCollector::new();
        r.for_each(|ev| c.observe(ev))
            .map_err(|e| ArgError(format!("{path}: {e}")))?;
        Ok((r.meta().clone(), r.stats().clone(), c.finish()))
    };
    let (base_meta, base_stats, base) = collect(&base_path)?;
    let (with_meta, with_stats, with) = collect(&with_path)?;
    let d = diff(&base, &with);
    Ok(format!(
        "{}{}{}",
        provenance(&base_path, &base_meta, &base_stats),
        provenance(&with_path, &with_meta, &with_stats),
        render_diff(&d, top)
    ))
}

fn panel(label: &str, s: &WaitStats) -> String {
    format!(
        "  {label:<9} n={:<5} avg wait {:>9.1} s  median {:>8.1} s  avg EF {:>6.2}  median EF {:>6.2}\n",
        s.count, s.avg_wait, s.median_wait, s.avg_ef, s.median_ef
    )
}

fn render_diff(d: &TraceDiff, top: usize) -> String {
    let mut out = format!(
        "matched native jobs: {} ({} only in baseline, {} only in comparison)\n",
        d.matched.len(),
        d.only_base,
        d.only_with
    );
    if d.runtime_mismatches > 0 {
        out.push_str(&format!(
            "warning: {} matched job(s) changed runtime — are these really the same \
             seed/workload?\n",
            d.runtime_mismatches
        ));
    }
    out.push_str(&format!(
        "delayed jobs: {} of {}; net added wait {} s (max single-job {} s)\n",
        d.delayed_jobs(),
        d.matched.len(),
        d.total_delta_s(),
        d.max_delta_s()
    ));
    out.push_str("baseline (native-only):\n");
    out.push_str(&panel("all", &d.base_impact.all));
    out.push_str(&panel("largest5%", &d.base_impact.largest));
    out.push_str("comparison (with interstitial):\n");
    out.push_str(&panel("all", &d.with_impact.all));
    out.push_str(&panel("largest5%", &d.with_impact.largest));
    let deltas = d.top_deltas(top);
    let delayed: Vec<_> = deltas.iter().filter(|j| j.delta_s() != 0).collect();
    if !delayed.is_empty() {
        out.push_str(&format!("{} largest per-job deltas:\n", delayed.len()));
        for j in delayed {
            out.push_str(&format!(
                "  job {:>6} ({:>5} cpus, {:>6} s run): wait {:>7} s → {:>7} s ({:+} s)\n",
                j.id,
                j.cpus,
                j.runtime_s,
                j.base_wait_s,
                j.with_wait_s,
                j.delta_s()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use interstitial::prelude::*;
    use obs::Obs;
    use simkit::time::SimTime;
    use workload::traces::native_trace;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("interstitial-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// A small observed replay (optionally with interstitial load) whose
    /// trace is written to a temp file.
    fn write_trace(name: &str, with_interstitial: bool) -> std::path::PathBuf {
        let cfg = machine::config::ross();
        let mut natives = native_trace(&cfg, 3);
        natives.truncate(60);
        let horizon =
            SimTime::from_secs(natives.iter().map(|j| j.submit.as_secs()).max().unwrap() + 86_400);
        let mut b = SimBuilder::new(cfg.clone())
            .natives(natives)
            .horizon(horizon)
            .observer(Obs::enabled());
        if with_interstitial {
            b = b.interstitial(
                InterstitialProject::per_paper(u64::MAX / 2, (cfg.cpus / 8).max(1), 3_600.0),
                InterstitialMode::Continual,
                InterstitialPolicy::default(),
            );
        }
        let out = b.build().run();
        let path = tmp(name);
        std::fs::write(&path, out.obs.trace.to_jsonl()).unwrap();
        path
    }

    #[test]
    fn summarize_reports_counts_and_utilization() {
        let path = write_trace("sum.jsonl", true);
        let out = run(&parse(&["trace", "summarize", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("machine: Ross (1436 cpus)"), "{out}");
        assert!(out.contains("0 corrupt line(s)"), "{out}");
        assert!(out.contains("native wait s (P²)"), "{out}");
        assert!(out.contains("utilization of 1436 cpus"), "{out}");
        assert!(out.contains("peak live jobs"), "{out}");
    }

    #[test]
    fn attribute_reports_all_four_causes() {
        let path = write_trace("attr.jsonl", true);
        let out = run(&parse(&["trace", "attribute", path.to_str().unwrap()])).unwrap();
        for label in [
            "machine-saturated",
            "interstitial-interference",
            "fair-share-held",
            "backfill-window",
        ] {
            assert!(out.contains(label), "missing {label}: {out}");
        }
        assert!(out.contains("native jobs attributed"), "{out}");
    }

    #[test]
    fn attribute_without_machine_size_demands_cpus() {
        // Strip the header so no size is known.
        let path = write_trace("attr-nohdr.jsonl", false);
        let text = std::fs::read_to_string(&path).unwrap();
        let body: String = text.lines().skip(1).map(|l| format!("{l}\n")).collect();
        let stripped = tmp("attr-nohdr-stripped.jsonl");
        std::fs::write(&stripped, body).unwrap();
        let err = run(&parse(&["trace", "attribute", stripped.to_str().unwrap()])).unwrap_err();
        assert!(err.0.contains("--cpus"), "{err}");
        // And --cpus unblocks it.
        let out = run(&parse(&[
            "trace",
            "attribute",
            stripped.to_str().unwrap(),
            "--cpus",
            "1436",
        ]))
        .unwrap();
        assert!(out.contains("headerless legacy trace"), "{out}");
        assert!(out.contains("wait by cause"), "{out}");
    }

    #[test]
    fn timeline_renders_heatmap_and_census() {
        let path = write_trace("tl.jsonl", true);
        let out = run(&parse(&[
            "trace",
            "timeline",
            path.to_str().unwrap(),
            "--width",
            "40",
        ]))
        .unwrap();
        assert!(out.contains("occupancy heatmap: 40 bins"), "{out}");
        assert!(out.contains("interstice census"), "{out}");
    }

    #[test]
    fn diff_aligns_baseline_and_interstitial_runs() {
        let base = write_trace("diff-base.jsonl", false);
        let with = write_trace("diff-with.jsonl", true);
        let out = run(&parse(&[
            "trace",
            "diff",
            base.to_str().unwrap(),
            with.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("matched native jobs: 60"), "{out}");
        assert!(out.contains("baseline (native-only):"), "{out}");
        assert!(out.contains("comparison (with interstitial):"), "{out}");
        assert!(!out.contains("changed runtime"), "{out}");
    }

    #[test]
    fn errors_are_clean() {
        assert!(run(&parse(&["trace"])).is_err());
        assert!(run(&parse(&["trace", "dance", "x.jsonl"]))
            .unwrap_err()
            .0
            .contains("unknown trace subcommand"));
        assert!(run(&parse(&["trace", "summarize"]))
            .unwrap_err()
            .0
            .contains("missing input"));
        assert!(run(&parse(&["trace", "summarize", "/nonexistent.jsonl"])).is_err());
        assert!(run(&parse(&["trace", "diff", "/nonexistent.jsonl"]))
            .unwrap_err()
            .0
            .contains("missing comparison"));
    }

    #[test]
    fn empty_and_header_only_traces_are_rejected_with_the_right_shape() {
        let empty = tmp("empty.jsonl");
        std::fs::write(&empty, "").unwrap();
        let header_only = tmp("header-only.jsonl");
        std::fs::write(
            &header_only,
            "{\"schema\":1,\"machine\":\"Ross\",\"cpus\":1436}\n",
        )
        .unwrap();
        // `--cpus` keeps attribute from demanding a machine size first on
        // the headerless empty file; the event check must still win.
        for verb in ["summarize", "attribute"] {
            let err = run(&parse(&[
                "trace",
                verb,
                empty.to_str().unwrap(),
                "--cpus",
                "64",
            ]))
            .unwrap_err();
            assert!(err.0.contains("no trace events"), "{verb}: {err}");
            assert!(err.0.contains("the file is empty"), "{verb}: {err}");
            let err = run(&parse(&["trace", verb, header_only.to_str().unwrap()])).unwrap_err();
            assert!(err.0.contains("no trace events"), "{verb}: {err}");
            assert!(err.0.contains("header-only"), "{verb}: {err}");
        }
        // All-corrupt bodies get their own diagnosis.
        let corrupt = tmp("corrupt.jsonl");
        std::fs::write(
            &corrupt,
            "{\"schema\":1,\"machine\":\"Ross\",\"cpus\":1436}\n{\"t\":oops}\n",
        )
        .unwrap();
        let err = run(&parse(&["trace", "summarize", corrupt.to_str().unwrap()])).unwrap_err();
        assert!(err.0.contains("every line was corrupt"), "{err}");
        for p in [empty, header_only, corrupt] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn unsupported_schema_fails_with_guidance() {
        let path = tmp("future.jsonl");
        std::fs::write(&path, "{\"schema\":9}\n").unwrap();
        let err = run(&parse(&["trace", "summarize", path.to_str().unwrap()])).unwrap_err();
        assert!(
            err.0.contains("unsupported trace schema version 9"),
            "{err}"
        );
    }
}
