//! `interstitial simulate` — replay a log through a machine's scheduler,
//! optionally with an interstitial stream, and report the impact.

use crate::args::{machine_by_name, shape_spec, ArgError, Args};
use analysis::metrics::NativeImpact;
use analysis::tables::fmt_k;
use analysis::{ResilienceReport, Table};
use interstitial::policy::{Preemption, RecoveryPolicy};
use interstitial::prelude::*;
use machine::{FaultModel, FaultSpec};
use obs::Obs;
use simkit::time::SimTime;
use std::sync::Arc;
use workload::traces::native_trace;
use workload::{swf, Job};

/// Run the simulation described by the flags.
pub fn run(args: &Args) -> Result<String, ArgError> {
    args.check_flags(&[
        "machine",
        "seed",
        "shape",
        "mode",
        "cap",
        "preempt",
        "out",
        "trace",
        "metrics",
        "faults",
        "recovery",
        "resilience",
        "event-queue",
        "record-cycles",
        "telemetry",
        "cadence",
        "slo",
    ])?;

    // Native log: an SWF positional, or a synthetic trace by seed. An SWF
    // header with MaxProcs can stand in for --machine.
    let swf_text = match args.positional.first() {
        Some(path) => Some(
            std::fs::read_to_string(path).map_err(|e| ArgError(format!("reading {path}: {e}")))?,
        ),
        None => None,
    };
    let machine = match args.get("machine") {
        Some(name) => machine_by_name(name)?,
        None => {
            let header = swf_text
                .as_deref()
                .map(swf::parse_header)
                .unwrap_or_default();
            let procs = header.max_procs.ok_or_else(|| {
                ArgError("missing --machine (and no MaxProcs in the SWF header to infer it)".into())
            })?;
            let mut m = machine_by_name(&format!("{procs}x1.0"))?;
            m.name = "from SWF header";
            m
        }
    };
    let natives: Arc<Vec<Job>> = Arc::new(match &swf_text {
        Some(text) => swf::parse(text, true).map_err(|e| ArgError(e.to_string()))?,
        None => native_trace(&machine, args.get_or("seed", 1)?),
    });
    if natives.is_empty() {
        return Err(ArgError("native log is empty".into()));
    }
    let horizon = natives
        .iter()
        .map(|j| j.submit)
        .max()
        .unwrap()
        .max(SimTime::from_days(1));

    // Fault injection: synthesize the per-node failure/repair timeline
    // once and thread the same model through both runs, so the
    // native-only and with-interstitial columns face identical faults.
    let faults = match args.get("faults") {
        None => None,
        Some(spec) => {
            let spec =
                FaultSpec::parse(spec).map_err(|e| ArgError(format!("bad --faults: {e}")))?;
            Some(FaultModel::synthesize(&spec, machine.cpus, horizon))
        }
    };
    if args.get("resilience").is_some() && faults.is_none() {
        return Err(ArgError("--resilience requires --faults".into()));
    }

    // Recovery policy for evicted interstitial jobs. The default
    // (kill-restart) reproduces the legacy traces byte-for-byte.
    let recovery = match args.get("recovery") {
        None => RecoveryPolicy::default(),
        Some(spec) => RecoveryPolicy::parse(spec).map_err(ArgError)?,
    };

    // Event-queue backend: binary heap (default) or calendar queue. Both
    // pop in identical order, so this only changes constant factors.
    let queue = match args.get("event-queue") {
        None => QueueKind::default(),
        Some(kind) => {
            QueueKind::parse(kind).map_err(|e| ArgError(format!("bad --event-queue: {e}")))?
        }
    };

    // Online telemetry: a fixed-cadence sampling bus plus optional SLO
    // watchdog rules. Both are opt-in; --cadence and --slo only make sense
    // with a bus to drive.
    let telemetry_path = args.get("telemetry");
    let cadence = match args.get("cadence") {
        None => obs::telemetry::DEFAULT_CADENCE_S,
        Some(c) => {
            if telemetry_path.is_none() {
                return Err(ArgError("--cadence requires --telemetry".into()));
            }
            let secs: u64 = c
                .parse()
                .map_err(|_| ArgError(format!("bad --cadence {c:?} (want seconds)")))?;
            if secs == 0 {
                return Err(ArgError("--cadence must be at least 1 second".into()));
            }
            secs
        }
    };
    let slo = match args.get("slo") {
        None => None,
        Some(spec) => {
            if telemetry_path.is_none() {
                return Err(ArgError("--slo requires --telemetry".into()));
            }
            Some(obs::SloSpec::parse(spec).map_err(ArgError)?)
        }
    };

    // Observability rides on the interstitial run when a shape is given,
    // otherwise on the baseline.
    let record_path = args.get("record-cycles");
    let observe = args.get("trace").is_some()
        || args.get("metrics").is_some()
        || record_path.is_some()
        || telemetry_path.is_some();
    let shape_given = args.get("shape").is_some();
    // The recorder is opt-in on top of the full bundle: it needs the phase
    // profiler's nanos for attribution, and `--record-cycles` is an explicit
    // request to pay for the per-pass ring. The telemetry bus likewise.
    let observer = || {
        let mut o = Obs::enabled();
        if record_path.is_some() {
            o.recorder = obs::CycleRecorder::enabled();
        }
        if telemetry_path.is_some() {
            o.telemetry = obs::TelemetryBus::enabled(cadence, obs::telemetry::DRIVER_SIGNALS);
        }
        o
    };

    // Baseline (always) and, if a shape is given, the interstitial run.
    let mut baseline_builder = SimBuilder::new(machine.clone())
        .natives_arc(Arc::clone(&natives))
        .horizon(horizon)
        .event_queue(queue)
        .recovery(recovery);
    if let Some(model) = &faults {
        baseline_builder = baseline_builder.faults(model.clone());
    }
    if observe && !shape_given {
        baseline_builder = baseline_builder.observer(observer());
        if let Some(spec) = &slo {
            baseline_builder = baseline_builder.slo(spec.clone());
        }
    }
    let baseline = baseline_builder.build().run();

    let mut out = String::new();
    let mut t = Table::new(
        format!(
            "simulation — {} ({} native jobs)",
            machine.name,
            natives.len()
        ),
        &["metric", "native only", "with interstitial"],
    );
    let base_impact = NativeImpact::of(&baseline.completed);

    let inter = match args.get("shape") {
        None => None,
        Some(spec) => {
            let (cpus, secs) = shape_spec(spec)?;
            let mode =
                match args.get("mode") {
                    None | Some("continual") => InterstitialMode::Continual,
                    Some(m) => match m.strip_prefix("project:") {
                        Some(start) => InterstitialMode::Project {
                            start: SimTime::from_secs(start.parse().map_err(|_| {
                                ArgError(format!("bad project start in --mode {m:?}"))
                            })?),
                        },
                        None => return Err(ArgError(format!("bad --mode {m:?}"))),
                    },
                };
            let mut policy = match args.get("cap") {
                Some(c) => {
                    let cap: f64 = c
                        .parse()
                        .map_err(|_| ArgError(format!("bad --cap {c:?}")))?;
                    if !(0.0..=1.0).contains(&cap) {
                        return Err(ArgError("--cap must be in [0,1]".into()));
                    }
                    InterstitialPolicy::capped(cap)
                }
                None => InterstitialPolicy::default(),
            };
            policy.preemption = match args.get("preempt") {
                None => Preemption::None,
                Some("kill") => Preemption::Kill,
                Some("checkpoint") => Preemption::Checkpoint,
                Some(p) => return Err(ArgError(format!("bad --preempt {p:?}"))),
            };
            let project = InterstitialProject::per_paper(u64::MAX / 2, cpus, secs);
            let mut b = SimBuilder::new(machine.clone())
                .natives_arc(Arc::clone(&natives))
                .horizon(horizon)
                .event_queue(queue)
                .recovery(recovery)
                .interstitial(project, mode, policy);
            if let Some(model) = &faults {
                b = b.faults(model.clone());
            }
            if observe {
                b = b.observer(observer());
                if let Some(spec) = &slo {
                    b = b.slo(spec.clone());
                }
            }
            Some(b.build().run())
        }
    };

    type Cell<'a> = &'a dyn Fn(&SimOutput, &NativeImpact) -> String;
    let cell = |o: &SimOutput, f: Cell| {
        let i = NativeImpact::of(&o.completed);
        f(o, &i)
    };
    let rows: [(&str, Cell); 7] = [
        ("overall utilization", &|o, _| {
            format!("{:.3}", o.overall_utilization())
        }),
        ("native utilization", &|o, _| {
            format!("{:.3}", o.native_utilization())
        }),
        ("interstitial jobs", &|o, _| {
            o.interstitial_completed().to_string()
        }),
        ("interstitial killed", &|o, _| {
            o.interstitial_killed.to_string()
        }),
        ("native throughput", &|o, _| {
            o.native_throughput_in_window().to_string()
        }),
        ("native median wait (s)", &|_, i| fmt_k(i.all.median_wait)),
        ("5% largest median wait (s)", &|_, i| {
            fmt_k(i.largest.median_wait)
        }),
    ];
    for (label, f) in rows {
        let base_cell = cell(&baseline, f);
        let inter_cell = match &inter {
            Some(o) => cell(o, f),
            None => "—".to_string(),
        };
        t.row(&[label.to_string(), base_cell, inter_cell]);
    }
    if faults.is_some() {
        let fault_rows: [(&str, Cell); 4] = [
            ("node failures", &|o, _| o.faults.node_failures.to_string()),
            ("fault kills", &|o, _| o.faults.total_kills().to_string()),
            ("native requeues", &|o, _| {
                o.faults.native_requeues.to_string()
            }),
            ("interstitial retries", &|o, _| {
                o.faults.interstitial_retries.to_string()
            }),
        ];
        for (label, f) in fault_rows {
            let base_cell = cell(&baseline, f);
            let inter_cell = match &inter {
                Some(o) => cell(o, f),
                None => "—".to_string(),
            };
            t.row(&[label.to_string(), base_cell, inter_cell]);
        }
    }
    let _ = base_impact;
    out.push_str(&t.to_text());

    // The resilience panel describes the headline run (the interstitial
    // run when a shape is given, else the baseline).
    if faults.is_some() {
        let o = inter.as_ref().unwrap_or(&baseline);
        let report = ResilienceReport::from_run(
            &o.completed,
            &o.faults,
            &o.fault_model,
            machine.cpus,
            horizon,
        );
        let text = format!(
            "\n{}\n{}",
            report.table().to_text(),
            report.survival_table().to_text()
        );
        out.push_str(&text);
        if let Some(path) = args.get("resilience") {
            std::fs::write(path, text.trim_start())
                .map_err(|e| ArgError(format!("writing {path}: {e}")))?;
            out.push_str(&format!("\nwrote resilience report to {path}\n"));
        }
    }

    if let (Some(o), Some(path)) = (&inter, args.get("out")) {
        let text = swf::emit_completed(&o.completed, "interstitial simulation output");
        std::fs::write(path, text).map_err(|e| ArgError(format!("writing {path}: {e}")))?;
        out.push_str(&format!("\nwrote completed-job log to {path}\n"));
    }

    if observe {
        let observed = inter.as_ref().unwrap_or(&baseline);
        if let Some(path) = args.get("trace") {
            std::fs::write(path, observed.obs.trace.to_jsonl())
                .map_err(|e| ArgError(format!("writing {path}: {e}")))?;
            out.push_str(&format!(
                "\nwrote {} trace events to {path}\n",
                observed.obs.trace.recorded()
            ));
        }
        if let Some(path) = args.get("metrics") {
            let mut bundle = observed.obs.clone();
            NativeImpact::of(&observed.completed).export(&mut bundle.metrics);
            std::fs::write(path, bundle.run_report().to_json())
                .map_err(|e| ArgError(format!("writing {path}: {e}")))?;
            out.push_str(&format!("\nwrote metrics snapshot to {path}\n"));
        }
        if let Some(path) = record_path {
            let jsonl = observed
                .obs
                .recorder
                .to_jsonl(&observed.obs.profiler.snapshot());
            std::fs::write(path, jsonl).map_err(|e| ArgError(format!("writing {path}: {e}")))?;
            out.push_str(&format!(
                "\nwrote {} recorded cycles to {path} (ring retains {}, top-{} ledger)\n",
                observed.obs.recorder.cycles_seen(),
                observed.obs.recorder.ring().count(),
                observed.obs.recorder.top().len(),
            ));
        }
        if let Some(path) = telemetry_path {
            let bus = &observed.obs.telemetry;
            std::fs::write(path, bus.to_jsonl())
                .map_err(|e| ArgError(format!("writing {path}: {e}")))?;
            out.push_str(&format!(
                "\nwrote {} telemetry points to {path} (cadence {}s, {} annotations)\n",
                bus.len(),
                bus.effective_cadence_s(),
                bus.annotations().len(),
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn baseline_only_run() {
        let out = run(&parse(&["simulate", "--machine", "128x1.0", "--seed", "2"])).unwrap();
        assert!(out.contains("overall utilization"));
        assert!(out.contains("—"), "no interstitial column values");
    }

    #[test]
    fn interstitial_run_reports_jobs() {
        let out = run(&parse(&[
            "simulate",
            "--machine",
            "128x1.0",
            "--seed",
            "2",
            "--shape",
            "16x120",
        ]))
        .unwrap();
        // Interstitial column must contain a positive job count.
        let line = out
            .lines()
            .find(|l| l.starts_with("interstitial jobs"))
            .unwrap();
        let count: u64 = line.split_whitespace().last().unwrap().parse().unwrap();
        assert!(count > 0, "{out}");
    }

    #[test]
    fn preempt_and_cap_flags_work() {
        let out = run(&parse(&[
            "simulate",
            "--machine",
            "128x1.0",
            "--seed",
            "2",
            "--shape",
            "16x960",
            "--cap",
            "0.9",
            "--preempt",
            "kill",
        ]))
        .unwrap();
        assert!(out.contains("interstitial killed"));
    }

    #[test]
    fn calendar_event_queue_matches_heap_exactly() {
        let flags = |queue: &str| {
            run(&parse(&[
                "simulate",
                "--machine",
                "128x1.0",
                "--seed",
                "2",
                "--shape",
                "16x120",
                "--event-queue",
                queue,
            ]))
            .unwrap()
        };
        assert_eq!(flags("heap"), flags("calendar"));
    }

    #[test]
    fn bad_flags_are_clean_errors() {
        assert!(run(&parse(&["simulate"])).is_err(), "no machine");
        assert!(run(&parse(&[
            "simulate",
            "--machine",
            "ross",
            "--event-queue",
            "wheelbarrow"
        ]))
        .is_err());
        assert!(run(&parse(&["simulate", "--machine", "ross", "--shape", "16"])).is_err());
        assert!(run(&parse(&[
            "simulate",
            "--machine",
            "ross",
            "--shape",
            "16x120",
            "--mode",
            "sometimes"
        ]))
        .is_err());
        assert!(run(&parse(&[
            "simulate",
            "--machine",
            "ross",
            "--shape",
            "16x120",
            "--cap",
            "1.5"
        ]))
        .is_err());
        assert!(run(&parse(&[
            "simulate",
            "--machine",
            "ross",
            "--shape",
            "16x120",
            "--preempt",
            "maybe"
        ]))
        .is_err());
    }

    #[test]
    fn faulted_run_prints_the_resilience_panel() {
        let dir = std::env::temp_dir().join("interstitial-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resilience.txt");
        let out = run(&parse(&[
            "simulate",
            "--machine",
            "128x1.0",
            "--seed",
            "2",
            "--shape",
            "16x120",
            "--faults",
            "mtbf=20000,mttr=2000,nodes=8,seed=7",
            "--resilience",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("node failures"), "{out}");
        assert!(out.contains("Resilience"), "{out}");
        assert!(out.contains("wrote resilience report"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("goodput CPU·s"), "{text}");
        assert!(text.contains("Execution survival vs runtime"), "{text}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn faulted_traces_stamp_schema_v2() {
        let dir = std::env::temp_dir().join("interstitial-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("faulted.jsonl");
        run(&parse(&[
            "simulate",
            "--machine",
            "128x1.0",
            "--seed",
            "2",
            "--faults",
            "mtbf=20000,mttr=2000,nodes=8,seed=7",
            "--trace",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        let jsonl = std::fs::read_to_string(&trace).unwrap();
        assert!(jsonl.starts_with("{\"schema\":2"), "{jsonl}");
        assert!(jsonl.contains("\"ev\":\"node_down\""));
        assert!(jsonl.contains("\"ev\":\"node_up\""));
        let _ = std::fs::remove_file(trace);
    }

    #[test]
    fn recovery_flag_selects_the_policy_and_v3_traces_stamp_correctly() {
        let dir = std::env::temp_dir().join("interstitial-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = |recovery: &str, trace: &str| {
            vec![
                "simulate".to_string(),
                "--machine".into(),
                "128x1.0".into(),
                "--seed".into(),
                "2".into(),
                "--shape".into(),
                "16x120".into(),
                "--faults".into(),
                "mtbf=20000,mttr=2000,nodes=8,seed=7".into(),
                "--recovery".into(),
                recovery.into(),
                "--trace".into(),
                trace.into(),
            ]
        };
        // Kill-restart emits no recovery events, so the trace stays schema 2.
        let kill = dir.join("kill.jsonl");
        let argv = base("kill", kill.to_str().unwrap());
        run(&Args::parse(argv).unwrap()).unwrap();
        let kill_bytes = std::fs::read_to_string(&kill).unwrap();
        assert!(kill_bytes.starts_with("{\"schema\":2"), "{kill_bytes}");
        assert!(!kill_bytes.contains("\"ev\":\"job_resumed\""));
        // Suspend-resume salvages victims and stamps schema 3.
        let susp = dir.join("suspend.jsonl");
        let argv = base("suspend", susp.to_str().unwrap());
        run(&Args::parse(argv).unwrap()).unwrap();
        let susp_bytes = std::fs::read_to_string(&susp).unwrap();
        assert!(susp_bytes.starts_with("{\"schema\":3"), "{susp_bytes}");
        assert!(susp_bytes.contains("\"ev\":\"job_suspended\""));
        assert!(susp_bytes.contains("\"ev\":\"job_resumed\""));
        // Checkpointing emits its own marker.
        let ckpt = dir.join("ckpt.jsonl");
        let argv = base("ckpt=30", ckpt.to_str().unwrap());
        run(&Args::parse(argv).unwrap()).unwrap();
        let ckpt_bytes = std::fs::read_to_string(&ckpt).unwrap();
        assert!(ckpt_bytes.starts_with("{\"schema\":3"), "{ckpt_bytes}");
        assert!(ckpt_bytes.contains("\"ev\":\"job_checkpointed\""));
        for p in [kill, susp, ckpt] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn recovery_flag_errors_are_clean() {
        for bad in ["sometimes", "ckpt=0", "ckpt=soon", "ckpt="] {
            let e = run(&parse(&[
                "simulate",
                "--machine",
                "128x1.0",
                "--recovery",
                bad,
            ]))
            .unwrap_err();
            assert!(e.0.contains("--recovery"), "{bad:?} → {}", e.0);
        }
    }

    #[test]
    fn fault_flag_errors_are_clean() {
        assert!(run(&parse(&[
            "simulate",
            "--machine",
            "128x1.0",
            "--faults",
            "mtbf=banana"
        ]))
        .is_err());
        assert!(
            run(&parse(&[
                "simulate",
                "--machine",
                "128x1.0",
                "--resilience",
                "/tmp/r.txt"
            ]))
            .is_err(),
            "--resilience without --faults"
        );
    }

    #[test]
    fn machine_inferred_from_swf_header() {
        let dir = std::env::temp_dir().join("interstitial-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("header.swf");
        let jobs = workload::traces::native_trace(&machine::config::ross(), 6);
        let body = swf::emit(&jobs[..300], "");
        std::fs::write(&path, format!("; MaxProcs: 1436\n{body}")).unwrap();
        let out = run(&parse(&["simulate", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("from SWF header"), "{out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn trace_and_metrics_flags_write_parseable_artifacts() {
        let dir = std::env::temp_dir().join("interstitial-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("run.jsonl");
        let metrics = dir.join("run.json");
        let out = run(&parse(&[
            "simulate",
            "--machine",
            "128x1.0",
            "--seed",
            "2",
            "--shape",
            "16x120",
            "--trace",
            trace.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("trace events"), "{out}");
        assert!(out.contains("metrics snapshot"), "{out}");
        let jsonl = std::fs::read_to_string(&trace).unwrap();
        assert!(!jsonl.is_empty());
        let mut lines = jsonl.lines();
        let header = lines.next().unwrap();
        assert!(
            header.starts_with("{\"schema\":1") && header.contains("\"cpus\":128"),
            "{header}"
        );
        for line in lines {
            assert!(line.starts_with("{\"t\":") && line.ends_with('}'), "{line}");
        }
        // The stream must cover submits, starts, finishes and interstitial
        // placements (the acceptance-bar event classes).
        for needle in [
            "\"ev\":\"submit\"",
            "\"ev\":\"start\"",
            "\"ev\":\"finish\"",
            "\"class\":\"interstitial\"",
        ] {
            assert!(jsonl.contains(needle), "missing {needle}");
        }
        let report = std::fs::read_to_string(&metrics).unwrap();
        assert!(
            report.starts_with("{\"metrics\":{\"counters\":{"),
            "{report}"
        );
        assert!(report.contains("\"jobs.finished.native\""));
        assert!(report.contains("\"impact.all.median_wait_ms\""));
        assert!(report.contains("\"profile\""));
        let _ = std::fs::remove_file(trace);
        let _ = std::fs::remove_file(metrics);
    }

    #[test]
    fn baseline_trace_without_shape() {
        let dir = std::env::temp_dir().join("interstitial-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("baseline.jsonl");
        run(&parse(&[
            "simulate",
            "--machine",
            "128x1.0",
            "--seed",
            "2",
            "--trace",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        let jsonl = std::fs::read_to_string(&trace).unwrap();
        assert!(jsonl.contains("\"ev\":\"submit\""));
        assert!(!jsonl.contains("\"class\":\"interstitial\""));
        let _ = std::fs::remove_file(trace);
    }

    #[test]
    fn record_cycles_flag_writes_parseable_recorder_jsonl() {
        let dir = std::env::temp_dir().join("interstitial-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let rec = dir.join("cycles.jsonl");
        let out = run(&parse(&[
            "simulate",
            "--machine",
            "128x1.0",
            "--seed",
            "2",
            "--shape",
            "16x120",
            "--record-cycles",
            rec.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("recorded cycles"), "{out}");
        let jsonl = std::fs::read_to_string(&rec).unwrap();
        let dump = obs::recorder::RecorderDump::from_jsonl(&jsonl).unwrap();
        assert!(dump.cycles_seen > 0, "{out}");
        assert!(!dump.ring.is_empty());
        assert!(!dump.top.is_empty());
        assert!(
            dump.phases.iter().any(|(name, _, _)| name == "event-pump"),
            "phase totals ride along: {:?}",
            dump.phases
        );
        // The ledger is sorted by deterministic cost, most expensive first.
        assert!(dump.top.windows(2).all(|w| w[0].cost >= w[1].cost));
        let _ = std::fs::remove_file(rec);
    }

    #[test]
    fn recording_does_not_perturb_the_trace_stream() {
        let dir = std::env::temp_dir().join("interstitial-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let plain = dir.join("plain.jsonl");
        let recorded = dir.join("recorded.jsonl");
        let rec = dir.join("rec-cycles.jsonl");
        let base = [
            "simulate",
            "--machine",
            "128x1.0",
            "--seed",
            "2",
            "--shape",
            "16x120",
            "--trace",
        ];
        let mut with_trace = base.to_vec();
        with_trace.push(plain.to_str().unwrap());
        run(&parse(&with_trace)).unwrap();
        let mut with_rec = base.to_vec();
        let rec_s = rec.to_str().unwrap().to_string();
        with_rec.push(recorded.to_str().unwrap());
        with_rec.push("--record-cycles");
        with_rec.push(&rec_s);
        run(&parse(&with_rec)).unwrap();
        assert_eq!(
            std::fs::read_to_string(&plain).unwrap(),
            std::fs::read_to_string(&recorded).unwrap(),
            "flight recording must leave the trace bytes untouched"
        );
        for p in [plain, recorded, rec] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn telemetry_flag_writes_a_parseable_deterministic_export() {
        let dir = std::env::temp_dir().join("interstitial-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let run_once = |name: &str| {
            let path = dir.join(name);
            let out = run(&parse(&[
                "simulate",
                "--machine",
                "128x1.0",
                "--seed",
                "2",
                "--shape",
                "16x120",
                "--telemetry",
                path.to_str().unwrap(),
                "--cadence",
                "600",
            ]))
            .unwrap();
            assert!(out.contains("telemetry points"), "{out}");
            let bytes = std::fs::read_to_string(&path).unwrap();
            let _ = std::fs::remove_file(path);
            bytes
        };
        let a = run_once("telemetry-a.jsonl");
        let b = run_once("telemetry-b.jsonl");
        assert_eq!(a, b, "same seed must export byte-identical telemetry");
        let dump = obs::TelemetryDump::from_jsonl(&a).unwrap();
        assert!(!dump.ticks.is_empty(), "{a}");
        assert_eq!(dump.cadence_s, 600);
        assert_eq!(dump.machine, Some(("custom".to_string(), 128)));
        for signal in obs::telemetry::DRIVER_SIGNALS {
            assert!(
                dump.values(signal).is_some(),
                "export must carry the {signal} column"
            );
        }
    }

    #[test]
    fn telemetry_does_not_perturb_the_trace_stream() {
        let dir = std::env::temp_dir().join("interstitial-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let plain = dir.join("tel-plain.jsonl");
        let sampled = dir.join("tel-sampled.jsonl");
        let tel = dir.join("tel-series.jsonl");
        let base = [
            "simulate",
            "--machine",
            "128x1.0",
            "--seed",
            "2",
            "--shape",
            "16x120",
            "--trace",
        ];
        let mut with_trace = base.to_vec();
        with_trace.push(plain.to_str().unwrap());
        run(&parse(&with_trace)).unwrap();
        let mut with_tel = base.to_vec();
        let tel_s = tel.to_str().unwrap().to_string();
        with_tel.push(sampled.to_str().unwrap());
        with_tel.push("--telemetry");
        with_tel.push(&tel_s);
        run(&parse(&with_tel)).unwrap();
        assert_eq!(
            std::fs::read_to_string(&plain).unwrap(),
            std::fs::read_to_string(&sampled).unwrap(),
            "telemetry sampling must leave the trace bytes untouched"
        );
        for p in [plain, sampled, tel] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn slo_flag_stamps_breaches_and_flag_errors_are_clean() {
        let dir = std::env::temp_dir().join("interstitial-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let tel = dir.join("slo-series.jsonl");
        // The first tick samples the pre-event state at t=0 (util 0), so a
        // util floor is guaranteed to open breached.
        let out = run(&parse(&[
            "simulate",
            "--machine",
            "128x1.0",
            "--seed",
            "2",
            "--telemetry",
            tel.to_str().unwrap(),
            "--slo",
            "util>=0.999",
        ]))
        .unwrap();
        assert!(out.contains("annotations"), "{out}");
        let dump = obs::TelemetryDump::from_jsonl(&std::fs::read_to_string(&tel).unwrap()).unwrap();
        assert!(
            dump.annotations
                .iter()
                .any(|a| a.kind == "breach" && a.label == "util"),
            "{:?}",
            dump.annotations
        );
        let _ = std::fs::remove_file(tel);

        for bad in [
            vec!["simulate", "--machine", "ross", "--slo", "util>=0.9"],
            vec!["simulate", "--machine", "ross", "--cadence", "60"],
            vec![
                "simulate",
                "--machine",
                "ross",
                "--telemetry",
                "/tmp/t.jsonl",
                "--cadence",
                "0",
            ],
            vec![
                "simulate",
                "--machine",
                "ross",
                "--telemetry",
                "/tmp/t.jsonl",
                "--slo",
                "vibes<=3",
            ],
        ] {
            assert!(run(&parse(&bad)).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn swf_round_trip_through_cli() {
        let dir = std::env::temp_dir().join("interstitial-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let log = dir.join("in.swf");
        let out_path = dir.join("out.swf");
        let jobs = workload::traces::native_trace(&machine::config::ross(), 5);
        std::fs::write(&log, swf::emit(&jobs[..500], "subset")).unwrap();
        let out = run(&parse(&[
            "simulate",
            "--machine",
            "ross",
            log.to_str().unwrap(),
            "--shape",
            "32x120",
            "--out",
            out_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("wrote completed-job log"));
        let completed = swf::parse(&std::fs::read_to_string(&out_path).unwrap(), true).unwrap();
        assert!(completed.len() >= 500);
        let _ = std::fs::remove_file(log);
        let _ = std::fs::remove_file(out_path);
    }
}
