//! `perf` — the perf-regression gate over `BENCH_*.json` baselines.
//!
//! `perf compare OLD NEW` diffs two baselines written by `bench --bin
//! perf`: deterministic work counters are compared *exactly* (any increase
//! fails), wall-clock medians within `--wall-tol-pct` percent (default 25;
//! CI passes a generous value because shared runners are noisy). A detected
//! regression returns an error, so the process exits nonzero — that is the
//! gate. `--require-decrease C1,C2` additionally demands that the named
//! work counters *strictly decreased* in every shared scenario — the gate
//! CI runs when a change claims to reduce scheduler work. `perf show FILE`
//! pretty-prints one baseline.
//!
//! `perf hotspots CYCLES.jsonl` attributes cost from a `--record-cycles`
//! flight-recorder dump: per-phase flame bars (order-queue sort vs backfill
//! scan vs event pump), P50/P99/max per-cycle cost over the retained ring
//! window (P² streaming estimators — the same machinery trace summaries
//! use), and the exact top-K most expensive cycles with their sim-times.

use crate::args::{ArgError, Args};
use obs::perf::{compare, PerfBaseline};
use obs::recorder::RecorderDump;
use tracekit::P2;

/// Default wall-clock tolerance, percent over the old median.
const DEFAULT_WALL_TOL_PCT: u64 = 25;

/// Default row count for the hotspots top-cycles table.
const DEFAULT_HOTSPOT_ROWS: usize = 10;

/// Width of the ASCII flame bars, characters.
const FLAME_WIDTH: u64 = 30;

/// Dispatch `perf <verb>`.
pub fn run(args: &Args) -> Result<String, ArgError> {
    match args.positional.first().map(|s| s.as_str()) {
        Some("compare") => run_compare(args),
        Some("show") => run_show(args),
        Some("hotspots") => run_hotspots(args),
        Some(other) => Err(ArgError(format!(
            "unknown perf verb {other:?} (compare | show | hotspots)"
        ))),
        None => Err(ArgError(
            "usage: perf compare OLD.json NEW.json [--wall-tol-pct P] | perf show FILE.json \
             | perf hotspots CYCLES.jsonl [--top N]"
                .into(),
        )),
    }
}

fn load(path: &str) -> Result<PerfBaseline, ArgError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    PerfBaseline::from_json(&text).map_err(|e| ArgError(format!("{path}: {e}")))
}

fn run_compare(args: &Args) -> Result<String, ArgError> {
    args.check_flags(&["wall-tol-pct", "require-decrease"])?;
    let [old_path, new_path] = match args.positional.get(1..3) {
        Some([a, b]) => [a.as_str(), b.as_str()],
        _ => {
            return Err(ArgError(
                "usage: perf compare OLD.json NEW.json [--wall-tol-pct P] \
                 [--require-decrease C1,C2]"
                    .into(),
            ))
        }
    };
    let tol = args.get_or("wall-tol-pct", DEFAULT_WALL_TOL_PCT)?;
    let old = load(old_path)?;
    let new = load(new_path)?;
    let cmp = compare(&old, &new, tol);
    let mut out = format!(
        "comparing {} ({}, rev {}) -> ({}, rev {}), wall tolerance +{tol}%\n",
        old.machine, old_path, old.git_rev, new_path, new.git_rev
    );
    out.push_str(&cmp.render());
    if cmp.is_regression() {
        // An Err exits nonzero: the report itself is the error message.
        return Err(ArgError(format!(
            "{out}perf regression: {} finding(s)",
            cmp.regressions.len()
        )));
    }
    if let Some(list) = args.get("require-decrease") {
        out.push_str(&require_decrease(&old, &new, list)?);
    }
    Ok(out)
}

/// Assert that each counter named in the comma-separated `list` strictly
/// decreased in every scenario present in both baselines. CI uses this
/// after a data-structure change that must *reduce* work, where "no
/// increase" would be too weak a gate.
fn require_decrease(
    old: &PerfBaseline,
    new: &PerfBaseline,
    list: &str,
) -> Result<String, ArgError> {
    let mut out = String::new();
    let mut failures = Vec::new();
    for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let mut seen = false;
        for (scenario, old_s) in &old.scenarios {
            let Some(new_s) = new.scenarios.get(scenario) else {
                continue;
            };
            let old_v = counter(&old_s.work, name)?;
            let new_v = counter(&new_s.work, name)?;
            seen = true;
            if new_v < old_v {
                out.push_str(&format!(
                    "  decrease ok  {scenario}/{name}: {old_v} -> {new_v}\n"
                ));
            } else {
                failures.push(format!("{scenario}/{name}: {old_v} -> {new_v}"));
            }
        }
        if !seen {
            failures.push(format!("{name}: no scenario present in both baselines"));
        }
    }
    if failures.is_empty() {
        Ok(out)
    } else {
        Err(ArgError(format!(
            "{out}required decrease not met:\n  {}",
            failures.join("\n  ")
        )))
    }
}

fn counter(work: &obs::WorkCounters, name: &str) -> Result<u64, ArgError> {
    work.fields()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v)
        .ok_or_else(|| ArgError(format!("unknown counter {name:?} in --require-decrease")))
}

fn run_show(args: &Args) -> Result<String, ArgError> {
    args.check_flags(&[])?;
    let path = args
        .positional
        .get(1)
        .ok_or_else(|| ArgError("usage: perf show FILE.json".into()))?;
    let b = load(path)?;
    let mut out = format!(
        "{} baseline (rev {}, {} reps after {} warmup, {}-job prefix)\n",
        b.machine, b.git_rev, b.reps, b.warmup, b.jobs_prefix
    );
    for (name, s) in &b.scenarios {
        out.push_str(&format!(
            "  {name}: wall {:.1} ms (MAD {:.1}), {:.1} jobs/s, {:.0} events/s\n",
            s.wall_us_median as f64 / 1e3,
            s.wall_us_mad as f64 / 1e3,
            s.jobs_per_sec_milli as f64 / 1e3,
            s.events_per_sec_milli as f64 / 1e3,
        ));
        for (counter, value) in s.work.fields() {
            out.push_str(&format!("    {counter:<28} {value}\n"));
        }
        match &s.mem {
            Some(mem) => {
                for (counter, value) in mem.fields() {
                    out.push_str(&format!("    mem.{counter:<24} {value}\n"));
                }
            }
            // Schema-2 files may omit the optional mem section (and schema-1
            // files always do): say so instead of silently dropping the rows.
            None => out.push_str(&format!("    {:<28} not recorded\n", "mem")),
        }
    }
    Ok(out)
}

/// `perf hotspots CYCLES.jsonl [--top N]` — attribute cost from a
/// `simulate --record-cycles` dump.
fn run_hotspots(args: &Args) -> Result<String, ArgError> {
    args.check_flags(&["top"])?;
    let path = args
        .positional
        .get(1)
        .ok_or_else(|| ArgError("usage: perf hotspots CYCLES.jsonl [--top N]".into()))?;
    let rows: usize = args.get_or("top", DEFAULT_HOTSPOT_ROWS)?;
    let text =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    let dump = RecorderDump::from_jsonl(&text).map_err(|e| ArgError(format!("{path}: {e}")))?;

    let mut out = format!(
        "hotspots from {path}: {} cycles recorded, ring retains {} (dropped {}), \
         top-{} ledger\n",
        dump.cycles_seen,
        dump.ring.len(),
        dump.dropped,
        dump.top_k
    );

    // Phase flame bars: run totals from the profiler, scaled to the
    // hottest phase. Wall-clock values — attribution, not comparison.
    if !dump.phases.is_empty() {
        let total: u64 = dump.phases.iter().map(|(_, _, ns)| *ns).sum();
        let hottest = dump.phases.iter().map(|(_, _, ns)| *ns).max().unwrap_or(0);
        out.push_str("\nphase breakdown (wall-clock run totals)\n");
        for (name, calls, ns) in &dump.phases {
            let share = if total > 0 {
                *ns as f64 / total as f64 * 100.0
            } else {
                0.0
            };
            let bar = (ns * FLAME_WIDTH).checked_div(hottest).unwrap_or(0) as usize;
            out.push_str(&format!(
                "  {name:<16} {calls:>9} calls {:>10.2} ms {share:>5.1}%  {}\n",
                *ns as f64 / 1e6,
                "#".repeat(bar),
            ));
        }
    }

    // Per-cycle cost distribution over the retained ring window. Cost is
    // the deterministic unit (events + candidates + segments); wall nanos
    // ride along when the dump carries them.
    if !dump.ring.is_empty() {
        let mut p50 = P2::new(0.50);
        let mut p99 = P2::new(0.99);
        let mut worst = &dump.ring[0];
        let has_ns = dump.ring.iter().any(|r| r.ns_total > 0);
        let mut ns50 = P2::new(0.50);
        let mut ns99 = P2::new(0.99);
        let mut ns_max = 0u64;
        for rec in &dump.ring {
            p50.observe(rec.cost as f64);
            p99.observe(rec.cost as f64);
            if rec.cost > worst.cost {
                worst = rec;
            }
            if has_ns {
                ns50.observe(rec.ns_total as f64);
                ns99.observe(rec.ns_total as f64);
                ns_max = ns_max.max(rec.ns_total);
            }
        }
        out.push_str(&format!(
            "\nper-cycle cost over the ring window ({} cycles)\n  \
             cost units   P50 {:>8.0}  P99 {:>8.0}  max {:>8} (cycle {} at t={}s)\n",
            dump.ring.len(),
            p50.estimate().unwrap_or(0.0),
            p99.estimate().unwrap_or(0.0),
            worst.cost,
            worst.cycle,
            worst.t_s,
        ));
        if has_ns {
            out.push_str(&format!(
                "  wall µs      P50 {:>8.1}  P99 {:>8.1}  max {:>8.1}\n",
                ns50.estimate().unwrap_or(0.0) / 1e3,
                ns99.estimate().unwrap_or(0.0) / 1e3,
                ns_max as f64 / 1e3,
            ));
        }
    }

    // The exact whole-run ledger: worst cycles by deterministic cost, with
    // the sim-times a tail investigation needs to zoom in on.
    if !dump.top.is_empty() {
        out.push_str(&format!(
            "\ntop {} most expensive cycles (whole run, exact)\n  \
             rank      cycle        t_s    cost  events  cands   segs  queue    wall µs\n",
            rows.min(dump.top.len())
        ));
        for (i, rec) in dump.top.iter().take(rows).enumerate() {
            out.push_str(&format!(
                "  {:>4} {:>10} {:>10} {:>7} {:>7} {:>6} {:>6} {:>6} {:>10.1}\n",
                i + 1,
                rec.cycle,
                rec.t_s,
                rec.cost,
                rec.events,
                rec.candidates,
                rec.segments,
                rec.queue_depth,
                rec.ns_total as f64 / 1e3,
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::perf::{ScenarioPerf, PERF_SCHEMA};
    use obs::WorkCounters;
    use std::collections::BTreeMap;

    fn baseline(candidates: u64) -> PerfBaseline {
        let mut work = WorkCounters::enabled();
        work.record_engine(500, 600, 12);
        work.record_sched(40, 20, 10, candidates, 200);
        let mut scenarios = BTreeMap::new();
        scenarios.insert(
            "fault_free".to_string(),
            ScenarioPerf {
                wall_us_median: 9000,
                wall_us_mad: 150,
                jobs: 30,
                events: 500,
                jobs_per_sec_milli: 3_333_333,
                events_per_sec_milli: 55_555_555,
                work,
                mem: None,
            },
        );
        PerfBaseline {
            schema: PERF_SCHEMA,
            machine: "ross".to_string(),
            git_rev: "testrev".to_string(),
            reps: 3,
            warmup: 1,
            jobs_prefix: 2000,
            scenarios,
        }
    }

    fn write(dir: &std::path::Path, name: &str, b: &PerfBaseline) -> String {
        let path = dir.join(name);
        std::fs::write(&path, b.to_json()).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn compare_passes_on_identical_and_fails_on_counter_regression() {
        let dir = std::env::temp_dir().join("interstitial-perf-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let old = write(&dir, "old.json", &baseline(700));
        let same = write(&dir, "same.json", &baseline(700));
        let worse = write(&dir, "worse.json", &baseline(701));

        let ok = run(&args(&["perf", "compare", &old, &same])).unwrap();
        assert!(ok.contains("no change"), "{ok}");

        let err = run(&args(&["perf", "compare", &old, &worse])).unwrap_err();
        assert!(err.0.contains("REGRESSION"), "{}", err.0);
        assert!(err.0.contains("backfill_candidates_scanned"), "{}", err.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn show_renders_counters() {
        let dir = std::env::temp_dir().join("interstitial-perf-show-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = write(&dir, "b.json", &baseline(700));
        let out = run(&args(&["perf", "show", &path])).unwrap();
        assert!(out.contains("ross baseline"));
        assert!(out.contains("backfill_candidates_scanned"));
        assert!(out.contains("700"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn require_decrease_demands_a_strict_drop() {
        let dir = std::env::temp_dir().join("interstitial-perf-decrease-test");
        std::fs::create_dir_all(&dir).unwrap();
        let old = write(&dir, "old.json", &baseline(700));
        let better = write(&dir, "better.json", &baseline(600));
        let same = write(&dir, "same.json", &baseline(700));

        let ok = run(&args(&[
            "perf",
            "compare",
            &old,
            &better,
            "--require-decrease",
            "backfill_candidates_scanned",
        ]))
        .unwrap();
        assert!(ok.contains("decrease ok"), "{ok}");
        assert!(ok.contains("700 -> 600"), "{ok}");

        // Equal is a failure: "no increase" is not a decrease.
        let err = run(&args(&[
            "perf",
            "compare",
            &old,
            &same,
            "--require-decrease",
            "backfill_candidates_scanned",
        ]))
        .unwrap_err();
        assert!(err.0.contains("required decrease not met"), "{}", err.0);

        let err = run(&args(&[
            "perf",
            "compare",
            &old,
            &better,
            "--require-decrease",
            "no_such_counter",
        ]))
        .unwrap_err();
        assert!(err.0.contains("unknown counter"), "{}", err.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn usage_errors_are_reported() {
        assert!(run(&args(&["perf"])).is_err());
        assert!(run(&args(&["perf", "frobnicate"])).is_err());
        assert!(run(&args(&["perf", "compare", "only-one.json"])).is_err());
        assert!(run(&args(&["perf", "compare", "a", "b", "--bogus", "1"])).is_err());
        assert!(run(&args(&["perf", "show", "/no/such/file.json"])).is_err());
        assert!(run(&args(&["perf", "hotspots"])).is_err());
        assert!(run(&args(&["perf", "hotspots", "/no/such/cycles.jsonl"])).is_err());
    }

    #[test]
    fn show_renders_mem_when_present() {
        let dir = std::env::temp_dir().join("interstitial-perf-show-mem-test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut b = baseline(700);
        let mut mem = obs::AllocCounters::enabled();
        assert!(mem.set_field("allocations", 4242));
        b.scenarios.get_mut("fault_free").unwrap().mem = Some(mem);
        let path = write(&dir, "b.json", &b);
        let out = run(&args(&["perf", "show", &path])).unwrap();
        assert!(out.contains("mem.allocations"), "{out}");
        assert!(out.contains("4242"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn show_labels_missing_mem_as_not_recorded() {
        let dir = std::env::temp_dir().join("interstitial-perf-show-nomem-test");
        std::fs::create_dir_all(&dir).unwrap();
        // A schema-2 baseline whose harness ran without allocation counting:
        // the optional mem block is absent from every scenario.
        let b = baseline(700);
        assert!(b.scenarios.values().all(|s| s.mem.is_none()));
        let path = write(&dir, "nomem.json", &b);
        let out = run(&args(&["perf", "show", &path])).unwrap();
        assert!(out.contains("mem"), "{out}");
        assert!(out.contains("not recorded"), "{out}");
        assert!(!out.contains("mem."), "no fabricated mem rows: {out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hotspots_attributes_cost_from_a_recorder_dump() {
        use obs::recorder::{CycleRecorder, CycleTotals, PhaseNanos};

        let dir = std::env::temp_dir().join("interstitial-perf-hotspots-test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut rec = CycleRecorder::with_limits(64, 8);
        let mut totals = CycleTotals::default();
        let mut ns = PhaseNanos::default();
        for i in 0..100u64 {
            let t = rec.begin();
            totals.events += 1 + i % 3;
            totals.candidates += (i * 7) % 23;
            totals.segments += (i * 5) % 11;
            totals.starts += i % 2;
            ns.pump += 1000;
            ns.order += 4000;
            ns.profile += 500;
            ns.backfill += 1500;
            rec.end_cycle(
                t,
                simkit::time::SimTime::from_secs(i * 300),
                i % 40,
                totals,
                ns,
            );
        }
        let mut profile = obs::PhaseProfiler::enabled();
        let span = profile.begin();
        profile.end("order-queue", span);
        let path = dir.join("cycles.jsonl");
        std::fs::write(&path, rec.to_jsonl(&profile.snapshot())).unwrap();

        let out = run(&args(&[
            "perf",
            "hotspots",
            path.to_str().unwrap(),
            "--top",
            "5",
        ]))
        .unwrap();
        assert!(out.contains("100 cycles recorded"), "{out}");
        assert!(out.contains("phase breakdown"), "{out}");
        assert!(out.contains("order-queue"), "{out}");
        assert!(out.contains('#'), "flame bars rendered: {out}");
        assert!(out.contains("P50"), "{out}");
        assert!(out.contains("P99"), "{out}");
        assert!(out.contains("top 5 most expensive cycles"), "{out}");
        // The table names exact sim-times: the worst cycle's t_s must be a
        // multiple of 300 present in the output.
        let worst = rec.top()[0];
        assert!(out.contains(&worst.t_s.to_string()), "{out}");
        // A counters-only dump (no phases, no nanos) still renders.
        let lean = dir.join("lean.jsonl");
        std::fs::write(&lean, rec.counters_jsonl()).unwrap();
        let out = run(&args(&["perf", "hotspots", lean.to_str().unwrap()])).unwrap();
        assert!(out.contains("cost units"), "{out}");
        assert!(
            !out.contains("wall µs      P50"),
            "no fabricated wall distribution: {out}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
