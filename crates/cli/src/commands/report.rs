//! `interstitial report` — render a `simulate --telemetry` export as a
//! terminal panel or a self-contained single-file HTML/SVG dashboard.
//!
//! Both renderers are pure functions of the parsed [`TelemetryDump`]: no
//! wall clock, no external assets, no scripts. The same export renders to
//! byte-identical output every time, so dashboards can be diffed and
//! checked into CI artifacts. Breach bands are drawn on the chart of the
//! signal the SLO rule actually watched; machine outages (fault overlays)
//! shade every chart, since an outage distorts every signal.

use crate::args::{ArgError, Args};
use obs::telemetry::{DumpAnnotation, TelemetryDump};
use std::fmt::Write as _;

const USAGE: &str = "usage: interstitial report TELEMETRY.jsonl [--html FILE]";

/// Unicode ramp for terminal sparklines, lowest to highest.
const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Widest terminal sparkline before points are binned.
const SPARK_WIDTH: usize = 60;

/// SVG plot geometry: the polyline lives in a WxH box with a top margin.
const SVG_W: u64 = 640;
const SVG_H: u64 = 90;
const PLOT_TOP: u64 = 8;
const PLOT_BOT: u64 = 78;

/// Render a telemetry export; optionally also write the HTML dashboard.
pub fn run(args: &Args) -> Result<String, ArgError> {
    args.check_flags(&["html"])?;
    let path = args
        .positional
        .first()
        .ok_or_else(|| ArgError(USAGE.into()))?;
    let text = std::fs::read_to_string(path).map_err(|e| ArgError(format!("{path}: {e}")))?;
    let dump = TelemetryDump::from_jsonl(&text).map_err(|e| ArgError(format!("{path}: {e}")))?;
    let mut out = render_text(path, &dump);
    if let Some(html_path) = args.get("html") {
        std::fs::write(html_path, render_html(path, &dump))
            .map_err(|e| ArgError(format!("writing {html_path}: {e}")))?;
        let _ = writeln!(out, "\nwrote dashboard to {html_path}");
    }
    Ok(out)
}

/// `[start, end]` spans paired from open/close annotation kinds, with the
/// opening annotation carried along. An unclosed span extends to `end`.
fn spans<'a>(
    dump: &'a TelemetryDump,
    open: &str,
    close: &str,
    end: u64,
) -> Vec<(u64, u64, &'a DumpAnnotation)> {
    let mut live: Vec<&DumpAnnotation> = Vec::new();
    let mut out = Vec::new();
    for a in &dump.annotations {
        if a.kind == open {
            live.push(a);
        } else if a.kind == close {
            // Close the earliest still-open span with the same label.
            if let Some(i) = live.iter().position(|o| o.label == a.label) {
                let o = live.remove(i);
                out.push((o.t_s, a.t_s, o));
            }
        }
    }
    for o in live {
        out.push((o.t_s, end, o));
    }
    out.sort_by_key(|(start, _, a)| (*start, a.label.clone()));
    out
}

/// The time axis: first tick, last tick, and a span that is never zero.
fn time_axis(dump: &TelemetryDump) -> (u64, u64, u64) {
    let t0 = dump.ticks.first().copied().unwrap_or(0);
    let t1 = dump.ticks.last().copied().unwrap_or(t0);
    (t0, t1, (t1 - t0).max(1))
}

/// Min, max and last of one column (all zeros for an empty column).
fn stats(values: &[u64]) -> (u64, u64, u64) {
    let min = values.iter().copied().min().unwrap_or(0);
    let max = values.iter().copied().max().unwrap_or(0);
    let last = values.last().copied().unwrap_or(0);
    (min, max, last)
}

/// A terminal sparkline: points binned to at most `SPARK_WIDTH` cells,
/// each cell the bin's max scaled into the 8-step block ramp. Integer
/// arithmetic throughout, so the rendering is deterministic.
fn sparkline(values: &[u64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let bins = values.len().min(SPARK_WIDTH);
    let mut cells = vec![0u64; bins];
    for (i, v) in values.iter().enumerate() {
        let bin = i * bins / values.len();
        cells[bin] = cells[bin].max(*v);
    }
    let (min, max, _) = stats(values);
    cells
        .iter()
        .map(|v| {
            let level = if max > min {
                ((v - min) * (SPARK.len() as u64 - 1) / (max - min)) as usize
            } else {
                0
            };
            SPARK[level]
        })
        .collect()
}

fn header_lines(path: &str, dump: &TelemetryDump) -> String {
    let (t0, t1, _) = time_axis(dump);
    let mut out = format!("telemetry: {path}\n");
    match &dump.machine {
        Some((name, cpus)) => {
            let _ = writeln!(out, "machine: {name} ({cpus} cpus)");
        }
        None => out.push_str("machine: unstamped header\n"),
    }
    let _ = writeln!(
        out,
        "cadence: {} s configured, {} s effective ({} decimation(s))",
        dump.cadence_s, dump.effective_cadence_s, dump.decimations
    );
    let _ = writeln!(
        out,
        "points: {} over {:.1} h (t={t0}..{t1} s)",
        dump.ticks.len(),
        (t1 - t0) as f64 / 3600.0
    );
    out
}

fn render_text(path: &str, dump: &TelemetryDump) -> String {
    let (_, t1, _) = time_axis(dump);
    let mut out = header_lines(path, dump);
    out.push('\n');
    let name_w = dump
        .series
        .iter()
        .map(|(name, _)| name.len())
        .max()
        .unwrap_or(6)
        .max("signal".len());
    let _ = writeln!(
        out,
        "{:<name_w$} {:>10} {:>10} {:>10}  series",
        "signal", "min", "max", "last"
    );
    for (name, values) in &dump.series {
        let (min, max, last) = stats(values);
        let _ = writeln!(
            out,
            "{name:<name_w$} {min:>10} {max:>10} {last:>10}  {}",
            sparkline(values)
        );
    }
    let breaches = spans(dump, "breach", "clear", t1);
    let outages = spans(dump, "machine_down", "machine_up", t1);
    if breaches.is_empty() && outages.is_empty() {
        out.push_str("\nannotations: none\n");
        return out;
    }
    if !breaches.is_empty() {
        let open = breaches.iter().filter(|(_, end, _)| *end == t1).count();
        let _ = writeln!(
            out,
            "\nSLO breaches: {} ({} still open at end of series)",
            breaches.len(),
            open
        );
        for (start, end, a) in &breaches {
            let _ = writeln!(
                out,
                "  {} breached t={start}..{end} s (value {} vs limit {})",
                a.label, a.value, a.limit
            );
        }
    }
    if !outages.is_empty() {
        let _ = writeln!(out, "\noutages: {}", outages.len());
        for (start, end, _) in &outages {
            let _ = writeln!(out, "  machine down t={start}..{end} s");
        }
    }
    out
}

/// x pixel for sim-time `t` on the shared axis.
fn svg_x(t: u64, t0: u64, span: u64) -> u64 {
    t.saturating_sub(t0) * SVG_W / span
}

/// y pixel for value `v` against the signal's own min..max range.
fn svg_y(v: u64, min: u64, max: u64) -> u64 {
    if max > min {
        PLOT_BOT - (v - min) * (PLOT_BOT - PLOT_TOP) / (max - min)
    } else {
        (PLOT_TOP + PLOT_BOT) / 2
    }
}

/// One shaded vertical band (breach or outage) as an SVG rect.
fn svg_band(out: &mut String, start: u64, end: u64, t0: u64, span: u64, fill: &str) {
    let x0 = svg_x(start, t0, span);
    let x1 = svg_x(end, t0, span).max(x0 + 2);
    let _ = write!(
        out,
        "<rect x=\"{x0}\" y=\"0\" width=\"{}\" height=\"{SVG_H}\" fill=\"{fill}\"/>",
        x1 - x0
    );
}

fn render_html(path: &str, dump: &TelemetryDump) -> String {
    let (t0, t1, span) = time_axis(dump);
    let breaches = spans(dump, "breach", "clear", t1);
    let outages = spans(dump, "machine_down", "machine_up", t1);
    let machine = match &dump.machine {
        Some((name, cpus)) => format!("{name} ({cpus} cpus)"),
        None => "unstamped machine".to_string(),
    };
    let mut html = String::with_capacity(dump.series.len() * dump.ticks.len() * 12 + 4096);
    html.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\"/>\n");
    let _ = writeln!(html, "<title>interstitial telemetry — {machine}</title>");
    html.push_str(
        "<style>\n\
         body{font-family:ui-monospace,SFMono-Regular,Menlo,monospace;\n\
              background:#14161a;color:#d8dce2;max-width:720px;margin:2rem auto;padding:0 1rem}\n\
         h1{font-size:1.1rem}\n\
         .meta{color:#8b93a0;font-size:0.8rem}\n\
         .chart{margin:1.1rem 0}\n\
         .chart h2{font-size:0.85rem;font-weight:normal;margin:0 0 0.2rem}\n\
         .chart svg{display:block;background:#1b1e24;border:1px solid #2a2e36}\n\
         .stats{color:#8b93a0;font-size:0.72rem;margin:0.15rem 0 0}\n\
         table{border-collapse:collapse;font-size:0.78rem;margin-top:1rem}\n\
         td,th{border:1px solid #2a2e36;padding:0.2rem 0.5rem;text-align:left}\n\
         </style>\n</head>\n<body>\n\
         <h1>interstitial telemetry dashboard</h1>\n",
    );
    let _ = writeln!(
        html,
        "<p class=\"meta\">source {path} · {machine} · cadence {} s (effective {} s, \
         {} decimation(s)) · {} points · t={t0}..{t1} s</p>",
        dump.cadence_s,
        dump.effective_cadence_s,
        dump.decimations,
        dump.ticks.len()
    );
    for (name, values) in &dump.series {
        let (min, max, last) = stats(values);
        let _ = writeln!(html, "<div class=\"chart\">\n<h2>{name}</h2>");
        let _ = write!(
            html,
            "<svg viewBox=\"0 0 {SVG_W} {SVG_H}\" width=\"{SVG_W}\" height=\"{SVG_H}\" \
             preserveAspectRatio=\"none\">"
        );
        // Outage overlays shade every chart; breach bands only the chart of
        // the signal the rule watched.
        for (start, end, _) in &outages {
            svg_band(&mut html, *start, *end, t0, span, "#3a3f49");
        }
        for (start, end, a) in &breaches {
            if obs::telemetry::slo_metric_signal(&a.label) == Some(name.as_str()) {
                svg_band(&mut html, *start, *end, t0, span, "#5d2428");
            }
        }
        html.push_str("<polyline fill=\"none\" stroke=\"#6fb3e0\" stroke-width=\"1.5\" points=\"");
        for (i, (t, v)) in dump.ticks.iter().zip(values).enumerate() {
            if i > 0 {
                html.push(' ');
            }
            let _ = write!(html, "{},{}", svg_x(*t, t0, span), svg_y(*v, min, max));
        }
        html.push_str("\"/></svg>\n");
        let _ = writeln!(
            html,
            "<p class=\"stats\">min {min} · max {max} · last {last}</p>\n</div>"
        );
    }
    if !breaches.is_empty() || !outages.is_empty() {
        html.push_str(
            "<table>\n<tr><th>kind</th><th>label</th><th>from (s)</th><th>to (s)</th>\
             <th>value</th><th>limit</th></tr>\n",
        );
        for (start, end, a) in &breaches {
            let _ = writeln!(
                html,
                "<tr><td>breach</td><td>{}</td><td>{start}</td><td>{end}</td>\
                 <td>{}</td><td>{}</td></tr>",
                a.label, a.value, a.limit
            );
        }
        for (start, end, _) in &outages {
            let _ = writeln!(
                html,
                "<tr><td>outage</td><td>machine</td><td>{start}</td><td>{end}</td>\
                 <td>—</td><td>—</td></tr>"
            );
        }
        html.push_str("</table>\n");
    }
    html.push_str("</body>\n</html>\n");
    html
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::telemetry::{AnnotationKind, TelemetryBus};

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("interstitial-cli-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    const SIGS: &[&str] = &["util_permille", "queue_depth"];

    /// A hand-built export: a rising utilization series with one breach
    /// window and one outage window.
    fn write_export(name: &str) -> std::path::PathBuf {
        let mut bus = TelemetryBus::enabled(60, SIGS);
        bus.set_machine("testbed", 64);
        for i in 0..20u64 {
            bus.record_tick(i * 60, &[i * 50, 20 - i]);
        }
        bus.annotate(120, AnnotationKind::Breach, "util", 100, 900);
        bus.annotate(600, AnnotationKind::Clear, "util", 910, 900);
        bus.annotate(300, AnnotationKind::MachineDown, "", 0, 0);
        bus.annotate(420, AnnotationKind::MachineUp, "", 0, 0);
        let path = tmp(name);
        std::fs::write(&path, bus.to_jsonl()).unwrap();
        path
    }

    #[test]
    fn text_report_lists_signals_breaches_and_outages() {
        let path = write_export("text.jsonl");
        let out = run(&parse(&["report", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("machine: testbed (64 cpus)"), "{out}");
        assert!(out.contains("util_permille"), "{out}");
        assert!(out.contains("queue_depth"), "{out}");
        assert!(out.contains("SLO breaches: 1"), "{out}");
        assert!(out.contains("util breached t=120..600 s"), "{out}");
        assert!(out.contains("machine down t=300..420 s"), "{out}");
        // The sparkline of a rising series must end on the top block.
        let line = out
            .lines()
            .find(|l| l.starts_with("util_permille"))
            .unwrap();
        assert!(line.ends_with('█'), "{line}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn html_dashboard_is_self_contained_and_deterministic() {
        let path = write_export("html.jsonl");
        let html_path = tmp("dash.html");
        let render = || {
            let out = run(&parse(&[
                "report",
                path.to_str().unwrap(),
                "--html",
                html_path.to_str().unwrap(),
            ]))
            .unwrap();
            assert!(out.contains("wrote dashboard"), "{out}");
            std::fs::read_to_string(&html_path).unwrap()
        };
        let html = render();
        assert!(html.starts_with("<!DOCTYPE html>"), "{html}");
        assert_eq!(html.matches("<polyline").count(), 2, "one line per signal");
        // The breach band lands only on the chart the rule watched, the
        // outage band on every chart.
        assert_eq!(html.matches("fill=\"#5d2428\"").count(), 1, "{html}");
        assert_eq!(html.matches("fill=\"#3a3f49\"").count(), 2, "{html}");
        assert!(html.contains("<td>breach</td>"), "{html}");
        assert!(html.contains("<td>outage</td>"), "{html}");
        // Self-contained: no scripts, no external fetches.
        assert!(!html.contains("<script"), "{html}");
        assert!(!html.contains("http"), "{html}");
        assert_eq!(html, render(), "dashboard must render byte-identically");
        for p in [path, html_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn unclosed_breach_extends_to_the_end_of_the_series() {
        let mut bus = TelemetryBus::enabled(60, SIGS);
        for i in 0..5u64 {
            bus.record_tick(i * 60, &[0, i]);
        }
        bus.annotate(60, AnnotationKind::Breach, "queue_depth", 4, 0);
        let path = tmp("open.jsonl");
        std::fs::write(&path, bus.to_jsonl()).unwrap();
        let out = run(&parse(&["report", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("1 still open at end of series"), "{out}");
        assert!(out.contains("queue_depth breached t=60..240 s"), "{out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn errors_are_clean() {
        assert!(run(&parse(&["report"])).unwrap_err().0.contains("usage"));
        assert!(run(&parse(&["report", "/nonexistent.jsonl"])).is_err());
        let bad = tmp("bad.jsonl");
        std::fs::write(&bad, "{\"not\":\"telemetry\"}\n").unwrap();
        let err = run(&parse(&["report", bad.to_str().unwrap()])).unwrap_err();
        assert!(err.0.contains("not a telemetry header"), "{err}");
        let _ = std::fs::remove_file(bad);
    }
}
