//! `interstitial` — command-line front end for the interstitial-computing
//! simulator (reproduction of Kleban & Clearwater, CLUSTER 2003).
//!
//! Run `interstitial help` for usage.

mod args;
mod commands;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::help());
            std::process::exit(2);
        }
    };
    match commands::run(&parsed) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
