//! Tiny dependency-free argument parser.
//!
//! Grammar: `interstitial <command> [positional…] [--flag [value]]…`.
//! Flags may appear anywhere after the command; `--flag=value` and
//! `--flag value` are both accepted; a flag without a value is boolean.

use std::collections::HashMap;

/// Parsed command line.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// The subcommand name (first non-flag token).
    pub command: String,
    /// Positional arguments after the command.
    pub positional: Vec<String>,
    /// `--key value` / `--key=value` / bare `--key` (value `""`).
    flags: HashMap<String, String>,
}

/// A parse or validation error with a user-facing message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse raw tokens (without the binary name).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let mut it = tokens.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(flag) = tok.strip_prefix("--") {
                if flag.is_empty() {
                    return Err(ArgError("empty flag '--'".into()));
                }
                if let Some((k, v)) = flag.split_once('=') {
                    out.flags.insert(k.to_string(), v.to_string());
                } else {
                    // Greedy value unless the next token is another flag.
                    let take_value = it.peek().map(|n| !n.starts_with("--")).unwrap_or(false);
                    let v = if take_value {
                        it.next().unwrap()
                    } else {
                        String::new()
                    };
                    out.flags.insert(flag.to_string(), v);
                }
            } else if out.command.is_empty() {
                out.command = tok;
            } else {
                out.positional.push(tok);
            }
        }
        if out.command.is_empty() {
            return Err(ArgError(
                "no command given (try `interstitial help`)".into(),
            ));
        }
        Ok(out)
    }

    /// True if `--name` was present (with or without a value).
    #[allow(dead_code)] // exercised in tests; kept for parser completeness
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// String value of `--name`, if present and non-empty.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .get(name)
            .map(|s| s.as_str())
            .filter(|s| !s.is_empty())
    }

    /// Parsed value of `--name` with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{name}: cannot parse {v:?}"))),
        }
    }

    /// Required parsed value of `--name`.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        let v = self
            .get(name)
            .ok_or_else(|| ArgError(format!("missing required flag --{name}")))?;
        v.parse()
            .map_err(|_| ArgError(format!("--{name}: cannot parse {v:?}")))
    }

    /// Reject any flag not in `allowed` — catches typos early.
    pub fn check_flags(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for k in self.flags.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag --{k} (allowed: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

/// Resolve a machine by name (case/space-insensitive), or a custom
/// `CPUSxCLOCK` spec like `1024x0.5`.
pub fn machine_by_name(name: &str) -> Result<machine::MachineConfig, ArgError> {
    let squashed: String = name
        .to_lowercase()
        .chars()
        .filter(|c| c.is_alphanumeric())
        .collect();
    match squashed.as_str() {
        "ross" => Ok(machine::config::ross()),
        "bluemountain" | "bm" => Ok(machine::config::blue_mountain()),
        "bluepacific" | "bp" => Ok(machine::config::blue_pacific()),
        _ => {
            if let Some((cpus, clock)) = name.split_once('x') {
                let cpus: u32 = cpus
                    .parse()
                    .map_err(|_| ArgError(format!("bad CPU count in machine spec {name:?}")))?;
                let clock: f64 = clock
                    .parse()
                    .map_err(|_| ArgError(format!("bad clock in machine spec {name:?}")))?;
                if cpus == 0 || clock <= 0.0 {
                    return Err(ArgError("machine spec must be positive".into()));
                }
                let mut m = machine::config::blue_mountain();
                m.name = "custom";
                m.site = "custom";
                m.cpus = cpus;
                m.clock_ghz = clock;
                Ok(m)
            } else {
                Err(ArgError(format!(
                    "unknown machine {name:?} (ross | bluemountain | bluepacific | CPUSxGHZ)"
                )))
            }
        }
    }
}

/// Parse an interstitial job-shape spec `CPUSxSECS`, e.g. `32x120` (seconds
/// at 1 GHz).
pub fn shape_spec(spec: &str) -> Result<(u32, f64), ArgError> {
    let (cpus, secs) = spec
        .split_once('x')
        .ok_or_else(|| ArgError(format!("bad shape {spec:?}, expected CPUSxSECS")))?;
    let cpus: u32 = cpus
        .parse()
        .map_err(|_| ArgError(format!("bad CPU count in {spec:?}")))?;
    let secs: f64 = secs
        .parse()
        .map_err(|_| ArgError(format!("bad seconds in {spec:?}")))?;
    if cpus == 0 || secs <= 0.0 {
        return Err(ArgError("shape must be positive".into()));
    }
    Ok((cpus, secs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgError> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn command_and_positionals() {
        let a = parse(&["simulate", "log.swf", "extra"]).unwrap();
        assert_eq!(a.command, "simulate");
        assert_eq!(a.positional, vec!["log.swf", "extra"]);
    }

    #[test]
    fn flags_in_both_styles() {
        let a = parse(&["sim", "--seed=7", "--machine", "ross", "--verbose"]).unwrap();
        assert_eq!(a.get("seed"), Some("7"));
        assert_eq!(a.get("machine"), Some("ross"));
        assert!(a.has("verbose"));
        assert_eq!(a.get("verbose"), None, "bare flag has no value");
    }

    #[test]
    fn flag_followed_by_flag_is_boolean() {
        let a = parse(&["x", "--a", "--b", "2"]).unwrap();
        assert!(a.has("a"));
        assert_eq!(a.get("a"), None);
        assert_eq!(a.get("b"), Some("2"));
    }

    #[test]
    fn get_or_and_require() {
        let a = parse(&["x", "--n", "5"]).unwrap();
        assert_eq!(a.get_or("n", 1u32).unwrap(), 5);
        assert_eq!(a.get_or("m", 9u32).unwrap(), 9);
        assert_eq!(a.require::<u32>("n").unwrap(), 5);
        assert!(a.require::<u32>("missing").is_err());
        let bad = parse(&["x", "--n", "abc"]).unwrap();
        assert!(bad.get_or("n", 1u32).is_err());
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let a = parse(&["x", "--ok", "1", "--oops", "2"]).unwrap();
        assert!(a.check_flags(&["ok"]).is_err());
        assert!(a.check_flags(&["ok", "oops"]).is_ok());
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--flag"]).is_err(), "flag before command");
    }

    #[test]
    fn machines_resolve() {
        assert_eq!(machine_by_name("ross").unwrap().name, "Ross");
        assert_eq!(
            machine_by_name("Blue Mountain").unwrap().name,
            "Blue Mountain"
        );
        assert_eq!(machine_by_name("bp").unwrap().name, "Blue Pacific");
        let custom = machine_by_name("512x1.5").unwrap();
        assert_eq!(custom.cpus, 512);
        assert!((custom.clock_ghz - 1.5).abs() < 1e-12);
        assert!(machine_by_name("nonesuch").is_err());
        assert!(machine_by_name("0x1.0").is_err());
    }

    #[test]
    fn shapes_parse() {
        assert_eq!(shape_spec("32x120").unwrap(), (32, 120.0));
        assert_eq!(shape_spec("1x960.5").unwrap(), (1, 960.5));
        assert!(shape_spec("32").is_err());
        assert!(shape_spec("0x5").is_err());
        assert!(shape_spec("ax5").is_err());
    }
}
