//! End-to-end tests driving the built `interstitial` binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_interstitial"))
}

fn run_ok(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("spawn binary");
    assert!(
        out.status.success(),
        "exit {:?}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

#[test]
fn help_shows_usage() {
    let text = run_ok(&["help"]);
    assert!(text.contains("USAGE"));
    assert!(text.contains("simulate"));
}

#[test]
fn machines_roster() {
    let text = run_ok(&["machines"]);
    assert!(text.contains("Blue Mountain"));
    assert!(text.contains("DPCS"));
}

#[test]
fn generate_stats_simulate_pipeline() {
    let dir = std::env::temp_dir().join("interstitial-cli-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("pipeline.swf");
    let msg = run_ok(&[
        "generate",
        "--machine",
        "ross",
        "--seed",
        "3",
        "--out",
        log.to_str().unwrap(),
    ]);
    assert!(msg.contains("wrote"));

    let stats = run_ok(&["stats", log.to_str().unwrap()]);
    assert!(stats.contains("arrival dispersion"), "{stats}");

    let sim = run_ok(&[
        "simulate",
        "--machine",
        "ross",
        log.to_str().unwrap(),
        "--shape",
        "32x120",
    ]);
    assert!(sim.contains("overall utilization"), "{sim}");
    let _ = std::fs::remove_file(log);
}

#[test]
fn advise_prints_verdict() {
    let text = run_ok(&[
        "advise",
        "--machine",
        "bm",
        "--jobs",
        "1000",
        "--shape",
        "32x120",
    ]);
    assert!(text.contains("verdict:"), "{text}");
}

#[test]
fn errors_exit_nonzero_with_message() {
    let out = bin().args(["simulate"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "{stderr}");

    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn no_args_prints_help_to_stderr() {
    let out = bin().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}
