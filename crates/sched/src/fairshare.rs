//! Decayed fair-share usage accounting.
//!
//! Fair-share schedulers prioritize entities (users, groups) inversely to
//! their recent consumption. "Recent" is implemented, as in LSF and DPCS,
//! with exponential decay: usage recorded `Δt` ago counts for
//! `2^(−Δt/half_life)` of its face value. The paper leans on this mechanism
//! twice: every machine "employs a different notion of fair share" (§3), and
//! the delay cascade of §4.3 exists *because* "in a fair share system, due
//! to dynamic reprioritization … a job could be delayed for far longer".
//!
//! Usage is stored per entity as `(value_at_last_touch, last_touch)` and
//! decayed lazily on read — O(1) per charge and per query, no periodic sweep.

use simkit::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// One decayed accumulator.
#[derive(Clone, Copy, Debug, Default)]
struct Account {
    value: f64,
    as_of: SimTime,
}

impl Account {
    fn decayed(&self, now: SimTime, half_life: SimDuration) -> f64 {
        debug_assert!(now >= self.as_of);
        let dt = (now - self.as_of).as_secs_f64();
        let hl = half_life.as_secs_f64();
        self.value * (-dt * std::f64::consts::LN_2 / hl).exp()
    }
}

/// Fair-share ledger: decayed CPU·second usage per user and per group.
///
/// Keyed by `BTreeMap` — simulation state must iterate in a fixed order so
/// replays are bit-for-bit reproducible (simlint rule R1).
#[derive(Clone, Debug)]
pub struct FairShare {
    half_life: SimDuration,
    users: BTreeMap<u32, Account>,
    groups: BTreeMap<u32, Account>,
}

impl FairShare {
    /// Create with the given decay half-life (production defaults are on
    /// the order of a day).
    pub fn new(half_life: SimDuration) -> Self {
        assert!(!half_life.is_zero(), "half-life must be positive");
        FairShare {
            half_life,
            users: BTreeMap::new(),
            groups: BTreeMap::new(),
        }
    }

    /// The configured half-life.
    pub fn half_life(&self) -> SimDuration {
        self.half_life
    }

    /// Charge `cpu_seconds` of consumption at `now` to a user and their
    /// group.
    pub fn charge(&mut self, now: SimTime, user: u32, group: u32, cpu_seconds: f64) {
        debug_assert!(cpu_seconds >= 0.0);
        let hl = self.half_life;
        for (map, key) in [(&mut self.users, user), (&mut self.groups, group)] {
            let acct = map.entry(key).or_default();
            let decayed = if acct.as_of <= now {
                acct.decayed(now, hl)
            } else {
                // Out-of-order charge (shouldn't happen in a DES, but stay
                // safe): bring `now` forward instead.
                acct.value
            };
            acct.value = decayed + cpu_seconds;
            acct.as_of = acct.as_of.max(now);
        }
    }

    /// Decayed usage of a user at `now` (0 if never charged).
    pub fn user_usage(&self, now: SimTime, user: u32) -> f64 {
        self.users
            .get(&user)
            .map_or(0.0, |a| a.decayed(now.max(a.as_of), self.half_life))
    }

    /// Decayed usage of a group at `now` (0 if never charged).
    pub fn group_usage(&self, now: SimTime, group: u32) -> f64 {
        self.groups
            .get(&group)
            .map_or(0.0, |a| a.decayed(now.max(a.as_of), self.half_life))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn fresh_ledger_is_zero() {
        let fs = FairShare::new(SimDuration::from_hours(24));
        assert_eq!(fs.user_usage(t(0), 1), 0.0);
        assert_eq!(fs.group_usage(t(100), 2), 0.0);
    }

    #[test]
    fn charge_is_visible_immediately() {
        let mut fs = FairShare::new(SimDuration::from_hours(24));
        fs.charge(t(100), 1, 2, 5000.0);
        assert!((fs.user_usage(t(100), 1) - 5000.0).abs() < 1e-9);
        assert!((fs.group_usage(t(100), 2) - 5000.0).abs() < 1e-9);
        assert_eq!(fs.user_usage(t(100), 9), 0.0, "other users untouched");
    }

    #[test]
    fn usage_halves_every_half_life() {
        let hl = SimDuration::from_hours(10);
        let mut fs = FairShare::new(hl);
        fs.charge(t(0), 1, 1, 1000.0);
        let one_hl = t(hl.as_secs());
        assert!((fs.user_usage(one_hl, 1) - 500.0).abs() < 1e-6);
        let two_hl = t(2 * hl.as_secs());
        assert!((fs.user_usage(two_hl, 1) - 250.0).abs() < 1e-6);
    }

    #[test]
    fn charges_accumulate_with_decay() {
        let hl = SimDuration::from_hours(1);
        let mut fs = FairShare::new(hl);
        fs.charge(t(0), 1, 1, 100.0);
        fs.charge(t(3600), 1, 1, 100.0);
        // 100 decayed to 50, plus fresh 100.
        assert!((fs.user_usage(t(3600), 1) - 150.0).abs() < 1e-6);
    }

    #[test]
    fn group_aggregates_across_users() {
        let mut fs = FairShare::new(SimDuration::from_hours(24));
        fs.charge(t(0), 1, 7, 100.0);
        fs.charge(t(0), 2, 7, 200.0);
        assert!((fs.group_usage(t(0), 7) - 300.0).abs() < 1e-9);
        assert!((fs.user_usage(t(0), 1) - 100.0).abs() < 1e-9);
        assert!((fs.user_usage(t(0), 2) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn querying_the_past_does_not_underflow() {
        let mut fs = FairShare::new(SimDuration::from_hours(1));
        fs.charge(t(1000), 1, 1, 100.0);
        // Query before the account's as_of: clamped, not negative-exponent.
        let v = fs.user_usage(t(0), 1);
        assert!((v - 100.0).abs() < 1e-9);
    }

    #[test]
    fn heavy_user_stays_above_light_user() {
        let mut fs = FairShare::new(SimDuration::from_hours(24));
        fs.charge(t(0), 1, 1, 1_000_000.0);
        fs.charge(t(0), 2, 2, 10.0);
        // Even a day later the ordering persists.
        let later = t(86_400);
        assert!(fs.user_usage(later, 1) > fs.user_usage(later, 2));
    }
}
