//! Runtime invariant checks for the simulation loop.
//!
//! Two properties the whole reproduction rests on are asserted here, at
//! every scheduling cycle, when the `check-invariants` feature is enabled:
//!
//! 1. **CPU conservation** — the CPUs booked by the running set, the pool's
//!    allocation counter and the machine size always agree: `in_use + free +
//!    offline == total` and `in_use <= total`. A divergence means jobs were
//!    started on CPUs that do not exist (or released twice), which silently
//!    corrupts every utilization number downstream.
//! 2. **Meta-backfill no-delay** — placing interstitial jobs never moves the
//!    projected start of the head native job (the paper's
//!    `backFillWallTime`), *on the scheduler's own information*. This is the
//!    Figure 1 guarantee; bad user estimates may still delay natives in
//!    actuality (the §4.3 effect), but the plan itself must never regress.
//!
//! Without the feature both functions compile to empty inline bodies, so the
//! driver calls them unconditionally and release builds pay nothing. The
//! `interstitial` crate (crates/core) turns the feature on for its test
//! builds via a dev-dependency, so every `cargo test` replay runs checked.

use crate::backfill::Reservation;
use crate::Scheduler;
use machine::RunningSet;
use simkit::time::{SimDuration, SimTime};

/// Assert the CPU-accounting invariant: the running set and the pool agree,
/// and the partition is never oversubscribed.
#[cfg(feature = "check-invariants")]
pub fn check_conservation(
    now: SimTime,
    running: &RunningSet,
    in_use: u32,
    free: u32,
    offline: u32,
    total: u32,
) {
    let listed: u32 = running.iter().map(|j| j.cpus).sum();
    assert_eq!(
        listed,
        running.cpus_in_use(),
        "invariant: RunningSet cached CPU counter diverged from its contents at {now:?}"
    );
    assert_eq!(
        listed, in_use,
        "invariant: pool books {in_use} CPUs but running jobs hold {listed} at {now:?}"
    );
    assert!(
        in_use <= total,
        "invariant: {in_use} CPUs allocated on a {total}-CPU machine at {now:?}"
    );
    assert_eq!(
        in_use + free + offline,
        total,
        "invariant: pool accounting leak at {now:?} ({in_use} + {free} + {offline} != {total})"
    );
}

/// No-op stand-in when the feature is off.
#[cfg(not(feature = "check-invariants"))]
#[inline(always)]
pub fn check_conservation(
    _now: SimTime,
    _running: &RunningSet,
    _in_use: u32,
    _free: u32,
    _offline: u32,
    _total: u32,
) {
}

/// Assert the degraded-capacity invariant: occupancy never exceeds the
/// CPUs currently in service. `available` is the fault model's capacity at
/// `now` (total minus failed-node CPUs); a violation means the scheduler
/// planned jobs onto failed nodes, or a node failure did not evict its
/// tenants before its CPUs went offline.
#[cfg(feature = "check-invariants")]
pub fn check_capacity(now: SimTime, in_use: u32, available: u32) {
    assert!(
        in_use <= available,
        "invariant: {in_use} CPUs occupied but only {available} in service at {now:?} \
         (jobs are running on failed nodes)"
    );
}

/// No-op stand-in when the feature is off.
#[cfg(not(feature = "check-invariants"))]
#[inline(always)]
pub fn check_capacity(_now: SimTime, _in_use: u32, _available: u32) {}

/// Assert the meta-backfill no-delay guarantee: given the head native job's
/// reservation captured *before* interstitial placement, recompute it
/// against the post-placement running set and verify the projected start
/// moved by at most `slack` (zero under the strict Figure 1 guard; one
/// second under the relaxed `>=`-with-rounding variant). Callers skip the
/// check entirely for preempting streams, whose guard is deliberately
/// relaxed because a blocking job can always be reclaimed.
#[cfg(feature = "check-invariants")]
pub fn check_no_delay(
    now: SimTime,
    scheduler: &mut Scheduler,
    free: u32,
    running: &RunningSet,
    before: Option<Reservation>,
    slack: SimDuration,
) {
    let Some(before) = before else {
        // No blocked head → nothing to protect (and with a non-empty queue
        // whose head is unplaceable, the guard admits no interstitial jobs).
        return;
    };
    match scheduler.probe_head_reservation(now, free, running) {
        Some(after) => {
            assert_eq!(
                after.job_id, before.job_id,
                "invariant: head job changed during interstitial placement at {now:?}"
            );
            assert!(
                after.start <= before.start + slack,
                "invariant: interstitial placement delayed the head native job {} at {now:?}: \
                 reserved at {:?} before, {:?} after (allowed slack {slack:?})",
                before.job_id,
                before.start,
                after.start,
            );
        }
        None => panic!(
            "invariant: head native job {} lost its reservation during interstitial \
             placement at {now:?}",
            before.job_id
        ),
    }
}

/// No-op stand-in when the feature is off.
#[cfg(not(feature = "check-invariants"))]
#[inline(always)]
pub fn check_no_delay(
    _now: SimTime,
    _scheduler: &mut Scheduler,
    _free: u32,
    _running: &RunningSet,
    _before: Option<Reservation>,
    _slack: SimDuration,
) {
}

#[cfg(all(test, feature = "check-invariants"))]
mod tests {
    use super::*;
    use machine::RunningJob;
    use workload::{Job, JobClass};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn rj(id: u64, cpus: u32, est_end: u64, interstitial: bool) -> RunningJob {
        RunningJob {
            id,
            cpus,
            start: SimTime::ZERO,
            actual_end: t(est_end),
            estimated_end: t(est_end),
            interstitial,
        }
    }

    fn job(id: u64, cpus: u32, est: u64) -> Job {
        Job {
            id,
            class: JobClass::Native,
            user: id as u32,
            group: 0,
            submit: SimTime::ZERO,
            cpus,
            runtime: SimDuration::from_secs(est),
            estimate: SimDuration::from_secs(est),
        }
    }

    #[test]
    fn conservation_accepts_consistent_state() {
        let mut rs = RunningSet::new();
        rs.insert(rj(1, 6, 100, false));
        check_conservation(t(0), &rs, 6, 4, 0, 10);
        check_conservation(t(0), &rs, 6, 2, 2, 10);
    }

    #[test]
    #[should_panic(expected = "running jobs hold")]
    fn conservation_catches_pool_divergence() {
        let mut rs = RunningSet::new();
        rs.insert(rj(1, 6, 100, false));
        check_conservation(t(0), &rs, 4, 6, 0, 10);
    }

    #[test]
    #[should_panic(expected = "accounting leak")]
    fn conservation_catches_leaked_cpus() {
        let mut rs = RunningSet::new();
        rs.insert(rj(1, 6, 100, false));
        check_conservation(t(0), &rs, 6, 3, 0, 10);
    }

    #[test]
    fn capacity_accepts_occupancy_within_service() {
        check_capacity(t(0), 0, 0);
        check_capacity(t(5), 48, 48);
        check_capacity(t(5), 10, 64);
    }

    #[test]
    #[should_panic(expected = "running on failed nodes")]
    fn capacity_catches_oversubscribed_service() {
        check_capacity(t(9), 49, 48);
    }

    #[test]
    fn no_delay_accepts_harmless_placement() {
        // 10-CPU machine: native 6 CPUs until t=1000; head wants 8.
        let mut s = Scheduler::lsf();
        s.submit(job(1, 8, 500));
        let mut rs = RunningSet::new();
        rs.insert(rj(100, 6, 1000, false));
        let before = s.cycle(t(0), 4, &rs, true);
        assert!(before.is_empty());
        let res = s.head_reservation();
        assert_eq!(res.unwrap().start, t(1000));
        // Interstitial slab on the 4 idle CPUs, done by t=800 < 1000.
        rs.insert(rj(1 << 40, 4, 800, true));
        check_no_delay(t(0), &mut s, 0, &rs, res, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "delayed the head native job")]
    fn no_delay_catches_regressing_placement() {
        let mut s = Scheduler::lsf();
        s.submit(job(1, 8, 500));
        let mut rs = RunningSet::new();
        rs.insert(rj(100, 6, 1000, false));
        s.cycle(t(0), 4, &rs, true);
        let res = s.head_reservation();
        // A rogue interstitial job squatting on the idle CPUs until t=5000
        // pushes the head's earliest 8-CPU slot from 1000 to 5000.
        rs.insert(rj(1 << 40, 4, 5000, true));
        check_no_delay(t(0), &mut s, 0, &rs, res, SimDuration::ZERO);
    }

    #[test]
    fn no_delay_tolerates_declared_slack() {
        let mut s = Scheduler::lsf();
        s.submit(job(1, 8, 500));
        let mut rs = RunningSet::new();
        rs.insert(rj(100, 6, 1000, false));
        s.cycle(t(0), 4, &rs, true);
        let res = s.head_reservation();
        // Relaxed guard admits a job ending one second past the reservation.
        rs.insert(rj(1 << 40, 4, 1001, true));
        check_no_delay(t(0), &mut s, 0, &rs, res, SimDuration::from_secs(1));
    }

    #[test]
    fn no_delay_ignores_unblocked_queue() {
        let mut s = Scheduler::lsf();
        let rs = RunningSet::new();
        check_no_delay(t(0), &mut s, 10, &rs, None, SimDuration::ZERO);
    }
}
