//! # sched — queueing-system personalities
//!
//! Reimplements, as policy skeletons, the three production schedulers the
//! paper's machines ran (Table 1): PBS on Ross, LSF on Blue Mountain and
//! DPCS on Blue Pacific. Each is assembled from orthogonal pieces:
//!
//! * [`fairshare`] — decayed CPU-time accounting per user and group; the
//!   source of the *dynamic reprioritization* that lets delays cascade
//!   (§4.3.2.1).
//! * [`priority`] — queue-ordering policies: FCFS, flat user fair share
//!   (Ross: "all users have equal shares"), hierarchical group fair share
//!   (Blue Mountain), combined user+group fair share (Blue Pacific).
//! * [`window`] — time-of-day dispatch constraints (Blue Pacific).
//! * [`backfill`] — the dispatch planner: EASY, conservative, and the
//!   restrictive variant the paper attributes to Ross ("the criteria by
//!   which backfilling takes place is more restrictive").
//! * [`scheduler`] — [`Scheduler`], the queue + policy bundle the simulation
//!   driver talks to, with per-machine constructors.

//!
//! ```
//! use sched::Scheduler;
//! use machine::RunningSet;
//! use simkit::SimTime;
//!
//! let mut lsf = Scheduler::lsf();
//! # use workload::{Job, JobClass};
//! # use simkit::SimDuration;
//! lsf.submit(Job {
//!     id: 1, class: JobClass::Native, user: 0, group: 0,
//!     submit: SimTime::ZERO, cpus: 16,
//!     runtime: SimDuration::from_hours(1), estimate: SimDuration::from_hours(2),
//! });
//! let starts = lsf.cycle(SimTime::ZERO, 64, &RunningSet::new(), true);
//! assert_eq!(starts.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod backfill;
pub mod fairshare;
pub mod invariants;
pub mod priority;
pub mod scheduler;
pub mod window;

pub use backfill::{BackfillPolicy, CapacityProfile, DispatchPlan, Reservation};
pub use priority::PriorityPolicy;
pub use scheduler::{Counters, ProfileMode, Scheduler};
pub use window::DispatchWindow;
