//! Time-of-day dispatch constraints.
//!
//! Blue Pacific's DPCS adds "time of day constraints" on top of fair share
//! (§3). We model the common production form: *long* jobs may only start
//! during an overnight window, keeping daytime capacity turning over for
//! short work. Short jobs start any time.

use simkit::time::{SimDuration, SimTime, DAY, HOUR};
use workload::Job;

/// When a job is allowed to *start* (running jobs are never interrupted).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DispatchWindow {
    /// No time-of-day constraint.
    Always,
    /// Jobs whose *estimate* exceeds `threshold` may start only between
    /// `night_start` and `night_end` (hours of day; window wraps midnight).
    NightOnlyLong {
        /// Estimate above which a job is "long".
        threshold: SimDuration,
        /// Hour of day the night window opens (e.g. 17).
        night_start: u64,
        /// Hour of day the night window closes (e.g. 7).
        night_end: u64,
    },
}

impl DispatchWindow {
    /// Blue Pacific-like default: estimates over 8 h start only 17:00–07:00.
    pub fn blue_pacific() -> Self {
        DispatchWindow::NightOnlyLong {
            threshold: SimDuration::from_hours(8),
            night_start: 17,
            night_end: 7,
        }
    }

    /// Is the instant inside the night window?
    fn in_night(night_start: u64, night_end: u64, t: SimTime) -> bool {
        let h = t.hour_of_day();
        if night_start <= night_end {
            (night_start..night_end).contains(&h)
        } else {
            h >= night_start || h < night_end
        }
    }

    /// May `job` start at `now`?
    pub fn may_start(&self, job: &Job, now: SimTime) -> bool {
        match *self {
            DispatchWindow::Always => true,
            DispatchWindow::NightOnlyLong {
                threshold,
                night_start,
                night_end,
            } => job.estimate <= threshold || Self::in_night(night_start, night_end, now),
        }
    }

    /// Earliest instant ≥ `t` at which `job` may start.
    pub fn next_allowed(&self, job: &Job, t: SimTime) -> SimTime {
        match *self {
            DispatchWindow::Always => t,
            DispatchWindow::NightOnlyLong {
                threshold,
                night_start,
                ..
            } => {
                if job.estimate <= threshold || self.may_start(job, t) {
                    return t;
                }
                // Next opening of the night window.
                let day_start = SimTime::from_secs(t.day_index() * DAY);
                let todays_open = day_start + SimDuration::from_secs(night_start * HOUR);
                if todays_open >= t {
                    todays_open
                } else {
                    todays_open + SimDuration::from_days(1)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::JobClass;

    fn job(est_hours: u64) -> Job {
        Job {
            id: 1,
            class: JobClass::Native,
            user: 0,
            group: 0,
            submit: SimTime::ZERO,
            cpus: 1,
            runtime: SimDuration::from_hours(est_hours),
            estimate: SimDuration::from_hours(est_hours),
        }
    }

    fn at(day: u64, hour: u64) -> SimTime {
        SimTime::from_secs(day * DAY + hour * HOUR)
    }

    #[test]
    fn always_is_always() {
        let w = DispatchWindow::Always;
        assert!(w.may_start(&job(100), at(0, 12)));
        assert_eq!(w.next_allowed(&job(100), at(0, 12)), at(0, 12));
    }

    #[test]
    fn short_jobs_unconstrained() {
        let w = DispatchWindow::blue_pacific();
        for h in 0..24 {
            assert!(w.may_start(&job(2), at(1, h)), "hour {h}");
        }
    }

    #[test]
    fn long_jobs_only_at_night() {
        let w = DispatchWindow::blue_pacific();
        let long = job(10);
        assert!(!w.may_start(&long, at(0, 12)), "noon blocked");
        assert!(!w.may_start(&long, at(0, 16)), "16:59 blocked");
        assert!(w.may_start(&long, at(0, 17)), "17:00 open");
        assert!(w.may_start(&long, at(0, 23)), "23:00 open");
        assert!(w.may_start(&long, at(1, 3)), "03:00 open (wraps)");
        assert!(w.may_start(&long, at(1, 6)), "06:59 open");
        assert!(!w.may_start(&long, at(1, 7)), "07:00 closed");
    }

    #[test]
    fn next_allowed_rolls_to_window_open() {
        let w = DispatchWindow::blue_pacific();
        let long = job(10);
        // From noon: tonight at 17:00.
        assert_eq!(w.next_allowed(&long, at(2, 12)), at(2, 17));
        // Already night: immediately.
        assert_eq!(w.next_allowed(&long, at(2, 20)), at(2, 20));
        assert_eq!(w.next_allowed(&long, at(3, 2)), at(3, 2));
        // 07:30, window just closed: tonight at 17:00.
        let t = SimTime::from_secs(3 * DAY + 7 * HOUR + 1800);
        assert_eq!(w.next_allowed(&long, t), at(3, 17));
        // Short job: immediately, any time.
        assert_eq!(w.next_allowed(&job(1), at(2, 12)), at(2, 12));
    }

    #[test]
    fn non_wrapping_window() {
        let w = DispatchWindow::NightOnlyLong {
            threshold: SimDuration::from_hours(1),
            night_start: 9,
            night_end: 17,
        };
        let long = job(4);
        assert!(!w.may_start(&long, at(0, 8)));
        assert!(w.may_start(&long, at(0, 9)));
        assert!(w.may_start(&long, at(0, 16)));
        assert!(!w.may_start(&long, at(0, 17)));
    }

    #[test]
    fn threshold_boundary_is_inclusive() {
        let w = DispatchWindow::blue_pacific();
        // Exactly 8h counts as short.
        assert!(w.may_start(&job(8), at(0, 12)));
    }
}
